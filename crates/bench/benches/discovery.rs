//! Rule-discovery benches (Fig 4(a)–(c) drivers): the levelwise miner with
//! and without sampling, and the ES evidence-set baseline, on a Logistics
//! slice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rock_baselines::EsMiner;
use rock_data::RelId;
use rock_discovery::levelwise::{Discoverer, DiscoveryConfig};
use rock_discovery::sampling::mine_with_sampling;
use rock_discovery::space::{PredicateSpace, SpaceConfig};
use rock_workloads::workload::GenConfig;

fn bench_discovery(c: &mut Criterion) {
    let w = rock_workloads::logistics::generate(&GenConfig {
        rows: 150,
        error_rate: 0.08,
        seed: 21,
        trusted_per_rel: 15,
    });
    let space = PredicateSpace::build(&w.dirty, RelId(0), &[], &SpaceConfig::default());
    let cfg = DiscoveryConfig {
        min_support: 1e-4,
        min_confidence: 0.9,
        max_preconditions: 2,
        ..Default::default()
    };

    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    group.bench_function("rock/levelwise-bitset", |b| {
        b.iter(|| {
            Discoverer::new(&w.registry, cfg.clone()).mine_relation(&w.dirty, RelId(0), &space)
        })
    });
    group.bench_function("rock/levelwise-scan", |b| {
        let scan_cfg = DiscoveryConfig {
            use_bitset_cache: false,
            ..cfg.clone()
        };
        b.iter(|| {
            Discoverer::new(&w.registry, scan_cfg.clone()).mine_relation(&w.dirty, RelId(0), &space)
        })
    });
    group.bench_function("rock/sampled-10pct", |b| {
        let disc = Discoverer::new(&w.registry, cfg.clone());
        b.iter(|| mine_with_sampling(&disc, &w.dirty, RelId(0), &space, 0.1, 0.05, 7))
    });
    group.bench_function(BenchmarkId::new("baseline", "es-evidence"), |b| {
        b.iter(|| {
            EsMiner::new(&w.registry).mine(
                &w.dirty,
                RelId(0),
                &space.preconditions(),
                &space.consequences,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
