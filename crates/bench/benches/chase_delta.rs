//! `chase-delta` benches: the semi-naive delta chase (tuple-level
//! incremental evaluation with blocking-pruned pair enumeration) against
//! the full re-scan ablation, batch and incremental. The two modes repair
//! identically (asserted by `tests/chase_delta_equivalence.rs` and the
//! `chase-delta` figure panel); these benches measure the wall-clock gap.

use criterion::{criterion_group, criterion_main, Criterion};
use rock_chase::{ChaseConfig, ChaseEngine};
use rock_core::variant::sorted_rules;
use rock_data::{AttrId, Delta, RelId, TupleId, Update, Value};
use rock_detect::blocking::precompute_ml_indexed;
use rock_workloads::workload::GenConfig;

fn bench_chase_delta(c: &mut Criterion) {
    let w = rock_workloads::logistics::generate(&GenConfig {
        rows: 150,
        error_rate: 0.08,
        seed: 41,
        trusted_per_rel: 15,
    });
    let task = w.task("RClean").unwrap().clone();
    let rules = sorted_rules(&w.rules_for(&task));
    let (_, index) = precompute_ml_indexed(&w.dirty, &rules, &w.registry);
    let mk = |semi_naive: bool| {
        ChaseEngine::new(
            &rules,
            &w.registry,
            ChaseConfig {
                semi_naive,
                ..ChaseConfig::default()
            },
        )
        .with_blocking(&index)
    };

    let mut group = c.benchmark_group("chase_delta");
    group.sample_size(10);
    // batch: round 1 is a full scan in both modes; round ≥ 2 enumerates
    // only delta-pinned valuations (semi-naive) vs everything (re-scan)
    for semi in [true, false] {
        let label = if semi { "semi-naive" } else { "full-rescan" };
        group.bench_function(format!("batch/{label}"), |b| {
            b.iter(|| mk(semi).run(&w.dirty, &w.trusted))
        });
    }
    // incremental: a small ΔD of nulled cells; both modes chase only the
    // touched tuples, the flag picks pinned-bitset vs scan-and-filter
    let arity = w.dirty.relation(RelId(0)).schema.arity();
    let delta = Delta::new(
        (0..8u32)
            .map(|i| Update::SetCell {
                rel: RelId(0),
                tid: TupleId(i * 7),
                attr: AttrId((arity - 1) as u16),
                value: Value::Null,
            })
            .collect(),
    );
    for semi in [true, false] {
        let label = if semi { "pinned" } else { "scan-filter" };
        group.bench_function(format!("incremental/{label}"), |b| {
            b.iter(|| {
                mk(semi)
                    .run_incremental(&w.dirty, &w.trusted, &delta)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chase_delta);
criterion_main!(benches);
