//! Micro-benches over the hot kernels: CRC-32 / consistent-hash placement,
//! MinHash LSH, string similarity, embeddings, the partial-order store, the
//! fix store, and the bitset popcount kernels behind the discovery cache.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rock_chase::{FixStore, PartialOrderStore};
use rock_crystal::crc32;
use rock_crystal::ring::{ConsistentHashRing, NodeId};
use rock_data::{Bitset, TupleId};
use rock_ml::features::HashingEmbedder;
use rock_ml::text::{edit_similarity, trigram_cosine};
use rock_ml::MinHashLsh;

fn bench_kernels(c: &mut Criterion) {
    c.bench_function("crc32/64B", |b| {
        let data = vec![0xABu8; 64];
        b.iter(|| crc32(black_box(&data)))
    });

    c.bench_function("ring/owner", |b| {
        let mut ring = ConsistentHashRing::new(64);
        for i in 0..20 {
            ring.add_node(NodeId(i), &format!("10.0.0.{i}"));
        }
        b.iter(|| ring.owner(black_box(b"partition-1234")))
    });

    c.bench_function("lsh/insert+query", |b| {
        b.iter(|| {
            let mut lsh = MinHashLsh::new(16, 2);
            for i in 0..50u32 {
                lsh.insert(i, &format!("street number {i} beijing west road"));
            }
            lsh.candidates(black_box("street number 25 beijing west road"))
        })
    });

    c.bench_function("text/edit_similarity", |b| {
        b.iter(|| edit_similarity(black_box("5 Beijing West Road"), black_box("5 West Road")))
    });

    c.bench_function("text/trigram_cosine", |b| {
        b.iter(|| {
            trigram_cosine(
                black_box("IPhone 14 Discount ID 41"),
                black_box("IPhone 14 Discount Code 41"),
            )
        })
    });

    c.bench_function("ml/embed_str", |b| {
        let e = HashingEmbedder::default();
        b.iter(|| e.embed_str(black_box("Golden Dragon Trading Co Shanghai")))
    });

    c.bench_function("order/insert+holds", |b| {
        b.iter(|| {
            let mut p = PartialOrderStore::new();
            for i in 0..30u32 {
                p.insert(TupleId(i), TupleId(i + 1), i % 3 == 0);
            }
            p.holds(TupleId(0), TupleId(30), true)
        })
    });

    // pair-domain sized bitsets (n = 512 tuples → 512² bits = 32 KiB)
    let pair_bits = 512usize * 512;
    let (x, y, z) = {
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut mk = |density: u64| {
            let mut b = Bitset::new(pair_bits);
            for i in 0..pair_bits {
                if next() % 100 < density {
                    b.set(i);
                }
            }
            b
        };
        (mk(50), mk(20), mk(80))
    };

    c.bench_function("bitset/and_popcount-256k", |b| {
        b.iter(|| black_box(&x).and_popcount(black_box(&y)))
    });

    c.bench_function("bitset/and3_popcount-256k", |b| {
        b.iter(|| black_box(&x).and3_popcount(black_box(&y), black_box(&z)))
    });

    c.bench_function("bitset/intersect_with-256k", |b| {
        b.iter(|| {
            let mut w = x.clone();
            w.intersect_with(black_box(&y));
            w
        })
    });

    c.bench_function("bitset/ones-iterate-20pct", |b| {
        b.iter(|| black_box(&y).ones().sum::<usize>())
    });

    c.bench_function("fixes/union-find", |b| {
        use rock_chase::EntityKey;
        use rock_data::{Eid, RelId};
        b.iter(|| {
            let mut f = FixStore::new();
            for i in 0..100u32 {
                f.merge(
                    EntityKey::new(RelId(0), Eid(i)),
                    EntityKey::new(RelId(0), Eid(i / 2)),
                );
            }
            f.same_entity(
                EntityKey::new(RelId(0), Eid(0)),
                EntityKey::new(RelId(0), Eid(99)),
            )
        })
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
