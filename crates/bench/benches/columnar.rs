//! Columnar data-plane benches: row-at-a-time scalar predicate scans vs
//! the vectorized column kernels (`ColumnSet::eval_const_op` /
//! `eval_col_op_col`), plus the cost of building a column snapshot from
//! the row store — the one-time price the write-through cache amortizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rock_data::{AttrId, PredOp, RelId, Value};
use rock_workloads::workload::GenConfig;

fn bench_columnar(c: &mut Criterion) {
    let w = rock_workloads::logistics::generate(&GenConfig {
        rows: 2000,
        error_rate: 0.08,
        seed: 47,
        trusted_per_rel: 30,
    });
    let db = w.dirty;
    let rid = RelId(0);
    let rel = db.relation(rid);
    let attr = AttrId(0);
    let konst = rel
        .iter()
        .next()
        .map(|t| t.get(attr).clone())
        .unwrap_or(Value::Null);
    // warm the cache so the scan benches measure steady-state reads
    let cols = rel.columns();

    c.bench_function("columnar/row-scan-const-eq-2k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for t in rel.iter() {
                if PredOp::Eq.eval(t.get(attr), black_box(&konst)) {
                    hits += 1;
                }
            }
            hits
        })
    });

    c.bench_function("columnar/col-scan-const-eq-2k", |b| {
        b.iter(|| {
            cols.eval_const_op(attr, PredOp::Eq, black_box(&konst))
                .count_ones()
        })
    });

    c.bench_function("columnar/row-scan-col-op-col-2k", |b| {
        let (a0, a1) = (AttrId(0), AttrId(1));
        b.iter(|| {
            let mut hits = 0u64;
            for t in rel.iter() {
                if PredOp::Neq.eval(t.get(a0), t.get(black_box(a1))) {
                    hits += 1;
                }
            }
            hits
        })
    });

    c.bench_function("columnar/col-scan-col-op-col-2k", |b| {
        let (a0, a1) = (AttrId(0), AttrId(1));
        b.iter(|| {
            cols.eval_col_op_col(a0, PredOp::Neq, black_box(a1))
                .count_ones()
        })
    });

    c.bench_function("columnar/snapshot-build-2k", |b| {
        b.iter(|| rock_data::ColumnSet::from_relation(black_box(rel)))
    });
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
