//! Error-detection benches (Fig 4(d)–(h) drivers): batch detection with
//! and without ML blocking, incremental detection, and the SQL-engine
//! baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use rock_baselines::sqlengine::{SqlEngine, SqlEngineKind};
use rock_core::variant::sorted_rules;
use rock_data::{AttrId, Delta, RelId, TupleId, Update, Value};
use rock_detect::blocking::precompute_ml;
use rock_detect::Detector;
use rock_workloads::workload::GenConfig;

fn bench_detection(c: &mut Criterion) {
    let w = rock_workloads::logistics::generate(&GenConfig {
        rows: 200,
        error_rate: 0.08,
        seed: 31,
        trusted_per_rel: 20,
    });
    let task = w.task("RClean").unwrap().clone();
    let rules = sorted_rules(&w.rules_for(&task));
    let noml = rules.without_ml();

    let mut group = c.benchmark_group("detection");
    group.sample_size(10);
    group.bench_function("rock/batch+blocking", |b| {
        b.iter(|| {
            w.registry.clear_memo();
            precompute_ml(&w.dirty, &rules, &w.registry);
            Detector::new(&rules, &w.registry).detect(&w.dirty)
        })
    });
    group.bench_function("rock/batch-noml", |b| {
        b.iter(|| Detector::new(&noml, &w.registry).detect(&w.dirty))
    });
    group.bench_function("rock/incremental-1-update", |b| {
        let mut db = w.dirty.clone();
        let delta = Delta::new(vec![Update::SetCell {
            rel: RelId(0),
            tid: TupleId(3),
            attr: AttrId(4),
            value: Value::str("East"),
        }]);
        let inserted = db.apply(&delta).unwrap();
        b.iter(|| Detector::new(&noml, &w.registry).detect_incremental(&db, &delta, &inserted))
    });
    group.bench_function("baseline/sparksql-udf", |b| {
        b.iter(|| SqlEngine::new(SqlEngineKind::SparkSql, &w.registry).detect(&w.dirty, &noml))
    });
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
