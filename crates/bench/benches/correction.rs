//! Error-correction benches (Fig 4(i)–(l) drivers): the unified chase vs
//! the sequential (Rockseq-style) and single-pass (RocknoC-style)
//! schedules, plus ablations of the chase's own optimizations.

use criterion::{criterion_group, criterion_main, Criterion};
use rock_chase::{ChaseConfig, ChaseEngine};
use rock_core::variant::sorted_rules;
use rock_core::{RockConfig, RockSystem, Variant};
use rock_workloads::workload::GenConfig;

fn bench_correction(c: &mut Criterion) {
    let w = rock_workloads::logistics::generate(&GenConfig {
        rows: 150,
        error_rate: 0.08,
        seed: 41,
        trusted_per_rel: 15,
    });
    let task = w.task("RClean").unwrap().clone();
    let rules = sorted_rules(&w.rules_for(&task));

    let mut group = c.benchmark_group("correction");
    group.sample_size(10);
    for variant in [
        Variant::Rock,
        Variant::RockSeq,
        Variant::RockNoC,
        Variant::RockNoMl,
    ] {
        group.bench_function(format!("variant/{}", variant.name()), |b| {
            b.iter(|| {
                RockSystem::new(RockConfig {
                    variant,
                    ..RockConfig::default()
                })
                .correct(&w, &task)
            })
        });
    }
    // ablation: lazy REE++ activation vs naive re-scan (§4.1 Novelty (a))
    for lazy in [true, false] {
        let label = if lazy { "lazy" } else { "naive-rescan" };
        group.bench_function(format!("chase/activation-{label}"), |b| {
            b.iter(|| {
                let engine = ChaseEngine::new(
                    &rules,
                    &w.registry,
                    ChaseConfig {
                        lazy_activation: lazy,
                        ..ChaseConfig::default()
                    },
                );
                engine.run(&w.dirty, &w.trusted)
            })
        });
    }
    // ablation: chase work-unit granularity (coarse vs fine partitions)
    for parts in [1u32, 16] {
        group.bench_function(format!("chase/partitions-{parts}"), |b| {
            b.iter(|| {
                let engine = ChaseEngine::new(
                    &rules,
                    &w.registry,
                    ChaseConfig {
                        partitions_per_rule: parts,
                        ..ChaseConfig::default()
                    },
                );
                engine.run(&w.dirty, &w.trusted)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_correction);
criterion_main!(benches);
