//! The Figure 4 panels (paper §6). Each function renders one panel as a
//! [`crate::table::Table`] and returns it together with a machine-readable
//! JSON value for `results/`.

use crate::runners::{self, RunResult};
use crate::table::{fmt_f1, fmt_secs, Table};
use rock_baselines::sqlengine::SqlEngineKind;
use rock_core::Variant;
use rock_crystal::scheduler::makespan_lpt;
use rock_data::CellRef;
use rock_workloads::metrics::{correction_metrics, detection_metrics, er_pair_metrics, Metrics};
use rock_workloads::workload::GenConfig;
use rock_workloads::Workload;
use rustc_hash::FxHashSet;
use serde_json::json;

/// Workload scales for the panels (laptop-size; shapes, not magnitudes).
pub fn bank() -> Workload {
    rock_workloads::bank::generate(&GenConfig {
        rows: 240,
        error_rate: 0.08,
        seed: 42,
        trusted_per_rel: 30,
    })
}

pub fn logistics() -> Workload {
    rock_workloads::logistics::generate(&GenConfig {
        rows: 360,
        error_rate: 0.08,
        seed: 43,
        trusted_per_rel: 30,
    })
}

pub fn sales() -> Workload {
    rock_workloads::sales::generate(&GenConfig {
        rows: 240,
        error_rate: 0.08,
        seed: 44,
        trusted_per_rel: 30,
    })
}

fn app(name: &str) -> Workload {
    match name {
        "Bank" => bank(),
        "Logistics" => logistics(),
        "Sales" => sales(),
        other => panic!("unknown app {other}"),
    }
}

/// Paper dataset sizes in tuples (§6): Bank 1.5B, Logistics 16M, Sales
/// 0.62B.
fn paper_tuples(app_name: &str) -> f64 {
    match app_name {
        "Bank" => 1.5e9,
        "Logistics" => 16e6,
        _ => 0.62e9,
    }
}

/// Extrapolate a measured time to the paper's dataset size under a stated
/// complexity exponent and hardware-parallelism divisor (the assumptions
/// are recorded in EXPERIMENTS.md). Renders ">1 day" past the paper's cap.
fn at_scale(measured: f64, ours: f64, paper: f64, exponent: f64, parallelism: f64) -> String {
    let t = measured * (paper / ours).powf(exponent) / parallelism;
    if t > 86_400.0 {
        ">1 day".to_string()
    } else {
        fmt_secs(t)
    }
}

/// Panels 4(a)/(b)/(c): rule-discovery time per task. Two numbers per
/// system: measured at laptop scale, and modeled at the paper's dataset
/// size — the paper's headline ("ES, T5s and RB cannot finish rule
/// discovery or model training within one day") is a *scale* statement:
/// ES's unsampled evidence pass is quadratic in N, while Rock mines on a
/// 10% sample with parallel scalability.
pub fn rd_time(app_name: &str) -> (Table, serde_json::Value) {
    let w = app(app_name);
    let n_ours = w.dirty.total_tuples() as f64;
    let n_paper = paper_tuples(app_name);
    let tasks: Vec<String> = w.tasks.iter().map(|t| t.name.clone()).collect();
    let mut table = Table::new(
        format!("Fig 4 RD time — {app_name} (measured | modeled @ {n_paper:.1e} tuples)"),
        &["task", "Rock", "RocknoML", "ES", "T5s", "RB"],
    );
    let mut rows_json = Vec::new();
    // Discovery/training is application-level (the paper re-runs per task;
    // our curated tasks share the relations, so per-task numbers differ
    // only via the task's relation subset — we report the app-level run on
    // every task row, matching the paper's near-identical per-task bars).
    let rock = runners::rock_discovery_time(&w, Variant::Rock);
    let noml = runners::rock_discovery_time(&w, Variant::RockNoMl);
    let (_, es) = runners::es_discovery(&w);
    let (_, t5s) = runners::t5s_train(&w);
    let (_, rb) = runners::rb_train(&w);
    // exponents: Rock/RocknoML mine samples with index joins (~linear in
    // N); ES materializes all-pairs evidence (quadratic); T5s/RB are
    // linear with transformer / feature-engineering constants. Parallelism
    // divisors: 672 = the paper's 21 nodes × 32 cores for the parallelly
    // scalable systems, 100 ≈ a GPU pod for T5s, 10 ≈ one multicore node
    // for RB.
    let cell = |measured: f64, exp: f64, par: f64| -> String {
        format!(
            "{} | {}",
            fmt_secs(measured),
            at_scale(measured, n_ours, n_paper, exp, par)
        )
    };
    for t in &tasks {
        table.row(vec![
            t.clone(),
            cell(rock, 1.0, 672.0),
            cell(noml, 1.0, 672.0),
            cell(es, 2.0, 672.0),
            cell(t5s, 1.0, 100.0),
            cell(rb, 1.0, 10.0),
        ]);
        rows_json.push(json!({
            "task": t, "Rock": rock, "RocknoML": noml, "ES": es, "T5s": t5s, "RB": rb,
            "ours_tuples": n_ours, "paper_tuples": n_paper,
        }));
    }
    (
        table,
        json!({ "panel": format!("rd-{app_name}"), "rows": rows_json }),
    )
}

/// Extra panel: candidate-evaluation throughput of the levelwise miner
/// with the predicate satisfaction-bitset cache (default) vs the tuple
/// re-scan path, on the Logistics app with ML predicates in the space.
/// Both paths mine the identical rule set (asserted here), so the speedup
/// column is a like-for-like kernel comparison; a tight-budget row shows
/// the LRU spill behaviour trading time for memory.
pub fn rd_cache() -> (Table, serde_json::Value) {
    use rock_data::RelId;
    use rock_discovery::levelwise::{Discoverer, DiscoveryConfig};
    use rock_discovery::space::{MlSignature, PredicateSpace, SpaceConfig};

    let w = logistics();
    let schema = w.dirty.schema();
    let sigs: Vec<MlSignature> = w
        .ml_hints
        .iter()
        .filter_map(|h| {
            let rel = schema.rel_id(&h.rel)?;
            let attrs = h
                .attrs
                .iter()
                .filter_map(|a| schema.relation(rel).attr_id(a))
                .collect();
            Some(MlSignature {
                model: h.model.clone(),
                rel,
                attrs,
            })
        })
        .collect();
    let space = PredicateSpace::build(&w.dirty, RelId(0), &sigs, &SpaceConfig::default());
    let base_cfg = DiscoveryConfig {
        min_support: 1e-4,
        min_confidence: 0.9,
        max_preconditions: 2,
        ..Default::default()
    };

    let run = |cfg: DiscoveryConfig| {
        Discoverer::new(&w.registry, cfg).mine_relation(&w.dirty, RelId(0), &space)
    };
    let scan = run(DiscoveryConfig {
        use_bitset_cache: false,
        ..base_cfg.clone()
    });
    let cached = run(base_cfg.clone());
    let tight = run(DiscoveryConfig {
        cache_budget_bytes: 8 << 10,
        ..base_cfg
    });
    assert_eq!(
        serde_json::to_string(&cached.rules).unwrap(),
        serde_json::to_string(&scan.rules).unwrap(),
        "bitset and scan paths must mine identical rules"
    );

    let mut table = Table::new(
        "RD cache — bitset kernels vs tuple re-scan (Logistics)",
        &[
            "path",
            "wall",
            "candidates",
            "cand/s",
            "speedup",
            "cache (hit% ev sp peakKiB)",
        ],
    );
    let mut rows_json = Vec::new();
    let mut row = |name: &str, r: &rock_discovery::levelwise::DiscoveryReport| {
        let throughput = r.candidates_evaluated as f64 / r.wall_seconds.max(1e-9);
        let speedup = scan.wall_seconds / r.wall_seconds.max(1e-9);
        let cache_cell = match &r.cache {
            Some(s) => format!(
                "{:.0}% {} {} {:.0}",
                s.hit_rate() * 100.0,
                s.evictions,
                s.spills,
                s.bytes_peak as f64 / 1024.0
            ),
            None => "-".into(),
        };
        table.row(vec![
            name.into(),
            fmt_secs(r.wall_seconds),
            r.candidates_evaluated.to_string(),
            format!("{throughput:.0}"),
            format!("{speedup:.2}x"),
            cache_cell,
        ]);
        rows_json.push(json!({
            "path": name,
            "wall_seconds": r.wall_seconds,
            "candidates_evaluated": r.candidates_evaluated,
            "candidates_per_second": throughput,
            "speedup_vs_scan": speedup,
            "rules": r.rules.len(),
            "cache": r.cache.as_ref().map(|s| json!({
                "hits": s.hits, "misses": s.misses, "hit_rate": s.hit_rate(),
                "evictions": s.evictions, "spills": s.spills,
                "bytes_peak": s.bytes_peak, "budget_bytes": s.budget_bytes,
            })),
        }));
    };
    row("scan", &scan);
    row("bitset (64 MiB budget)", &cached);
    row("bitset (8 KiB budget)", &tight);
    (table, json!({ "panel": "rdcache", "rows": rows_json }))
}

/// Extra panel: semi-naive delta chase (default) vs full re-scan on the
/// Logistics correction task. Both modes repair the database identically
/// (asserted here — the full-rescan path is the equivalence oracle, see
/// `tests/chase_delta_equivalence.rs`); the per-round rows show the
/// valuation-count reduction the delta restriction buys from round 2 on.
pub fn chase_delta() -> (Table, serde_json::Value) {
    let w = logistics();
    let task = w.task("RClean").expect("RClean task").clone();
    let run = |semi_naive: bool| {
        let sys = rock_core::RockSystem::new(rock_core::RockConfig {
            semi_naive,
            ..rock_core::RockConfig::default()
        });
        let t0 = std::time::Instant::now();
        let out = sys.correct(&w, &task);
        (out, t0.elapsed().as_secs_f64())
    };
    let (full, full_wall) = run(false);
    let (semi, semi_wall) = run(true);
    assert_eq!(
        serde_json::to_string(&full.repaired).unwrap(),
        serde_json::to_string(&semi.repaired).unwrap(),
        "semi-naive and full-rescan chases must repair identically"
    );
    assert_eq!(
        (full.rounds, full.changes, full.conflicts),
        (semi.rounds, semi.changes, semi.conflicts),
        "semi-naive and full-rescan chases must agree on rounds/changes/conflicts"
    );

    let mut table = Table::new(
        "Chase delta — semi-naive vs full re-scan (Logistics EC)",
        &[
            "round",
            "full valuations",
            "semi valuations",
            "delta tuples",
            "carried",
            "reduction",
        ],
    );
    let mut rows_json = Vec::new();
    for (i, (f, s)) in full.round_stats.iter().zip(&semi.round_stats).enumerate() {
        let reduction = if f.valuations > 0 {
            1.0 - s.valuations as f64 / f.valuations as f64
        } else {
            0.0
        };
        table.row(vec![
            i.to_string(),
            f.valuations.to_string(),
            s.valuations.to_string(),
            s.delta_tuples.to_string(),
            s.carried.to_string(),
            format!("{:.0}%", reduction * 100.0),
        ]);
        rows_json.push(json!({
            "round": i,
            "full_valuations": f.valuations,
            "semi_valuations": s.valuations,
            "semi_delta_tuples": s.delta_tuples,
            "semi_carried": s.carried,
            "active_rules": s.active_rules,
            "proposals": s.proposals,
        }));
    }
    let total = |rs: &[rock_chase::RoundStats]| rs.iter().map(|r| r.valuations).sum::<u64>();
    let (tv_full, tv_semi) = (total(&full.round_stats), total(&semi.round_stats));
    table.row(vec![
        "total".into(),
        format!("{tv_full} ({})", fmt_secs(full_wall)),
        format!("{tv_semi} ({})", fmt_secs(semi_wall)),
        "-".into(),
        "-".into(),
        format!("{:.2}x fewer", tv_full as f64 / tv_semi.max(1) as f64),
    ]);
    (
        table,
        json!({
            "panel": "chase-delta",
            "rows": rows_json,
            "full_wall_seconds": full_wall,
            "semi_wall_seconds": semi_wall,
            "full_valuations_total": tv_full,
            "semi_valuations_total": tv_semi,
            "speedup_wall": full_wall / semi_wall.max(1e-9),
        }),
    )
}

/// Static-analysis panel: `rock-analyze` verdicts over every workload's
/// curated ruleset (must be clean) and its defect-seeded variant (every
/// injected defect class must be re-found — recall 1.0), plus the
/// rule × round pairs the graph-driven chase schedule evaluates versus
/// the classic activation oracle on the Bank correction chase, with the
/// byte-identical-repairs equivalence asserted inline.
pub fn analyze() -> (Table, serde_json::Value) {
    let mut table = Table::new(
        "Static analysis — rock-analyze verdicts and graph-driven chase scheduling",
        &[
            "ruleset", "rules", "errors", "warnings", "dead", "subsumed", "recall",
        ],
    );
    let mut rows_json = Vec::new();
    for (name, w) in [
        ("Bank", bank()),
        ("Logistics", logistics()),
        ("Sales", sales()),
    ] {
        let schema = w.dirty.schema();
        let clean = rock_analyze::Analyzer::new(&schema).analyze(&w.rules);
        assert!(
            clean.is_clean(),
            "{name} curated rules must analyze clean: {:?}",
            clean.diagnostics
        );
        let (defective, injected) =
            rock_workloads::inject_defects(&w.rules, &schema, 7, &rock_workloads::DefectKind::ALL);
        let seeded = rock_analyze::Analyzer::new(&schema).analyze(&defective);
        let found = injected
            .iter()
            .filter(|d| {
                seeded
                    .diagnostics
                    .iter()
                    .any(|g| g.rule == d.rule_name && g.code == d.expected)
            })
            .count();
        let recall = found as f64 / injected.len() as f64;
        assert!((recall - 1.0).abs() < 1e-9, "{name} defect recall {recall}");
        for (label, rep, rc) in [
            (format!("{name} curated"), &clean, "-".to_owned()),
            (format!("{name} +defects"), &seeded, format!("{recall:.2}")),
        ] {
            let s = rep.stats();
            table.row(vec![
                label.clone(),
                s.rules.to_string(),
                s.errors.to_string(),
                s.warnings.to_string(),
                s.dead_rules.to_string(),
                s.subsumed_rules.to_string(),
                rc,
            ]);
            rows_json.push(json!({
                "ruleset": label,
                "stats": s,
                "counts": rep.counts_by_code(),
            }));
        }
    }

    // Graph-driven chase scheduling vs the classic activation oracle.
    let w = bank();
    let task = w
        .task("CNC")
        .or_else(|| w.tasks.first())
        .expect("bank task")
        .clone();
    let run = |use_rule_graph: bool| {
        let sys = rock_core::RockSystem::new(rock_core::RockConfig {
            use_rule_graph,
            ..rock_core::RockConfig::default()
        });
        sys.correct(&w, &task)
    };
    let classic = run(false);
    let graph = run(true);
    assert_eq!(
        serde_json::to_string(&classic.repaired).unwrap(),
        serde_json::to_string(&graph.repaired).unwrap(),
        "graph-driven and classic chases must repair identically"
    );
    let rule_rounds = |out: &rock_core::CorrectionOutcome| -> usize {
        out.round_stats.iter().map(|s| s.active_rules).sum()
    };
    let pruned: usize = graph.round_stats.iter().map(|s| s.rules_pruned).sum();
    let (on, off) = (rule_rounds(&graph), rule_rounds(&classic));
    assert!(on <= off, "graph schedule must not grow: {on} > {off}");
    table.row(vec![
        "Bank chase rule-rounds".into(),
        format!("{off} classic"),
        format!("{on} graph"),
        format!("{pruned} pruned"),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    (
        table,
        json!({
            "panel": "analyze",
            "rulesets": rows_json,
            "chase": {
                "workload": "Bank",
                "rule_rounds_classic": off,
                "rule_rounds_graph": on,
                "rules_pruned": pruned,
                "rounds_classic": classic.rounds,
                "rounds_graph": graph.rounds,
            },
            // runner-speed-invariant gate metric: classic/graph rule-round
            // pairs; >= 1.0 by the inline assertion above
            "rule_rounds_ratio": off as f64 / on.max(1) as f64,
        }),
    )
}

/// Certify panel: the chase certifier's bound-tightness table. For every
/// workload the certified stratified schedule (`use_schedule: true`) must
/// (1) repair byte-identically to the classic activation oracle, (2) earn
/// a finite-bound termination certificate, and (3) finish within its
/// resolved bound — all asserted inline, so a violated certificate fails
/// the panel rather than degrading silently. The rows report certified vs
/// observed rounds per workload; `bound_margin_ratio` (certified bound /
/// observed rounds, minimum over workloads) feeds the trajectory gate.
pub fn certify() -> (Table, serde_json::Value) {
    use rock_chase::{ChaseConfig, ChaseEngine, ChaseResult, ConflictPolicy};
    use rock_rees::RoundBound;

    let mut table = Table::new(
        "Certify — termination certificates and bound tightness",
        &[
            "workload",
            "class",
            "strata",
            "certified bound",
            "rounds",
            "margin",
            "rule-rounds (classic|sched)",
        ],
    );
    let mut rows_json = Vec::new();
    let mut min_ratio = f64::INFINITY;
    for (name, w) in [
        ("Bank", bank()),
        ("Logistics", logistics()),
        ("Sales", sales()),
    ] {
        let policy = ConflictPolicy {
            mc: w.registry.id("Mc"),
            mrank: ["Mstatus", "Mtier", "Mrank"]
                .iter()
                .find_map(|n| w.registry.id(n)),
        };
        let run = |use_schedule: bool| {
            let cfg = ChaseConfig {
                max_rounds: 32,
                policy: policy.clone(),
                use_schedule,
                ..ChaseConfig::default()
            };
            let engine = ChaseEngine::new(&w.rules, &w.registry, cfg);
            let engine = match &w.graph {
                Some(g) => engine.with_graph(g),
                None => engine,
            };
            engine.run(&w.dirty, &w.trusted)
        };
        let classic = run(false);
        let sched = run(true);
        assert_eq!(
            serde_json::to_string(&classic.db).unwrap(),
            serde_json::to_string(&sched.db).unwrap(),
            "{name}: certified schedule must repair byte-identically to classic"
        );
        assert_eq!(
            (
                classic.changes.len(),
                classic.merged_pairs.len(),
                classic.conflicts
            ),
            (
                sched.changes.len(),
                sched.merged_pairs.len(),
                sched.conflicts
            ),
            "{name}: certified schedule must not change chase semantics"
        );
        assert!(
            sched.rounds <= classic.rounds,
            "{name}: certified schedule added rounds"
        );
        let cert = sched
            .certification
            .clone()
            .expect("schedule runs carry a certificate");
        assert!(
            cert.violation.is_none(),
            "{name}: certified bound violated: {:?}",
            cert.violation
        );
        let resolved = cert
            .resolved_bound
            .expect("curated rulesets certify a finite bound");
        assert!(
            sched.rounds as u64 <= resolved,
            "{name}: {} rounds exceed certified bound {resolved}",
            sched.rounds
        );
        let ratio = resolved as f64 / sched.rounds.max(1) as f64;
        min_ratio = min_ratio.min(ratio);
        let rr = |r: &ChaseResult| r.round_stats.iter().map(|s| s.active_rules).sum::<usize>();
        let (off, on) = (rr(&classic), rr(&sched));
        assert!(on <= off, "{name}: certified schedule grew rule-rounds");
        let bound_str = match cert.bound {
            Some(RoundBound::Rounds(n)) => format!("{n} (static)"),
            Some(RoundBound::LatticeHeight { .. }) => format!("{resolved} (lattice)"),
            None => unreachable!("resolved bound implies a symbolic bound"),
        };
        table.row(vec![
            name.into(),
            cert.class.as_str().into(),
            cert.strata.to_string(),
            bound_str,
            sched.rounds.to_string(),
            format!("{}", resolved - sched.rounds as u64),
            format!("{off} | {on}"),
        ]);
        rows_json.push(json!({
            "workload": name,
            "class": cert.class.as_str(),
            "strata": cert.strata,
            "certified_bound": resolved,
            "observed_rounds": sched.rounds,
            "bound_margin": resolved - sched.rounds as u64,
            "rule_rounds_classic": off,
            "rule_rounds_schedule": on,
            "byte_identical": true,
        }));
    }
    (
        table,
        json!({
            "panel": "certify",
            "rows": rows_json,
            "bound_margin_ratio": min_ratio,
        }),
    )
}

/// Concurrency-lint panel: `rock-lint` over the workspace sources (must be
/// clean — the headline trajectory metric `lint_violations` is gated to
/// stay exactly zero) plus the seeded-defect self-check under
/// `fixtures/lint_defects/` (every `//~ LXXX` marker hit, nothing else
/// fired: 100% recall, zero false positives).
pub fn lint() -> (Table, serde_json::Value) {
    use rock_lint::Severity;
    use std::path::Path;

    // Anchor on the manifest, not the cwd: the bench crate sits two levels
    // below the workspace root.
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let diags = rock_lint::lint_tree(root).expect("lint workspace sources");
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    assert!(
        diags.is_empty(),
        "workspace must lint clean, found {}:\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    let fixtures = rock_lint::check_fixtures(&root.join("fixtures/lint_defects"))
        .expect("lint seeded-defect fixtures");
    let markers = fixtures.matched.len() + fixtures.missed.len();
    let recall = fixtures.matched.len() as f64 / markers.max(1) as f64;
    assert!(
        fixtures.ok(),
        "fixture self-check failed: {} missed, {} unexpected",
        fixtures.missed.len(),
        fixtures.unexpected.len()
    );

    let mut table = Table::new(
        "Concurrency lint — workspace cleanliness and seeded-defect recall",
        &[
            "target",
            "violations",
            "errors",
            "warnings",
            "recall",
            "false positives",
        ],
    );
    table.row(vec![
        "workspace".into(),
        diags.len().to_string(),
        errors.to_string(),
        warnings.to_string(),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "fixtures/lint_defects".into(),
        format!("{markers} seeded"),
        "-".into(),
        "-".into(),
        format!("{recall:.2}"),
        fixtures.unexpected.len().to_string(),
    ]);
    (
        table,
        json!({
            "panel": "lint",
            "lint_violations": diags.len(),
            "lint_errors": errors,
            "lint_warnings": warnings,
            "fixture_markers": markers,
            "fixture_matched": fixtures.matched.len(),
            "fixture_recall": recall,
            "fixture_false_positives": fixtures.unexpected.len(),
        }),
    )
}

/// Chaos panel: the Logistics correction task under seeded deterministic
/// fault injection (per-unit panics, transient errors, latency spikes, and
/// one whole-node crash) versus an undisturbed run. The headline assertion
/// is **byte-identical repairs**: every injected fault is absorbed by the
/// scheduler's retry / reassignment / speculation machinery, never by
/// dropping work. Two controlled scheduler-level sections additionally
/// demonstrate queue reassignment after a node crash (`reassigned > 0`
/// under every seed, since the crashed node owns the whole queue) and
/// quarantine of a poison unit after exactly `max_retries + 1` attempts.
/// Seed comes from `ROCK_CHAOS_SEED` (default 4242) so CI can sweep a
/// matrix.
pub fn chaos() -> (Table, serde_json::Value) {
    use rock_crystal::work::Partition;
    use rock_crystal::{Cluster, ClusterConfig, FaultPlan, WorkUnit};

    let seed = std::env::var("ROCK_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(4242);
    const WORKERS: usize = 4;
    let w = logistics();
    let task = w.task("RClean").expect("RClean task").clone();
    let run = |cluster: ClusterConfig| {
        let sys = rock_core::RockSystem::new(rock_core::RockConfig {
            workers: WORKERS,
            cluster,
            ..rock_core::RockConfig::default()
        });
        let t0 = std::time::Instant::now();
        let out = sys.correct(&w, &task);
        (out, t0.elapsed().as_secs_f64())
    };
    let (clean, clean_wall) = run(ClusterConfig::default());
    // Probabilistic first-attempt faults plus a planned crash of node 1 at
    // its second unit boundary: the chase's cluster loses a member mid-run
    // and later rounds place work on survivors only.
    let plan = FaultPlan::chaos(seed).with_crash(1, 2);
    let (chaotic, chaos_wall) = run(ClusterConfig::default().with_fault_plan(plan));
    assert_eq!(
        serde_json::to_string(&clean.repaired).unwrap(),
        serde_json::to_string(&chaotic.repaired).unwrap(),
        "repairs must be byte-identical under fault injection (seed {seed})"
    );
    assert!(
        chaotic.unit_failures.is_empty(),
        "chaos plan has no poison units, so nothing may be quarantined: {:?}",
        chaotic.unit_failures
    );
    assert_eq!(
        (clean.rounds, clean.changes, clean.conflicts),
        (chaotic.rounds, chaotic.changes, chaotic.conflicts),
        "fault recovery must not change chase semantics"
    );

    // Controlled crash: every unit hashes onto one owner, which crashes
    // before executing anything — its whole queue must flow to survivors
    // through the reassignment injector.
    let probe = WorkUnit::new(7, vec![Partition::new(0, 0, 10)]);
    let victim = Cluster::new(WORKERS).owner_of(&probe);
    let crash_units: Vec<WorkUnit> = (0..32)
        .map(|_| WorkUnit::new(7, vec![Partition::new(0, 0, 10)]))
        .collect();
    let crash_out = Cluster::with_config(
        WORKERS,
        ClusterConfig::default().with_fault_plan(FaultPlan::seeded(seed).with_crash(victim, 0)),
    )
    .execute(crash_units, |u| {
        let mut acc = u.rule as u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_add(i).rotate_left(5);
        }
        Ok(acc)
    });
    assert!(
        crash_out.is_complete(),
        "crash run must still complete every unit: {:?}",
        crash_out.failures
    );
    assert_eq!(crash_out.stats.faults.node_crashes, 1);
    assert!(
        crash_out.stats.faults.reassigned > 0,
        "the crashed owner's queue must be reassigned: {:?}",
        crash_out.stats.faults
    );

    // Poison unit: panics on every attempt, quarantined after exactly
    // max_retries + 1 attempts, reported as a typed failure — not fatal.
    let poison_units: Vec<WorkUnit> = (0..16)
        .map(|i| WorkUnit::new(i, vec![Partition::new(0, i * 10, (i + 1) * 10)]))
        .collect();
    let poison_out = Cluster::with_config(
        WORKERS,
        ClusterConfig::default()
            .with_fault_plan(FaultPlan::seeded(seed).with_poison(vec![3]))
            .with_max_retries(2),
    )
    .execute(poison_units, |u| Ok(u.rule));
    assert_eq!(poison_out.failures.len(), 1);
    assert_eq!(poison_out.failures[0].unit, 3);
    assert_eq!(poison_out.failures[0].attempts, 3);
    assert_eq!(
        poison_out.results.iter().filter(|r| r.is_some()).count(),
        15,
        "the other 15 units still commit"
    );

    let f = &chaotic.fault_stats;
    let mut table = Table::new(
        format!("Chaos — Logistics EC under fault injection (seed {seed})"),
        &["metric", "clean", "chaos"],
    );
    table.row(vec![
        "wall seconds".into(),
        fmt_secs(clean_wall),
        fmt_secs(chaos_wall),
    ]);
    table.row(vec![
        "F1".into(),
        fmt_f1(clean.metrics.f1()),
        fmt_f1(chaotic.metrics.f1()),
    ]);
    table.row(vec![
        "rounds / changes".into(),
        format!("{} / {}", clean.rounds, clean.changes),
        format!("{} / {}", chaotic.rounds, chaotic.changes),
    ]);
    table.row(vec![
        "repairs byte-identical".into(),
        "-".into(),
        "yes (asserted)".into(),
    ]);
    table.row(vec![
        "panics caught / transients / latency".into(),
        "0 / 0 / 0".into(),
        format!(
            "{} / {} / {}",
            f.panics_caught, f.transient_errors, f.latency_injected
        ),
    ]);
    table.row(vec![
        "retries / quarantined".into(),
        "0 / 0".into(),
        format!("{} / {}", f.retries, f.quarantined),
    ]);
    table.row(vec![
        "node crashes / units reassigned".into(),
        "0 / 0".into(),
        format!("{} / {}", f.node_crashes, f.reassigned),
    ]);
    table.row(vec![
        "speculative launched / won".into(),
        "0 / 0".into(),
        format!("{} / {}", f.speculative_launched, f.speculative_won),
    ]);
    table.row(vec![
        "controlled crash: reassigned".into(),
        "-".into(),
        format!("{}", crash_out.stats.faults.reassigned),
    ]);
    table.row(vec![
        "poison unit: attempts before quarantine".into(),
        "-".into(),
        format!("{}", poison_out.failures[0].attempts),
    ]);
    table.row(vec![
        "fault-handling overhead".into(),
        "1.00x".into(),
        format!("{:.2}x", chaos_wall / clean_wall.max(1e-9)),
    ]);
    let json = json!({
        "panel": "chaos",
        "seed": seed,
        "workers": WORKERS,
        "byte_identical": true,
        "clean_wall_seconds": clean_wall,
        "chaos_wall_seconds": chaos_wall,
        "clean_f1": clean.metrics.f1(),
        "chaos_f1": chaotic.metrics.f1(),
        "faults": {
            "retries": f.retries,
            "panics_caught": f.panics_caught,
            "transient_errors": f.transient_errors,
            "latency_injected": f.latency_injected,
            "reassigned": f.reassigned,
            "speculative_launched": f.speculative_launched,
            "speculative_won": f.speculative_won,
            "quarantined": f.quarantined,
            "node_crashes": f.node_crashes,
        },
        "controlled_crash_reassigned": crash_out.stats.faults.reassigned,
        "poison_attempts": poison_out.failures[0].attempts,
    });
    (table, json)
}

/// Panels 4(d)/(e)/(f): error-detection F1 per task.
pub fn ed_f1(app_name: &str) -> (Table, serde_json::Value) {
    let w = app(app_name);
    let mut table = Table::new(
        format!("Fig 4 ED F-measure — {app_name}"),
        &["task", "Rock", "RocknoML", "ES", "T5s", "RB"],
    );
    let (es_rules, _) = runners::es_discovery(&w);
    let (t5s, _) = runners::t5s_train(&w);
    let (rbs, _) = runners::rb_train(&w);
    let mut rows_json = Vec::new();
    for task in &w.tasks {
        let rock = runners::rock_detect(&w, task, Variant::Rock, 1);
        let noml = runners::rock_detect(&w, task, Variant::RockNoMl, 1);
        let es = runners::es_detect(&w, task, &es_rules);
        let t5 = runners::t5s_detect(&w, task, &t5s);
        let rb = runners::rb_detect(&w, task, &rbs);
        table.row(vec![
            task.name.clone(),
            fmt_f1(rock.metrics.f1()),
            fmt_f1(noml.metrics.f1()),
            fmt_f1(es.metrics.f1()),
            fmt_f1(t5.metrics.f1()),
            fmt_f1(rb.metrics.f1()),
        ]);
        rows_json.push(json!({
            "task": task.name,
            "Rock": rock.metrics.f1(), "RocknoML": noml.metrics.f1(),
            "ES": es.metrics.f1(), "T5s": t5.metrics.f1(), "RB": rb.metrics.f1(),
        }));
    }
    (
        table,
        json!({ "panel": format!("ed-f1-{app_name}"), "rows": rows_json }),
    )
}

/// Panel 4(g): error-detection time per application (whole-app task).
pub fn ed_time() -> (Table, serde_json::Value) {
    let mut table = Table::new(
        "Fig 4(g) ED time (modeled seconds)",
        &["app", "Rock", "RocknoML", "T5s", "SparkSQL", "Presto", "RB"],
    );
    let mut rows_json = Vec::new();
    for name in ["Bank", "Logistics", "Sales"] {
        let w = app(name);
        let task = w.tasks.last().unwrap().clone(); // the *Clean task
        let rock = runners::rock_detect(&w, &task, Variant::Rock, 1);
        let noml = runners::rock_detect(&w, &task, Variant::RockNoMl, 1);
        let (t5s_model, _) = runners::t5s_train(&w);
        let t5 = runners::t5s_detect(&w, &task, &t5s_model);
        let spark = runners::sql_detect(&w, &task, SqlEngineKind::SparkSql);
        let presto = runners::sql_detect(&w, &task, SqlEngineKind::Presto);
        let (rbs, _) = runners::rb_train(&w);
        let rb = runners::rb_detect(&w, &task, &rbs);
        table.row(vec![
            name.into(),
            fmt_secs(rock.modeled_seconds),
            fmt_secs(noml.modeled_seconds),
            fmt_secs(t5.modeled_seconds),
            fmt_secs(spark.modeled_seconds),
            fmt_secs(presto.modeled_seconds),
            fmt_secs(rb.modeled_seconds),
        ]);
        rows_json.push(json!({
            "app": name,
            "Rock": rock.modeled_seconds, "RocknoML": noml.modeled_seconds,
            "T5s": t5.modeled_seconds, "SparkSQL": spark.modeled_seconds,
            "Presto": presto.modeled_seconds, "RB": rb.modeled_seconds,
        }));
    }
    (table, json!({ "panel": "ed-time", "rows": rows_json }))
}

/// Larger Logistics instance for the scaling panels (more rows and finer
/// work units so 20 modeled workers have work to balance).
fn logistics_large() -> Workload {
    rock_workloads::logistics::generate(&GenConfig {
        rows: 900,
        error_rate: 0.08,
        seed: 45,
        trusted_per_rel: 40,
    })
}

/// Panel 4(h): Logistics-ED parallel scalability (modeled makespan).
pub fn ed_scaling() -> (Table, serde_json::Value) {
    let w = logistics_large();
    let task = w.task("RClean").unwrap().clone();
    // sample unit durations once on a single worker, then schedule
    let run = runners::rock_detect_parts(&w, &task, Variant::Rock, 1, 64);
    scaling_table("Fig 4(h) Logistics-ED scaling", "ed-scaling", &run)
}

/// Panel 4(l): Logistics-EC parallel scalability.
pub fn ec_scaling() -> (Table, serde_json::Value) {
    let w = logistics_large();
    let task = w.task("RClean").unwrap().clone();
    let (run, _) = runners::rock_correct_parts(&w, &task, Variant::Rock, 1, 64);
    scaling_table("Fig 4(l) Logistics-EC scaling", "ec-scaling", &run)
}

fn scaling_table(title: &str, panel: &str, run: &RunResult) -> (Table, serde_json::Value) {
    let mut table = Table::new(title, &["workers", "modeled time", "speedup vs 4"]);
    // The serial residue — everything outside work-unit execution
    // (activation, LSH/index building, proposal commits, result merging) —
    // does not parallelize; it is measured as wall time minus the sum of
    // unit durations. This is what bends the curve below linear, as in the
    // paper's 3.36×/3.12× at 4→20 workers.
    let parallel_work: f64 = run.unit_seconds.iter().sum();
    let serial = (run.modeled_seconds - run.ml_cost_seconds - parallel_work).max(0.0);
    // ML inference distributes evenly (blocking produces independent
    // pair-inference work); rule-evaluation units go through LPT.
    let time_at =
        |n: usize| serial + makespan_lpt(&run.unit_seconds, n) + run.ml_cost_seconds / n as f64;
    let base = time_at(4);
    let mut rows_json = Vec::new();
    for n in [4usize, 8, 12, 16, 20] {
        let t = time_at(n);
        let speedup = if t > 0.0 { base / t } else { 0.0 };
        table.row(vec![n.to_string(), fmt_secs(t), format!("{speedup:.2}x")]);
        rows_json.push(json!({ "workers": n, "seconds": t, "speedup_vs_4": speedup }));
    }
    (table, json!({ "panel": panel, "rows": rows_json }))
}

/// Panel 4(i): error-correction F1 per application.
pub fn ec_f1() -> (Table, serde_json::Value) {
    let mut table = Table::new(
        "Fig 4(i) EC F-measure",
        &[
            "app", "Rock", "RocknoML", "Rockseq", "RocknoC", "ES", "T5s", "RB",
        ],
    );
    let mut rows_json = Vec::new();
    for name in ["Bank", "Logistics", "Sales"] {
        let w = app(name);
        let task = w.tasks.last().unwrap().clone();
        let (rock, _) = runners::rock_correct(&w, &task, Variant::Rock, 1);
        let (noml, _) = runners::rock_correct(&w, &task, Variant::RockNoMl, 1);
        let (seq, _) = runners::rock_correct(&w, &task, Variant::RockSeq, 1);
        let (noc, _) = runners::rock_correct(&w, &task, Variant::RockNoC, 1);
        let (es_rules, _) = runners::es_discovery(&w);
        let es = runners::es_correct_run(&w, &task, &es_rules);
        let (t5s_model, _) = runners::t5s_train(&w);
        let t5 = runners::t5s_correct(&w, &task, &t5s_model);
        let (rbs, _) = runners::rb_train(&w);
        let rb = runners::rb_correct(&w, &task, &rbs);
        table.row(vec![
            name.into(),
            fmt_f1(rock.metrics.f1()),
            fmt_f1(noml.metrics.f1()),
            fmt_f1(seq.metrics.f1()),
            fmt_f1(noc.metrics.f1()),
            fmt_f1(es.metrics.f1()),
            fmt_f1(t5.metrics.f1()),
            fmt_f1(rb.metrics.f1()),
        ]);
        rows_json.push(json!({
            "app": name,
            "Rock": rock.metrics.f1(), "RocknoML": noml.metrics.f1(),
            "Rockseq": seq.metrics.f1(), "RocknoC": noc.metrics.f1(),
            "ES": es.metrics.f1(), "T5s": t5.metrics.f1(), "RB": rb.metrics.f1(),
        }));
    }
    (table, json!({ "panel": "ec-f1", "rows": rows_json }))
}

/// Panel 4(k): error-correction time per application.
pub fn ec_time() -> (Table, serde_json::Value) {
    let mut table = Table::new(
        "Fig 4(k) EC time (modeled seconds)",
        &[
            "app", "Rock", "RocknoML", "Rockseq", "RocknoC", "T5s", "RB", "SparkSQL", "Presto",
        ],
    );
    let mut rows_json = Vec::new();
    for name in ["Bank", "Logistics", "Sales"] {
        let w = app(name);
        let task = w.tasks.last().unwrap().clone();
        let (rock, _) = runners::rock_correct(&w, &task, Variant::Rock, 1);
        let (noml, _) = runners::rock_correct(&w, &task, Variant::RockNoMl, 1);
        let (seq, _) = runners::rock_correct(&w, &task, Variant::RockSeq, 1);
        let (noc, _) = runners::rock_correct(&w, &task, Variant::RockNoC, 1);
        let (t5s_model, _) = runners::t5s_train(&w);
        let t5 = runners::t5s_correct(&w, &task, &t5s_model);
        let (rbs, _) = runners::rb_train(&w);
        let rb = runners::rb_correct(&w, &task, &rbs);
        let spark = runners::sql_correct(&w, &task, SqlEngineKind::SparkSql);
        let presto = runners::sql_correct(&w, &task, SqlEngineKind::Presto);
        table.row(vec![
            name.into(),
            fmt_secs(rock.modeled_seconds),
            fmt_secs(noml.modeled_seconds),
            fmt_secs(seq.modeled_seconds),
            fmt_secs(noc.modeled_seconds),
            fmt_secs(t5.modeled_seconds),
            fmt_secs(rb.modeled_seconds),
            fmt_secs(spark.modeled_seconds),
            fmt_secs(presto.modeled_seconds),
        ]);
        rows_json.push(json!({
            "app": name,
            "Rock": rock.modeled_seconds, "RocknoML": noml.modeled_seconds,
            "Rockseq": seq.modeled_seconds, "RocknoC": noc.modeled_seconds,
            "T5s": t5.modeled_seconds, "RB": rb.modeled_seconds,
            "SparkSQL": spark.modeled_seconds, "Presto": presto.modeled_seconds,
        }));
    }
    (table, json!({ "panel": "ec-time", "rows": rows_json }))
}

/// Panel 4(j): Sales-EC F1 per task (ER / CR / MI / TD). The paper omits
/// TD for ES and T5s and TD+ER for RB ("they do not support these
/// operations"); those cells render as "-".
pub fn ec_per_task() -> (Table, serde_json::Value) {
    let w = sales();
    let task = w.task("SClean").unwrap().clone();

    // error-class scopes
    let cr_scope: FxHashSet<CellRef> = w.truth.corrupted.keys().copied().collect();
    let mi_scope: FxHashSet<CellRef> = w.truth.nulled.keys().copied().collect();
    let td_scope: FxHashSet<CellRef> = {
        // all cells of attributes that carry stale injections
        let attrs: FxHashSet<(rock_data::RelId, rock_data::AttrId)> =
            w.truth.stale.keys().map(|c| (c.rel, c.attr)).collect();
        Workload::scope_of(&w.dirty, &attrs.into_iter().collect::<Vec<_>>())
    };

    struct PerTask {
        er: Option<f64>,
        cr: Option<f64>,
        mi: Option<f64>,
        td: Option<f64>,
    }

    let eval_repaired = |repaired: &rock_data::Database| -> (f64, f64) {
        let cr = correction_metrics(&w.dirty, repaired, &w.clean, &w.truth, Some(&cr_scope)).f1();
        let mi = correction_metrics(&w.dirty, repaired, &w.clean, &w.truth, Some(&mi_scope)).f1();
        (cr, mi)
    };

    // TD score: detection of stale cells by TD rules only.
    let td_f1 = |variant: Variant| -> f64 {
        let td_rules = rock_core::variant::split_by_task(&rock_core::variant::effective_rules(
            variant,
            &w.rules_for(&task),
        ))[3]
            .clone();
        if td_rules.is_empty() {
            return 0.0;
        }
        let det = rock_detect::Detector::new(&td_rules, &w.registry);
        let report = det.detect(&w.dirty);
        let stale_truth = rock_workloads::inject::ErrorTruth {
            stale: w.truth.stale.clone(),
            ..Default::default()
        };
        detection_metrics(&report.flagged_cells, &stale_truth, Some(&td_scope)).f1()
    };

    let rock_like = |variant: Variant| -> PerTask {
        let (_, repaired) = runners::rock_correct(&w, &task, variant, 1);
        let (cr, mi) = eval_repaired(&repaired);
        let pairs = if variant == Variant::Rock {
            runners::rock_merged_pairs(&w, &task)
        } else {
            let rules = rock_core::variant::sorted_rules(&rock_core::variant::effective_rules(
                variant,
                &w.rules_for(&task),
            ));
            let engine = rock_chase::ChaseEngine::new(
                &rules,
                &w.registry,
                rock_chase::ChaseConfig::default(),
            );
            engine.run(&w.dirty, &w.trusted).merged_pairs
        };
        let er = er_pair_metrics(&pairs, &w.truth.duplicate_pairs).f1();
        PerTask {
            er: Some(er),
            cr: Some(cr),
            mi: Some(mi),
            td: Some(td_f1(variant)),
        }
    };

    let rock = rock_like(Variant::Rock);
    let noml = rock_like(Variant::RockNoMl);
    let seq = rock_like(Variant::RockSeq);
    let noc = {
        // RocknoC runs each class once without interaction — its repaired
        // db comes from the single-pass schedule, and its ER pairs from a
        // single-round run of the ER rule group alone.
        let (_, repaired) = runners::rock_correct(&w, &task, Variant::RockNoC, 1);
        let (cr, mi) = eval_repaired(&repaired);
        let er_rules = rock_core::variant::split_by_task(&w.rules_for(&task))[0].clone();
        let engine = rock_chase::ChaseEngine::new(
            &er_rules,
            &w.registry,
            rock_chase::ChaseConfig {
                max_rounds: 1,
                ..rock_chase::ChaseConfig::default()
            },
        );
        let pairs = engine.run(&w.dirty, &w.trusted).merged_pairs;
        PerTask {
            er: Some(er_pair_metrics(&pairs, &w.truth.duplicate_pairs).f1()),
            cr: Some(cr),
            mi: Some(mi),
            td: Some(td_f1(Variant::RockNoC)),
        }
    };

    // baselines
    let (es_rules, _) = runners::es_discovery(&w);
    let es_repaired = rock_baselines::es::es_correct(&w.dirty, &es_rules, &w.registry);
    let es_pairs: Vec<_> = {
        let det = rock_detect::Detector::new(&es_rules, &w.registry);
        det.detect(&w.dirty).duplicate_pairs
    };
    let es = {
        let (cr, mi) = eval_repaired(&es_repaired);
        PerTask {
            er: Some(er_pair_metrics(&es_pairs, &w.truth.duplicate_pairs).f1()),
            cr: Some(cr),
            mi: Some(mi),
            td: None,
        }
    };
    let (t5s_model, _) = runners::t5s_train(&w);
    let t5 = {
        let (repaired, _) = t5s_model.correct(&w.dirty);
        let (cr, mi) = eval_repaired(&repaired);
        PerTask {
            er: None,
            cr: Some(cr),
            mi: Some(mi),
            td: None,
        }
    };
    let (rbs, _) = runners::rb_train(&w);
    let rb = {
        let mut repaired = w.dirty.clone();
        for r in &rbs {
            repaired = r.correct(&repaired).0;
        }
        let (cr, mi) = eval_repaired(&repaired);
        PerTask {
            er: None,
            cr: Some(cr),
            mi: Some(mi),
            td: None,
        }
    };

    let fmt = |v: Option<f64>| v.map(fmt_f1).unwrap_or_else(|| "-".into());
    let mut table = Table::new(
        "Fig 4(j) Sales-EC per task",
        &[
            "task", "Rock", "RocknoML", "Rockseq", "RocknoC", "ES", "T5s", "RB",
        ],
    );
    let systems: Vec<(&str, &PerTask)> = vec![
        ("Rock", &rock),
        ("RocknoML", &noml),
        ("Rockseq", &seq),
        ("RocknoC", &noc),
        ("ES", &es),
        ("T5s", &t5),
        ("RB", &rb),
    ];
    let mut rows_json = Vec::new();
    for (tname, pick) in [("ER", 0usize), ("CR", 1), ("MI", 2), ("TD", 3)] {
        let vals: Vec<Option<f64>> = systems
            .iter()
            .map(|(_, p)| match pick {
                0 => p.er,
                1 => p.cr,
                2 => p.mi,
                _ => p.td,
            })
            .collect();
        let mut row = vec![tname.to_string()];
        row.extend(vals.iter().map(|v| fmt(*v)));
        table.row(row);
        let obj: serde_json::Map<String, serde_json::Value> = systems
            .iter()
            .zip(&vals)
            .map(|((n, _), v)| ((*n).to_string(), json!(v)))
            .collect();
        rows_json.push(json!({ "task": tname, "systems": obj }));
    }
    (table, json!({ "panel": "ec-per-task", "rows": rows_json }))
}

/// Metric convenience re-export for the summary.
pub fn metrics_f1(m: &Metrics) -> f64 {
    m.f1()
}

/// Durability panel: the Logistics correction chase with the WAL +
/// checkpoint layer on. Headline assertions: (1) durable repairs are
/// byte-identical to the in-memory chase; (2) resuming from *every*
/// durable round reproduces the repairs byte-identically and regenerates
/// the same WAL bytes (replay idempotence); (3) every repaired cell
/// answers a provenance query ("why is this cell 42?") with its rule,
/// valuation, and parent fixes.
pub fn durability() -> (Table, serde_json::Value) {
    use rock_chase::{wal_bytes, ChaseConfig, ChaseEngine, DurabilityConfig, ProvenanceGraph};

    let w = logistics();
    let task = w.task("RClean").expect("RClean task").clone();
    let rules = rock_core::variant::sorted_rules(&w.rules_for(&task));
    let dir = std::env::temp_dir().join(format!("rock-durability-panel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mk = |durability: Option<DurabilityConfig>| {
        let cfg = ChaseConfig {
            durability,
            ..ChaseConfig::default()
        };
        let engine = ChaseEngine::new(&rules, &w.registry, cfg);
        match &w.graph {
            Some(g) => engine.with_graph(g),
            None => engine,
        }
    };

    let t0 = std::time::Instant::now();
    let oracle = mk(None).run(&w.dirty, &w.trusted);
    let wall_memory = t0.elapsed().as_secs_f64();
    let oracle_db = serde_json::to_string(&oracle.db).unwrap();

    let durable_engine = mk(Some(DurabilityConfig::new(&dir)));
    let t1 = std::time::Instant::now();
    let durable = durable_engine.run(&w.dirty, &w.trusted);
    let wall_durable = t1.elapsed().as_secs_f64();
    let wal = durable.wal.clone().expect("durability was configured");
    assert!(
        wal.error.is_none(),
        "durability degraded during the run: {:?}",
        wal.error
    );
    assert_eq!(
        oracle_db,
        serde_json::to_string(&durable.db).unwrap(),
        "durable repairs must be byte-identical to the in-memory chase"
    );
    assert_eq!(
        (oracle.rounds, oracle.changes.len(), oracle.conflicts),
        (durable.rounds, durable.changes.len(), durable.conflicts),
        "the WAL layer must not change chase semantics"
    );

    // resume from every durable round: same repairs, same WAL bytes
    let bytes_before = wal_bytes(&dir).unwrap();
    let rounds = durable.rounds as u64;
    let mut resume_points = 0u64;
    for r in 1..=rounds {
        let res = durable_engine
            .resume_at(&w.trusted, r)
            .unwrap_or_else(|e| panic!("resume from round {r} failed: {e}"));
        assert_eq!(
            oracle_db,
            serde_json::to_string(&res.db).unwrap(),
            "resume from round {r} must reproduce the repairs byte-identically"
        );
        assert_eq!(
            res.wal.as_ref().and_then(|s| s.resumed_from),
            Some(r),
            "resume must report its recovery round"
        );
        resume_points += 1;
    }
    let replayed = wal_bytes(&dir).unwrap();
    assert_eq!(
        bytes_before, replayed,
        "re-running the suffix must regenerate identical WAL bytes (replay idempotence)"
    );

    // every repaired cell answers a provenance query
    let prov = ProvenanceGraph::load(&dir).expect("load provenance graph");
    assert!(
        !prov.is_empty(),
        "the chase repaired cells, so the WAL must hold fixes"
    );
    let mut cells_queried = 0usize;
    let mut with_valuation = 0usize;
    for (cell, _, _) in &durable.changes {
        let chain = prov
            .why(*cell)
            .unwrap_or_else(|| panic!("no provenance for repaired cell {cell:?}"));
        assert!(
            (chain.fix.rule as usize) < rules.len(),
            "provenance must name a real rule"
        );
        if !chain.fix.valuation.is_empty() {
            with_valuation += 1;
        }
        cells_queried += 1;
    }
    assert!(
        cells_queried == 0 || with_valuation > 0,
        "at least some fixes must carry their valuation tuples"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let overhead = if wall_memory > 0.0 {
        wall_durable / wall_memory
    } else {
        1.0
    };
    let mut table = Table::new(
        "Durability — Logistics EC with WAL + checkpoints",
        &["metric", "value"],
    );
    table.row(vec!["rounds".into(), format!("{}", durable.rounds)]);
    table.row(vec!["WAL records".into(), format!("{}", wal.records)]);
    table.row(vec!["checkpoints".into(), format!("{}", wal.checkpoints)]);
    table.row(vec![
        "resume points verified".into(),
        format!("{resume_points}"),
    ]);
    table.row(vec!["provenance nodes".into(), format!("{}", prov.len())]);
    table.row(vec![
        "repaired cells queried".into(),
        format!("{cells_queried}"),
    ]);
    table.row(vec![
        "wall secs (memory / durable)".into(),
        format!("{} / {}", fmt_secs(wall_memory), fmt_secs(wall_durable)),
    ]);
    let json = json!({
        "panel": "durability",
        "rounds": durable.rounds,
        "wal_records": wal.records,
        "checkpoints": wal.checkpoints,
        "resume_points": resume_points,
        "provenance_nodes": prov.len(),
        "cells_queried": cells_queried,
        "cells_with_valuation": with_valuation,
        "wall_memory": wall_memory,
        "wall_durable": wall_durable,
        "overhead_ratio": overhead,
    });
    (table, json)
}

/// Columnar panel: the typed-column data plane (`rock_data::ColumnSet` —
/// dense vectors, dictionary-encoded strings, null/live bitmaps) versus
/// the scalar row store. Headline assertions, all inline: (1) on every
/// workload, detection and correction with `columnar: true` are
/// byte-identical to the row-store oracle (`columnar: false`); (2) the
/// vectorized constant-predicate scan beats the row-at-a-time scan by at
/// least 2x on Logistics-shaped data, with identical match counts. The
/// footprint rows show what dictionary encoding buys on string-heavy
/// relations.
pub fn columnar() -> (Table, serde_json::Value) {
    use rock_data::{AttrId, PredOp, RelId, Value};

    let mut table = Table::new(
        "Columnar — typed columns + vectorized kernels vs row store",
        &["metric", "row", "columnar", "check"],
    );
    let mut workloads_json = Vec::new();

    // (1) end-to-end equivalence: the row store is the oracle; the
    // columnar plane must reproduce its detections and repairs
    // byte-for-byte on all three workloads.
    for name in ["Bank", "Logistics", "Sales"] {
        let w = app(name);
        let task = w.tasks.last().expect("workload has tasks").clone();

        let detect = |columnar: bool| -> Vec<CellRef> {
            let report = rock_detect::Detector::new(&w.rules, &w.registry)
                .with_columnar(columnar)
                .detect(&w.dirty);
            let mut cells: Vec<CellRef> = report.flagged_cells.into_iter().collect();
            cells.sort_unstable();
            cells
        };
        let (row_cells, col_cells) = (detect(false), detect(true));
        assert_eq!(
            row_cells, col_cells,
            "{name}: columnar detection must flag exactly the row store's cells"
        );

        let correct = |columnar: bool| {
            let sys = rock_core::RockSystem::new(rock_core::RockConfig {
                columnar,
                ..rock_core::RockConfig::default()
            });
            sys.correct(&w, &task)
        };
        let (row_out, col_out) = (correct(false), correct(true));
        let row_db = serde_json::to_string(&row_out.repaired).expect("serialize repaired db");
        let col_db = serde_json::to_string(&col_out.repaired).expect("serialize repaired db");
        assert_eq!(
            row_db, col_db,
            "{name}: columnar repairs must be byte-identical to the row store"
        );
        assert_eq!(
            (row_out.rounds, row_out.changes, row_out.conflicts),
            (col_out.rounds, col_out.changes, col_out.conflicts),
            "{name}: the columnar plane must not change chase semantics"
        );

        table.row(vec![
            format!("{name}: flagged cells / repaired bytes"),
            format!("{} / {}", row_cells.len(), row_db.len()),
            format!("{} / {}", col_cells.len(), col_db.len()),
            "byte-identical (asserted)".into(),
        ]);
        workloads_json.push(json!({
            "workload": name,
            "byte_identical": true,
            "flagged_cells": row_cells.len(),
            "repaired_bytes": row_db.len(),
            "rounds": row_out.rounds,
            "changes": row_out.changes,
            "conflicts": row_out.conflicts,
        }));
    }

    // (2) scan microbench on a larger Logistics instance: the same
    // constant-predicate probe sweep through the row path (per-tuple
    // scalar `PredOp::eval`, as the pre-columnar prefilter ran) and the
    // vectorized kernels over the cached column sets.
    let big = rock_workloads::logistics::generate(&GenConfig {
        rows: 4000,
        error_rate: 0.08,
        seed: 47,
        trusted_per_rel: 30,
    });
    let db = &big.dirty;
    // one Eq and one Ge probe per attribute, constants drawn from the data
    let mut probes: Vec<(RelId, AttrId, PredOp, Value)> = Vec::new();
    for (rid, rel) in db.iter() {
        for (attr, _) in rel.schema.iter_attrs() {
            if let Some(t) = rel.iter().next() {
                let v = t.get(attr).clone();
                probes.push((rid, attr, PredOp::Eq, v.clone()));
                probes.push((rid, attr, PredOp::Ge, v));
            }
        }
    }
    let row_scan = || -> u64 {
        let mut hits = 0u64;
        for (rid, attr, op, v) in &probes {
            for t in db.relation(*rid).iter() {
                if op.eval(t.get(*attr), v) {
                    hits += 1;
                }
            }
        }
        hits
    };
    // warm the per-relation column caches once — the steady state the
    // chase and detector run in (snapshots rebuild only on mutation)
    for (rid, _) in db.iter() {
        let _ = db.relation(rid).columns();
    }
    let col_scan = || -> u64 {
        let mut hits = 0u64;
        for (rid, attr, op, v) in &probes {
            hits += db
                .relation(*rid)
                .columns()
                .eval_const_op(*attr, *op, v)
                .count_ones();
        }
        hits
    };
    let best_of = |f: &dyn Fn() -> u64, reps: usize| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut hits = 0;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            hits = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, hits)
    };
    let (row_wall, row_hits) = best_of(&row_scan, 7);
    let (col_wall, col_hits) = best_of(&col_scan, 7);
    assert_eq!(
        row_hits, col_hits,
        "vectorized kernels must match the scalar scan on every probe"
    );
    let speedup = row_wall / col_wall.max(1e-9);
    assert!(
        speedup >= 2.0,
        "columnar scan must be at least 2x the row scan, got {speedup:.2}x \
         ({row_wall:.6}s row vs {col_wall:.6}s columnar)"
    );
    table.row(vec![
        format!("scan wall secs, best of 7 ({} probes)", probes.len()),
        fmt_secs(row_wall),
        fmt_secs(col_wall),
        format!("{speedup:.1}x (>=2x asserted)"),
    ]);
    table.row(vec![
        "scan matches".into(),
        row_hits.to_string(),
        col_hits.to_string(),
        "equal (asserted)".into(),
    ]);

    // (3) heap footprint of the two layouts on the same data
    let (mut row_bytes, mut col_bytes) = (0usize, 0usize);
    for (rid, rel) in db.iter() {
        row_bytes += rock_data::row_heap_bytes(rel);
        col_bytes += db.relation(rid).columns().heap_bytes();
    }
    table.row(vec![
        "heap bytes (Logistics x4000 rows)".into(),
        row_bytes.to_string(),
        col_bytes.to_string(),
        format!("{:.2}x denser", row_bytes as f64 / col_bytes.max(1) as f64),
    ]);

    let json = json!({
        "panel": "columnar",
        "workloads": workloads_json,
        "scan_probes": probes.len(),
        "scan_row_seconds": row_wall,
        "scan_col_seconds": col_wall,
        "scan_matches": row_hits,
        "scan_speedup": speedup,
        "row_heap_bytes": row_bytes,
        "col_heap_bytes": col_bytes,
    });
    (table, json)
}

/// Crash-consistency panel (`crashsim`): the seeded storage fault layer +
/// crash sweep over the durable chase (segmented WAL, compaction,
/// incremental checkpoints). Headline assertions, all inline:
/// (1) a durable run through the recording vfs repairs byte-identically to
/// the in-memory oracle while rotating and compacting segments and mixing
/// full + delta checkpoints; (2) after the final compaction the directory
/// is disk-bounded: total bytes <= live checkpoint chain + 2 segment
/// budgets, with at most 2 segments and no checkpoint file outside the
/// chain (`wal_disk_bound_ratio <= 1`); (3) re-executing with a crash
/// injected at every sampled point of the recorded I/O trace still repairs
/// byte-identically (durability degrades, data does not), and resuming
/// each crashed directory with a clean vfs recovers byte-identically to
/// the oracle; (4) persistent fsync failure yields `WalHealth::Degraded`
/// with oracle-identical repairs, and transient faults are retried to
/// `WalHealth::Recovered`. Seed comes from `ROCK_CRASHSIM_SEED`
/// (default 7) so CI sweeps several fault schedules.
pub fn crashsim() -> (Table, serde_json::Value) {
    use rock_chase::{
        checkpoint_chain, list_segments, locate, ChaseConfig, ChaseEngine, DurabilityConfig,
        WalHealth,
    };
    use rock_crystal::{FaultVfs, IoOpKind, StorageFaultPlan};

    let seed: u64 = std::env::var("ROCK_CRASHSIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let w = rock_workloads::logistics::generate(&GenConfig {
        rows: 240,
        error_rate: 0.08,
        seed: 45,
        trusted_per_rel: 24,
    });
    let task = w.task("RClean").expect("RClean task").clone();
    let rules = rock_core::variant::sorted_rules(&w.rules_for(&task));
    let base = std::env::temp_dir().join(format!("rock-crashsim-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Aggressive durability shape: tiny segments force rotation, fulls
    // every other checkpoint force delta chains, compaction bounds disk.
    const SEG_BYTES: u64 = 4096;
    let dcfg = |dir: &std::path::Path, vfs: FaultVfs| {
        DurabilityConfig::new(dir)
            .with_vfs(vfs)
            .with_segment_bytes(SEG_BYTES)
            .with_compaction(true)
            .with_full_every(2)
    };
    let mk = |durability: Option<DurabilityConfig>| {
        let cfg = ChaseConfig {
            durability,
            ..ChaseConfig::default()
        };
        let engine = ChaseEngine::new(&rules, &w.registry, cfg);
        match &w.graph {
            Some(g) => engine.with_graph(g),
            None => engine,
        }
    };

    // (0) uninterrupted in-memory oracle
    let oracle = mk(None).run(&w.dirty, &w.trusted);
    let oracle_db = serde_json::to_string(&oracle.db).unwrap();
    let canon = (oracle.rounds, oracle.changes.len(), oracle.conflicts);

    // (1) recorded durable run: oracle-identical repairs + full I/O trace
    let rec_dir = base.join("record");
    let rec_vfs = FaultVfs::recording();
    let rec_engine = mk(Some(dcfg(&rec_dir, rec_vfs.clone())));
    let t0 = std::time::Instant::now();
    let durable = rec_engine.run(&w.dirty, &w.trusted);
    let wall_durable = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        oracle_db,
        serde_json::to_string(&durable.db).unwrap(),
        "durable repairs must be byte-identical to the in-memory oracle"
    );
    assert_eq!(
        canon,
        (durable.rounds, durable.changes.len(), durable.conflicts),
        "the fault layer must not change chase semantics"
    );
    let wal = durable.wal.clone().expect("durability was configured");
    assert_eq!(
        wal.health,
        WalHealth::Healthy,
        "the recording vfs injects nothing: {:?}",
        wal.error
    );
    assert!(
        durable.rounds >= 3,
        "the crashsim workload must chase >= 3 rounds to exercise \
         rotation + compaction + deltas, got {}",
        durable.rounds
    );
    assert!(
        wal.segments_rotated >= 1,
        "a {SEG_BYTES}-byte budget must rotate segments"
    );
    assert!(
        wal.segments_compacted >= 1,
        "a full checkpoint past round 2 must retire older segments"
    );
    assert!(
        wal.full_checkpoints >= 1 && wal.delta_checkpoints >= 1,
        "full_every=2 must mix full and delta checkpoints ({} full / {} delta)",
        wal.full_checkpoints,
        wal.delta_checkpoints
    );

    // (2) disk bound after the final compaction: everything on disk is the
    // live checkpoint chain plus at most two segment budgets of WAL
    let clean = FaultVfs::clean();
    let rp = locate(
        &dcfg(&rec_dir, clean.clone()),
        rec_engine.fingerprint(),
        None,
    )
    .expect("locate the last durable round");
    let chain = checkpoint_chain(&clean, &rec_dir, &rp.name, rp.crc);
    assert!(
        chain.iter().all(|e| e.crc_ok),
        "every live chain link must pass its CRC: {chain:?}"
    );
    let chain_bytes: u64 = rp
        .chain
        .iter()
        .map(|n| clean.file_size(&rec_dir.join(n)).unwrap_or(0))
        .sum();
    let disk_bytes: u64 = clean
        .list_dir(&rec_dir)
        .expect("list durability dir")
        .iter()
        .map(|p| clean.file_size(p).unwrap_or(0))
        .sum();
    let live_segments = list_segments(&clean, &rec_dir)
        .expect("list segments")
        .len();
    assert!(
        live_segments <= 2,
        "compaction must leave at most 2 segments, found {live_segments}"
    );
    let on_disk_ckpts: Vec<String> = clean
        .list_dir(&rec_dir)
        .expect("list durability dir")
        .iter()
        .filter_map(|p| p.file_name().and_then(|s| s.to_str()).map(String::from))
        .filter(|n| n.starts_with("checkpoint-"))
        .collect();
    let mut chain_names = rp.chain.clone();
    chain_names.sort();
    let mut disk_names = on_disk_ckpts.clone();
    disk_names.sort();
    assert_eq!(
        chain_names, disk_names,
        "compaction + GC must leave exactly the live checkpoint chain on disk"
    );
    let bound_bytes = chain_bytes + 2 * SEG_BYTES;
    let wal_disk_bound_ratio = disk_bytes as f64 / bound_bytes as f64;
    assert!(
        wal_disk_bound_ratio <= 1.0,
        "disk must stay within (live chain + 2 segments): {disk_bytes} > {bound_bytes}"
    );

    // (3) crash sweep: re-execute with a crash injected at every sampled
    // point of the recorded trace; structural ops (segment creation,
    // checkpoint rename, compaction removal, directory fsync) are sampled
    // first, the rest of the trace fills the cap by stride.
    let trace = rec_vfs.trace();
    let total_ops = trace.len();
    assert!(
        total_ops > 0,
        "the recording vfs must have captured a trace"
    );
    let sample = |v: &[u64], cap: usize| -> Vec<u64> {
        if v.len() <= cap {
            return v.to_vec();
        }
        let stride = v.len() as f64 / cap as f64;
        (0..cap).map(|i| v[(i as f64 * stride) as usize]).collect()
    };
    let structural: Vec<u64> = trace
        .iter()
        .filter(|t| {
            matches!(
                t.op,
                IoOpKind::Create | IoOpKind::Rename | IoOpKind::Remove | IoOpKind::SyncDir
            )
        })
        .map(|t| t.index)
        .collect();
    let everything: Vec<u64> = trace.iter().map(|t| t.index).collect();
    let mut points = sample(&structural, 24);
    points.extend(sample(&everything, 12));
    points.push(0);
    points.push(everything[everything.len() - 1]);
    points.sort_unstable();
    points.dedup();

    let mut resumed = 0usize;
    let mut fresh_fallbacks = 0usize;
    let mut recovery_wall = 0.0f64;
    for &p in &points {
        let dir_p = base.join(format!("crash-{p}"));
        let crash_vfs = FaultVfs::with_plan(StorageFaultPlan::seeded(seed).with_crash_at_op(p));
        let res = mk(Some(dcfg(&dir_p, crash_vfs))).run(&w.dirty, &w.trusted);
        assert_eq!(
            oracle_db,
            serde_json::to_string(&res.db).unwrap(),
            "crash at op {p}: repairs must still be byte-identical to the oracle"
        );
        let cw = res.wal.as_ref().expect("durability was configured");
        assert!(
            matches!(cw.health, WalHealth::Degraded { .. }),
            "crash at op {p} must surface as WalHealth::Degraded, got {:?}",
            cw.health
        );
        // recovery: reopen the crashed directory with a clean vfs
        let t1 = std::time::Instant::now();
        match mk(Some(dcfg(&dir_p, FaultVfs::clean()))).resume(&w.trusted) {
            Ok(rec) => {
                assert_eq!(
                    oracle_db,
                    serde_json::to_string(&rec.db).unwrap(),
                    "crash at op {p}: recovery must be byte-identical to the oracle"
                );
                assert_eq!(
                    canon,
                    (rec.rounds, rec.changes.len(), rec.conflicts),
                    "crash at op {p}: recovery must converge to the oracle's totals"
                );
                resumed += 1;
            }
            Err(_) => {
                // the crash predates the first durable round: recovery is
                // a fresh durable run in a clean directory
                let _ = std::fs::remove_dir_all(&dir_p);
                let rec = mk(Some(dcfg(&dir_p, FaultVfs::clean()))).run(&w.dirty, &w.trusted);
                assert_eq!(
                    oracle_db,
                    serde_json::to_string(&rec.db).unwrap(),
                    "crash at op {p}: fresh-run recovery must match the oracle"
                );
                fresh_fallbacks += 1;
            }
        }
        recovery_wall += t1.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir_p);
    }
    let recovery_wall_ratio = (recovery_wall / points.len() as f64) / wall_durable;

    // (4) degradation ladder: persistent fsync failure degrades (data
    // intact); transient faults are retried back to a complete log
    let dir_d = base.join("degraded");
    let res_d = mk(Some(dcfg(
        &dir_d,
        FaultVfs::with_plan(StorageFaultPlan::seeded(seed).with_sync_errors(1.0)),
    )))
    .run(&w.dirty, &w.trusted);
    assert_eq!(
        oracle_db,
        serde_json::to_string(&res_d.db).unwrap(),
        "persistent fsync failure must not change repairs"
    );
    let health_d = res_d.wal.as_ref().map(|s| s.health.clone());
    assert!(
        matches!(health_d, Some(WalHealth::Degraded { .. })),
        "persistent fsync failure must yield WalHealth::Degraded, got {health_d:?}"
    );
    let dir_t = base.join("transient");
    let mut cfg_t = dcfg(
        &dir_t,
        FaultVfs::with_plan(
            StorageFaultPlan::seeded(seed)
                .with_sync_errors(0.3)
                .with_torn_writes(0.2)
                .with_transient_fraction(1.0),
        ),
    );
    cfg_t.max_io_retries = 8;
    let res_t = mk(Some(cfg_t)).run(&w.dirty, &w.trusted);
    assert_eq!(
        oracle_db,
        serde_json::to_string(&res_t.db).unwrap(),
        "transient faults must not change repairs"
    );
    let wal_t = res_t.wal.clone().expect("durability was configured");
    let transient_retries = match wal_t.health {
        WalHealth::Recovered { io_retries } => {
            assert!(io_retries > 0, "Recovered implies at least one retry");
            io_retries
        }
        other => panic!(
            "transient faults at 30%/20% must be retried to WalHealth::Recovered, got {other:?}"
        ),
    };
    let _ = std::fs::remove_dir_all(&base);

    let mut table = Table::new(
        "Crashsim — storage faults, crash sweep, disk bound (Logistics EC)",
        &["metric", "value"],
    );
    table.row(vec!["seed".into(), format!("{seed}")]);
    table.row(vec!["rounds".into(), format!("{}", durable.rounds)]);
    table.row(vec![
        "segments rotated / compacted".into(),
        format!("{} / {}", wal.segments_rotated, wal.segments_compacted),
    ]);
    table.row(vec![
        "checkpoints full / delta".into(),
        format!("{} / {}", wal.full_checkpoints, wal.delta_checkpoints),
    ]);
    table.row(vec![
        "disk bytes / bound".into(),
        format!("{disk_bytes} / {bound_bytes} ({wal_disk_bound_ratio:.3}, <=1 asserted)"),
    ]);
    table.row(vec![
        "trace ops / crash points".into(),
        format!("{total_ops} / {}", points.len()),
    ]);
    table.row(vec![
        "recoveries: resumed / fresh".into(),
        format!("{resumed} / {fresh_fallbacks} (all byte-identical, asserted)"),
    ]);
    table.row(vec![
        "recovery wall ratio".into(),
        format!("{recovery_wall_ratio:.2}x of durable run"),
    ]);
    table.row(vec![
        "degradation ladder".into(),
        format!("persistent->Degraded, transient->Recovered ({transient_retries} retries)"),
    ]);
    let json = json!({
        "panel": "crashsim",
        "seed": seed,
        "rounds": durable.rounds,
        "trace_ops": total_ops,
        "crash_points": points.len(),
        "structural_points": structural.len(),
        "resumed": resumed,
        "fresh_fallbacks": fresh_fallbacks,
        "segments_rotated": wal.segments_rotated,
        "segments_compacted": wal.segments_compacted,
        "full_checkpoints": wal.full_checkpoints,
        "delta_checkpoints": wal.delta_checkpoints,
        "live_segments": live_segments,
        "chain_bytes": chain_bytes,
        "disk_bytes": disk_bytes,
        "wal_disk_bound_ratio": wal_disk_bound_ratio,
        "recovery_wall_ratio": recovery_wall_ratio,
        "wall_durable": wall_durable,
        "transient_io_retries": transient_retries,
        "degraded_identical": true,
    });
    (table, json)
}
