//! # rock-bench — the evaluation harness
//!
//! Regenerates every panel of the paper's Figure 4 (the full evaluation,
//! §6) over the synthetic Bank / Logistics / Sales workloads. See
//! `src/bin/figures.rs` for the CLI and `EXPERIMENTS.md` for the panel
//! index and the paper-vs-measured record.
//!
//! ## The modeled-time metric
//!
//! The paper's runtimes mix a 21-node cluster with transformer-scale
//! models; this reproduction runs on one CPU with feature-based model
//! stand-ins. To preserve the *relative* runtime shapes, every system
//! reports `modeled_seconds = wall_seconds + ml_cost_units · COST_UNIT_SECONDS`,
//! where `ml_cost_units` accumulates each model's declared per-inference
//! cost (a T5-class inference is ~2000 units, an n-gram kernel 1). The
//! unit is calibrated so one cost unit ≈ 50 µs of accelerator time — the
//! same order as the paper's ratio between a BERT forward pass and a
//! string kernel. Parallel-scaling panels report LPT makespans of the
//! measured per-work-unit durations (see
//! `rock_crystal::scheduler::makespan_lpt` — the host has one CPU, so
//! wall-clock cannot show cluster speedup).

pub mod panels;
pub mod runners;
pub mod table;

pub use runners::{modeled_seconds, COST_UNIT_SECONDS};

/// Write `contents` to `path` atomically *and* durably: write a sibling
/// `<name>.tmp`, fsync it, rename it over the target, then fsync the
/// parent directory — an interrupted or crashed harness never leaves a
/// truncated results file where a complete one stood, and a completed
/// write survives power loss (see `rock_crystal::storage`).
pub fn write_atomic(path: &std::path::Path, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    rock_crystal::write_atomic_durable(path, contents.as_ref())
}
