//! Plain-text table rendering for the figure panels.

use std::fmt::Write as _;

/// A simple column-aligned table.
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", c, width = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 60.0 {
        format!("{:.1}m", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Format an F-measure.
pub fn fmt_f1(f: f64) -> String {
    format!("{f:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["sys", "f1"]);
        t.row(vec!["Rock".into(), "0.95".into()]);
        t.row(vec!["RocknoML".into(), "0.8".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("Rock      0.95"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(125.0), "2.1m");
        assert_eq!(fmt_f1(0.8567), "0.857");
    }
}
