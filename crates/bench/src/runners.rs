//! Per-system runners: uniform `(f1-metrics, modeled-time)` interfaces over
//! Rock (all variants), ES, T5s, RB and the SQL-engine simulators.

use rock_baselines::es::{es_correct, EsMiner};
use rock_baselines::rb::RbCleaner;
use rock_baselines::sqlengine::{SqlEngine, SqlEngineKind};
use rock_baselines::t5s::T5sModel;
use rock_core::{RockConfig, RockSystem, Variant};
use rock_data::{CellRef, Database, GlobalTid, RelId, TupleId};
use rock_detect::Detector;
use rock_discovery::sampling::sample_database;
use rock_discovery::space::{PredicateSpace, SpaceConfig};
use rock_rees::RuleSet;
use rock_workloads::metrics::{correction_metrics, detection_metrics, Metrics};
use rock_workloads::{Task, Workload};
use rustc_hash::FxHashSet;

/// Seconds of modeled accelerator time per ML cost unit (see the crate
/// docs for the calibration rationale).
pub const COST_UNIT_SECONDS: f64 = 50e-6;

/// Combine wall time and metered ML cost into one comparable number.
pub fn modeled_seconds(wall: f64, cost_units: f64) -> f64 {
    wall + cost_units * COST_UNIT_SECONDS
}

/// Result of one (system, task) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub system: String,
    pub metrics: Metrics,
    pub modeled_seconds: f64,
    /// Per-work-unit durations (only for Rock — drives scaling panels).
    pub unit_seconds: Vec<f64>,
    /// Modeled ML seconds included in `modeled_seconds` (parallelizable —
    /// inference distributes across workers).
    pub ml_cost_seconds: f64,
}

/// Rock (any variant) — rule discovery timing for one task.
pub fn rock_discovery_time(w: &Workload, variant: Variant) -> f64 {
    let sys = RockSystem::new(RockConfig {
        variant,
        discovery: rock_discovery::levelwise::DiscoveryConfig {
            min_support: 1e-6,
            min_confidence: 0.9,
            max_preconditions: 2,
            ..Default::default()
        },
        sample_ratio: 0.1,
        ..RockConfig::default()
    });
    let cost0 = w.registry.meter.cost();
    let out = sys.discover(w);
    modeled_seconds(out.wall_seconds, w.registry.meter.cost() - cost0)
}

/// ES — rule discovery over every relation, full evidence sets.
pub fn es_discovery(w: &Workload) -> (RuleSet, f64) {
    let miner = EsMiner::new(&w.registry);
    let mut rules = RuleSet::default();
    let mut wall = 0.0;
    let cost0 = w.registry.meter.cost();
    for (rid, rel) in w.dirty.iter() {
        if rel.is_empty() {
            continue;
        }
        let space = PredicateSpace::build(&w.dirty, rid, &[], &SpaceConfig::default());
        let report = miner.mine(&w.dirty, rid, &space.preconditions(), &space.consequences);
        wall += report.wall_seconds;
        for r in report.rules.rules {
            rules.push(r);
        }
    }
    (
        rules,
        modeled_seconds(wall, w.registry.meter.cost() - cost0),
    )
}

/// T5s — "fine-tune" on a 10% sample of the dirty data.
pub fn t5s_train(w: &Workload) -> (T5sModel, f64) {
    let sample = sample_database(&w.dirty, 0.1, 99);
    let model = T5sModel::train(&sample, 3);
    let t = modeled_seconds(model.train_seconds, model.meter.cost());
    model.meter.reset();
    (model, t)
}

/// RB — train one cleaner per relation on a 10% labeled prefix.
pub fn rb_train(w: &Workload) -> (Vec<RbForRel>, f64) {
    let mut cleaners = Vec::new();
    let mut time = 0.0;
    for (rid, rel) in w.dirty.iter() {
        if rel.len() < 20 {
            continue;
        }
        // labeled sample: the first 10% of tuples with their clean oracle
        let n = (rel.len() / 10).max(10) as u32;
        let mut dirty_sub = rock_data::Relation::new(rel.schema.clone());
        let mut clean_sub = rock_data::Relation::new(rel.schema.clone());
        for tid in rel.tids().take(n as usize) {
            if let (Some(d), Some(c)) = (rel.get(tid), w.clean.relation(rid).get(tid)) {
                dirty_sub.insert(d.eid, d.values.clone());
                clean_sub.insert(c.eid, c.values.clone());
            }
        }
        let d = Database::from_relations(vec![dirty_sub]);
        let c = Database::from_relations(vec![clean_sub]);
        let rb = RbCleaner::train(&c, &d, RelId(0));
        time += modeled_seconds(rb.train_seconds, rb.meter.cost());
        rb.meter.reset();
        cleaners.push(remap_rb(rb, rid));
    }
    (cleaners, time)
}

// RbCleaner trains on a projected single-relation db (RelId(0)); detection
// must run against the workload's real relation id. RbCleaner keeps its
// relation id private, so we retrain against a view instead: cheaper to
// just store the mapping alongside.
pub struct RbForRel {
    pub cleaner: RbCleaner,
    pub rel: RelId,
}

fn remap_rb(cleaner: RbCleaner, rel: RelId) -> RbForRel {
    RbForRel { cleaner, rel }
}

impl RbForRel {
    /// Detect over the workload's relation by projecting it to RelId(0).
    pub fn detect(&self, db: &Database) -> (FxHashSet<CellRef>, f64) {
        let view = project(db, self.rel);
        let (cells, wall) = self.cleaner.detect(&view);
        (
            cells
                .into_iter()
                .map(|c| CellRef::new(self.rel, c.tid, c.attr))
                .collect(),
            wall,
        )
    }

    /// Correct over the workload's relation.
    pub fn correct(&self, db: &Database) -> (Database, f64) {
        let view = project(db, self.rel);
        let (fixed_view, wall) = self.cleaner.correct(&view);
        let mut out = db.clone();
        for t in fixed_view.relation(RelId(0)).iter() {
            for a in 0..t.values.len() {
                let attr = rock_data::AttrId(a as u16);
                if out.cell(self.rel, t.tid, attr) != Some(t.get(attr)) {
                    out.relation_mut(self.rel)
                        .set_cell(t.tid, attr, t.get(attr).clone());
                }
            }
        }
        (out, wall)
    }
}

fn project(db: &Database, rel: RelId) -> Database {
    let mut sub = rock_data::Relation::new(db.relation(rel).schema.clone());
    // preserve tuple ids by inserting in id order including tombstone gaps
    for tid in 0..db.relation(rel).capacity() as u32 {
        match db.relation(rel).get(TupleId(tid)) {
            Some(t) => {
                sub.insert(t.eid, t.values.clone())
                    .expect("projected row keeps its source arity");
            }
            None => {
                let arity = sub.schema.arity();
                let placeholder = sub
                    .insert(
                        rock_data::Eid(u32::MAX),
                        vec![rock_data::Value::Null; arity],
                    )
                    .expect("placeholder row matches schema arity");
                sub.delete(placeholder);
            }
        }
    }
    Database::from_relations(vec![sub])
}

/// Rock detection run for one task.
pub fn rock_detect(w: &Workload, task: &Task, variant: Variant, workers: usize) -> RunResult {
    rock_detect_parts(w, task, variant, workers, 4)
}

/// Rock detection with explicit work-unit granularity (scaling panels use
/// finer partitions so 20 modeled workers have units to balance).
pub fn rock_detect_parts(
    w: &Workload,
    task: &Task,
    variant: Variant,
    workers: usize,
    partitions_per_rule: u32,
) -> RunResult {
    let cost0 = w.registry.meter.cost();
    let sys = RockSystem::new(RockConfig {
        variant,
        workers,
        partitions_per_rule,
        ..RockConfig::default()
    });
    let out = sys.detect(w, task);
    let ml = (w.registry.meter.cost() - cost0) * COST_UNIT_SECONDS;
    RunResult {
        system: variant.name().to_string(),
        metrics: out.metrics,
        modeled_seconds: out.wall_seconds + ml,
        unit_seconds: out.unit_seconds,
        ml_cost_seconds: ml,
    }
}

/// Rock correction run for one task; also returns the repaired database
/// (panels compute per-task ER/CR/MI/TD metrics from it).
pub fn rock_correct(
    w: &Workload,
    task: &Task,
    variant: Variant,
    workers: usize,
) -> (RunResult, Database) {
    rock_correct_parts(w, task, variant, workers, 4)
}

/// Rock correction with explicit work-unit granularity.
pub fn rock_correct_parts(
    w: &Workload,
    task: &Task,
    variant: Variant,
    workers: usize,
    partitions_per_rule: u32,
) -> (RunResult, Database) {
    let cost0 = w.registry.meter.cost();
    let sys = RockSystem::new(RockConfig {
        variant,
        workers,
        partitions_per_rule,
        ..RockConfig::default()
    });
    let out = sys.correct(w, task);
    let ml = (w.registry.meter.cost() - cost0) * COST_UNIT_SECONDS;
    let result = RunResult {
        system: variant.name().to_string(),
        metrics: out.metrics,
        modeled_seconds: out.wall_seconds + ml,
        unit_seconds: out.unit_seconds,
        ml_cost_seconds: ml,
    };
    (result, out.repaired)
}

/// Duplicate pairs Rock identifies for an ER metric: run the chase engine
/// directly and read its merged pairs.
pub fn rock_merged_pairs(w: &Workload, task: &Task) -> Vec<(GlobalTid, GlobalTid)> {
    use rock_chase::{ChaseConfig, ChaseEngine};
    let rules = rock_core::variant::sorted_rules(&w.rules_for(task));
    let engine = ChaseEngine::new(&rules, &w.registry, ChaseConfig::default());
    let engine = match &w.graph {
        Some(g) => engine.with_graph(g),
        None => engine,
    };
    engine.run(&w.dirty, &w.trusted).merged_pairs
}

/// ES detection for one task.
pub fn es_detect(w: &Workload, task: &Task, rules: &RuleSet) -> RunResult {
    let cost0 = w.registry.meter.cost();
    let det = Detector::new(rules, &w.registry);
    let report = det.detect(&w.dirty);
    let metrics = detection_metrics(&report.flagged_cells, &w.truth, task.scope.as_ref());
    RunResult {
        system: "ES".into(),
        metrics,
        modeled_seconds: modeled_seconds(report.wall_seconds, w.registry.meter.cost() - cost0),
        unit_seconds: Vec::new(),
        ml_cost_seconds: 0.0,
    }
}

/// ES correction for one task.
pub fn es_correct_run(w: &Workload, task: &Task, rules: &RuleSet) -> RunResult {
    let cost0 = w.registry.meter.cost();
    let start = std::time::Instant::now();
    let repaired = es_correct(&w.dirty, rules, &w.registry);
    let metrics = correction_metrics(&w.dirty, &repaired, &w.clean, &w.truth, task.scope.as_ref());
    RunResult {
        system: "ES".into(),
        metrics,
        modeled_seconds: modeled_seconds(
            start.elapsed().as_secs_f64(),
            w.registry.meter.cost() - cost0,
        ),
        unit_seconds: Vec::new(),
        ml_cost_seconds: 0.0,
    }
}

/// T5s detection for one task.
pub fn t5s_detect(w: &Workload, task: &Task, model: &T5sModel) -> RunResult {
    model.meter.reset();
    let (flagged, wall) = model.detect(&w.dirty);
    let metrics = detection_metrics(&flagged, &w.truth, task.scope.as_ref());
    RunResult {
        system: "T5s".into(),
        metrics,
        modeled_seconds: modeled_seconds(wall, model.meter.cost()),
        unit_seconds: Vec::new(),
        ml_cost_seconds: 0.0,
    }
}

/// T5s correction for one task.
pub fn t5s_correct(w: &Workload, task: &Task, model: &T5sModel) -> RunResult {
    model.meter.reset();
    let (repaired, wall) = model.correct(&w.dirty);
    let metrics = correction_metrics(&w.dirty, &repaired, &w.clean, &w.truth, task.scope.as_ref());
    RunResult {
        system: "T5s".into(),
        metrics,
        modeled_seconds: modeled_seconds(wall, model.meter.cost()),
        unit_seconds: Vec::new(),
        ml_cost_seconds: 0.0,
    }
}

/// RB detection for one task.
pub fn rb_detect(w: &Workload, task: &Task, cleaners: &[RbForRel]) -> RunResult {
    let mut flagged = FxHashSet::default();
    let mut wall = 0.0;
    let mut cost = 0.0;
    for rb in cleaners {
        rb.cleaner.meter.reset();
        let (cells, t) = rb.detect(&w.dirty);
        flagged.extend(cells);
        wall += t;
        cost += rb.cleaner.meter.cost();
    }
    let metrics = detection_metrics(&flagged, &w.truth, task.scope.as_ref());
    RunResult {
        system: "RB".into(),
        metrics,
        modeled_seconds: modeled_seconds(wall, cost),
        unit_seconds: Vec::new(),
        ml_cost_seconds: 0.0,
    }
}

/// RB correction for one task.
pub fn rb_correct(w: &Workload, task: &Task, cleaners: &[RbForRel]) -> RunResult {
    let mut repaired = w.dirty.clone();
    let mut wall = 0.0;
    let mut cost = 0.0;
    for rb in cleaners {
        rb.cleaner.meter.reset();
        let (out, t) = rb.correct(&repaired);
        repaired = out;
        wall += t;
        cost += rb.cleaner.meter.cost();
    }
    let metrics = correction_metrics(&w.dirty, &repaired, &w.clean, &w.truth, task.scope.as_ref());
    RunResult {
        system: "RB".into(),
        metrics,
        modeled_seconds: modeled_seconds(wall, cost),
        unit_seconds: Vec::new(),
        ml_cost_seconds: 0.0,
    }
}

/// SQL-engine detection (whole-app rules).
pub fn sql_detect(w: &Workload, task: &Task, kind: SqlEngineKind) -> RunResult {
    let engine = SqlEngine::new(kind, &w.registry);
    let rules = w.rules_for(task);
    let report = engine.detect(&w.dirty, &rules);
    let metrics = detection_metrics(&report.flagged_cells, &w.truth, task.scope.as_ref());
    RunResult {
        system: kind.name().into(),
        metrics,
        modeled_seconds: modeled_seconds(report.wall_seconds, engine.meter.cost()),
        unit_seconds: Vec::new(),
        ml_cost_seconds: 0.0,
    }
}

/// SQL-engine correction.
pub fn sql_correct(w: &Workload, task: &Task, kind: SqlEngineKind) -> RunResult {
    let engine = SqlEngine::new(kind, &w.registry);
    let rules = w.rules_for(task);
    let (repaired, report) = engine.correct(&w.dirty, &rules, 8);
    let metrics = correction_metrics(&w.dirty, &repaired, &w.clean, &w.truth, task.scope.as_ref());
    RunResult {
        system: kind.name().into(),
        metrics,
        modeled_seconds: modeled_seconds(report.wall_seconds, engine.meter.cost()),
        unit_seconds: Vec::new(),
        ml_cost_seconds: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_workloads::workload::GenConfig;

    fn wl() -> Workload {
        rock_workloads::logistics::generate(&GenConfig {
            rows: 120,
            error_rate: 0.1,
            seed: 2,
            trusted_per_rel: 12,
        })
    }

    #[test]
    fn modeled_time_combines_wall_and_cost() {
        assert!((modeled_seconds(1.0, 1000.0) - 1.05).abs() < 1e-9);
    }

    #[test]
    fn rock_runner_produces_metrics() {
        let w = wl();
        let task = w.task("RClean").unwrap().clone();
        let r = rock_detect(&w, &task, Variant::Rock, 1);
        assert!(r.metrics.f1() > 0.0);
        assert!(r.modeled_seconds > 0.0);
    }

    #[test]
    fn baseline_runners_work_end_to_end() {
        let w = wl();
        let task = w.task("RClean").unwrap().clone();
        let (t5s, t5s_time) = t5s_train(&w);
        assert!(t5s_time > 0.0);
        let d = t5s_detect(&w, &task, &t5s);
        assert!(d.metrics.tp + d.metrics.fp + d.metrics.fn_ > 0);
        let (rbs, rb_time) = rb_train(&w);
        assert!(rb_time > 0.0);
        assert!(!rbs.is_empty());
        let d = rb_detect(&w, &task, &rbs);
        assert!(d.metrics.tp + d.metrics.fp + d.metrics.fn_ > 0);
        let (rules, es_time) = es_discovery(&w);
        assert!(es_time > 0.0);
        let d = es_detect(&w, &task, &rules);
        let _ = d;
    }

    #[test]
    fn rb_projection_preserves_tuple_ids() {
        let w = wl();
        let view = project(&w.dirty, RelId(0));
        assert_eq!(
            view.relation(RelId(0)).len(),
            w.dirty.relation(RelId(0)).len()
        );
        for t in w.dirty.relation(RelId(0)).iter().take(5) {
            assert_eq!(
                view.relation(RelId(0)).get(t.tid).map(|u| u.values.clone()),
                Some(t.values.clone())
            );
        }
    }
}
