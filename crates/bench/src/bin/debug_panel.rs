//! Developer scratch tool: print precision/recall breakdowns for one
//! (app, task) detection/correction run. Not part of the figure set.

use rock_bench::panels;
use rock_bench::runners;
use rock_core::Variant;
use rock_workloads::metrics::detection_metrics;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(|s| s.as_str()) == Some("provenance") {
        // `debug_panel provenance <wal-dir> [rel:tid:attr]` — answer "why
        // is this cell 42?" from a durable chase's WAL (rock_chase::wal).
        // Without a cell, lists the repaired cells and explains the first.
        let Some(dir) = args.get(1) else {
            eprintln!("usage: debug_panel provenance <wal-dir> [rel:tid:attr]");
            std::process::exit(2);
        };
        let graph = match rock_chase::ProvenanceGraph::load(std::path::Path::new(dir)) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("failed to load WAL from {dir}: {e}");
                std::process::exit(3);
            }
        };
        println!(
            "provenance graph: {} fixes over {} repaired cells",
            graph.len(),
            graph.repaired_cells().len()
        );
        let cell = match args.get(2) {
            Some(spec) => {
                let parts: Vec<u32> = spec.split(':').filter_map(|p| p.parse().ok()).collect();
                if parts.len() != 3 {
                    eprintln!("cell spec must be rel:tid:attr (numeric ids), got {spec}");
                    std::process::exit(2);
                }
                rock_data::CellRef::new(
                    rock_data::RelId(parts[0] as u16),
                    rock_data::TupleId(parts[1]),
                    rock_data::AttrId(parts[2] as u16),
                )
            }
            None => match graph.repaired_cells().first().copied() {
                Some(c) => c,
                None => {
                    println!("no repaired cells in this WAL");
                    return;
                }
            },
        };
        match graph.why(cell) {
            Some(chain) => {
                println!(
                    "why {cell:?}: fix #{} (round {}, rule {}) via {:?}",
                    chain.fix.id, chain.fix.round, chain.fix.rule, chain.fix.kind
                );
                println!("  valuation: {:?}", chain.fix.valuation);
                for a in &chain.ancestors {
                    println!(
                        "  <- fix #{} (round {}, rule {}) {:?}",
                        a.id, a.round, a.rule, a.kind
                    );
                }
            }
            None => {
                eprintln!("no fix recorded for cell {cell:?}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.first().map(|s| s.as_str()) == Some("wal") {
        // `debug_panel wal <dir>` — inspect a durability directory: the
        // segment map, live vs compactable bytes, the checkpoint chain
        // (full vs delta links), and the health a resume would infer.
        let Some(dir) = args.get(1) else {
            eprintln!("usage: debug_panel wal <durability-dir>");
            std::process::exit(2);
        };
        let dir = std::path::Path::new(dir);
        let scan = match rock_chase::read_wal_dir(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("unreadable WAL dir {}: {e}", dir.display());
                std::process::exit(3);
            }
        };
        println!(
            "WAL: {} segment(s), {} committed-prefix records, fingerprint {:#018x}",
            scan.segments.len(),
            scan.records.len(),
            scan.fingerprint.unwrap_or(0)
        );
        for s in &scan.segments {
            println!(
                "  {}  bytes={}  valid={}  records={}{}",
                rock_chase::segment_file_name(s.seq),
                s.bytes,
                s.valid_len,
                s.records,
                if s.corrupt_tail { "  CORRUPT TAIL" } else { "" }
            );
        }
        let mut batches = 0u64;
        let mut last_batch = 1u64;
        let mut newest: Option<(rock_chase::WalPos, u64, String, u32)> = None;
        for (pos, rec) in &scan.records {
            match rec {
                rock_chase::WalRecord::BatchBegin { batch, .. } => {
                    batches += 1;
                    last_batch = *batch;
                }
                rock_chase::WalRecord::RoundCommit {
                    round,
                    checkpoint: Some(name),
                    state_crc,
                } => newest = Some((*pos, *round, name.clone(), *state_crc)),
                _ => {}
            }
        }
        if batches > 0 {
            println!("session: {batches} incremental batch(es), latest batch {last_batch}");
        }
        let vfs = rock_crystal::FaultVfs::clean();
        match newest {
            None => println!(
                "health: no durable round — resume would fall back to a fresh run{}",
                if scan.corrupt_tail {
                    " (corrupt tail)"
                } else {
                    ""
                }
            ),
            Some((pos, round, name, crc)) => {
                let chain = rock_chase::checkpoint_chain(&vfs, dir, &name, crc);
                println!("checkpoint chain (newest first, ends at round {round}):");
                let mut chain_names = Vec::new();
                for e in &chain {
                    println!(
                        "  {}  {}  round={}  bytes={}  crc={}",
                        e.name,
                        if e.full { "FULL " } else { "delta" },
                        e.round,
                        e.bytes,
                        if e.crc_ok { "ok" } else { "MISMATCH" }
                    );
                    chain_names.push(e.name.clone());
                }
                let (mut live, mut compactable) = (0u64, 0u64);
                for s in &scan.segments {
                    let path = dir.join(rock_chase::segment_file_name(s.seq));
                    let bytes = vfs.file_size(&path).unwrap_or(s.bytes);
                    if s.seq < pos.seg {
                        compactable += bytes;
                    } else {
                        live += bytes;
                    }
                }
                let mut stale_ckpts = 0u64;
                if let Ok(entries) = vfs.list_dir(dir) {
                    for p in entries {
                        let n = p
                            .file_name()
                            .and_then(|s| s.to_str())
                            .unwrap_or_default()
                            .to_string();
                        if n.starts_with("checkpoint-") && !chain_names.contains(&n) {
                            stale_ckpts += vfs.file_size(&p).unwrap_or(0);
                        }
                    }
                }
                println!(
                    "segments: {live} live bytes (seq >= {}), {compactable} compactable bytes \
                     (covered by {name}); stale checkpoint bytes: {stale_ckpts}",
                    pos.seg
                );
                println!(
                    "health: {} — resume would recover round {round} from {name}",
                    if scan.corrupt_tail {
                        "corrupt tail (crashed append; resume truncates past it)"
                    } else {
                        "clean"
                    }
                );
            }
        }
        return;
    }
    if args.first().map(|s| s.as_str()) == Some("crystal") {
        // Seeded chaos run over the Logistics correction task; prints the
        // scheduler's fault-handling counters. Seed from argv[1] or
        // ROCK_CHAOS_SEED (default 4242).
        let seed = args
            .get(1)
            .and_then(|s| s.parse::<u64>().ok())
            .or_else(|| {
                std::env::var("ROCK_CHAOS_SEED")
                    .ok()
                    .and_then(|s| s.parse().ok())
            })
            .unwrap_or(4242);
        let w = panels::logistics();
        let task = w.task("RClean").unwrap().clone();
        let plan = rock_crystal::FaultPlan::chaos(seed).with_crash(1, 2);
        let sys = rock_core::RockSystem::new(rock_core::RockConfig {
            workers: 4,
            cluster: rock_crystal::ClusterConfig::default().with_fault_plan(plan),
            ..rock_core::RockConfig::default()
        });
        let t0 = std::time::Instant::now();
        let out = sys.correct(&w, &task);
        println!(
            "crystal chaos seed={seed} wall={:.2}s rounds={} changes={} conflicts={} F1={:.3} quarantined_units={}",
            t0.elapsed().as_secs_f64(),
            out.rounds,
            out.changes,
            out.conflicts,
            out.metrics.f1(),
            out.unit_failures.len()
        );
        let f = &out.fault_stats;
        println!(
            "  retries={} panics_caught={} transients={} latency={} reassigned={} spec_launched={} spec_won={} quarantined={} node_crashes={}",
            f.retries,
            f.panics_caught,
            f.transient_errors,
            f.latency_injected,
            f.reassigned,
            f.speculative_launched,
            f.speculative_won,
            f.quarantined,
            f.node_crashes
        );
        for fl in &out.unit_failures {
            println!(
                "  quarantined unit {} (rule {}) after {} attempts: {}",
                fl.unit, fl.rule, fl.attempts, fl.error
            );
        }
        return;
    }
    if args.first().map(|s| s.as_str()) == Some("ec") {
        let w = rock_workloads::logistics::generate(&rock_workloads::workload::GenConfig {
            rows: 900,
            error_rate: 0.08,
            seed: 45,
            trusted_per_rel: 40,
        });
        let task = w.task("RClean").unwrap().clone();
        let t0 = std::time::Instant::now();
        let sys = rock_core::RockSystem::new(rock_core::RockConfig {
            partitions_per_rule: 64,
            ..rock_core::RockConfig::default()
        });
        let out = sys.correct(&w, &task);
        let wall = t0.elapsed().as_secs_f64();
        let unit_sum: f64 = out.unit_seconds.iter().sum();
        println!(
            "EC wall={wall:.2}s out.wall={:.2}s rounds={} units_sum={unit_sum:.3}s n_units={} changes={} conflicts={} ml_cost={:.0}",
            out.wall_seconds, out.rounds, out.unit_seconds.len(), out.changes, out.conflicts,
            w.registry.meter.cost()
        );
        for (i, rs) in out.round_stats.iter().enumerate() {
            println!(
                "  round {i}: rules={} delta_tuples={} valuations={} proposals={} carried={}",
                rs.active_rules, rs.delta_tuples, rs.valuations, rs.proposals, rs.carried
            );
        }
        return;
    }
    if args.first().map(|s| s.as_str()) == Some("corr") {
        let appn = args.get(1).map(|s| s.as_str()).unwrap_or("Logistics");
        let w = match appn {
            "Bank" => panels::bank(),
            "Logistics" => panels::logistics(),
            _ => panels::sales(),
        };
        let task = w.tasks.last().unwrap().clone();
        let (run, repaired) = runners::rock_correct(&w, &task, Variant::Rock, 1);
        println!(
            "{appn} EC: tp={} fp={} fn={} P={:.3} R={:.3} F1={:.3}",
            run.metrics.tp,
            run.metrics.fp,
            run.metrics.fn_,
            run.metrics.precision(),
            run.metrics.recall(),
            run.metrics.f1()
        );
        // per-class recall: error cells whose repaired value == clean value
        for (name, map) in [
            ("corrupted", &w.truth.corrupted),
            ("nulled", &w.truth.nulled),
            ("stale", &w.truth.stale),
        ] {
            let mut fixed = 0;
            for (c, correct) in map {
                if repaired.cell(c.rel, c.tid, c.attr) == Some(correct) {
                    fixed += 1;
                }
            }
            println!("  {name}: {fixed}/{} repaired correctly", map.len());
        }
        // fp breakdown by column
        let mut fp_by: std::collections::BTreeMap<String, usize> = Default::default();
        for (rid, rel) in repaired.iter() {
            for t in rel.iter() {
                for a in 0..rel.schema.arity() {
                    let attr = rock_data::AttrId(a as u16);
                    let cell = rock_data::CellRef::new(rid, t.tid, attr);
                    let rep = t.get(attr);
                    let dirty_v = w.dirty.cell(rid, t.tid, attr);
                    let clean_v = w.clean.cell(rid, t.tid, attr);
                    if Some(rep) != dirty_v && Some(rep) != clean_v {
                        let reln = rel.schema.name.clone();
                        let attrn = rel.schema.attr_name(attr).to_owned();
                        *fp_by
                            .entry(format!(
                                "{reln}.{attrn} cell={cell} {:?}->{rep:?}",
                                dirty_v.map(|v| v.to_string())
                            ))
                            .or_default() += 1;
                    }
                }
            }
        }
        for (k, n) in fp_by.iter().take(12) {
            println!("  FP {k} x{n}");
        }
        println!("  total fp kinds: {}", fp_by.len());
        return;
    }
    let app = args.first().map(|s| s.as_str()).unwrap_or("Bank");
    let task_name = args.get(1).map(|s| s.as_str()).unwrap_or("CIC");
    let w = match app {
        "Bank" => panels::bank(),
        "Logistics" => panels::logistics(),
        _ => panels::sales(),
    };
    let task = w.task(task_name).expect("task").clone();
    let run = runners::rock_detect(&w, &task, Variant::Rock, 1);
    println!(
        "{app}/{task_name} detect: tp={} fp={} fn={} P={:.3} R={:.3} F1={:.3}",
        run.metrics.tp,
        run.metrics.fp,
        run.metrics.fn_,
        run.metrics.precision(),
        run.metrics.recall(),
        run.metrics.f1()
    );
    // per-error-class recall
    let sys = rock_core::RockSystem::new(rock_core::RockConfig::default());
    let out = sys.detect(&w, &task);
    for (name, map) in [
        ("corrupted", &w.truth.corrupted),
        ("nulled", &w.truth.nulled),
        ("stale", &w.truth.stale),
    ] {
        let scoped = task.scope.as_ref();
        let in_scope = |c: &rock_data::CellRef| scoped.map(|s| s.contains(c)).unwrap_or(true);
        let total = map.keys().filter(|c| in_scope(c)).count();
        let hit = map
            .keys()
            .filter(|c| in_scope(c) && out.report.flagged_cells.contains(c))
            .count();
        println!("  {name}: {hit}/{total} recalled");
    }
    // false positives by (rel, attr)
    let truth_cells = w.truth.error_cells();
    let mut fp_by: std::collections::BTreeMap<String, usize> = Default::default();
    for c in &out.report.flagged_cells {
        let in_scope = task.scope.as_ref().map(|s| s.contains(c)).unwrap_or(true);
        if in_scope && !truth_cells.contains(c) {
            let rel = w.dirty.relation(c.rel).schema.name.clone();
            let attr = w.dirty.relation(c.rel).schema.attr_name(c.attr).to_owned();
            *fp_by.entry(format!("{rel}.{attr}")).or_default() += 1;
        }
    }
    println!("  false positives by column: {fp_by:?}");
    let m = detection_metrics(&out.report.flagged_cells, &w.truth, task.scope.as_ref());
    println!("  recheck F1={:.3}", m.f1());
    if let Some((rel, attr)) = task.polynomial_target {
        if let Some(pipe) = rock_core::PolyPipeline::fit(&w.dirty, rel, attr, &w.trusted, 0.02) {
            println!(
                "  poly terms={:?} intercept={} resid={}",
                pipe.expr.terms, pipe.expr.intercept, pipe.expr.mean_abs_residual
            );
            println!("  poly flags={}", pipe.detect(&w.dirty).len());
        } else {
            println!("  poly fit: None");
        }
    }
}

#[allow(dead_code)]
fn unused() {}

// Extra mode: `debug_panel ec` — time the Logistics-EC chase pieces.
