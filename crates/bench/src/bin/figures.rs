//! The figure harness: regenerates every panel of the paper's Figure 4.
//!
//! ```text
//! cargo run --release -p rock-bench --bin figures -- all
//! cargo run --release -p rock-bench --bin figures -- f4a f4h
//! ```
//!
//! Panels: f4a f4b f4c (RD time), f4d f4e f4f (ED F1), f4g (ED time),
//! f4h (ED scaling), f4i (EC F1), f4j (Sales-EC per task), f4k (EC time),
//! f4l (EC scaling), rdcache (bitset-cache vs scan discovery throughput),
//! chase-delta (semi-naive delta chase vs full re-scan valuation counts),
//! analyze (ruleset static analysis: defect recall + graph-scheduled chase
//! vs classic activation),
//! certify (chase certifier: termination class, certified vs observed
//! round bounds, byte-identical `use_schedule` repairs per workload),
//! chaos (fault injection: byte-identical repairs under panics, transient
//! errors, stragglers and a node crash; seed via `ROCK_CHAOS_SEED`),
//! durability (WAL + checkpoint chase: byte-identical durable repairs,
//! resume-from-every-round, provenance query per repaired cell),
//! crashsim (storage fault injection: crash sweep over the recorded I/O
//! trace, WAL disk bound after compaction, degradation ladder; seed via
//! `ROCK_CRASHSIM_SEED`),
//! columnar (typed-column data plane vs row store: byte-identical
//! detections and repairs on all workloads, >=2x vectorized scan speedup).
//! Output is printed and written to `results/` (atomically: temp+rename).
//! Every run also emits `results/BENCH_trajectory.json` — per-panel wall
//! seconds plus the semantic ratio metrics the CI trajectory gate
//! (`scripts/check_trajectory.py`) compares against the committed
//! baseline.

use rock_bench::panels;
use rock_bench::table::Table;
use std::fs;
use std::path::Path;

/// The §6 "Summary" panel: the paper's headline claims recomputed from
/// fresh runs (see EXPERIMENTS.md for the full record).
fn summary() -> (Table, serde_json::Value) {
    use rock_bench::runners;
    use rock_core::Variant;
    let mut table = Table::new(
        "§6 Summary — paper claim vs measured",
        &["claim", "paper", "measured"],
    );
    let w = panels::sales();
    let task = w.tasks.last().unwrap().clone();
    let rock = runners::rock_correct(&w, &task, Variant::Rock, 1).0;
    let noml = runners::rock_correct(&w, &task, Variant::RockNoMl, 1).0;
    let seq = runners::rock_correct(&w, &task, Variant::RockSeq, 1).0;
    let noc = runners::rock_correct(&w, &task, Variant::RockNoC, 1).0;
    table.row(vec![
        "Sales EC F1 (Rock)".into(),
        "~0.88–0.97".into(),
        format!("{:.3}", rock.metrics.f1()),
    ]);
    table.row(vec![
        "ML predicates lift (Rock vs RocknoML)".into(),
        "+20.5% avg, up to +59.2%".into(),
        format!("+{:.1}%", (rock.metrics.f1() - noml.metrics.f1()) * 100.0),
    ]);
    table.row(vec![
        "Rockseq F1 == Rock F1".into(),
        "equal".into(),
        format!("{:.3} vs {:.3}", seq.metrics.f1(), rock.metrics.f1()),
    ]);
    table.row(vec![
        "RocknoC (no interactions) trails Rock".into(),
        "23.7% vs 88.5%".into(),
        format!("{:.3} vs {:.3}", noc.metrics.f1(), rock.metrics.f1()),
    ]);
    table.row(vec![
        "Rockseq slower than Rock".into(),
        "32 vs 29 min".into(),
        format!(
            "{:.0}ms vs {:.0}ms",
            seq.modeled_seconds * 1000.0,
            rock.modeled_seconds * 1000.0
        ),
    ]);
    let json = serde_json::json!({
        "panel": "summary",
        "rock_f1": rock.metrics.f1(),
        "noml_f1": noml.metrics.f1(),
        "seq_f1": seq.metrics.f1(),
        "noc_f1": noc.metrics.f1(),
    });
    (table, json)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let panels_requested: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        [
            "f4a",
            "f4b",
            "f4c",
            "f4d",
            "f4e",
            "f4f",
            "f4g",
            "f4h",
            "f4i",
            "f4j",
            "f4k",
            "f4l",
            "rdcache",
            "chase-delta",
            "analyze",
            "certify",
            "chaos",
            "durability",
            "crashsim",
            "columnar",
            "lint",
            "summary",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };

    fs::create_dir_all("results").expect("create results/");

    let mut trajectory_panels = serde_json::Map::new();
    let mut trajectory_metrics = serde_json::Map::new();
    for p in &panels_requested {
        let started = std::time::Instant::now();
        let (table, json): (Table, serde_json::Value) = match p.as_str() {
            "f4a" => panels::rd_time("Bank"),
            "f4b" => panels::rd_time("Logistics"),
            "f4c" => panels::rd_time("Sales"),
            "f4d" => panels::ed_f1("Bank"),
            "f4e" => panels::ed_f1("Logistics"),
            "f4f" => panels::ed_f1("Sales"),
            "f4g" => panels::ed_time(),
            "f4h" => panels::ed_scaling(),
            "f4i" => panels::ec_f1(),
            "f4j" => panels::ec_per_task(),
            "f4k" => panels::ec_time(),
            "f4l" => panels::ec_scaling(),
            "rdcache" => panels::rd_cache(),
            "chase-delta" => panels::chase_delta(),
            "analyze" => panels::analyze(),
            "certify" => panels::certify(),
            "chaos" => panels::chaos(),
            "durability" => panels::durability(),
            "crashsim" => panels::crashsim(),
            "columnar" => panels::columnar(),
            "lint" => panels::lint(),
            "summary" => summary(),
            other => {
                eprintln!(
                    "unknown panel '{other}' — expected f4a..f4l, rdcache, chase-delta, analyze, certify, chaos, durability, crashsim, columnar, lint, summary, or all"
                );
                std::process::exit(2);
            }
        };
        let wall = started.elapsed().as_secs_f64();
        trajectory_panels.insert(p.clone(), serde_json::json!({ "wall_seconds": wall }));
        // semantic ratio metrics (runner-speed invariant) for the gate
        match p.as_str() {
            "durability" => {
                for k in ["overhead_ratio", "resume_points", "checkpoints"] {
                    if let Some(v) = json.get(k) {
                        trajectory_metrics.insert(format!("durability_{k}"), v.clone());
                    }
                }
            }
            "crashsim" => {
                for k in ["wal_disk_bound_ratio", "recovery_wall_ratio"] {
                    if let Some(v) = json.get(k) {
                        trajectory_metrics.insert(k.to_string(), v.clone());
                    }
                }
            }
            "chaos" => {
                let c = json.get("clean_wall_seconds").and_then(|v| v.as_f64());
                let ch = json.get("chaos_wall_seconds").and_then(|v| v.as_f64());
                if let (Some(c), Some(ch)) = (c, ch) {
                    if c > 0.0 {
                        trajectory_metrics
                            .insert("chaos_wall_ratio".into(), serde_json::json!(ch / c));
                    }
                }
            }
            "chase-delta" => {
                let full = json.get("full_valuations_total").and_then(|v| v.as_f64());
                let semi = json.get("semi_valuations_total").and_then(|v| v.as_f64());
                if let (Some(full), Some(semi)) = (full, semi) {
                    if semi > 0.0 {
                        trajectory_metrics.insert(
                            "chase_delta_valuation_ratio".into(),
                            serde_json::json!(full / semi),
                        );
                    }
                }
            }
            "columnar" => {
                if let Some(v) = json.get("scan_speedup") {
                    trajectory_metrics.insert("columnar_scan_speedup_ratio".into(), v.clone());
                }
            }
            "analyze" => {
                if let Some(v) = json.get("rule_rounds_ratio") {
                    trajectory_metrics.insert("analyze_rule_rounds_ratio".into(), v.clone());
                }
            }
            "certify" => {
                if let Some(v) = json.get("bound_margin_ratio") {
                    trajectory_metrics.insert("certify_bound_margin_ratio".into(), v.clone());
                }
            }
            "lint" => {
                // lint_violations is a must-stay-zero metric: the gate
                // fails on any nonzero value regardless of slack
                if let Some(v) = json.get("lint_violations") {
                    trajectory_metrics.insert("lint_violations".into(), v.clone());
                }
                if let Some(v) = json.get("fixture_recall") {
                    trajectory_metrics.insert("lint_fixture_recall_ratio".into(), v.clone());
                }
            }
            _ => {}
        }
        let rendered = table.render();
        println!("{rendered}");
        println!(
            "  [panel {p} regenerated in {:.1}s]\n",
            started.elapsed().as_secs_f64()
        );
        let txt_path = Path::new("results").join(format!("{p}.txt"));
        rock_bench::write_atomic(&txt_path, &rendered).expect("write panel text");
        let json_path = Path::new("results").join(format!("{p}.json"));
        rock_bench::write_atomic(&json_path, serde_json::to_string_pretty(&json).unwrap())
            .expect("write panel json");
    }
    // Trajectory record for the CI regression gate: per-panel wall seconds
    // plus the runner-speed-invariant ratio metrics collected above.
    let trajectory = serde_json::json!({
        "panels": trajectory_panels,
        "metrics": trajectory_metrics,
    });
    let traj_path = Path::new("results").join("BENCH_trajectory.json");
    rock_bench::write_atomic(
        &traj_path,
        serde_json::to_string_pretty(&trajectory).unwrap(),
    )
    .expect("write trajectory json");
    println!(
        "wrote {} panels + BENCH_trajectory.json to results/",
        panels_requested.len()
    );
}
