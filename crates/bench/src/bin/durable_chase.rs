//! CI crash-recovery harness: run the Logistics correction chase with the
//! durability layer on, optionally crashing at a planned round boundary,
//! then resume and prove the repairs byte-identical.
//!
//! ```text
//! # oracle run (no crash), dump repairs
//! durable_chase --dir /tmp/wal-oracle --seed 3 --out oracle.json
//! # crashed run: abort()s right after round 1 became durable (exit != 0)
//! ROCK_CRASH_AT_ROUND=1 durable_chase --dir /tmp/wal --seed 3 --out x.json
//! # resume from the last durable round; must byte-match the oracle dump
//! durable_chase --dir /tmp/wal --seed 3 --resume --out resumed.json
//! cmp oracle.json resumed.json
//! # provenance query over the recovered WAL ("why is this cell 42?")
//! durable_chase --dir /tmp/wal --seed 3 --provenance auto
//! ```
//!
//! Flags: `--dir <path>` (required) WAL/checkpoint directory;
//! `--seed <u64>` workload generator seed (default 43);
//! `--resume` continue from the last durable round instead of starting;
//! `--resume-at <round>` continue from a specific durable round;
//! `--out <path>` write a canonical JSON dump of the chase outcome
//! (database, changes, merges, fix-store snapshot — everything the
//! byte-identity contract covers, nothing timing-dependent);
//! `--provenance auto|rel:tid:attr` print the provenance chain of a
//! repaired cell (auto = first repaired cell, sorted order).
//! `ROCK_CRASH_AT_ROUND=<n>` plants the crash drill in fresh runs.
//!
//! Exit codes: 0 ok, 2 usage error, 3 resume/WAL error (and the planned
//! crash dies by `abort()`, so the shell sees a signal, not an exit code).

use rock_chase::{ChaseConfig, ChaseEngine, ChaseResult, DurabilityConfig, ProvenanceGraph};
use rock_data::{AttrId, CellRef, RelId, TupleId};
use rock_workloads::workload::GenConfig;
use std::path::PathBuf;

struct Args {
    dir: PathBuf,
    seed: u64,
    resume: bool,
    resume_at: Option<u64>,
    out: Option<PathBuf>,
    provenance: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: durable_chase --dir <path> [--seed <u64>] [--resume | --resume-at <round>] \
         [--out <path>] [--provenance auto|rel:tid:attr]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: PathBuf::new(),
        seed: 43,
        resume: false,
        resume_at: None,
        out: None,
        provenance: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--dir" => {
                args.dir = PathBuf::from(need(i));
                i += 2;
            }
            "--seed" => {
                args.seed = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--resume" => {
                args.resume = true;
                i += 1;
            }
            "--resume-at" => {
                args.resume_at = Some(need(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--out" => {
                args.out = Some(PathBuf::from(need(i)));
                i += 2;
            }
            "--provenance" => {
                args.provenance = Some(need(i));
                i += 2;
            }
            _ => usage(),
        }
    }
    if args.dir.as_os_str().is_empty() {
        usage();
    }
    args
}

/// Canonical dump of everything the byte-identity contract covers. No
/// timing observability (`round_makespans`, fault counters) — those are
/// deliberately not checkpointed, so an interrupted run restarts them.
fn dump(res: &ChaseResult) -> serde_json::Value {
    serde_json::json!({
        "rounds": res.rounds,
        "steps": res.steps,
        "conflicts": res.conflicts,
        "changes": res.changes,
        "merged_pairs": res.merged_pairs,
        "round_stats": res.round_stats,
        "fixes": res.fixes.to_snapshot(),
        "db": res.db,
    })
}

fn main() {
    let args = parse_args();
    let w = rock_workloads::logistics::generate(&GenConfig {
        rows: 360,
        error_rate: 0.08,
        seed: args.seed,
        trusted_per_rel: 30,
    });
    let task = w.task("RClean").expect("RClean task").clone();
    let rules = rock_core::variant::sorted_rules(&w.rules_for(&task));

    let crash_at_round = std::env::var("ROCK_CRASH_AT_ROUND")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let durability = DurabilityConfig {
        crash_at_round,
        ..DurabilityConfig::new(&args.dir)
    };
    let cfg = ChaseConfig {
        durability: Some(durability),
        ..ChaseConfig::default()
    };
    let engine = ChaseEngine::new(&rules, &w.registry, cfg);
    let engine = match &w.graph {
        Some(g) => engine.with_graph(g),
        None => engine,
    };

    let res = if let Some(r) = args.resume_at {
        engine.resume_at(&w.trusted, r)
    } else if args.resume {
        engine.resume(&w.trusted)
    } else {
        Ok(engine.run(&w.dirty, &w.trusted))
    };
    let res = match res {
        Ok(r) => r,
        Err(e) => {
            eprintln!("resume failed: {e}");
            std::process::exit(3);
        }
    };
    if let Some(s) = &res.wal {
        if let Some(err) = &s.error {
            eprintln!("durability degraded: {err}");
            std::process::exit(3);
        }
        eprintln!(
            "chase done: rounds={} changes={} wal_records={} checkpoints={} (full={} delta={}) \
             segments_rotated={} compacted={} resumed_from={:?} health={:?}",
            res.rounds,
            res.changes.len(),
            s.records,
            s.checkpoints,
            s.full_checkpoints,
            s.delta_checkpoints,
            s.segments_rotated,
            s.segments_compacted,
            s.resumed_from,
            s.health
        );
    }

    if let Some(out) = &args.out {
        let body = serde_json::to_string_pretty(&dump(&res)).expect("serialize dump");
        rock_bench::write_atomic(out, body).expect("write dump");
    }

    if let Some(spec) = &args.provenance {
        let graph = match ProvenanceGraph::load(&args.dir) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("failed to load WAL: {e}");
                std::process::exit(3);
            }
        };
        let cell = if spec == "auto" {
            match graph.repaired_cells().first().copied() {
                Some(c) => c,
                None => {
                    eprintln!("no repaired cells in the WAL");
                    std::process::exit(3);
                }
            }
        } else {
            let parts: Vec<u32> = spec.split(':').filter_map(|p| p.parse().ok()).collect();
            if parts.len() != 3 {
                usage();
            }
            CellRef::new(
                RelId(parts[0] as u16),
                TupleId(parts[1]),
                AttrId(parts[2] as u16),
            )
        };
        match graph.why(cell) {
            Some(chain) => {
                let body = serde_json::to_string_pretty(&chain).expect("serialize chain");
                println!("{body}");
            }
            None => {
                eprintln!("no fix recorded for cell {cell:?}");
                std::process::exit(3);
            }
        }
    }
}
