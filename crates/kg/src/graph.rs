//! Labeled graph `G = (V, E, L)` (paper §2, Preliminaries).

use rock_data::Value;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Vertex identifier inside one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One vertex: a label (which "may carry values") plus an optional entity
/// name used by HER feature extraction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vertex {
    /// The value this vertex carries (e.g. the string "Beijing").
    pub label: Value,
    /// Entity kind tag, e.g. "Store", "City" — lets HER candidates be
    /// filtered cheaply. Empty string = untyped.
    pub kind: Arc<str>,
}

/// A directed labeled edge `(u, l, v)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    pub from: VertexId,
    pub label: Arc<str>,
    pub to: VertexId,
}

/// In-memory labeled graph with per-vertex adjacency grouped by edge label,
/// so a label-path step is a hash lookup rather than a scan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    pub name: String,
    vertices: Vec<Vertex>,
    /// adjacency: vertex -> edge label -> out-neighbours
    adj: Vec<FxHashMap<Arc<str>, Vec<VertexId>>>,
    edge_count: usize,
}

impl Graph {
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a vertex, returning its id.
    pub fn add_vertex(&mut self, label: Value, kind: impl AsRef<str>) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex {
            label,
            kind: Arc::from(kind.as_ref()),
        });
        self.adj.push(FxHashMap::default());
        id
    }

    /// Add a directed labeled edge.
    pub fn add_edge(&mut self, from: VertexId, label: impl AsRef<str>, to: VertexId) {
        assert!(from.index() < self.vertices.len() && to.index() < self.vertices.len());
        self.adj[from.index()]
            .entry(Arc::from(label.as_ref()))
            .or_default()
            .push(to);
        self.edge_count += 1;
    }

    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id.index()]
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-neighbours of `v` along edges labeled `label`.
    pub fn neighbours(&self, v: VertexId, label: &str) -> &[VertexId] {
        self.adj[v.index()]
            .get(label)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Iterate all vertices `(id, vertex)`.
    pub fn iter_vertices(&self) -> impl Iterator<Item = (VertexId, &Vertex)> {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (VertexId(i as u32), v))
    }

    /// Vertices of a given kind (HER candidate pool).
    pub fn vertices_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = VertexId> + 'a {
        self.iter_vertices()
            .filter(move |(_, v)| &*v.kind == kind)
            .map(|(id, _)| id)
    }

    /// Distinct edge labels leaving `v`.
    pub fn out_labels(&self, v: VertexId) -> impl Iterator<Item = &Arc<str>> {
        self.adj[v.index()].keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> (Graph, VertexId, VertexId, VertexId) {
        let mut g = Graph::new("Wiki");
        let store = g.add_vertex(Value::str("Huawei Flagship"), "Store");
        let city = g.add_vertex(Value::str("Beijing"), "City");
        let code = g.add_vertex(Value::str("010"), "AreaCode");
        g.add_edge(store, "LocationAt", city);
        g.add_edge(city, "AreaCode", code);
        (g, store, city, code)
    }

    #[test]
    fn vertices_and_edges() {
        let (g, store, city, code) = g();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbours(store, "LocationAt"), &[city]);
        assert_eq!(g.neighbours(city, "AreaCode"), &[code]);
        assert!(g.neighbours(store, "Nope").is_empty());
        assert_eq!(g.vertex(city).label, Value::str("Beijing"));
    }

    #[test]
    fn kind_filter() {
        let (g, store, ..) = g();
        let stores: Vec<_> = g.vertices_of_kind("Store").collect();
        assert_eq!(stores, vec![store]);
        assert_eq!(g.vertices_of_kind("Nothing").count(), 0);
    }

    #[test]
    fn out_labels_enumerate() {
        let (g, store, ..) = g();
        let labels: Vec<&str> = g.out_labels(store).map(|l| &**l).collect();
        assert_eq!(labels, vec!["LocationAt"]);
    }
}
