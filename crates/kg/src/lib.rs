//! # rock-kg — knowledge-graph substrate
//!
//! The paper's MI strategy "data extraction" (§2.3) pulls attribute values
//! out of a knowledge graph `G = (V, E, L)`: vertices and edges carry labels
//! via `L`, edge labels typify predicates, vertex labels carry values. The
//! extraction predicates are:
//!
//! * `vertex(x, G)` — bind a vertex variable,
//! * `HER(t, x)` — tuple `t` and vertex `x` refer to the same entity
//!   (heterogeneous entity resolution; the classifier lives in `rock-ml`),
//! * `match(t.A, x.ρ)` — a label path `ρ` from `x` encodes attribute `A`,
//! * `t[A] = val(x.ρ)` — take the label of the last vertex on the match.
//!
//! This crate implements the graph, label paths and path matching; the
//! synthetic-KG generator (standing in for Wikipedia) lives in
//! `rock-workloads`, aligned with the generated entities.

pub mod graph;
pub mod path;

pub use graph::{Graph, VertexId};
pub use path::LabelPath;
