//! Label paths `ρ = (l1, …, ln)` and their matches (paper §2,
//! Preliminaries: "A match of ρ in G is a list (v0, v1, …, vn) such that
//! (v_{i-1}, l_i, v_i) is an edge in G").

use crate::graph::{Graph, VertexId};
use rock_data::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A label path: a list of edge labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelPath {
    pub labels: Vec<Arc<str>>,
}

impl LabelPath {
    pub fn new<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        LabelPath {
            labels: labels.into_iter().map(|s| Arc::from(s.as_ref())).collect(),
        }
    }

    /// Parse from a `/`-separated string, e.g. `"LocationAt/AreaCode"`.
    pub fn parse(s: &str) -> Self {
        Self::new(s.split('/').filter(|p| !p.is_empty()))
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All end vertices of matches of this path starting at `from`.
    /// An empty path matches trivially with end vertex `from`.
    pub fn matches(&self, g: &Graph, from: VertexId) -> Vec<VertexId> {
        let mut frontier = vec![from];
        for label in &self.labels {
            let mut next = Vec::new();
            for v in frontier {
                next.extend_from_slice(g.neighbours(v, label));
            }
            if next.is_empty() {
                return Vec::new();
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        frontier
    }

    /// Does any match of this path exist from `from`? (the `match(t.A, x.ρ)`
    /// predicate's existence half).
    pub fn has_match(&self, g: &Graph, from: VertexId) -> bool {
        !self.matches(g, from).is_empty()
    }

    /// The value `val(x.ρ)`: the label of the end vertex of the match.
    /// When multiple matches exist, the smallest vertex id wins — this keeps
    /// the extraction deterministic, a precondition for the Church-Rosser
    /// argument; MI conflict resolution (paper §4.2(3)) arbitrates between
    /// *different rules*, not within a single extraction.
    pub fn val(&self, g: &Graph, from: VertexId) -> Option<Value> {
        self.matches(g, from)
            .first()
            .map(|v| g.vertex(*v).label.clone())
    }
}

impl fmt::Display for LabelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for l in &self.labels {
            if !first {
                f.write_str("/")?;
            }
            f.write_str(l)?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, VertexId) {
        // s -a-> m1 -b-> e1 ; s -a-> m2 -b-> e2
        let mut g = Graph::new("G");
        let s = g.add_vertex(Value::str("s"), "");
        let m1 = g.add_vertex(Value::str("m1"), "");
        let m2 = g.add_vertex(Value::str("m2"), "");
        let e1 = g.add_vertex(Value::str("e1"), "");
        let e2 = g.add_vertex(Value::str("e2"), "");
        g.add_edge(s, "a", m1);
        g.add_edge(s, "a", m2);
        g.add_edge(m1, "b", e1);
        g.add_edge(m2, "b", e2);
        (g, s)
    }

    #[test]
    fn parse_display_roundtrip() {
        let p = LabelPath::parse("LocationAt/AreaCode");
        assert_eq!(p.len(), 2);
        assert_eq!(p.to_string(), "LocationAt/AreaCode");
        assert!(LabelPath::parse("").is_empty());
    }

    #[test]
    fn multi_step_match() {
        let (g, s) = diamond();
        let p = LabelPath::parse("a/b");
        let ends = p.matches(&g, s);
        assert_eq!(ends.len(), 2);
        assert!(p.has_match(&g, s));
        // deterministic: smallest id's label
        assert_eq!(p.val(&g, s), Some(Value::str("e1")));
    }

    #[test]
    fn no_match() {
        let (g, s) = diamond();
        let p = LabelPath::parse("a/zzz");
        assert!(!p.has_match(&g, s));
        assert_eq!(p.val(&g, s), None);
    }

    #[test]
    fn empty_path_matches_self() {
        let (g, s) = diamond();
        let p = LabelPath::new(Vec::<&str>::new());
        assert_eq!(p.matches(&g, s), vec![s]);
        assert_eq!(p.val(&g, s), Some(Value::str("s")));
    }

    #[test]
    fn dedup_on_converging_paths() {
        let mut g = Graph::new("G");
        let s = g.add_vertex(Value::str("s"), "");
        let m1 = g.add_vertex(Value::str("m1"), "");
        let m2 = g.add_vertex(Value::str("m2"), "");
        let e = g.add_vertex(Value::str("e"), "");
        g.add_edge(s, "a", m1);
        g.add_edge(s, "a", m2);
        g.add_edge(m1, "b", e);
        g.add_edge(m2, "b", e);
        assert_eq!(LabelPath::parse("a/b").matches(&g, s), vec![e]);
    }
}
