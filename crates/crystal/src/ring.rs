//! Consistent hash ring (paper §5.1): "Crystal develops a consistent hash
//! ring to assign data objects and computing nodes in a cluster to positions
//! in a virtual ring structure. It aims to minimize the number of remapped
//! keys when the nodes are updated in the cluster."
//!
//! Nodes are hashed by CRC-32 over their address (as in the paper); each
//! node owns several *virtual* positions (vnodes) to even out load. Data
//! objects hash to a ring position and are owned by the first node
//! clockwise. The remapping guarantee (tested property): removing a node
//! only remaps keys that the removed node owned; adding a node only steals
//! keys from existing nodes.

use crate::crc32::crc32;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A computing node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Consistent hash ring with virtual nodes.
#[derive(Debug, Clone, Default)]
pub struct ConsistentHashRing {
    /// ring position -> node (BTreeMap = the sorted ring).
    ring: BTreeMap<u32, NodeId>,
    /// vnodes per physical node.
    vnodes: usize,
    nodes: Vec<(NodeId, String)>,
}

impl ConsistentHashRing {
    /// `vnodes` virtual positions per physical node (paper-style rings use
    /// 100–200; the default constructor uses 64 which is plenty for ≤32
    /// workers).
    pub fn new(vnodes: usize) -> Self {
        ConsistentHashRing {
            ring: BTreeMap::new(),
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
        }
    }

    /// Add a node identified by an address string (the paper hashes IP
    /// addresses). Returns false if the node was already present.
    pub fn add_node(&mut self, node: NodeId, address: &str) -> bool {
        if self.nodes.iter().any(|(n, _)| *n == node) {
            return false;
        }
        for v in 0..self.vnodes {
            let pos = crc32(format!("{address}#{v}").as_bytes());
            // First-come-wins on (astronomically unlikely) position
            // collisions keeps removal exact.
            self.ring.entry(pos).or_insert(node);
        }
        self.nodes.push((node, address.to_owned()));
        true
    }

    /// Rebuild a ring from an explicit membership list (e.g. the live
    /// `nodes/` entries after lease expiry — see
    /// [`crate::scheduler::Cluster::sync_membership`]): only the listed
    /// nodes get positions, so ownership re-hashes onto survivors.
    pub fn from_members<'a>(
        vnodes: usize,
        members: impl IntoIterator<Item = (NodeId, &'a str)>,
    ) -> Self {
        let mut ring = ConsistentHashRing::new(vnodes);
        for (node, address) in members {
            ring.add_node(node, address);
        }
        ring
    }

    /// Whether a node is present.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.iter().any(|(n, _)| *n == node)
    }

    /// Remove a node; its keys flow to the next clockwise owners.
    pub fn remove_node(&mut self, node: NodeId) -> bool {
        let Some(idx) = self.nodes.iter().position(|(n, _)| *n == node) else {
            return false;
        };
        let (_, address) = self.nodes.remove(idx);
        for v in 0..self.vnodes {
            let pos = crc32(format!("{address}#{v}").as_bytes());
            if self.ring.get(&pos) == Some(&node) {
                self.ring.remove(&pos);
            }
        }
        true
    }

    /// Number of physical nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids, insertion order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|(n, _)| *n).collect()
    }

    /// Owner of a key (first node clockwise from the key's position).
    pub fn owner(&self, key: &[u8]) -> Option<NodeId> {
        if self.ring.is_empty() {
            return None;
        }
        let pos = crc32(key);
        self.ring
            .range(pos..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, n)| *n)
    }

    /// Owner of a pre-hashed position (work-unit placement uses the hash of
    /// the data partition directly, §5.2).
    pub fn owner_of_hash(&self, pos: u32) -> Option<NodeId> {
        if self.ring.is_empty() {
            return None;
        }
        self.ring
            .range(pos..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, n)| *n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashMap;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("object-{i}")).collect()
    }

    fn assignment(ring: &ConsistentHashRing, keys: &[String]) -> FxHashMap<String, NodeId> {
        keys.iter()
            .map(|k| (k.clone(), ring.owner(k.as_bytes()).unwrap()))
            .collect()
    }

    fn build(n: usize) -> ConsistentHashRing {
        let mut ring = ConsistentHashRing::new(64);
        for i in 0..n {
            ring.add_node(NodeId(i as u32), &format!("10.0.0.{i}"));
        }
        ring
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = ConsistentHashRing::new(8);
        assert_eq!(ring.owner(b"x"), None);
    }

    #[test]
    fn all_keys_assigned_and_balanced() {
        let ring = build(8);
        let ks = keys(4000);
        let assign = assignment(&ring, &ks);
        let mut counts: FxHashMap<NodeId, usize> = FxHashMap::default();
        for n in assign.values() {
            *counts.entry(*n).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 8, "every node should own some keys");
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        // with 64 vnodes the imbalance stays moderate
        assert!(max / min < 4.0, "imbalance {max}/{min}");
    }

    #[test]
    fn removing_node_only_remaps_its_keys() {
        let mut ring = build(8);
        let ks = keys(2000);
        let before = assignment(&ring, &ks);
        ring.remove_node(NodeId(3));
        let after = assignment(&ring, &ks);
        for k in &ks {
            if before[k] != NodeId(3) {
                assert_eq!(before[k], after[k], "key {k} moved needlessly");
            } else {
                assert_ne!(after[k], NodeId(3));
            }
        }
    }

    #[test]
    fn adding_node_only_steals_keys() {
        let mut ring = build(8);
        let ks = keys(2000);
        let before = assignment(&ring, &ks);
        ring.add_node(NodeId(99), "10.0.1.99");
        let after = assignment(&ring, &ks);
        let mut moved = 0usize;
        for k in &ks {
            if before[k] != after[k] {
                assert_eq!(after[k], NodeId(99), "key {k} moved to a non-new node");
                moved += 1;
            }
        }
        // Expected share ≈ 1/9 of keys; allow generous slack.
        assert!(moved > 0 && moved < ks.len() / 3, "moved {moved}");
    }

    #[test]
    fn from_members_matches_incremental_build() {
        let incremental = build(4);
        let members: Vec<(NodeId, String)> = (0..4)
            .map(|i| (NodeId(i as u32), format!("10.0.0.{i}")))
            .collect();
        let rebuilt =
            ConsistentHashRing::from_members(64, members.iter().map(|(n, a)| (*n, a.as_str())));
        assert_eq!(rebuilt.node_count(), 4);
        assert!(rebuilt.contains(NodeId(2)));
        assert!(!rebuilt.contains(NodeId(9)));
        for k in keys(500) {
            assert_eq!(incremental.owner(k.as_bytes()), rebuilt.owner(k.as_bytes()));
        }
        // excluding a member re-hashes exactly like removing it
        let survivors = ConsistentHashRing::from_members(
            64,
            members.iter().skip(1).map(|(n, a)| (*n, a.as_str())),
        );
        let mut removed = build(4);
        removed.remove_node(NodeId(0));
        for k in keys(500) {
            assert_eq!(survivors.owner(k.as_bytes()), removed.owner(k.as_bytes()));
        }
    }

    #[test]
    fn duplicate_add_remove() {
        let mut ring = build(2);
        assert!(!ring.add_node(NodeId(0), "10.0.0.0"));
        assert!(ring.remove_node(NodeId(0)));
        assert!(!ring.remove_node(NodeId(0)));
        assert_eq!(ring.node_count(), 1);
    }

    #[test]
    fn owner_of_hash_consistent_with_owner() {
        let ring = build(4);
        let k = b"some-partition";
        assert_eq!(ring.owner(k), ring.owner_of_hash(crate::crc32::crc32(k)));
    }
}
