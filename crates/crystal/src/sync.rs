//! Concurrency shim: every lock and atomic in the workspace goes through
//! this module.
//!
//! Three jobs, one choke point:
//!
//! 1. **Swappable backends.** Re-exports of the atomic types, [`Arc`],
//!    [`Once`]/[`OnceLock`] and the [`Backoff`] spin helper resolve to the
//!    `std`/`crossbeam` implementations in normal builds and to `loom`'s
//!    model-checked types under `--cfg loom` (the branches are kept
//!    loom-shaped so vendoring loom is a one-line change; the from-scratch
//!    explorer in [`crate::model`] covers the bounded-interleaving job in
//!    the meantime, since this container cannot add dependencies).
//! 2. **Static lock ranks.** [`RankedMutex`]/[`RankedRwLock`] carry a
//!    [`LockRank`] from a single workspace-wide total order. Debug builds
//!    keep a thread-local stack of held ranks and panic the moment any
//!    thread acquires a lock whose rank is not strictly above everything
//!    it already holds — turning a potential deadlock into a deterministic
//!    unit-test failure. Release builds compile the check away.
//! 3. **No poisoning.** The lock backend is `parking_lot`, which does not
//!    poison on panic: a quarantined worker that dies mid-critical-section
//!    (see `fault::ClusterConfig`) leaves the lock usable for survivors,
//!    so none of the old `.lock().unwrap()` / `unwrap_or_else(|e|
//!    e.into_inner())` poison plumbing survives the refactor.
//!
//! The lint companion (`rock-lint`, L001) rejects direct `std::sync` /
//! `parking_lot` / `crossbeam` primitive use anywhere outside this file,
//! and L002 re-derives the rank order statically from the
//! `RankedMutex::new(LockRank::…)` declarations.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub use loom::sync::Arc;

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub use std::sync::Arc;

#[cfg(not(loom))]
pub use std::sync::{Once, OnceLock};

/// Spin-then-yield helper for lock-free retry loops (work stealing,
/// speculative commit). Under loom the real `Backoff` would spin forever
/// inside the model, so it degrades to an explicit yield point.
#[cfg(not(loom))]
pub use crossbeam::utils::Backoff;

#[cfg(loom)]
#[derive(Debug, Default)]
pub struct Backoff;

#[cfg(loom)]
impl Backoff {
    pub fn new() -> Self {
        Backoff
    }
    pub fn snooze(&self) {
        loom::thread::yield_now();
    }
    pub fn spin(&self) {
        loom::thread::yield_now();
    }
    pub fn is_completed(&self) -> bool {
        true
    }
}

/// The workspace-wide lock order. A thread may only acquire a lock whose
/// rank is **strictly greater** than every rank it already holds; debug
/// builds enforce this per-thread and panic on violation. Gaps of 10
/// leave room to splice new locks without renumbering.
///
/// The order is derived from the real nesting paths in the code (the
/// table in DESIGN.md §Concurrency model walks each edge):
///
/// * `scheduler::Membership` holds its lease table across KV-store calls
///   (`register_leased`), so every `Membership*` rank precedes every
///   `Kv*` rank.
/// * `ModelRegistry::register` takes the model table then the name index,
///   so `RegistryModels < RegistryNames`.
/// * Everything else is verified leaf-only (guards are statement
///   temporaries or dropped before the next lock), and the rank values
///   pin that status: an accidental future nesting in the wrong
///   direction fails tests immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum LockRank {
    /// `scheduler::Membership.ring` — consistent-hash ring under churn.
    MembershipRing = 10,
    /// `scheduler::Membership.leases` — worker → lease-id table; held
    /// across KV lease calls, hence below every `Kv*` rank.
    MembershipLeases = 20,
    /// `kvstore::KvStore.leases` — lease table (grant/keepalive/expiry).
    KvLeases = 30,
    /// `kvstore::KvStore.inner` — the key → value map itself.
    KvMap = 40,
    /// `kvstore::KvStore.events` — prefix-watch event log.
    KvEvents = 50,
    /// `blocks::BlockStore.objects` — object → block-list directory.
    BlockObjects = 60,
    /// `blocks::BlockStore.blocks` — block-id → bytes map.
    BlockData = 70,
    /// `ml::registry` model table; held while the name index is taken.
    RegistryModels = 80,
    /// `ml::registry` name → id index.
    RegistryNames = 90,
    /// `ml::registry` per-relation block filters.
    RegistryFilters = 100,
    /// `ml::registry` 16-way sharded inference memo (one rank for all
    /// shards: a thread never holds two shards at once).
    RegistryMemo = 110,
    /// `discovery::BitsetCache.inner` — LRU state; the build closure runs
    /// *outside* this lock by construction.
    DiscoveryCache = 120,
    /// `data::ColumnCache.snapshot` — versioned columnar snapshot slot.
    ColumnSnapshot = 130,
    /// `scheduler` per-unit result slot (first-writer-wins commit).
    SchedResultSlot = 140,
    /// `scheduler` failure log.
    SchedFailures = 150,
    /// `storage::FaultVfs` I/O trace buffer.
    StorageTrace = 160,
}

impl LockRank {
    #[inline]
    pub fn value(self) -> u16 {
        self as u16
    }

    pub fn name(self) -> &'static str {
        match self {
            LockRank::MembershipRing => "MembershipRing",
            LockRank::MembershipLeases => "MembershipLeases",
            LockRank::KvLeases => "KvLeases",
            LockRank::KvMap => "KvMap",
            LockRank::KvEvents => "KvEvents",
            LockRank::BlockObjects => "BlockObjects",
            LockRank::BlockData => "BlockData",
            LockRank::RegistryModels => "RegistryModels",
            LockRank::RegistryNames => "RegistryNames",
            LockRank::RegistryFilters => "RegistryFilters",
            LockRank::RegistryMemo => "RegistryMemo",
            LockRank::DiscoveryCache => "DiscoveryCache",
            LockRank::ColumnSnapshot => "ColumnSnapshot",
            LockRank::SchedResultSlot => "SchedResultSlot",
            LockRank::SchedFailures => "SchedFailures",
            LockRank::StorageTrace => "StorageTrace",
        }
    }
}

// ---------------------------------------------------------------------------
// Debug-build held-rank tracking
// ---------------------------------------------------------------------------

#[cfg(all(debug_assertions, not(loom)))]
mod rank_check {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// Ranks currently held by this thread, in acquisition order.
        /// Strict monotonicity means each value appears at most once.
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// Record an acquisition, panicking if `rank` is not strictly above
    /// everything already held by this thread.
    pub fn acquire(rank: LockRank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&worst) = held.iter().max() {
                assert!(
                    rank > worst,
                    "lock rank violation: acquiring {} (rank {}) while holding {} (rank {}); \
                     the static order in rock_crystal::sync::LockRank forbids this nesting",
                    rank.name(),
                    rank.value(),
                    worst.name(),
                    worst.value(),
                );
            }
            held.push(rank);
        });
    }

    /// Record a release. Guards may drop out of acquisition order, so we
    /// remove by value (each rank is held at most once per thread).
    pub fn release(rank: LockRank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == rank) {
                held.remove(pos);
            }
        });
    }

    /// Snapshot of this thread's held ranks, for tests.
    pub fn held() -> Vec<LockRank> {
        HELD.with(|held| held.borrow().clone())
    }
}

#[cfg(all(debug_assertions, not(loom)))]
pub use rank_check::held as held_ranks;

#[cfg(not(all(debug_assertions, not(loom))))]
#[inline(always)]
fn rank_acquire(_rank: LockRank) {}
#[cfg(not(all(debug_assertions, not(loom))))]
#[inline(always)]
fn rank_release(_rank: LockRank) {}

#[cfg(all(debug_assertions, not(loom)))]
#[inline]
fn rank_acquire(rank: LockRank) {
    rank_check::acquire(rank);
}
#[cfg(all(debug_assertions, not(loom)))]
#[inline]
fn rank_release(rank: LockRank) {
    rank_check::release(rank);
}

// ---------------------------------------------------------------------------
// Ranked mutex
// ---------------------------------------------------------------------------

/// A mutex that participates in the workspace lock order. Backed by
/// `parking_lot` (no poisoning: a panicking critical section leaves the
/// lock usable — required by the scheduler's quarantine model).
#[derive(Debug)]
pub struct RankedMutex<T: ?Sized> {
    rank: LockRank,
    #[cfg(not(loom))]
    inner: parking_lot::Mutex<T>,
    #[cfg(loom)]
    inner: loom::sync::Mutex<T>,
}

/// RAII guard for [`RankedMutex`]; releases the rank slot on drop.
pub struct RankedMutexGuard<'a, T: ?Sized> {
    rank: LockRank,
    #[cfg(not(loom))]
    guard: parking_lot::MutexGuard<'a, T>,
    #[cfg(loom)]
    guard: loom::sync::MutexGuard<'a, T>,
}

impl<T> RankedMutex<T> {
    pub fn new(rank: LockRank, value: T) -> Self {
        RankedMutex {
            rank,
            #[cfg(not(loom))]
            inner: parking_lot::Mutex::new(value),
            #[cfg(loom)]
            inner: loom::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        #[cfg(not(loom))]
        {
            self.inner.into_inner()
        }
        #[cfg(loom)]
        {
            match self.inner.into_inner() {
                Ok(v) => v,
                Err(e) => e.into_inner(),
            }
        }
    }
}

impl<T: ?Sized> RankedMutex<T> {
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Blocking acquire. Debug builds panic if the rank order is violated
    /// *before* blocking, so the misordering is reported even when the
    /// schedule happens not to deadlock.
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        rank_acquire(self.rank);
        #[cfg(not(loom))]
        let guard = self.inner.lock();
        #[cfg(loom)]
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        RankedMutexGuard {
            rank: self.rank,
            guard,
        }
    }

    /// Non-blocking acquire; still rank-checked on success path entry so a
    /// misordered `try_lock` is caught in tests even though it cannot
    /// deadlock by itself (it can still invert the order for a later
    /// blocking acquire).
    pub fn try_lock(&self) -> Option<RankedMutexGuard<'_, T>> {
        #[cfg(not(loom))]
        let guard = self.inner.try_lock()?;
        #[cfg(loom)]
        let guard = self.inner.try_lock().ok()?;
        rank_acquire(self.rank);
        Some(RankedMutexGuard {
            rank: self.rank,
            guard,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        #[cfg(not(loom))]
        {
            self.inner.get_mut()
        }
        #[cfg(loom)]
        {
            match self.inner.get_mut() {
                Ok(v) => v,
                Err(e) => e.into_inner(),
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for RankedMutexGuard<'_, T> {
    fn drop(&mut self) {
        rank_release(self.rank);
    }
}

// ---------------------------------------------------------------------------
// Ranked rwlock
// ---------------------------------------------------------------------------

/// A reader-writer lock in the workspace lock order. Read and write
/// acquisitions check the same rank: the order protects against
/// lock-graph cycles, where reader/writer distinction does not help.
#[derive(Debug)]
pub struct RankedRwLock<T: ?Sized> {
    rank: LockRank,
    #[cfg(not(loom))]
    inner: parking_lot::RwLock<T>,
    #[cfg(loom)]
    inner: loom::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RankedRwLock`].
pub struct RankedReadGuard<'a, T: ?Sized> {
    rank: LockRank,
    #[cfg(not(loom))]
    guard: parking_lot::RwLockReadGuard<'a, T>,
    #[cfg(loom)]
    guard: loom::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RankedRwLock`].
pub struct RankedWriteGuard<'a, T: ?Sized> {
    rank: LockRank,
    #[cfg(not(loom))]
    guard: parking_lot::RwLockWriteGuard<'a, T>,
    #[cfg(loom)]
    guard: loom::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RankedRwLock<T> {
    pub fn new(rank: LockRank, value: T) -> Self {
        RankedRwLock {
            rank,
            #[cfg(not(loom))]
            inner: parking_lot::RwLock::new(value),
            #[cfg(loom)]
            inner: loom::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        #[cfg(not(loom))]
        {
            self.inner.into_inner()
        }
        #[cfg(loom)]
        {
            match self.inner.into_inner() {
                Ok(v) => v,
                Err(e) => e.into_inner(),
            }
        }
    }
}

impl<T: ?Sized> RankedRwLock<T> {
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    pub fn read(&self) -> RankedReadGuard<'_, T> {
        rank_acquire(self.rank);
        #[cfg(not(loom))]
        let guard = self.inner.read();
        #[cfg(loom)]
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        RankedReadGuard {
            rank: self.rank,
            guard,
        }
    }

    pub fn write(&self) -> RankedWriteGuard<'_, T> {
        rank_acquire(self.rank);
        #[cfg(not(loom))]
        let guard = self.inner.write();
        #[cfg(loom)]
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        RankedWriteGuard {
            rank: self.rank,
            guard,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        #[cfg(not(loom))]
        {
            self.inner.get_mut()
        }
        #[cfg(loom)]
        {
            match self.inner.get_mut() {
                Ok(v) => v,
                Err(e) => e.into_inner(),
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RankedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Drop for RankedReadGuard<'_, T> {
    fn drop(&mut self) {
        rank_release(self.rank);
    }
}

impl<T: ?Sized> std::ops::Deref for RankedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for RankedWriteGuard<'_, T> {
    fn drop(&mut self) {
        rank_release(self.rank);
    }
}

impl<T: Default> Default for RankedMutex<T>
where
    T: Sized,
{
    /// Defaults are only used in tests/fixtures; real call sites name
    /// their rank explicitly. Uses the highest rank so a defaulted lock
    /// can never sit below a real one.
    fn default() -> Self {
        RankedMutex::new(LockRank::StorageTrace, T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_strictly_ordered() {
        let all = [
            LockRank::MembershipRing,
            LockRank::MembershipLeases,
            LockRank::KvLeases,
            LockRank::KvMap,
            LockRank::KvEvents,
            LockRank::BlockObjects,
            LockRank::BlockData,
            LockRank::RegistryModels,
            LockRank::RegistryNames,
            LockRank::RegistryFilters,
            LockRank::RegistryMemo,
            LockRank::DiscoveryCache,
            LockRank::ColumnSnapshot,
            LockRank::SchedResultSlot,
            LockRank::SchedFailures,
            LockRank::StorageTrace,
        ];
        for w in all.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0].name(), w[1].name());
        }
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn in_order_nesting_is_allowed() {
        let a = RankedMutex::new(LockRank::KvLeases, 1u32);
        let b = RankedMutex::new(LockRank::KvMap, 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
        drop(gb);
        drop(ga);
        #[cfg(debug_assertions)]
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn guards_may_drop_out_of_order() {
        let a = RankedRwLock::new(LockRank::BlockObjects, ());
        let b = RankedRwLock::new(LockRank::BlockData, ());
        let ga = a.read();
        let gb = b.read();
        drop(ga); // release the lower rank first
        drop(gb);
        let gb2 = b.write();
        drop(gb2);
        #[cfg(debug_assertions)]
        assert!(held_ranks().is_empty());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock rank violation"))]
    fn out_of_order_nesting_panics_in_debug() {
        let a = RankedMutex::new(LockRank::KvMap, ());
        let b = RankedMutex::new(LockRank::KvLeases, ());
        let _ga = a.lock();
        #[cfg(debug_assertions)]
        let _gb = b.lock(); // rank 30 under rank 40: must panic
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock rank violation"))]
    fn equal_rank_reacquisition_panics_in_debug() {
        let a = RankedMutex::new(LockRank::SchedFailures, ());
        let b = RankedMutex::new(LockRank::SchedFailures, ());
        let _ga = a.lock();
        #[cfg(debug_assertions)]
        let _gb = b.lock();
    }

    #[test]
    fn try_lock_contended_returns_none_without_rank_leak() {
        let a = Arc::new(RankedMutex::new(LockRank::RegistryMemo, 7u32));
        let g = a.lock();
        let a2 = Arc::clone(&a);
        let handle = std::thread::spawn(move || a2.try_lock().is_none());
        assert!(handle.join().unwrap_or(false));
        drop(g);
        assert_eq!(*a.lock(), 7);
    }

    #[test]
    fn rank_state_survives_critical_section_panic() {
        let a = Arc::new(RankedMutex::new(LockRank::KvMap, 0u32));
        let a2 = Arc::clone(&a);
        let res = std::thread::spawn(move || {
            let mut g = a2.lock();
            *g = 9;
            panic!("die holding the lock");
        })
        .join();
        assert!(res.is_err());
        // parking_lot does not poison: survivors keep going.
        assert_eq!(*a.lock(), 9);
        let b = RankedMutex::new(LockRank::KvLeases, ());
        drop(b.lock()); // this thread's rank stack is unaffected
    }
}
