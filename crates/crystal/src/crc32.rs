//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), implemented from
//! scratch with a compile-time lookup table.
//!
//! Crystal hashes node IP addresses with "a standard hashing function
//! CRC-32 [59]" to place nodes on the consistent hash ring (paper §5.1).

/// 256-entry lookup table for the reflected polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Streaming CRC-32 (for block checksums).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = TABLE[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"consistent hashing over CRC-32";
        let mut s = Crc32::new();
        s.update(&data[..10]);
        s.update(&data[10..]);
        assert_eq!(s.finalize(), crc32(data));
    }

    #[test]
    fn distinct_inputs_distinct_codes() {
        assert_ne!(crc32(b"10.0.0.1"), crc32(b"10.0.0.2"));
    }
}
