//! Durable file primitives + a deterministic storage fault layer.
//!
//! Two layers live here:
//!
//! * Free functions ([`fsync_dir`], [`write_atomic_durable`]) — the plain
//!   crash-safe building blocks introduced with the WAL (PR 5). `rename(2)`
//!   within a directory is atomic on POSIX, but atomicity alone is not
//!   durability: the temp file is fsynced before the rename and the parent
//!   directory after it, so a completed call survives power loss with either
//!   the old or the new complete contents — never a torn file.
//! * [`FaultVfs`] — a seeded virtual-filesystem shim that every I/O operation
//!   of `rock_chase::wal` and `rock_chase::checkpoint` routes through. It
//!   mirrors the compute-side fault injector in [`crate::fault`]: every fault
//!   decision is a pure function of `(seed, op_index, salt)` via the same
//!   [`crate::fault::mix`]/[`crate::fault::unit_fraction`] derivation, so a
//!   fault schedule is reproducible from a single `u64` and independent of
//!   wall-clock or thread interleaving.
//!
//! Fault taxonomy (all opt-in, all off by default):
//!
//! * **Torn writes** — a write persists a seeded prefix of the buffer, then
//!   errors. Models a partial page flush.
//! * **fsync errors** — `sync_all`/`fsync_dir` fail with `EIO`/`ENOSPC`
//!   text (kind [`std::io::ErrorKind::Other`]; the pinned toolchain predates
//!   `ErrorKind::StorageFull`). Transient variants use
//!   [`std::io::ErrorKind::Interrupted`].
//! * **Rename failures** — the atomic-publish step of a checkpoint fails,
//!   leaving the temp file behind.
//! * **Read bit-flips** — a read returns the file contents with one seeded
//!   bit flipped; downstream CRCs must catch it.
//! * **Crash at op `k`** — the `k`-th operation takes partial effect (writes
//!   persist a seeded prefix; renames/syncs/removes do not happen at all) and
//!   every subsequent operation fails. The process keeps running — the chase
//!   degrades to in-memory — while the on-disk state is frozen exactly as a
//!   kill at that instant would leave it. Recovery then reopens the directory
//!   with a clean [`FaultVfs`].
//!
//! With `record` enabled the vfs keeps a full I/O trace; the crash-consistency
//! harness replays a recorded run once per trace point with
//! `crash_at_op = Some(i)` and asserts recovery is byte-identical to the
//! uninterrupted oracle.

use crate::fault::{mix, unit_fraction};
use crate::sync::{Arc, AtomicBool, AtomicU64, LockRank, Ordering, RankedMutex};
use serde::Serialize;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Flush a directory's entry table to stable storage. On non-Unix
/// platforms directories cannot be opened for syncing; the rename is
/// still atomic there, just not power-loss durable.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Write `contents` to `path` atomically *and* durably: write a sibling
/// `<name>.tmp`, fsync it, rename it over the target, then fsync the
/// parent directory so the rename itself is on stable storage.
pub fn write_atomic_durable(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fsync_dir(parent)?;
        }
    }
    Ok(())
}

/// `<path>.tmp` — the staging name used by atomic writes. A crash between
/// the temp write and the rename leaves this file behind; the durability
/// layer garbage-collects strays with this suffix on open.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

// Salts separating the storage fault lanes (arbitrary odd constants,
// distinct from the compute-fault salts in `crate::fault`).
const SALT_TORN: u64 = 0xb1;
const SALT_SYNC: u64 = 0xb3;
const SALT_RENAME: u64 = 0xb5;
const SALT_READ: u64 = 0xb7;
const SALT_PREFIX: u64 = 0xb9;
const SALT_TRANSIENT: u64 = 0xbb;
const SALT_KIND: u64 = 0xbd;
const SALT_FLIPBIT: u64 = 0xbf;

/// Seeded storage fault schedule. `Default` is the clean plan: no faults, no
/// crash. Probabilities are per-operation; `transient_fraction` splits fired
/// faults into retryable ([`io::ErrorKind::Interrupted`]) vs persistent.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StorageFaultPlan {
    /// Master seed; all decisions derive from it via [`mix`].
    pub seed: u64,
    /// Probability a file write persists only a seeded prefix, then errors.
    pub torn_write: f64,
    /// Probability `sync_all`/`fsync_dir` fail (EIO/ENOSPC).
    pub sync_error: f64,
    /// Probability a rename fails without taking effect.
    pub rename_fail: f64,
    /// Probability a whole-file read comes back with one seeded bit flipped.
    pub read_flip: f64,
    /// Fraction of fired faults reported as transient (`Interrupted`);
    /// the rest are persistent (`Other` with EIO/ENOSPC text).
    pub transient_fraction: f64,
    /// Simulate a crash at this operation index: the op takes partial
    /// effect and all later I/O through this vfs fails.
    pub crash_at_op: Option<u64>,
}

impl Default for StorageFaultPlan {
    fn default() -> Self {
        StorageFaultPlan {
            seed: 0,
            torn_write: 0.0,
            sync_error: 0.0,
            rename_fail: 0.0,
            read_flip: 0.0,
            transient_fraction: 0.0,
            crash_at_op: None,
        }
    }
}

impl StorageFaultPlan {
    /// Clean plan carrying a seed (enable faults via the builders below).
    pub fn seeded(seed: u64) -> Self {
        StorageFaultPlan {
            seed,
            ..StorageFaultPlan::default()
        }
    }

    pub fn with_torn_writes(mut self, p: f64) -> Self {
        self.torn_write = p;
        self
    }

    pub fn with_sync_errors(mut self, p: f64) -> Self {
        self.sync_error = p;
        self
    }

    pub fn with_rename_failures(mut self, p: f64) -> Self {
        self.rename_fail = p;
        self
    }

    pub fn with_read_flips(mut self, p: f64) -> Self {
        self.read_flip = p;
        self
    }

    pub fn with_transient_fraction(mut self, f: f64) -> Self {
        self.transient_fraction = f;
        self
    }

    pub fn with_crash_at_op(mut self, op: u64) -> Self {
        self.crash_at_op = Some(op);
        self
    }
}

/// Kind of a traced I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IoOpKind {
    Create,
    Open,
    Write,
    Sync,
    SyncDir,
    Rename,
    Remove,
    Read,
    SetLen,
    CreateDir,
}

/// One entry of a recorded I/O trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceOp {
    /// Operation index (the value `crash_at_op` matches against).
    pub index: u64,
    pub op: IoOpKind,
    pub path: String,
}

/// Snapshot of fault-layer counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StorageFaultStats {
    /// Operations issued (faulted or not).
    pub ops: u64,
    pub torn_writes: u64,
    pub sync_errors: u64,
    pub rename_failures: u64,
    pub read_flips: u64,
    /// Fired faults reported as transient (retryable).
    pub transient_errors: u64,
    /// Whether the simulated crash has fired.
    pub crashed: bool,
}

struct VfsInner {
    plan: StorageFaultPlan,
    record: bool,
    ops: AtomicU64,
    // Release/Acquire pair: the Release store in `set_crashed` publishes
    // the partially-flushed file contents that precede the simulated
    // crash; every Acquire load that observes `true` therefore also sees
    // the frozen on-disk state the harness asserts against.
    crashed: AtomicBool,
    trace: RankedMutex<Vec<TraceOp>>,
    torn_writes: AtomicU64,
    sync_errors: AtomicU64,
    rename_failures: AtomicU64,
    read_flips: AtomicU64,
    transient_errors: AtomicU64,
}

/// Seeded virtual-filesystem shim. Cheap to clone (clones share the op
/// counter, crash flag, and trace). The clean default injects nothing and
/// adds one atomic increment per operation.
#[derive(Clone)]
pub struct FaultVfs(Arc<VfsInner>);

impl Default for FaultVfs {
    fn default() -> Self {
        FaultVfs::clean()
    }
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultVfs")
            .field("plan", &self.0.plan)
            .field("ops", &self.0.ops.load(Ordering::Relaxed))
            .field("crashed", &self.0.crashed.load(Ordering::Relaxed))
            .field("record", &self.0.record)
            .finish()
    }
}

impl FaultVfs {
    fn build(plan: StorageFaultPlan, record: bool) -> Self {
        FaultVfs(Arc::new(VfsInner {
            plan,
            record,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            trace: RankedMutex::new(LockRank::StorageTrace, Vec::new()),
            torn_writes: AtomicU64::new(0),
            sync_errors: AtomicU64::new(0),
            rename_failures: AtomicU64::new(0),
            read_flips: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
        }))
    }

    /// No faults, no recording (production default).
    pub fn clean() -> Self {
        FaultVfs::build(StorageFaultPlan::default(), false)
    }

    /// Inject faults according to `plan`.
    pub fn with_plan(plan: StorageFaultPlan) -> Self {
        FaultVfs::build(plan, false)
    }

    /// No faults, but record the full I/O trace (harness oracle runs).
    pub fn recording() -> Self {
        FaultVfs::build(StorageFaultPlan::default(), true)
    }

    /// The fault plan this vfs runs under.
    pub fn plan(&self) -> &StorageFaultPlan {
        &self.0.plan
    }

    /// Operations issued so far.
    pub fn ops_done(&self) -> u64 {
        // Relaxed: monotone counter observation; no other memory depends on it.
        self.0.ops.load(Ordering::Relaxed)
    }

    /// Whether the simulated crash has fired.
    pub fn crashed(&self) -> bool {
        // Acquire: pairs with the Release in `set_crashed` so a `true`
        // observation also sees the frozen pre-crash file contents.
        self.0.crashed.load(Ordering::Acquire)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StorageFaultStats {
        // Relaxed: pure statistics; each counter is independent and the
        // snapshot makes no cross-counter consistency promise.
        StorageFaultStats {
            ops: self.0.ops.load(Ordering::Relaxed),
            torn_writes: self.0.torn_writes.load(Ordering::Relaxed),
            sync_errors: self.0.sync_errors.load(Ordering::Relaxed),
            rename_failures: self.0.rename_failures.load(Ordering::Relaxed),
            read_flips: self.0.read_flips.load(Ordering::Relaxed),
            transient_errors: self.0.transient_errors.load(Ordering::Relaxed),
            crashed: self.crashed(),
        }
    }

    /// Copy of the recorded trace (empty unless built via [`FaultVfs::recording`]).
    pub fn trace(&self) -> Vec<TraceOp> {
        self.0.trace.lock().clone()
    }

    fn begin_op(&self, op: IoOpKind, path: &Path) -> io::Result<u64> {
        if self.crashed() {
            return Err(crash_error());
        }
        // Relaxed: allocates a unique trace index; ordering against the
        // traced file operation is irrelevant (single-writer per handle).
        let idx = self.0.ops.fetch_add(1, Ordering::Relaxed);
        if self.0.record {
            self.0.trace.lock().push(TraceOp {
                index: idx,
                op,
                path: path.display().to_string(),
            });
        }
        Ok(idx)
    }

    fn crash_due(&self, idx: u64) -> bool {
        self.0.plan.crash_at_op == Some(idx)
    }

    fn set_crashed(&self) {
        // Release: publishes the partial write that precedes the crash;
        // see the field comment on `VfsInner::crashed`.
        self.0.crashed.store(true, Ordering::Release);
    }

    /// Does the `salt` fault lane fire at op `idx`?
    fn fires(&self, idx: u64, salt: u64, prob: f64) -> bool {
        prob > 0.0 && unit_fraction(mix(self.0.plan.seed, idx as usize, 0, salt)) < prob
    }

    /// Build the error for a fired fault: transient (`Interrupted`) with
    /// probability `transient_fraction`, else persistent EIO/ENOSPC.
    fn fault_error(&self, idx: u64, what: &str) -> io::Error {
        let p = &self.0.plan;
        let t = unit_fraction(mix(p.seed, idx as usize, 0, SALT_TRANSIENT));
        if t < p.transient_fraction {
            // Relaxed: statistics counter, read only via `stats()`.
            self.0.transient_errors.fetch_add(1, Ordering::Relaxed);
            io::Error::new(
                io::ErrorKind::Interrupted,
                format!("transient io fault: {what} (op {idx})"),
            )
        } else {
            let k = mix(p.seed, idx as usize, 0, SALT_KIND);
            let errno = if k & 1 == 0 { "EIO" } else { "ENOSPC" };
            io::Error::new(io::ErrorKind::Other, format!("{errno}: {what} (op {idx})"))
        }
    }

    /// Seeded prefix length in `[0, len]` for torn/crashed writes.
    fn prefix_len(&self, idx: u64, len: usize) -> usize {
        (mix(self.0.plan.seed, idx as usize, 0, SALT_PREFIX) % (len as u64 + 1)) as usize
    }

    /// Create (truncate) a file for writing.
    pub fn create(&self, path: &Path) -> io::Result<VfsFile> {
        let idx = self.begin_op(IoOpKind::Create, path)?;
        if self.crash_due(idx) {
            self.set_crashed();
            return Err(crash_error());
        }
        let file = File::create(path)?;
        Ok(VfsFile {
            vfs: self.clone(),
            file,
            path: path.to_path_buf(),
        })
    }

    /// Open an existing file for read+write (resume path).
    pub fn open_rw(&self, path: &Path) -> io::Result<VfsFile> {
        let idx = self.begin_op(IoOpKind::Open, path)?;
        if self.crash_due(idx) {
            self.set_crashed();
            return Err(crash_error());
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(VfsFile {
            vfs: self.clone(),
            file,
            path: path.to_path_buf(),
        })
    }

    /// Read a whole file. A fired read-flip fault returns the contents with
    /// one seeded bit flipped (no error — CRCs downstream must catch it).
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let idx = self.begin_op(IoOpKind::Read, path)?;
        if self.crash_due(idx) {
            self.set_crashed();
            return Err(crash_error());
        }
        let mut bytes = std::fs::read(path)?;
        if !bytes.is_empty() && self.fires(idx, SALT_READ, self.0.plan.read_flip) {
            let bit =
                mix(self.0.plan.seed, idx as usize, 0, SALT_FLIPBIT) % (bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            // Relaxed: statistics counter, read only via `stats()`.
            self.0.read_flips.fetch_add(1, Ordering::Relaxed);
        }
        Ok(bytes)
    }

    /// Rename a file. A fired fault (or crash) leaves the rename undone.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let idx = self.begin_op(IoOpKind::Rename, from)?;
        if self.crash_due(idx) {
            self.set_crashed();
            return Err(crash_error());
        }
        if self.fires(idx, SALT_RENAME, self.0.plan.rename_fail) {
            // Relaxed: statistics counter, read only via `stats()`.
            self.0.rename_failures.fetch_add(1, Ordering::Relaxed);
            return Err(self.fault_error(idx, "rename"));
        }
        std::fs::rename(from, to)
    }

    /// Remove a file (WAL compaction, temp GC).
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        let idx = self.begin_op(IoOpKind::Remove, path)?;
        if self.crash_due(idx) {
            self.set_crashed();
            return Err(crash_error());
        }
        std::fs::remove_file(path)
    }

    /// Fsync a directory (same fault lane as file fsync).
    pub fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        let idx = self.begin_op(IoOpKind::SyncDir, dir)?;
        if self.crash_due(idx) {
            self.set_crashed();
            return Err(crash_error());
        }
        if self.fires(idx, SALT_SYNC, self.0.plan.sync_error) {
            // Relaxed: statistics counter, read only via `stats()`.
            self.0.sync_errors.fetch_add(1, Ordering::Relaxed);
            return Err(self.fault_error(idx, "fsync dir"));
        }
        fsync_dir(dir)
    }

    /// Create a directory tree.
    pub fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let idx = self.begin_op(IoOpKind::CreateDir, dir)?;
        if self.crash_due(idx) {
            self.set_crashed();
            return Err(crash_error());
        }
        std::fs::create_dir_all(dir)
    }

    /// Plain (non-durable) whole-file write: create + write.
    pub fn write_file(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let mut f = self.create(path)?;
        f.write_all(contents)
    }

    /// Crash-safe whole-file write through the vfs: temp write (+fsync when
    /// `sync`), rename, parent-dir fsync. Failure between the temp write and
    /// the rename leaves `<path>.tmp` behind — exactly the stray the
    /// durability layer's temp GC cleans up.
    pub fn write_atomic_durable(&self, path: &Path, contents: &[u8], sync: bool) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = self.create(&tmp)?;
            f.write_all(contents)?;
            if sync {
                f.sync_all()?;
            }
        }
        self.rename(&tmp, path)?;
        if sync {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    self.fsync_dir(parent)?;
                }
            }
        }
        Ok(())
    }

    /// Sorted listing of a directory's entries (metadata-only: not traced,
    /// not faulted, but refused once crashed).
    pub fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        if self.crashed() {
            return Err(crash_error());
        }
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }

    /// File size in bytes (metadata-only).
    pub fn file_size(&self, path: &Path) -> io::Result<u64> {
        if self.crashed() {
            return Err(crash_error());
        }
        Ok(std::fs::metadata(path)?.len())
    }
}

fn crash_error() -> io::Error {
    io::Error::new(io::ErrorKind::Other, "simulated crash: storage offline")
}

/// A writable file handle whose operations route through the owning
/// [`FaultVfs`].
pub struct VfsFile {
    vfs: FaultVfs,
    file: File,
    path: PathBuf,
}

impl std::fmt::Debug for VfsFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VfsFile").field("path", &self.path).finish()
    }
}

impl VfsFile {
    /// Write the whole buffer. Torn-write faults and crashes persist a
    /// seeded prefix before erroring.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let idx = self.vfs.begin_op(IoOpKind::Write, &self.path)?;
        if self.vfs.crash_due(idx) {
            let n = self.vfs.prefix_len(idx, buf.len());
            let _ = self.file.write_all(&buf[..n]);
            let _ = self.file.flush();
            self.vfs.set_crashed();
            return Err(crash_error());
        }
        if self.vfs.fires(idx, SALT_TORN, self.vfs.0.plan.torn_write) {
            let n = self.vfs.prefix_len(idx, buf.len());
            self.file.write_all(&buf[..n])?;
            // Relaxed: statistics counter, read only via `stats()`.
            self.vfs.0.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Err(self.vfs.fault_error(idx, "torn write"));
        }
        self.file.write_all(buf)
    }

    /// Fsync the file.
    pub fn sync_all(&mut self) -> io::Result<()> {
        let idx = self.vfs.begin_op(IoOpKind::Sync, &self.path)?;
        if self.vfs.crash_due(idx) {
            self.vfs.set_crashed();
            return Err(crash_error());
        }
        if self.vfs.fires(idx, SALT_SYNC, self.vfs.0.plan.sync_error) {
            // Relaxed: statistics counter, read only via `stats()`.
            self.vfs.0.sync_errors.fetch_add(1, Ordering::Relaxed);
            return Err(self.vfs.fault_error(idx, "fsync"));
        }
        self.file.sync_all()
    }

    /// Truncate (or extend) to `len` bytes.
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        let idx = self.vfs.begin_op(IoOpKind::SetLen, &self.path)?;
        if self.vfs.crash_due(idx) {
            self.vfs.set_crashed();
            return Err(crash_error());
        }
        self.file.set_len(len)
    }

    /// Position the cursor at `pos` bytes from the start (metadata-only).
    pub fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        if self.vfs.crashed() {
            return Err(crash_error());
        }
        self.file.seek(SeekFrom::Start(pos))?;
        Ok(())
    }

    /// Position the cursor at the end, returning the offset (metadata-only).
    pub fn seek_end(&mut self) -> io::Result<u64> {
        if self.vfs.crashed() {
            return Err(crash_error());
        }
        self.file.seek(SeekFrom::End(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rock-storage-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = dir("atomic");
        let path = d.join("out.json");
        write_atomic_durable(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic_durable(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // no temp file left behind
        assert!(!d.join("out.json.tmp").exists());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn clean_vfs_is_transparent() {
        let d = dir("clean");
        let vfs = FaultVfs::clean();
        let p = d.join("a.bin");
        let mut f = vfs.create(&p).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"hello");
        assert!(vfs.ops_done() >= 4);
        assert!(!vfs.crashed());
        assert!(vfs.trace().is_empty());
    }

    #[test]
    fn recording_traces_every_op() {
        let d = dir("trace");
        let vfs = FaultVfs::recording();
        let p = d.join("a.bin");
        let mut f = vfs.create(&p).unwrap();
        f.write_all(b"xy").unwrap();
        f.sync_all().unwrap();
        vfs.rename(&p, &d.join("b.bin")).unwrap();
        let trace = vfs.trace();
        let kinds: Vec<IoOpKind> = trace.iter().map(|t| t.op).collect();
        assert_eq!(
            kinds,
            vec![
                IoOpKind::Create,
                IoOpKind::Write,
                IoOpKind::Sync,
                IoOpKind::Rename
            ]
        );
        assert_eq!(trace[0].index, 0);
        assert_eq!(trace[3].index, 3);
    }

    #[test]
    fn crash_freezes_disk_and_fails_later_ops() {
        let d = dir("crash");
        // Crash at the second op (the write): a prefix lands, then all
        // later operations fail.
        let vfs = FaultVfs::with_plan(StorageFaultPlan::seeded(7).with_crash_at_op(1));
        let p = d.join("a.bin");
        let mut f = vfs.create(&p).unwrap();
        let err = f.write_all(b"hello world").unwrap_err();
        assert!(err.to_string().contains("simulated crash"));
        assert!(vfs.crashed());
        let on_disk = std::fs::read(&p).unwrap();
        assert!(on_disk.len() < b"hello world".len());
        assert!(b"hello world".starts_with(&on_disk[..]));
        assert!(f.sync_all().is_err());
        assert!(vfs.create(&d.join("b.bin")).is_err());
        assert!(vfs.read(&p).is_err());
    }

    #[test]
    fn torn_write_persists_a_prefix_and_errors() {
        let d = dir("torn");
        let vfs = FaultVfs::with_plan(StorageFaultPlan::seeded(3).with_torn_writes(1.0));
        let p = d.join("a.bin");
        let mut f = vfs.create(&p).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let on_disk = std::fs::read(&p).unwrap();
        assert!(on_disk.len() <= 10);
        assert!(b"0123456789".starts_with(&on_disk[..]));
        assert_eq!(vfs.stats().torn_writes, 1);
    }

    #[test]
    fn fault_schedule_is_deterministic_in_the_seed() {
        let decide = |seed: u64| -> Vec<bool> {
            let vfs = FaultVfs::with_plan(StorageFaultPlan::seeded(seed).with_sync_errors(0.5));
            (0..64)
                .map(|i| vfs.fires(i, SALT_SYNC, vfs.0.plan.sync_error))
                .collect()
        };
        assert_eq!(decide(11), decide(11));
        assert_ne!(decide(11), decide(12));
        assert!(decide(11).iter().any(|&b| b));
        assert!(decide(11).iter().any(|&b| !b));
    }

    #[test]
    fn transient_fraction_splits_error_kinds() {
        let vfs = FaultVfs::with_plan(
            StorageFaultPlan::seeded(5)
                .with_sync_errors(1.0)
                .with_transient_fraction(0.5),
        );
        let kinds: Vec<io::ErrorKind> = (0..64).map(|i| vfs.fault_error(i, "x").kind()).collect();
        assert!(kinds.iter().any(|k| *k == io::ErrorKind::Interrupted));
        assert!(kinds.iter().any(|k| *k == io::ErrorKind::Other));
    }

    #[test]
    fn read_flip_changes_exactly_one_bit() {
        let d = dir("flip");
        let p = d.join("a.bin");
        std::fs::write(&p, vec![0u8; 128]).unwrap();
        let vfs = FaultVfs::with_plan(StorageFaultPlan::seeded(9).with_read_flips(1.0));
        let bytes = vfs.read(&p).unwrap();
        let flipped: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flips");
        assert_eq!(vfs.stats().read_flips, 1);
    }

    #[test]
    fn atomic_write_failure_leaves_temp_behind() {
        let d = dir("stray");
        let p = d.join("ck.json");
        let vfs = FaultVfs::with_plan(StorageFaultPlan::seeded(2).with_rename_failures(1.0));
        let err = vfs.write_atomic_durable(&p, b"payload", true).unwrap_err();
        assert!(err.to_string().contains("rename"), "{err}");
        assert!(!p.exists());
        assert!(tmp_path(&p).exists(), "temp file leaks on rename failure");
    }
}
