//! Durable file primitives shared by the chase WAL/checkpoints and the
//! bench results writers.
//!
//! `rename(2)` within a directory is atomic on POSIX, but atomicity alone
//! is not durability: after a power cut, the rename may be visible while
//! the file's *contents* are not (the data blocks were still in the page
//! cache), or the rename itself may be lost (the directory entry was
//! never flushed). [`write_atomic_durable`] therefore fsyncs the temp
//! file before the rename and the parent directory after it, so a
//! completed call survives power loss with either the old or the new
//! complete contents — never a torn file.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Flush a directory's entry table to stable storage. On non-Unix
/// platforms directories cannot be opened for syncing; the rename is
/// still atomic there, just not power-loss durable.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Write `contents` to `path` atomically *and* durably: write a sibling
/// `<name>.tmp`, fsync it, rename it over the target, then fsync the
/// parent directory so the rename itself is on stable storage.
pub fn write_atomic_durable(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fsync_dir(parent)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("rock-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic_durable(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic_durable(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // no temp file left behind
        assert!(!dir.join("out.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
