//! # rock-crystal — the distributed substrate (paper §5.1–§5.2)
//!
//! Rock stores and schedules everything on **Crystal**, "a distributed file
//! system to support internet-scale dynamic load across nodes". This crate
//! reproduces Crystal's architecture as an in-process multi-worker
//! simulation (DESIGN.md §1 explains why this preserves the scaling
//! experiments):
//!
//! * [`crc32`] — the CRC-32 used to hash node addresses onto the ring
//!   (implemented from scratch; standard reflected polynomial 0xEDB88320).
//! * [`ring`] — the consistent hash ring assigning data objects and
//!   computing nodes to positions on a virtual ring, minimizing remapped
//!   keys under node churn.
//! * [`kvstore`] — the ETCD-like key-value store registering the
//!   hash-code → node mapping and cluster metadata.
//! * [`blocks`] — the block store with the two-level addressing model
//!   (first-level metadata resident in memory on every node).
//! * [`work`] — work units `T = (φ, D_T)` with metadata-driven cost
//!   estimation (§5.2 load balancing strategies 1–2).
//! * [`scheduler`] — the non-centralized work manager: every node runs the
//!   same engine, units are placed by the hash of `D_T`, idle nodes fetch
//!   units from others (work stealing; §5.2 strategy 3).
//! * [`fault`] — seeded deterministic fault injection (panics, transient
//!   errors, stragglers, node crashes) plus the retry/quarantine/
//!   speculation knobs in [`fault::ClusterConfig`]; see DESIGN.md
//!   §Crystal fault model.
//! * [`storage`] — durable file primitives (fsync-hardened atomic
//!   writes) used by the chase WAL/checkpoints and the bench harness,
//!   plus [`storage::FaultVfs`], the seeded storage fault layer (torn
//!   writes, fsync EIO/ENOSPC, rename failures, read bit-flips,
//!   crash-at-op) behind the crash-consistency harness.
//! * [`sync`] — the workspace-wide concurrency shim: swappable
//!   lock/atomic backends (`cfg(loom)`-ready), [`sync::RankedMutex`]/
//!   [`sync::RankedRwLock`] enforcing the static [`sync::LockRank`]
//!   order in debug builds, and poison-free guards. `rock-lint` (L001)
//!   rejects concurrency primitives used anywhere else.
//! * [`model`] — bounded CHESS-style interleaving explorer certifying
//!   the runtime's five core protocols (work stealing + quarantine,
//!   lease keep-alive vs expiry, speculative first-writer-wins commit,
//!   `ColumnCache` versioning, sharded memo) in the `models` CI job.

// The substrate must never kill a run: recoverable conditions are typed
// errors, and panics are isolated per unit. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod blocks;
pub mod crc32;
pub mod fault;
pub mod kvstore;
pub mod model;
pub mod ring;
pub mod scheduler;
pub mod storage;
pub mod sync;
pub mod work;

pub use blocks::{BlockId, BlockStore};
pub use crc32::crc32;
pub use fault::{
    ClusterConfig, FaultInjector, FaultPlan, FaultStats, NodeCrash, UnitError, UnitFailure,
};
pub use kvstore::{KvStore, PrefixWatch, WatchEvent};
pub use model::{Exploration, Explorer, ModelInstance, ModelViolation, Step, ViolationKind};
pub use ring::{ConsistentHashRing, NodeId};
pub use scheduler::{Cluster, ExecuteOutcome, SchedulerStats};
pub use storage::{
    fsync_dir, tmp_path, write_atomic_durable, FaultVfs, IoOpKind, StorageFaultPlan,
    StorageFaultStats, TraceOp, VfsFile,
};
pub use sync::{LockRank, RankedMutex, RankedRwLock};
pub use work::{CostEstimator, WorkUnit};
