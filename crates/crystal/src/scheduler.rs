//! The non-centralized work manager (paper §5.2, strategy 3):
//!
//! "Rock adopts a non-centralized structure under the consistent hash; all
//! nodes in a cluster play the same roles. Each node has its own computing
//! engine and work manager. After all work units are generated, each
//! T = (φ, D_T) is distributed to a node based on the hash of D_T. …
//! When a node finishes its assigned work units, it evokes the work manager
//! to fetch work units from other nodes. In this way, Rock achieves load
//! balancing and high scalability; no node is idle unless all work units
//! are finished."
//!
//! Simulation: `n` worker threads, one lock-free deque each
//! (crossbeam-deque); units placed by consistent-hash owner; idle workers
//! steal. Per-worker execution counts and steal counts are reported so the
//! scalability experiments (Fig. 4(h)/(l)) can verify balance.
//!
//! Fault tolerance (see [`crate::fault`] and DESIGN.md §Crystal): every
//! unit body runs under `catch_unwind`, panics and transient errors are
//! retried with capped deterministic exponential backoff, poison units are
//! quarantined after `max_retries + 1` attempts (reported in
//! [`ExecuteOutcome::failures`], never fatal), a crashed node's remaining
//! queue is re-enqueued onto survivors via a global injector, and
//! stragglers get speculative copies with first-writer-wins idempotent
//! commit into the per-unit result slot. A unit settles exactly once
//! (commit or quarantine), which is the at-most-once commit argument: the
//! `settled` flag is swapped atomically before any result is written.

use crate::fault::{
    ClusterConfig, FaultDecision, FaultInjector, FaultStats, InjectedFault, UnitError, UnitFailure,
};
use crate::kvstore::KvStore;
use crate::ring::{ConsistentHashRing, NodeId};
use crate::sync::{
    Arc, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Backoff, LockRank, Ordering, RankedMutex,
    RankedRwLock,
};
use crate::work::WorkUnit;
use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use rustc_hash::FxHashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Per-run scheduler statistics.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    pub workers: usize,
    pub units: usize,
    /// Units committed per worker (first-writer commits only; failed
    /// attempts and losing speculative copies are not counted here).
    pub executed: Vec<u64>,
    /// Units obtained by stealing, per worker.
    pub stolen: Vec<u64>,
    /// Busy seconds per worker (sum of attempt execution times as actually
    /// scheduled on the host, including failed attempts).
    pub busy_seconds: Vec<f64>,
    /// Measured execution seconds of each unit's winning attempt, in unit
    /// order (0.0 for quarantined units).
    pub unit_seconds: Vec<f64>,
    pub wall_seconds: f64,
    /// Fault-handling counters (all zero in an undisturbed run).
    pub faults: FaultStats,
}

impl SchedulerStats {
    /// max/mean executed — 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        if self.executed.is_empty() || self.units == 0 {
            return 1.0;
        }
        let max = self.executed.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.units as f64 / self.workers as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Modeled parallel makespan on `self.workers` nodes: greedy
    /// longest-processing-time list scheduling of the measured per-unit
    /// durations. Work stealing on real hardware realizes greedy list
    /// scheduling, so this is the faithful stand-in for "runtime on an
    /// n-node cluster" that the Fig. 4(h)/(l) scaling panels report; the
    /// repository's CI substrate has a single CPU, so actual wall time
    /// cannot exhibit parallel speedup (see DESIGN.md §1 on the cluster
    /// substitution).
    pub fn modeled_makespan(&self) -> f64 {
        makespan_lpt(&self.unit_seconds, self.workers)
    }

    /// Total busy time across workers (the work itself).
    pub fn total_busy(&self) -> f64 {
        self.busy_seconds.iter().sum()
    }
}

/// Greedy longest-processing-time makespan of `durations` on `bins` equal
/// workers (4/3-approximation of the optimum; matches what work stealing
/// achieves in practice).
pub fn makespan_lpt(durations: &[f64], bins: usize) -> f64 {
    let bins = bins.max(1);
    let mut sorted: Vec<f64> = durations.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut load = vec![0.0f64; bins];
    for d in sorted {
        // place on the least-loaded bin
        let mut idx = 0;
        for (j, l) in load.iter().enumerate() {
            if *l < load[idx] {
                idx = j;
            }
        }
        load[idx] += d;
    }
    load.into_iter().fold(0.0, f64::max)
}

/// The outcome of [`Cluster::execute`]: per-unit results in unit order
/// (`None` exactly for the units listed in `failures`), the typed failures
/// of quarantined units, and the run's scheduler statistics.
#[derive(Debug)]
pub struct ExecuteOutcome<R> {
    pub results: Vec<Option<R>>,
    pub failures: Vec<UnitFailure>,
    pub stats: SchedulerStats,
}

impl<R> ExecuteOutcome<R> {
    /// True when every unit produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// All results when every unit succeeded, the failures otherwise.
    pub fn into_complete(self) -> Result<Vec<R>, Vec<UnitFailure>> {
        if self.failures.is_empty() {
            Ok(self.results.into_iter().flatten().collect())
        } else {
            Err(self.failures)
        }
    }
}

/// Shared membership state: the live ring, per-worker liveness flags, the
/// node→lease mapping, and the once-latch for the planned crash. Shared
/// (via `Arc`) across rounds so a node that crashed in round *r* stays dead
/// in round *r+1* and placement re-hashes onto survivors.
#[derive(Debug)]
struct Membership {
    // Rank order: MembershipRing < MembershipLeases < every Kv* rank —
    // `register_leased` holds `leases` across KV lease calls.
    ring: RankedRwLock<ConsistentHashRing>,
    alive: Vec<AtomicBool>,
    leases: RankedRwLock<FxHashMap<usize, u64>>,
    crash_fired: AtomicBool,
}

/// A work item in flight: the unit index plus whether this is a
/// speculative copy.
#[derive(Debug, Clone, Copy)]
struct Task {
    idx: usize,
    spec: bool,
}

/// Atomic fault counters shared by the worker threads of one run.
#[derive(Default)]
struct FaultCounters {
    retries: AtomicU64,
    panics: AtomicU64,
    transients: AtomicU64,
    latency: AtomicU64,
    reassigned: AtomicU64,
    spec_launched: AtomicU64,
    spec_won: AtomicU64,
    quarantined: AtomicU64,
    crashes: AtomicU64,
}

impl FaultCounters {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            retries: self.retries.load(Ordering::Relaxed),
            panics_caught: self.panics.load(Ordering::Relaxed),
            transient_errors: self.transients.load(Ordering::Relaxed),
            latency_injected: self.latency.load(Ordering::Relaxed),
            reassigned: self.reassigned.load(Ordering::Relaxed),
            speculative_launched: self.spec_launched.load(Ordering::Relaxed),
            speculative_won: self.spec_won.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            node_crashes: self.crashes.load(Ordering::Relaxed),
        }
    }
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(inj) = payload.downcast_ref::<InjectedFault>() {
        format!(
            "injected panic (unit {}, attempt {})",
            inj.unit, inj.attempt
        )
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// A simulated cluster of `n` equal workers. Cloning shares the membership
/// state (a clone sees the same dead nodes and rebuilt ring).
#[derive(Debug, Clone)]
pub struct Cluster {
    workers: usize,
    config: ClusterConfig,
    membership: Arc<Membership>,
    kv: Option<Arc<KvStore>>,
}

impl Cluster {
    /// A cluster with `workers` nodes (≥1) and default resilience knobs.
    pub fn new(workers: usize) -> Self {
        Cluster::with_config(workers, ClusterConfig::default())
    }

    /// A cluster with explicit resilience configuration (fault plan,
    /// retry budget, backoff, speculation threshold).
    pub fn with_config(workers: usize, config: ClusterConfig) -> Self {
        let workers = workers.max(1);
        let mut ring = ConsistentHashRing::new(64);
        for i in 0..workers {
            ring.add_node(NodeId(i as u32), &format!("10.42.0.{i}"));
        }
        Cluster {
            workers,
            config,
            membership: Arc::new(Membership {
                ring: RankedRwLock::new(LockRank::MembershipRing, ring),
                alive: (0..workers).map(|_| AtomicBool::new(true)).collect(),
                leases: RankedRwLock::new(LockRank::MembershipLeases, FxHashMap::default()),
                crash_fired: AtomicBool::new(false),
            }),
            kv: None,
        }
    }

    /// Attach a KV store (builder-style); node crashes then revoke the dead
    /// node's lease so watchers observe the membership change.
    pub fn with_kv(mut self, kv: Arc<KvStore>) -> Self {
        self.kv = Some(kv);
        self
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Total workers, including dead ones.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Workers currently alive.
    pub fn alive_workers(&self) -> usize {
        self.membership
            .alive
            .iter()
            .filter(|a| a.load(Ordering::Acquire))
            .count()
    }

    pub fn is_alive(&self, worker: usize) -> bool {
        self.membership
            .alive
            .get(worker)
            .is_some_and(|a| a.load(Ordering::Acquire))
    }

    /// Register all live nodes in a KV store under `nodes/` (the ETCD
    /// wiring of §5.1). Returns the number registered.
    pub fn registered(&self, kv: &KvStore) -> usize {
        let mut count = 0;
        for i in 0..self.workers {
            if self.membership.alive[i].load(Ordering::Acquire) {
                kv.put(&format!("nodes/{i}"), format!("10.42.0.{i}"));
                count += 1;
            }
        }
        count
    }

    /// Register all live nodes in the attached KV store under leases of
    /// `ttl` logical ticks (§5.1 membership): a node that stops calling
    /// [`KvStore::keep_alive`] loses its `nodes/i` key when the lease
    /// expires, and [`Cluster::sync_membership`] then drops it from the
    /// ring. Returns the number of leases granted (0 without a KV store).
    pub fn register_leased(&self, ttl: u64) -> usize {
        let Some(kv) = &self.kv else {
            return 0;
        };
        let mut leases = self.membership.leases.write();
        let mut count = 0;
        for i in 0..self.workers {
            if !self.membership.alive[i].load(Ordering::Acquire) {
                continue;
            }
            let lease = kv.lease_grant(ttl);
            kv.put_with_lease(&format!("nodes/{i}"), format!("10.42.0.{i}"), lease);
            leases.insert(i, lease);
            count += 1;
        }
        count
    }

    /// Renew the leases of all live nodes (heartbeat).
    pub fn keep_alive_all(&self) -> usize {
        let Some(kv) = &self.kv else {
            return 0;
        };
        let leases = self.membership.leases.read();
        let mut renewed = 0;
        for (w, lease) in leases.iter() {
            if self.membership.alive[*w].load(Ordering::Acquire) && kv.keep_alive(*lease) {
                renewed += 1;
            }
        }
        renewed
    }

    /// Expire due leases in the attached KV store and rebuild the ring from
    /// the surviving `nodes/` entries, marking absent workers dead.
    /// Returns the number of live workers afterwards.
    pub fn sync_membership(&self) -> usize {
        let Some(kv) = &self.kv else {
            return self.alive_workers();
        };
        kv.expire_due();
        let live: Vec<(NodeId, String)> = kv
            .scan_prefix("nodes/")
            .into_iter()
            .filter_map(|(k, e)| {
                let idx: usize = k.strip_prefix("nodes/")?.parse().ok()?;
                if idx >= self.workers {
                    return None;
                }
                Some((
                    NodeId(idx as u32),
                    String::from_utf8_lossy(&e.value).into_owned(),
                ))
            })
            .collect();
        *self.membership.ring.write() =
            ConsistentHashRing::from_members(64, live.iter().map(|(n, a)| (*n, a.as_str())));
        let mut alive = 0;
        for w in 0..self.workers {
            let present = live.iter().any(|(n, _)| n.0 as usize == w);
            self.membership.alive[w].store(present, Ordering::Release);
            alive += usize::from(present);
        }
        alive
    }

    /// The worker a unit is initially placed on: the ring owner of its
    /// partition hash, falling back to the first live worker when the
    /// owner is dead or the ring is empty.
    pub fn owner_of(&self, unit: &WorkUnit) -> usize {
        let owner = self
            .membership
            .ring
            .read()
            .owner_of_hash(unit.placement_hash());
        if let Some(n) = owner {
            let w = n.0 as usize;
            if w < self.workers && self.membership.alive[w].load(Ordering::Acquire) {
                return w;
            }
        }
        (0..self.workers)
            .find(|&w| self.membership.alive[w].load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Execute all units with work stealing; `f` runs on worker threads
    /// and may fail with a [`UnitError`] (retried like an injected fault).
    /// Results are returned in unit order; a `None` slot corresponds to a
    /// quarantined unit described in [`ExecuteOutcome::failures`].
    pub fn execute<R, F>(&self, units: Vec<WorkUnit>, f: F) -> ExecuteOutcome<R>
    where
        R: Send,
        F: Fn(&WorkUnit) -> Result<R, UnitError> + Sync,
    {
        let n = self.workers;
        let total = units.len();
        let start = Instant::now();
        let max_retries = self.config.max_retries;
        let spec_threshold = self.config.speculative_threshold;
        let fault = self
            .config
            .fault_plan
            .clone()
            .filter(|p| p.is_active())
            .map(FaultInjector::new);
        if fault
            .as_ref()
            .is_some_and(|fi| fi.plan().panic_prob > 0.0 || !fi.plan().poison_units.is_empty())
        {
            crate::fault::silence_injected_panics();
        }

        // Build per-worker deques and place units (indices into `units`).
        let deques: Vec<Deque<Task>> = (0..n).map(|_| Deque::new_fifo()).collect();
        let stealers: Vec<Stealer<Task>> = deques.iter().map(|d| d.stealer()).collect();
        // A crashed node drains its remaining queue here; any worker polls
        // it before stealing.
        let global: Injector<Task> = Injector::new();
        // Sort by estimated cost descending within each queue so big units
        // start early (classic LPT-flavoured placement).
        let mut placed: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, u) in units.iter().enumerate() {
            placed[self.owner_of(u)].push(i);
        }
        for (w, mut list) in placed.into_iter().enumerate() {
            list.sort_by(|&a, &b| units[b].est_cost.total_cmp(&units[a].est_cost));
            for i in list {
                deques[w].push(Task {
                    idx: i,
                    spec: false,
                });
            }
        }

        let executed: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stolen: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        // busy time per worker in nanoseconds
        let busy_ns: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        // execution time of the winning attempt per unit, in nanoseconds
        let unit_ns: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        // retry/speculation bookkeeping per unit
        let attempts: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
        let settled: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
        let running: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
        let spec_launched: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
        let started_ns: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        let cost_milli: Vec<u64> = units
            .iter()
            .map(|u| (u.est_cost.max(0.0) * 1000.0) as u64 + 1)
            .collect();
        // observed throughput (committed work only), for straggler detection
        let done_ns = AtomicU64::new(0);
        let done_cost_milli = AtomicU64::new(0);
        let done_count = AtomicU64::new(0);
        let remaining = AtomicUsize::new(total);
        let results: Vec<RankedMutex<Option<R>>> = (0..total)
            .map(|_| RankedMutex::new(LockRank::SchedResultSlot, None))
            .collect();
        let failures: RankedMutex<Vec<UnitFailure>> =
            RankedMutex::new(LockRank::SchedFailures, Vec::new());
        let counters = FaultCounters::default();
        let membership = &*self.membership;
        let config = &self.config;
        let kv = self.kv.as_deref();

        // Absorb the scope result instead of propagating worker panics:
        // unit bodies run under catch_unwind, so a scope-level unwind means
        // a scheduler bug — its unsettled units surface as `Lost` failures
        // below rather than aborting the caller.
        let _ = crossbeam::scope(|scope| {
            for (w, deque) in deques.into_iter().enumerate() {
                let stealers = &stealers;
                let global = &global;
                let executed = &executed;
                let stolen = &stolen;
                let busy_ns = &busy_ns;
                let unit_ns = &unit_ns;
                let attempts = &attempts;
                let settled = &settled;
                let running = &running;
                let spec_launched = &spec_launched;
                let started_ns = &started_ns;
                let cost_milli = &cost_milli;
                let done_ns = &done_ns;
                let done_cost_milli = &done_cost_milli;
                let done_count = &done_count;
                let remaining = &remaining;
                let results = &results;
                let failures = &failures;
                let counters = &counters;
                let units = &units;
                let fault = &fault;
                let f = &f;
                scope.spawn(move |_| {
                    if !membership.alive[w].load(Ordering::Acquire) {
                        // Dead from a crash in an earlier round: drain
                        // anything mistakenly placed here and exit.
                        while let Some(t) = deque.pop() {
                            global.push(t);
                            counters.reassigned.fetch_add(1, Ordering::Relaxed);
                        }
                        return;
                    }

                    // Run one task (original or speculative copy) through
                    // the inject → catch_unwind → retry/quarantine pipeline.
                    let run = |i: usize, spec: bool, was_steal: bool, local_done: &mut u64| {
                        if settled[i].load(Ordering::Acquire) {
                            return;
                        }
                        loop {
                            // Speculative copies observe the current
                            // attempt number without consuming one, so the
                            // owner's retry/quarantine accounting stays
                            // exact (attempts == max_retries + 1 on
                            // quarantine, always).
                            let attempt = if spec {
                                attempts[i].load(Ordering::Relaxed).max(1)
                            } else {
                                attempts[i].fetch_add(1, Ordering::Relaxed)
                            };
                            running[i].store(true, Ordering::Relaxed);
                            let now_rel = start.elapsed().as_nanos() as u64;
                            let _ = started_ns[i].compare_exchange(
                                0,
                                now_rel.max(1),
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            );
                            let decision = fault
                                .as_ref()
                                .map(|fi| fi.decide(i, attempt))
                                .unwrap_or(FaultDecision::None);
                            if matches!(decision, FaultDecision::Latency(_)) {
                                counters.latency.fetch_add(1, Ordering::Relaxed);
                            }
                            let t0 = Instant::now();
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                match decision {
                                    FaultDecision::Panic => {
                                        panic_any(InjectedFault { unit: i, attempt })
                                    }
                                    FaultDecision::Transient => {
                                        return Err(UnitError::Transient(format!(
                                            "injected fault (unit {i}, attempt {attempt})"
                                        )));
                                    }
                                    FaultDecision::Latency(d) => std::thread::sleep(d),
                                    FaultDecision::None => {}
                                }
                                f(&units[i])
                            }));
                            let ns = t0.elapsed().as_nanos() as u64;
                            busy_ns[w].fetch_add(ns, Ordering::Relaxed);
                            let error = match outcome {
                                Ok(Ok(r)) => {
                                    // First-writer-wins idempotent commit:
                                    // the settled swap decides the winner,
                                    // so a unit's result is written at most
                                    // once even when a speculative copy
                                    // races the original.
                                    if !settled[i].swap(true, Ordering::AcqRel) {
                                        *results[i].lock() = Some(r);
                                        unit_ns[i].store(ns, Ordering::Relaxed);
                                        executed[w].fetch_add(1, Ordering::Relaxed);
                                        if was_steal {
                                            stolen[w].fetch_add(1, Ordering::Relaxed);
                                        }
                                        if spec {
                                            counters.spec_won.fetch_add(1, Ordering::Relaxed);
                                        }
                                        done_ns.fetch_add(ns, Ordering::Relaxed);
                                        done_cost_milli.fetch_add(cost_milli[i], Ordering::Relaxed);
                                        done_count.fetch_add(1, Ordering::Relaxed);
                                        remaining.fetch_sub(1, Ordering::AcqRel);
                                        *local_done += 1;
                                    }
                                    return;
                                }
                                Ok(Err(e)) => {
                                    if matches!(e, UnitError::Transient(_)) {
                                        counters.transients.fetch_add(1, Ordering::Relaxed);
                                    }
                                    e
                                }
                                Err(payload) => {
                                    counters.panics.fetch_add(1, Ordering::Relaxed);
                                    UnitError::Panic(describe_panic(payload.as_ref()))
                                }
                            };
                            if settled[i].load(Ordering::Acquire) {
                                return; // another copy already won
                            }
                            if spec {
                                return; // speculative copies never retry
                            }
                            if attempt >= max_retries {
                                // Quarantine: settle without a result; the
                                // typed failure is reported, not fatal.
                                if !settled[i].swap(true, Ordering::AcqRel) {
                                    failures.lock().push(UnitFailure {
                                        unit: i,
                                        rule: units[i].rule,
                                        attempts: attempt + 1,
                                        error,
                                    });
                                    counters.quarantined.fetch_add(1, Ordering::Relaxed);
                                    remaining.fetch_sub(1, Ordering::AcqRel);
                                    *local_done += 1;
                                }
                                return;
                            }
                            counters.retries.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(config.backoff_for(attempt));
                        }
                    };

                    // Scan for a running unit that exceeds the speculation
                    // threshold relative to the observed cost→time rate.
                    let find_straggler = || -> Option<usize> {
                        if spec_threshold <= 0.0 || done_count.load(Ordering::Relaxed) < 3 {
                            return None;
                        }
                        let rate = done_ns.load(Ordering::Relaxed)
                            / done_cost_milli.load(Ordering::Relaxed).max(1);
                        let now_rel = start.elapsed().as_nanos() as u64;
                        for i in 0..total {
                            if settled[i].load(Ordering::Acquire)
                                || !running[i].load(Ordering::Relaxed)
                                || spec_launched[i].load(Ordering::Relaxed)
                            {
                                continue;
                            }
                            let s = started_ns[i].load(Ordering::Relaxed);
                            if s == 0 {
                                continue;
                            }
                            let expected = rate.saturating_mul(cost_milli[i]).max(50_000);
                            let limit = ((expected as f64) * spec_threshold) as u64;
                            if now_rel.saturating_sub(s) > limit.max(200_000)
                                && !spec_launched[i].swap(true, Ordering::Relaxed)
                            {
                                return Some(i);
                            }
                        }
                        None
                    };

                    let crash = fault.as_ref().and_then(|fi| fi.plan().crash);
                    let backoff = Backoff::new();
                    let mut local_done: u64 = 0;
                    loop {
                        // Planned whole-node crash, honored at a unit
                        // boundary (no in-flight work is lost) and only
                        // when survivors exist.
                        if let Some(c) = crash {
                            if c.node == w
                                && n > 1
                                && local_done >= c.after_units
                                && !membership.crash_fired.swap(true, Ordering::AcqRel)
                            {
                                let mut moved = 0u64;
                                while let Some(t) = deque.pop() {
                                    global.push(t);
                                    moved += 1;
                                }
                                counters.reassigned.fetch_add(moved, Ordering::Relaxed);
                                counters.crashes.fetch_add(1, Ordering::Relaxed);
                                membership.alive[w].store(false, Ordering::Release);
                                membership.ring.write().remove_node(NodeId(w as u32));
                                if let Some(kv) = kv {
                                    let lease = membership.leases.write().remove(&w);
                                    if let Some(lease) = lease {
                                        kv.lease_revoke(lease);
                                    } else {
                                        kv.delete(&format!("nodes/{w}"));
                                    }
                                }
                                return;
                            }
                        }
                        // own queue first, then the reassignment injector,
                        // then steal round-robin from the others
                        let mut task = deque.pop();
                        let mut was_steal = false;
                        if task.is_none() {
                            loop {
                                match global.steal() {
                                    Steal::Success(t) => {
                                        task = Some(t);
                                        break;
                                    }
                                    Steal::Retry => continue,
                                    Steal::Empty => break,
                                }
                            }
                        }
                        if task.is_none() {
                            'steal: for off in 1..n {
                                let victim = (w + off) % n;
                                loop {
                                    match stealers[victim].steal() {
                                        Steal::Success(t) => {
                                            task = Some(t);
                                            was_steal = true;
                                            break 'steal;
                                        }
                                        Steal::Retry => continue,
                                        Steal::Empty => break,
                                    }
                                }
                            }
                        }
                        match task {
                            Some(t) => {
                                backoff.reset();
                                run(t.idx, t.spec, was_steal, &mut local_done);
                            }
                            None => {
                                if remaining.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                if let Some(i) = find_straggler() {
                                    counters.spec_launched.fetch_add(1, Ordering::Relaxed);
                                    backoff.reset();
                                    run(i, true, false, &mut local_done);
                                    continue;
                                }
                                // Exponential backoff while idle: spin
                                // first, then yield, then sleep in short
                                // naps (there is no unpark signal when a
                                // victim's queue refills, so a bounded nap
                                // is the parking stand-in).
                                if backoff.is_completed() {
                                    std::thread::sleep(Duration::from_micros(100));
                                } else {
                                    backoff.snooze();
                                }
                            }
                        }
                    }
                });
            }
        });

        let out: Vec<Option<R>> = results.into_iter().map(|m| m.into_inner()).collect();
        let mut failures = failures.into_inner();
        // Defensive: a unit neither committed nor quarantined (possible
        // only if a worker died outside catch_unwind) is reported as Lost.
        for (i, r) in out.iter().enumerate() {
            if r.is_none() && !failures.iter().any(|fl| fl.unit == i) {
                failures.push(UnitFailure {
                    unit: i,
                    rule: units[i].rule,
                    attempts: attempts[i].load(Ordering::Relaxed),
                    error: UnitError::Lost,
                });
            }
        }
        failures.sort_by_key(|fl| fl.unit);

        let stats = SchedulerStats {
            workers: n,
            units: total,
            executed: executed.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            stolen: stolen.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            busy_seconds: busy_ns
                .iter()
                .map(|a| a.load(Ordering::Relaxed) as f64 / 1e9)
                .collect(),
            unit_seconds: unit_ns
                .iter()
                .map(|a| a.load(Ordering::Relaxed) as f64 / 1e9)
                .collect(),
            wall_seconds: start.elapsed().as_secs_f64(),
            faults: counters.snapshot(),
        };
        ExecuteOutcome {
            results: out,
            failures,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::work::Partition;

    fn units(n: u32) -> Vec<WorkUnit> {
        (0..n)
            .map(|i| WorkUnit::new(0, vec![Partition::new(0, i * 10, (i + 1) * 10)]))
            .collect()
    }

    #[test]
    fn executes_all_units_in_order() {
        let cluster = Cluster::new(4);
        let out = cluster.execute(units(100), |u| Ok(u.partitions[0].start));
        assert_eq!(out.results.len(), 100);
        assert!(out.is_complete());
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r, Some(i as u32 * 10));
        }
        assert_eq!(out.stats.units, 100);
        assert_eq!(out.stats.executed.iter().sum::<u64>(), 100);
        let f = &out.stats.faults;
        assert_eq!(
            (f.retries, f.panics_caught, f.quarantined, f.reassigned),
            (0, 0, 0, 0),
            "no fault handling in a clean run"
        );
    }

    #[test]
    fn single_worker_works() {
        let cluster = Cluster::new(1);
        let out = cluster.execute(units(10), |u| Ok(u.rule));
        assert_eq!(out.results.len(), 10);
        assert_eq!(out.stats.executed, vec![10]);
        assert_eq!(out.stats.imbalance(), 1.0);
    }

    #[test]
    fn empty_units_ok() {
        let cluster = Cluster::new(3);
        let out = cluster.execute(Vec::new(), |_| Ok(0u8));
        assert!(out.results.is_empty());
        assert_eq!(out.stats.units, 0);
        assert!(out.is_complete());
    }

    #[test]
    fn stealing_balances_skewed_placement() {
        // Force all units onto one queue by giving them identical
        // partitions, then make work heavy enough that stealing kicks in.
        let cluster = Cluster::new(4);
        let us: Vec<WorkUnit> = (0..64)
            .map(|_| WorkUnit::new(7, vec![Partition::new(0, 0, 10)]))
            .collect();
        let out = cluster.execute(us, |_| {
            // ~200µs of busy work
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i).rotate_left(3);
            }
            Ok(acc)
        });
        assert_eq!(out.results.len(), 64);
        let total_stolen: u64 = out.stats.stolen.iter().sum();
        assert!(total_stolen > 0, "expected steals, stats={:?}", out.stats);
        // balance should be far better than everything-on-one-node
        assert!(
            out.stats.imbalance() < 3.0,
            "imbalance {}",
            out.stats.imbalance()
        );
    }

    #[test]
    fn modeled_makespan_shrinks_with_workers() {
        // The CI substrate has a single CPU, so wall-clock speedup cannot
        // be observed; the modeled makespan (max per-worker busy time) is
        // what the scaling figures report. With balanced stealing, the
        // makespan of 4 workers must be well under that of 1 worker.
        let work = |_u: &WorkUnit| {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i).rotate_left(1);
            }
            Ok(acc)
        };
        // Durations must be sampled without thread contention (a 1-worker
        // run), then scheduled onto n modeled workers — running 4 threads
        // on 1 CPU inflates per-unit wall durations with preemption time.
        let us = units(64);
        let out = Cluster::new(1).execute(us, work);
        let m1 = out.stats.modeled_makespan();
        let m4 = makespan_lpt(&out.stats.unit_seconds, 4);
        assert!(m1 > 0.0 && m4 > 0.0);
        assert!(m4 < m1 / 2.0, "m1={m1} m4={m4}");
    }

    #[test]
    fn lpt_makespan_properties() {
        // 1 bin: sum; many bins: max element dominates.
        let d = [4.0, 3.0, 2.0, 1.0];
        assert!((makespan_lpt(&d, 1) - 10.0).abs() < 1e-12);
        assert!((makespan_lpt(&d, 4) - 4.0).abs() < 1e-12);
        assert!((makespan_lpt(&d, 2) - 5.0).abs() < 1e-12); // {4,1},{3,2}
        assert_eq!(makespan_lpt(&[], 3), 0.0);
        // monotone non-increasing in bins
        let mixed: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let mut prev = f64::INFINITY;
        for bins in 1..=8 {
            let m = makespan_lpt(&mixed, bins);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn registered_nodes_visible_in_kv() {
        let kv = KvStore::new();
        let cluster = Cluster::new(5);
        assert_eq!(cluster.registered(&kv), 5);
        assert_eq!(kv.scan_prefix("nodes/").len(), 5);
    }

    #[test]
    fn injected_panics_and_transients_recover() {
        let plan = FaultPlan::chaos(1234);
        let cluster = Cluster::with_config(4, ClusterConfig::default().with_fault_plan(plan));
        let out = cluster.execute(units(200), |u| Ok(u.partitions[0].start));
        assert!(out.is_complete(), "failures: {:?}", out.failures);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r, Some(i as u32 * 10));
        }
        assert!(
            out.stats.faults.panics_caught + out.stats.faults.transient_errors > 0,
            "chaos plan should inject something over 200 units: {:?}",
            out.stats.faults
        );
        // Every failed first attempt is retried (a speculative copy may
        // occasionally settle a unit first, so ≤ rather than ==).
        let f = &out.stats.faults;
        assert!(f.retries > 0 && f.retries <= f.panics_caught + f.transient_errors);
        assert_eq!(f.quarantined, 0);
    }

    #[test]
    fn faulted_results_equal_fault_free() {
        let us = units(150);
        let clean = Cluster::new(3).execute(us.clone(), |u| Ok(u.placement_hash()));
        let chaotic = Cluster::with_config(
            3,
            ClusterConfig::default().with_fault_plan(FaultPlan::chaos(77)),
        )
        .execute(us, |u| Ok(u.placement_hash()));
        assert_eq!(clean.results, chaotic.results);
    }

    #[test]
    fn poison_unit_quarantined_after_exact_retries() {
        let plan = FaultPlan::seeded(9).with_poison(vec![5]);
        let cfg = ClusterConfig::default()
            .with_fault_plan(plan)
            .with_max_retries(3);
        let out = Cluster::with_config(2, cfg).execute(units(20), |u| Ok(u.rule));
        assert_eq!(out.failures.len(), 1);
        let fl = &out.failures[0];
        assert_eq!(fl.unit, 5);
        assert_eq!(fl.attempts, 4, "max_retries + 1 total attempts");
        assert!(matches!(fl.error, UnitError::Panic(_)));
        assert!(out.results[5].is_none());
        assert_eq!(out.stats.faults.quarantined, 1);
        assert_eq!(out.stats.faults.retries, 3);
        // every other unit still committed
        assert_eq!(out.results.iter().filter(|r| r.is_some()).count(), 19);
    }

    #[test]
    fn genuine_panic_is_isolated_not_fatal() {
        let cluster = Cluster::with_config(2, ClusterConfig::default().with_max_retries(1));
        let out = cluster.execute(units(10), |u| {
            if u.partitions[0].start == 30 {
                panic!("genuine bug in unit body");
            }
            Ok(u.partitions[0].start)
        });
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].unit, 3);
        assert_eq!(out.failures[0].attempts, 2);
        match &out.failures[0].error {
            UnitError::Panic(m) => assert!(m.contains("genuine bug"), "{m}"),
            other => panic!("expected panic error, got {other:?}"),
        }
        assert_eq!(out.results.iter().filter(|r| r.is_some()).count(), 9);
    }

    #[test]
    fn node_crash_reassigns_remaining_units() {
        // All units hash to the same queue; crash that owner immediately so
        // its whole queue must flow to survivors through the injector.
        let cluster = Cluster::new(4);
        let probe = WorkUnit::new(7, vec![Partition::new(0, 0, 10)]);
        let victim = cluster.owner_of(&probe);
        let us: Vec<WorkUnit> = (0..32)
            .map(|_| WorkUnit::new(7, vec![Partition::new(0, 0, 10)]))
            .collect();
        let cfg =
            ClusterConfig::default().with_fault_plan(FaultPlan::seeded(3).with_crash(victim, 0));
        let cluster = Cluster::with_config(4, cfg);
        // Units heavy enough (~100µs) that survivors cannot steal the whole
        // queue before the victim's crash check drains it.
        let out = cluster.execute(us, |u| {
            let mut acc = u.rule as u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i).rotate_left(5);
            }
            Ok(acc & 0xff)
        });
        assert!(out.is_complete(), "failures: {:?}", out.failures);
        assert_eq!(out.stats.faults.node_crashes, 1);
        assert!(
            out.stats.faults.reassigned > 0,
            "dead node's queue must be reassigned: {:?}",
            out.stats.faults
        );
        assert_eq!(out.stats.executed[victim], 0, "victim committed nothing");
        assert_eq!(cluster.alive_workers(), 3);
        // the dead node stays dead: a second round places onto survivors
        let out2 = cluster.execute(units(40), |u| Ok(u.partitions[0].start));
        assert!(out2.is_complete());
        assert_eq!(out2.stats.executed[victim], 0);
    }

    #[test]
    fn crash_skipped_when_no_survivors() {
        let cfg = ClusterConfig::default().with_fault_plan(FaultPlan::seeded(3).with_crash(0, 0));
        let out = Cluster::with_config(1, cfg).execute(units(5), |u| Ok(u.rule));
        assert!(out.is_complete(), "sole worker must not crash");
        assert_eq!(out.stats.faults.node_crashes, 0);
    }

    #[test]
    fn stragglers_get_speculative_copies() {
        // One unit sleeps far beyond the observed rate; an idle worker must
        // launch a speculative copy. The injected-latency path exercises
        // the same machinery end-to-end.
        let plan = FaultPlan::seeded(21).with_latency(1.0, Duration::from_millis(30));
        // latency_prob 1.0 with first_attempt_only hits every unit once;
        // restrict to a handful of units so the test stays fast.
        let cfg = ClusterConfig {
            fault_plan: Some(plan),
            speculative_threshold: 2.0,
            ..ClusterConfig::default()
        };
        let out = Cluster::with_config(4, cfg).execute(units(8), |u| Ok(u.rule));
        assert!(out.is_complete());
        // Speculation is timing-dependent (idle workers only), so only the
        // invariants are asserted: launched ≥ won, and results intact.
        assert!(out.stats.faults.speculative_won <= out.stats.faults.speculative_launched);
        assert_eq!(out.results.iter().filter(|r| r.is_some()).count(), 8);
    }

    #[test]
    fn leased_registration_and_expiry_rebuild_ring() {
        let kv = Arc::new(KvStore::new());
        let cluster = Cluster::new(4).with_kv(Arc::clone(&kv));
        assert_eq!(cluster.register_leased(5), 4);
        assert_eq!(kv.scan_prefix("nodes/").len(), 4);
        // node 2's lease lapses (no keep-alive) while others renew
        let lease2 = *cluster.membership.leases.read().get(&2).unwrap();
        for _ in 0..6 {
            kv.tick();
            for (w, l) in cluster.membership.leases.read().iter() {
                if *w != 2 {
                    kv.keep_alive(*l);
                }
            }
        }
        assert_eq!(cluster.sync_membership(), 3);
        assert!(!cluster.is_alive(2));
        assert!(kv.get("nodes/2").is_none());
        assert!(!kv.keep_alive(lease2), "expired lease cannot be renewed");
        // placement now lands on survivors only
        for i in 0..50 {
            let u = WorkUnit::new(0, vec![Partition::new(0, i * 7, i * 7 + 5)]);
            assert_ne!(cluster.owner_of(&u), 2);
        }
    }
}
