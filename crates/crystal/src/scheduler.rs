//! The non-centralized work manager (paper §5.2, strategy 3):
//!
//! "Rock adopts a non-centralized structure under the consistent hash; all
//! nodes in a cluster play the same roles. Each node has its own computing
//! engine and work manager. After all work units are generated, each
//! T = (φ, D_T) is distributed to a node based on the hash of D_T. …
//! When a node finishes its assigned work units, it evokes the work manager
//! to fetch work units from other nodes. In this way, Rock achieves load
//! balancing and high scalability; no node is idle unless all work units
//! are finished."
//!
//! Simulation: `n` worker threads, one lock-free deque each
//! (crossbeam-deque); units placed by consistent-hash owner; idle workers
//! steal. Per-worker execution counts and steal counts are reported so the
//! scalability experiments (Fig. 4(h)/(l)) can verify balance.

use crate::ring::{ConsistentHashRing, NodeId};
use crate::work::WorkUnit;
use crossbeam::deque::{Steal, Stealer, Worker as Deque};
use crossbeam::utils::Backoff;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-run scheduler statistics.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    pub workers: usize,
    pub units: usize,
    /// Units executed per worker.
    pub executed: Vec<u64>,
    /// Units obtained by stealing, per worker.
    pub stolen: Vec<u64>,
    /// Busy seconds per worker (sum of unit execution times as actually
    /// scheduled on the host).
    pub busy_seconds: Vec<f64>,
    /// Measured execution seconds of each unit, in unit order.
    pub unit_seconds: Vec<f64>,
    pub wall_seconds: f64,
}

impl SchedulerStats {
    /// max/mean executed — 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        if self.executed.is_empty() || self.units == 0 {
            return 1.0;
        }
        let max = *self.executed.iter().max().unwrap() as f64;
        let mean = self.units as f64 / self.workers as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Modeled parallel makespan on `self.workers` nodes: greedy
    /// longest-processing-time list scheduling of the measured per-unit
    /// durations. Work stealing on real hardware realizes greedy list
    /// scheduling, so this is the faithful stand-in for "runtime on an
    /// n-node cluster" that the Fig. 4(h)/(l) scaling panels report; the
    /// repository's CI substrate has a single CPU, so actual wall time
    /// cannot exhibit parallel speedup (see DESIGN.md §1 on the cluster
    /// substitution).
    pub fn modeled_makespan(&self) -> f64 {
        makespan_lpt(&self.unit_seconds, self.workers)
    }

    /// Total busy time across workers (the work itself).
    pub fn total_busy(&self) -> f64 {
        self.busy_seconds.iter().sum()
    }
}

/// Greedy longest-processing-time makespan of `durations` on `bins` equal
/// workers (4/3-approximation of the optimum; matches what work stealing
/// achieves in practice).
pub fn makespan_lpt(durations: &[f64], bins: usize) -> f64 {
    let bins = bins.max(1);
    let mut sorted: Vec<f64> = durations.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut load = vec![0.0f64; bins];
    for d in sorted {
        // place on the least-loaded bin
        let (idx, _) = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("bins >= 1");
        load[idx] += d;
    }
    load.into_iter().fold(0.0, f64::max)
}

/// A simulated cluster of `n` equal workers.
#[derive(Debug, Clone)]
pub struct Cluster {
    workers: usize,
    ring: ClusterRing,
}

/// The ring is rebuilt per worker count (nodes are "registered in ETCD" —
/// see [`crate::kvstore`]; the harness uses [`Cluster::registered`] for
/// that wiring, the scheduler itself just needs owners).
#[derive(Debug, Clone)]
struct ClusterRing {
    ring: ConsistentHashRing,
}

impl Cluster {
    /// A cluster with `workers` nodes (≥1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut ring = ConsistentHashRing::new(64);
        for i in 0..workers {
            ring.add_node(NodeId(i as u32), &format!("10.42.0.{i}"));
        }
        Cluster {
            workers,
            ring: ClusterRing { ring },
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Register all nodes in a KV store under `nodes/` (the ETCD wiring of
    /// §5.1). Returns the number registered.
    pub fn registered(&self, kv: &crate::kvstore::KvStore) -> usize {
        for i in 0..self.workers {
            kv.put(&format!("nodes/{i}"), format!("10.42.0.{i}"));
        }
        self.workers
    }

    /// Initial placement of a unit: the ring owner of its partition hash.
    fn place(&self, unit: &WorkUnit) -> usize {
        self.ring
            .ring
            .owner_of_hash(unit.placement_hash())
            .map(|n| n.0 as usize % self.workers)
            .unwrap_or(0)
    }

    /// Execute all units with work stealing; `f` runs on worker threads.
    /// Results are returned in unit order.
    pub fn execute<R, F>(&self, units: Vec<WorkUnit>, f: F) -> (Vec<R>, SchedulerStats)
    where
        R: Send,
        F: Fn(&WorkUnit) -> R + Sync,
    {
        let n = self.workers;
        let total = units.len();
        let start = Instant::now();

        // Build per-worker deques and place units (indices into `units`).
        let deques: Vec<Deque<usize>> = (0..n).map(|_| Deque::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = deques.iter().map(|d| d.stealer()).collect();
        // Sort by estimated cost descending within each queue so big units
        // start early (classic LPT-flavoured placement).
        let mut placed: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, u) in units.iter().enumerate() {
            placed[self.place(u)].push(i);
        }
        for (w, mut list) in placed.into_iter().enumerate() {
            list.sort_by(|&a, &b| units[b].est_cost.total_cmp(&units[a].est_cost));
            for i in list {
                deques[w].push(i);
            }
        }

        let executed: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stolen: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        // busy time per worker in nanoseconds
        let busy_ns: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        // execution time per unit in nanoseconds
        let unit_ns: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        let remaining = AtomicUsize::new(total);
        let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();

        crossbeam::scope(|scope| {
            for (w, deque) in deques.into_iter().enumerate() {
                let stealers = &stealers;
                let executed = &executed;
                let stolen = &stolen;
                let busy_ns = &busy_ns;
                let unit_ns = &unit_ns;
                let remaining = &remaining;
                let results = &results;
                let units = &units;
                let f = &f;
                scope.spawn(move |_| {
                    // Exponential backoff while idle: spin first, then
                    // yield, then sleep in short naps (crossbeam's Backoff
                    // has no futex to park on here — there is no unpark
                    // signal when a victim's queue refills, so a bounded
                    // nap is the parking stand-in). A hot bare-`yield_now`
                    // loop burns a core against the very workers it waits
                    // for.
                    let backoff = Backoff::new();
                    loop {
                        // own queue first
                        let mut task = deque.pop();
                        let mut was_steal = false;
                        if task.is_none() {
                            // steal round-robin from the others
                            'steal: for off in 1..n {
                                let victim = (w + off) % n;
                                loop {
                                    match stealers[victim].steal() {
                                        Steal::Success(i) => {
                                            task = Some(i);
                                            was_steal = true;
                                            break 'steal;
                                        }
                                        Steal::Retry => continue,
                                        Steal::Empty => break,
                                    }
                                }
                            }
                        }
                        match task {
                            Some(i) => {
                                backoff.reset();
                                let t0 = Instant::now();
                                let r = f(&units[i]);
                                let ns = t0.elapsed().as_nanos() as u64;
                                busy_ns[w].fetch_add(ns, Ordering::Relaxed);
                                unit_ns[i].store(ns, Ordering::Relaxed);
                                *results[i].lock() = Some(r);
                                executed[w].fetch_add(1, Ordering::Relaxed);
                                if was_steal {
                                    stolen[w].fetch_add(1, Ordering::Relaxed);
                                }
                                remaining.fetch_sub(1, Ordering::AcqRel);
                            }
                            None => {
                                if remaining.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                if backoff.is_completed() {
                                    std::thread::sleep(Duration::from_micros(100));
                                } else {
                                    backoff.snooze();
                                }
                            }
                        }
                    }
                });
            }
        })
        .expect("worker thread panicked");

        let out: Vec<R> = results
            .into_iter()
            .map(|m| m.into_inner().expect("all units executed"))
            .collect();
        let stats = SchedulerStats {
            workers: n,
            units: total,
            executed: executed.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            stolen: stolen.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            busy_seconds: busy_ns
                .iter()
                .map(|a| a.load(Ordering::Relaxed) as f64 / 1e9)
                .collect(),
            unit_seconds: unit_ns
                .iter()
                .map(|a| a.load(Ordering::Relaxed) as f64 / 1e9)
                .collect(),
            wall_seconds: start.elapsed().as_secs_f64(),
        };
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::Partition;

    fn units(n: u32) -> Vec<WorkUnit> {
        (0..n)
            .map(|i| WorkUnit::new(0, vec![Partition::new(0, i * 10, (i + 1) * 10)]))
            .collect()
    }

    #[test]
    fn executes_all_units_in_order() {
        let cluster = Cluster::new(4);
        let (results, stats) = cluster.execute(units(100), |u| u.partitions[0].start);
        assert_eq!(results.len(), 100);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u32 * 10);
        }
        assert_eq!(stats.units, 100);
        assert_eq!(stats.executed.iter().sum::<u64>(), 100);
    }

    #[test]
    fn single_worker_works() {
        let cluster = Cluster::new(1);
        let (results, stats) = cluster.execute(units(10), |u| u.rule);
        assert_eq!(results.len(), 10);
        assert_eq!(stats.executed, vec![10]);
        assert_eq!(stats.imbalance(), 1.0);
    }

    #[test]
    fn empty_units_ok() {
        let cluster = Cluster::new(3);
        let (results, stats) = cluster.execute(Vec::new(), |_| 0u8);
        assert!(results.is_empty());
        assert_eq!(stats.units, 0);
    }

    #[test]
    fn stealing_balances_skewed_placement() {
        // Force all units onto one queue by giving them identical
        // partitions, then make work heavy enough that stealing kicks in.
        let cluster = Cluster::new(4);
        let us: Vec<WorkUnit> = (0..64)
            .map(|_| WorkUnit::new(7, vec![Partition::new(0, 0, 10)]))
            .collect();
        let (results, stats) = cluster.execute(us, |_| {
            // ~200µs of busy work
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i).rotate_left(3);
            }
            acc
        });
        assert_eq!(results.len(), 64);
        let total_stolen: u64 = stats.stolen.iter().sum();
        assert!(total_stolen > 0, "expected steals, stats={stats:?}");
        // balance should be far better than everything-on-one-node
        assert!(stats.imbalance() < 3.0, "imbalance {}", stats.imbalance());
    }

    #[test]
    fn modeled_makespan_shrinks_with_workers() {
        // The CI substrate has a single CPU, so wall-clock speedup cannot
        // be observed; the modeled makespan (max per-worker busy time) is
        // what the scaling figures report. With balanced stealing, the
        // makespan of 4 workers must be well under that of 1 worker.
        let work = |_u: &WorkUnit| {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i).rotate_left(1);
            }
            acc
        };
        // Durations must be sampled without thread contention (a 1-worker
        // run), then scheduled onto n modeled workers — running 4 threads
        // on 1 CPU inflates per-unit wall durations with preemption time.
        let us = units(64);
        let (_, s1) = Cluster::new(1).execute(us, work);
        let m1 = s1.modeled_makespan();
        let m4 = makespan_lpt(&s1.unit_seconds, 4);
        assert!(m1 > 0.0 && m4 > 0.0);
        assert!(m4 < m1 / 2.0, "m1={m1} m4={m4}");
    }

    #[test]
    fn lpt_makespan_properties() {
        // 1 bin: sum; many bins: max element dominates.
        let d = [4.0, 3.0, 2.0, 1.0];
        assert!((makespan_lpt(&d, 1) - 10.0).abs() < 1e-12);
        assert!((makespan_lpt(&d, 4) - 4.0).abs() < 1e-12);
        assert!((makespan_lpt(&d, 2) - 5.0).abs() < 1e-12); // {4,1},{3,2}
        assert_eq!(makespan_lpt(&[], 3), 0.0);
        // monotone non-increasing in bins
        let mixed: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let mut prev = f64::INFINITY;
        for bins in 1..=8 {
            let m = makespan_lpt(&mixed, bins);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn registered_nodes_visible_in_kv() {
        let kv = crate::kvstore::KvStore::new();
        let cluster = Cluster::new(5);
        assert_eq!(cluster.registered(&kv), 5);
        assert_eq!(kv.scan_prefix("nodes/").len(), 5);
    }
}
