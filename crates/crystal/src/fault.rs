//! Deterministic fault injection for the Crystal scheduler.
//!
//! The paper's Crystal substrate (§5.1–5.2) promises that "no node is idle
//! unless all work units are finished" — a liveness claim that only matters
//! when something goes wrong. This module supplies the *wrongness*: a seeded
//! [`FaultPlan`] that injects per-unit panics, transient errors, latency
//! spikes (stragglers) and whole-node crashes into
//! [`crate::scheduler::Cluster::execute`], reproducibly from a single `u64`
//! seed.
//!
//! Determinism contract: every fault decision is a pure function of
//! `(seed, unit index, attempt index)` via splitmix64 mixing — **not** of
//! thread interleaving or call order. Two runs with the same plan inject
//! exactly the same faults into exactly the same units, regardless of how
//! the work-stealing scheduler happens to interleave them. That is what
//! makes "a faulted run yields byte-identical repairs to a clean run" a
//! testable CI property rather than a flaky aspiration.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer. Used to derive all
/// fault decisions from `(seed, unit, attempt, salt)` without any shared
/// RNG state (shared state would reintroduce call-order dependence).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive a fault-decision hash from `(seed, unit, attempt, salt)`. Public so
/// sibling fault layers (e.g. [`crate::storage::FaultVfs`]) share the exact
/// same derivation and stay deterministic relative to each other.
#[inline]
pub fn mix(seed: u64, unit: usize, attempt: u32, salt: u64) -> u64 {
    let lane = (unit as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt).wrapping_mul(0xd1b5_4a32_d192_ed03))
        .wrapping_add(salt.wrapping_mul(0x2545_f491_4f6c_dd1d));
    splitmix64(seed ^ splitmix64(lane))
}

/// Map a mixed hash to a uniform fraction in `[0, 1)`.
#[inline]
pub fn unit_fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Crash node `node` after it has completed `after_units` units in a run
/// (the crash fires at a unit boundary, so no in-flight work is lost — the
/// node's remaining queue is re-enqueued onto survivors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// Worker index to kill (ignored when it is the only worker: killing
    /// the last survivor would deadlock the run, so the crash is skipped).
    pub node: usize,
    /// Number of units the node completes before dying.
    pub after_units: u64,
}

/// A seeded, declarative description of which faults to inject.
///
/// All probabilities are per `(unit, attempt)` decision. With
/// `first_attempt_only = true` (the default) faults only fire on a unit's
/// first attempt, so any `max_retries ≥ 1` recovers every injected fault —
/// this is the mode the byte-identical-repair assertions use. Units listed
/// in `poison_units` panic on *every* attempt and are the only way to
/// exercise quarantine deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed; all decisions derive from it.
    pub seed: u64,
    /// Probability an attempt panics.
    pub panic_prob: f64,
    /// Probability an attempt fails with a transient [`UnitError`].
    pub transient_prob: f64,
    /// Probability an attempt is delayed (straggler simulation).
    pub latency_prob: f64,
    /// Upper bound of an injected delay; the actual delay is a seeded
    /// fraction in `[0.25, 1.0]` of this.
    pub max_latency: Duration,
    /// When true (default), probabilistic faults fire only on attempt 0,
    /// guaranteeing recovery within `max_retries ≥ 1`.
    pub first_attempt_only: bool,
    /// Units that panic on every attempt (deterministic poison → quarantine).
    pub poison_units: Vec<u32>,
    /// Optional whole-node crash.
    pub crash: Option<NodeCrash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_prob: 0.0,
            transient_prob: 0.0,
            latency_prob: 0.0,
            max_latency: Duration::from_millis(2),
            first_attempt_only: true,
            poison_units: Vec::new(),
            crash: None,
        }
    }
}

impl FaultPlan {
    /// An empty plan with the given seed (no faults until builders add some).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A "chaos" preset: panics + transients + stragglers at moderate rates,
    /// first-attempt-only (fully recoverable). This is what the CI seed
    /// matrix runs.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_prob: 0.08,
            transient_prob: 0.08,
            latency_prob: 0.05,
            max_latency: Duration::from_millis(2),
            first_attempt_only: true,
            poison_units: Vec::new(),
            crash: None,
        }
    }

    pub fn with_panics(mut self, prob: f64) -> Self {
        self.panic_prob = prob.clamp(0.0, 1.0);
        self
    }

    pub fn with_transients(mut self, prob: f64) -> Self {
        self.transient_prob = prob.clamp(0.0, 1.0);
        self
    }

    pub fn with_latency(mut self, prob: f64, max: Duration) -> Self {
        self.latency_prob = prob.clamp(0.0, 1.0);
        self.max_latency = max;
        self
    }

    pub fn with_poison(mut self, units: Vec<u32>) -> Self {
        self.poison_units = units;
        self
    }

    pub fn with_crash(mut self, node: usize, after_units: u64) -> Self {
        self.crash = Some(NodeCrash { node, after_units });
        self
    }

    /// Let probabilistic faults fire on retries too (off the recoverable
    /// path; used to stress quarantine).
    pub fn every_attempt(mut self) -> Self {
        self.first_attempt_only = false;
        self
    }

    /// True if the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.panic_prob > 0.0
            || self.transient_prob > 0.0
            || self.latency_prob > 0.0
            || !self.poison_units.is_empty()
            || self.crash.is_some()
    }
}

/// What the injector decided for one `(unit, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    None,
    /// Panic (via `panic_any(InjectedFault)`) before the unit body runs.
    Panic,
    /// Fail with a transient [`UnitError`] before the unit body runs.
    Transient,
    /// Sleep this long, then run the unit body normally.
    Latency(Duration),
}

/// Pure decision function over a [`FaultPlan`]. Stateless and `Sync`: safe
/// to consult from every worker thread without coordination.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fault for `(unit, attempt)`. Pure: depends only on the
    /// plan and the arguments.
    pub fn decide(&self, unit: usize, attempt: u32) -> FaultDecision {
        if unit <= u32::MAX as usize && self.plan.poison_units.contains(&(unit as u32)) {
            return FaultDecision::Panic;
        }
        if self.plan.first_attempt_only && attempt > 0 {
            return FaultDecision::None;
        }
        let seed = self.plan.seed;
        if self.plan.panic_prob > 0.0
            && unit_fraction(mix(seed, unit, attempt, 0x01)) < self.plan.panic_prob
        {
            return FaultDecision::Panic;
        }
        if self.plan.transient_prob > 0.0
            && unit_fraction(mix(seed, unit, attempt, 0x02)) < self.plan.transient_prob
        {
            return FaultDecision::Transient;
        }
        if self.plan.latency_prob > 0.0
            && unit_fraction(mix(seed, unit, attempt, 0x03)) < self.plan.latency_prob
        {
            let frac = 0.25 + 0.75 * unit_fraction(mix(seed, unit, attempt, 0x04));
            return FaultDecision::Latency(self.plan.max_latency.mul_f64(frac));
        }
        FaultDecision::None
    }
}

/// Panic payload used for injected panics, so the panic-hook filter and the
/// scheduler's `catch_unwind` can tell injected faults from genuine bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    pub unit: usize,
    pub attempt: u32,
}

/// Install (once, process-wide) a panic hook that silences the default
/// "thread panicked" report for [`InjectedFault`] payloads and forwards
/// everything else to the previously installed hook. Chaos runs inject
/// hundreds of panics; without this the test output is unreadable noise.
pub fn silence_injected_panics() {
    use crate::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

/// Why one attempt of a work unit failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitError {
    /// The unit body panicked (injected or genuine); the message is the
    /// stringified panic payload.
    Panic(String),
    /// A transient, retryable error.
    Transient(String),
    /// The unit never produced a result (e.g. its worker died outside the
    /// retry path); should not occur under the shipped scheduler.
    Lost,
}

impl std::fmt::Display for UnitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnitError::Panic(m) => write!(f, "unit panicked: {m}"),
            UnitError::Transient(m) => write!(f, "transient unit error: {m}"),
            UnitError::Lost => write!(f, "unit result lost"),
        }
    }
}

impl std::error::Error for UnitError {}

/// A unit that was quarantined after exhausting its retry budget. Reported
/// in [`crate::scheduler::ExecuteOutcome::failures`]; never fatal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitFailure {
    /// Index of the unit in the submitted batch.
    pub unit: usize,
    /// The rule the unit evaluates (`WorkUnit::rule`).
    pub rule: u32,
    /// Total attempts made (`max_retries + 1` for a quarantined unit).
    pub attempts: u32,
    /// The error from the final attempt.
    pub error: UnitError,
}

/// Fault-handling counters, embedded in
/// [`crate::scheduler::SchedulerStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Panics caught by the per-unit `catch_unwind` (injected + genuine).
    pub panics_caught: u64,
    /// Attempts that failed with a transient [`UnitError`].
    pub transient_errors: u64,
    /// Attempts delayed by injected latency.
    pub latency_injected: u64,
    /// Units re-enqueued from a crashed node's deque onto survivors.
    pub reassigned: u64,
    /// Speculative copies launched for stragglers.
    pub speculative_launched: u64,
    /// Speculative copies that committed first (won the race).
    pub speculative_won: u64,
    /// Units quarantined after exhausting retries.
    pub quarantined: u64,
    /// Whole-node crashes honored this run.
    pub node_crashes: u64,
}

impl FaultStats {
    /// Accumulate another run's counters (e.g. per-round stats into a
    /// whole-chase total).
    pub fn merge(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.panics_caught += other.panics_caught;
        self.transient_errors += other.transient_errors;
        self.latency_injected += other.latency_injected;
        self.reassigned += other.reassigned;
        self.speculative_launched += other.speculative_launched;
        self.speculative_won += other.speculative_won;
        self.quarantined += other.quarantined;
        self.node_crashes += other.node_crashes;
    }

    /// True if any fault-handling machinery engaged.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

/// Resilience knobs for [`crate::scheduler::Cluster`], surfaced on
/// `rock::RockConfig`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Faults to inject; `None` disables injection (production default).
    pub fault_plan: Option<FaultPlan>,
    /// Retries per unit beyond the first attempt before quarantine
    /// (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Base of the capped exponential retry backoff: attempt `k` sleeps
    /// `retry_backoff × 2^min(k, 4)`. Deterministic in duration (wall-clock
    /// only; never affects results).
    pub retry_backoff: Duration,
    /// A running unit whose elapsed time exceeds `speculative_threshold ×`
    /// its expected duration (from the observed cost→time rate) gets a
    /// speculative copy on an idle worker; first writer wins. `0.0`
    /// disables speculation.
    pub speculative_threshold: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            fault_plan: None,
            max_retries: 2,
            retry_backoff: Duration::from_micros(200),
            speculative_threshold: 4.0,
        }
    }
}

impl ClusterConfig {
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Capped exponential backoff before retrying after failed attempt
    /// `attempt` (0-based).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.retry_backoff.saturating_mul(1u32 << attempt.min(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_avalanches() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        // differing in one input bit flips ~half the output bits
        let diff = (a ^ b).count_ones();
        assert!(diff > 16 && diff < 48, "diff {diff}");
    }

    #[test]
    fn decisions_are_pure_functions() {
        let inj = FaultInjector::new(FaultPlan::chaos(42));
        for unit in 0..200 {
            for attempt in 0..3 {
                assert_eq!(inj.decide(unit, attempt), inj.decide(unit, attempt));
            }
        }
    }

    #[test]
    fn seeds_give_different_plans() {
        let a = FaultInjector::new(FaultPlan::chaos(1));
        let b = FaultInjector::new(FaultPlan::chaos(2));
        let differing = (0..500)
            .filter(|&u| a.decide(u, 0) != b.decide(u, 0))
            .count();
        assert!(differing > 0, "different seeds must differ somewhere");
    }

    #[test]
    fn first_attempt_only_recovers() {
        let inj = FaultInjector::new(FaultPlan::chaos(7));
        for unit in 0..500 {
            assert_eq!(inj.decide(unit, 1), FaultDecision::None);
        }
    }

    #[test]
    fn chaos_rates_roughly_match() {
        let inj = FaultInjector::new(FaultPlan::chaos(99));
        let n = 10_000usize;
        let mut panics = 0;
        let mut transients = 0;
        let mut latencies = 0;
        for u in 0..n {
            match inj.decide(u, 0) {
                FaultDecision::Panic => panics += 1,
                FaultDecision::Transient => transients += 1,
                FaultDecision::Latency(d) => {
                    latencies += 1;
                    assert!(d >= Duration::from_micros(500) && d <= Duration::from_millis(2));
                }
                FaultDecision::None => {}
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(panics) - 0.08).abs() < 0.02, "panics {panics}");
        assert!(
            (frac(transients) - 0.08).abs() < 0.02,
            "transients {transients}"
        );
        assert!(
            (frac(latencies) - 0.05).abs() < 0.02,
            "latencies {latencies}"
        );
    }

    #[test]
    fn poison_fires_on_every_attempt() {
        let inj = FaultInjector::new(FaultPlan::seeded(5).with_poison(vec![3]));
        for attempt in 0..10 {
            assert_eq!(inj.decide(3, attempt), FaultDecision::Panic);
        }
        assert_eq!(inj.decide(4, 0), FaultDecision::None);
    }

    #[test]
    fn backoff_caps() {
        let cfg = ClusterConfig::default();
        assert_eq!(cfg.backoff_for(0), Duration::from_micros(200));
        assert_eq!(cfg.backoff_for(1), Duration::from_micros(400));
        assert_eq!(cfg.backoff_for(4), Duration::from_micros(3200));
        assert_eq!(cfg.backoff_for(40), Duration::from_micros(3200), "capped");
    }

    #[test]
    fn fault_stats_merge_and_any() {
        let mut a = FaultStats::default();
        assert!(!a.any());
        let b = FaultStats {
            retries: 2,
            panics_caught: 1,
            ..FaultStats::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.retries, 4);
        assert_eq!(a.panics_caught, 2);
        assert!(a.any());
    }

    #[test]
    fn plan_serde_roundtrip() {
        let plan = FaultPlan::chaos(11)
            .with_poison(vec![1, 2])
            .with_crash(0, 3);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
