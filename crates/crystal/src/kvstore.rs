//! ETCD-like metadata store (paper §5.1: "The mapping between hash codes
//! and nodes are registered in ETCD, a distributed key-value store").
//!
//! In-process stand-in: a versioned, thread-safe KV store with prefix scans
//! and compare-and-swap — the three ETCD features the registration and
//! status-synchronization paths actually use.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// One stored entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub value: Bytes,
    /// Monotone per-key modification version.
    pub version: u64,
}

/// Versioned key-value store with prefix scan.
#[derive(Debug, Default)]
pub struct KvStore {
    inner: RwLock<BTreeMap<String, Entry>>,
}

impl KvStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Put unconditionally; returns the new version.
    pub fn put(&self, key: &str, value: impl Into<Bytes>) -> u64 {
        let mut map = self.inner.write();
        let version = map.get(key).map(|e| e.version + 1).unwrap_or(1);
        map.insert(
            key.to_owned(),
            Entry {
                value: value.into(),
                version,
            },
        );
        version
    }

    /// Get a value.
    pub fn get(&self, key: &str) -> Option<Entry> {
        self.inner.read().get(key).cloned()
    }

    /// Compare-and-swap on the version; returns Ok(new version) or
    /// Err(current version). `expected = 0` means "key must not exist".
    pub fn cas(&self, key: &str, expected: u64, value: impl Into<Bytes>) -> Result<u64, u64> {
        let mut map = self.inner.write();
        let current = map.get(key).map(|e| e.version).unwrap_or(0);
        if current != expected {
            return Err(current);
        }
        let version = current + 1;
        map.insert(
            key.to_owned(),
            Entry {
                value: value.into(),
                version,
            },
        );
        Ok(version)
    }

    /// Delete; returns whether the key existed.
    pub fn delete(&self, key: &str) -> bool {
        self.inner.write().remove(key).is_some()
    }

    /// All `(key, entry)` pairs under a prefix, key-ordered.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, Entry)> {
        self.inner
            .read()
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_versions() {
        let kv = KvStore::new();
        assert_eq!(kv.put("a", "1"), 1);
        assert_eq!(kv.put("a", "2"), 2);
        let e = kv.get("a").unwrap();
        assert_eq!(e.value, Bytes::from("2"));
        assert_eq!(e.version, 2);
        assert!(kv.get("b").is_none());
    }

    #[test]
    fn cas_semantics() {
        let kv = KvStore::new();
        assert_eq!(kv.cas("k", 0, "init"), Ok(1));
        assert_eq!(kv.cas("k", 0, "again"), Err(1));
        assert_eq!(kv.cas("k", 1, "next"), Ok(2));
        assert_eq!(kv.get("k").unwrap().value, Bytes::from("next"));
    }

    #[test]
    fn prefix_scan_ordered() {
        let kv = KvStore::new();
        kv.put("nodes/2", "b");
        kv.put("nodes/1", "a");
        kv.put("units/1", "x");
        let nodes = kv.scan_prefix("nodes/");
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].0, "nodes/1");
        assert_eq!(nodes[1].0, "nodes/2");
        assert_eq!(kv.scan_prefix("zzz").len(), 0);
    }

    #[test]
    fn delete() {
        let kv = KvStore::new();
        kv.put("a", "1");
        assert!(kv.delete("a"));
        assert!(!kv.delete("a"));
        assert!(kv.is_empty());
    }

    #[test]
    fn concurrent_cas_single_winner() {
        use std::sync::Arc;
        let kv = Arc::new(KvStore::new());
        kv.put("leader", "none");
        let mut handles = Vec::new();
        for i in 0..8 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                kv.cas("leader", 1, format!("node-{i}")).is_ok()
            }));
        }
        let winners = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count();
        assert_eq!(winners, 1);
    }
}
