//! ETCD-like metadata store (paper §5.1: "The mapping between hash codes
//! and nodes are registered in ETCD, a distributed key-value store").
//!
//! In-process stand-in: a versioned, thread-safe KV store with prefix
//! scans, compare-and-swap, **leases** and **prefix watches** — the ETCD
//! features the registration and status-synchronization paths actually
//! use. Leases run on a logical clock ([`KvStore::tick`]) rather than wall
//! time so membership tests are deterministic: a node that stops calling
//! [`KvStore::keep_alive`] loses its keys after `ttl` ticks, and watchers
//! of `nodes/` observe the deletion (the signal
//! [`crate::scheduler::Cluster::sync_membership`] uses to rebuild the
//! ring without the dead node).

use crate::sync::{AtomicU64, LockRank, Ordering, RankedRwLock};
use bytes::Bytes;
use std::collections::BTreeMap;

/// One stored entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub value: Bytes,
    /// Monotone per-key modification version.
    pub version: u64,
    /// Lease this key is attached to (0 = none).
    pub lease: u64,
}

/// A change observed by a [`PrefixWatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchEvent {
    Put { key: String, version: u64 },
    Delete { key: String },
}

impl WatchEvent {
    pub fn key(&self) -> &str {
        match self {
            WatchEvent::Put { key, .. } | WatchEvent::Delete { key } => key,
        }
    }
}

/// A poll-based watch over a key prefix: created by
/// [`KvStore::watch_prefix`], it returns the events under its prefix that
/// happened after its creation (or last poll).
#[derive(Debug, Clone)]
pub struct PrefixWatch {
    prefix: String,
    cursor: usize,
}

impl PrefixWatch {
    /// Drain new events under the prefix since the last poll.
    pub fn poll(&mut self, kv: &KvStore) -> Vec<WatchEvent> {
        let (events, cursor) = kv.events_since(self.cursor, &self.prefix);
        self.cursor = cursor;
        events
    }
}

#[derive(Debug, Clone)]
struct LeaseState {
    ttl: u64,
    expires_at: u64,
    keys: Vec<String>,
}

/// Versioned key-value store with prefix scan, leases and watches.
#[derive(Debug)]
pub struct KvStore {
    // Rank order within the store: KvLeases < KvMap < KvEvents. Guards
    // are dropped before cross-field calls (`put_with_lease` releases the
    // lease table before `put_inner` takes the map), so the ranks pin the
    // one legal nesting direction for future edits.
    inner: RankedRwLock<BTreeMap<String, Entry>>,
    leases: RankedRwLock<BTreeMap<u64, LeaseState>>,
    events: RankedRwLock<Vec<WatchEvent>>,
    clock: AtomicU64,
    next_lease: AtomicU64,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore {
            inner: RankedRwLock::new(LockRank::KvMap, BTreeMap::new()),
            leases: RankedRwLock::new(LockRank::KvLeases, BTreeMap::new()),
            events: RankedRwLock::new(LockRank::KvEvents, Vec::new()),
            clock: AtomicU64::new(0),
            next_lease: AtomicU64::new(0),
        }
    }
}

impl KvStore {
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, event: WatchEvent) {
        self.events.write().push(event);
    }

    fn put_inner(&self, key: &str, value: Bytes, lease: u64) -> u64 {
        let mut map = self.inner.write();
        let version = map.get(key).map(|e| e.version + 1).unwrap_or(1);
        map.insert(
            key.to_owned(),
            Entry {
                value,
                version,
                lease,
            },
        );
        drop(map);
        self.record(WatchEvent::Put {
            key: key.to_owned(),
            version,
        });
        version
    }

    /// Put unconditionally; returns the new version.
    pub fn put(&self, key: &str, value: impl Into<Bytes>) -> u64 {
        self.put_inner(key, value.into(), 0)
    }

    /// Put a key attached to a lease: the key is deleted when the lease
    /// expires or is revoked. Returns `None` if the lease does not exist
    /// (or has already expired).
    pub fn put_with_lease(&self, key: &str, value: impl Into<Bytes>, lease: u64) -> Option<u64> {
        let mut leases = self.leases.write();
        let state = leases.get_mut(&lease)?;
        if !state.keys.iter().any(|k| k == key) {
            state.keys.push(key.to_owned());
        }
        drop(leases);
        Some(self.put_inner(key, value.into(), lease))
    }

    /// Get a value.
    pub fn get(&self, key: &str) -> Option<Entry> {
        self.inner.read().get(key).cloned()
    }

    /// Compare-and-swap on the version; returns Ok(new version) or
    /// Err(current version). `expected = 0` means "key must not exist".
    pub fn cas(&self, key: &str, expected: u64, value: impl Into<Bytes>) -> Result<u64, u64> {
        let mut map = self.inner.write();
        let current = map.get(key).map(|e| e.version).unwrap_or(0);
        if current != expected {
            return Err(current);
        }
        let version = current + 1;
        map.insert(
            key.to_owned(),
            Entry {
                value: value.into(),
                version,
                lease: 0,
            },
        );
        drop(map);
        self.record(WatchEvent::Put {
            key: key.to_owned(),
            version,
        });
        Ok(version)
    }

    /// Delete; returns whether the key existed.
    pub fn delete(&self, key: &str) -> bool {
        let existed = self.inner.write().remove(key).is_some();
        if existed {
            self.record(WatchEvent::Delete {
                key: key.to_owned(),
            });
        }
        existed
    }

    /// All `(key, entry)` pairs under a prefix, key-ordered.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, Entry)> {
        self.inner
            .read()
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    // ---- logical clock & leases (ETCD lease API over logical ticks) ----

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Advance the logical clock by one tick and return the new time.
    /// Lease expiry is evaluated lazily ([`KvStore::expire_due`]), so a
    /// tick alone never mutates keys.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Grant a lease of `ttl` logical ticks; returns its id (≥ 1).
    pub fn lease_grant(&self, ttl: u64) -> u64 {
        let id = self.next_lease.fetch_add(1, Ordering::AcqRel) + 1;
        let ttl = ttl.max(1);
        self.leases.write().insert(
            id,
            LeaseState {
                ttl,
                expires_at: self.now() + ttl,
                keys: Vec::new(),
            },
        );
        id
    }

    /// Refresh a lease to expire `ttl` ticks from now; false if the lease
    /// does not exist (e.g. already expired — a dead node cannot heartbeat
    /// itself back to life).
    pub fn keep_alive(&self, lease: u64) -> bool {
        let now = self.now();
        let mut leases = self.leases.write();
        match leases.get_mut(&lease) {
            Some(state) => {
                state.expires_at = now + state.ttl;
                true
            }
            None => false,
        }
    }

    /// Revoke a lease, deleting its attached keys; false if unknown.
    pub fn lease_revoke(&self, lease: u64) -> bool {
        let Some(state) = self.leases.write().remove(&lease) else {
            return false;
        };
        for key in state.keys {
            self.delete(&key);
        }
        true
    }

    /// Expire all leases whose deadline has passed (deleting their keys);
    /// returns the expired lease ids.
    pub fn expire_due(&self) -> Vec<u64> {
        let now = self.now();
        let due: Vec<u64> = self
            .leases
            .read()
            .iter()
            .filter(|(_, s)| s.expires_at <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in &due {
            self.lease_revoke(*id);
        }
        due
    }

    /// Remaining ticks on a lease (None if unknown).
    pub fn lease_ttl(&self, lease: u64) -> Option<u64> {
        let now = self.now();
        self.leases
            .read()
            .get(&lease)
            .map(|s| s.expires_at.saturating_sub(now))
    }

    // ---- watches ----

    /// Start watching a prefix; events from this moment on are returned by
    /// [`PrefixWatch::poll`].
    pub fn watch_prefix(&self, prefix: &str) -> PrefixWatch {
        PrefixWatch {
            prefix: prefix.to_owned(),
            cursor: self.events.read().len(),
        }
    }

    fn events_since(&self, cursor: usize, prefix: &str) -> (Vec<WatchEvent>, usize) {
        let log = self.events.read();
        let events = log[cursor.min(log.len())..]
            .iter()
            .filter(|e| e.key().starts_with(prefix))
            .cloned()
            .collect();
        (events, log.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_versions() {
        let kv = KvStore::new();
        assert_eq!(kv.put("a", "1"), 1);
        assert_eq!(kv.put("a", "2"), 2);
        let e = kv.get("a").unwrap();
        assert_eq!(e.value, Bytes::from("2"));
        assert_eq!(e.version, 2);
        assert!(kv.get("b").is_none());
    }

    #[test]
    fn cas_semantics() {
        let kv = KvStore::new();
        assert_eq!(kv.cas("k", 0, "init"), Ok(1));
        assert_eq!(kv.cas("k", 0, "again"), Err(1));
        assert_eq!(kv.cas("k", 1, "next"), Ok(2));
        assert_eq!(kv.get("k").unwrap().value, Bytes::from("next"));
    }

    #[test]
    fn prefix_scan_ordered() {
        let kv = KvStore::new();
        kv.put("nodes/2", "b");
        kv.put("nodes/1", "a");
        kv.put("units/1", "x");
        let nodes = kv.scan_prefix("nodes/");
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].0, "nodes/1");
        assert_eq!(nodes[1].0, "nodes/2");
        assert_eq!(kv.scan_prefix("zzz").len(), 0);
    }

    #[test]
    fn delete() {
        let kv = KvStore::new();
        kv.put("a", "1");
        assert!(kv.delete("a"));
        assert!(!kv.delete("a"));
        assert!(kv.is_empty());
    }

    #[test]
    fn concurrent_cas_single_winner() {
        use std::sync::Arc;
        let kv = Arc::new(KvStore::new());
        kv.put("leader", "none");
        let mut handles = Vec::new();
        for i in 0..8 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                kv.cas("leader", 1, format!("node-{i}")).is_ok()
            }));
        }
        let winners = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count();
        assert_eq!(winners, 1);
    }

    #[test]
    fn lease_grant_expire_deletes_keys() {
        let kv = KvStore::new();
        let lease = kv.lease_grant(3);
        assert!(kv.put_with_lease("nodes/0", "addr", lease).is_some());
        assert_eq!(kv.get("nodes/0").unwrap().lease, lease);
        kv.tick();
        kv.tick();
        assert!(kv.expire_due().is_empty(), "not due yet");
        kv.tick();
        assert_eq!(kv.expire_due(), vec![lease]);
        assert!(kv.get("nodes/0").is_none());
        assert!(!kv.keep_alive(lease), "expired lease is gone");
    }

    #[test]
    fn keep_alive_extends_lease() {
        let kv = KvStore::new();
        let lease = kv.lease_grant(2);
        kv.put_with_lease("n", "v", lease).unwrap();
        for _ in 0..10 {
            kv.tick();
            assert!(kv.keep_alive(lease));
            assert!(kv.expire_due().is_empty());
        }
        assert!(kv.get("n").is_some());
        assert_eq!(kv.lease_ttl(lease), Some(2));
    }

    #[test]
    fn revoke_deletes_attached_keys() {
        let kv = KvStore::new();
        let lease = kv.lease_grant(100);
        kv.put_with_lease("a", "1", lease).unwrap();
        kv.put_with_lease("b", "2", lease).unwrap();
        kv.put("c", "3");
        assert!(kv.lease_revoke(lease));
        assert!(!kv.lease_revoke(lease));
        assert!(kv.get("a").is_none() && kv.get("b").is_none());
        assert!(kv.get("c").is_some(), "unleased keys survive");
    }

    #[test]
    fn put_with_unknown_lease_rejected() {
        let kv = KvStore::new();
        assert!(kv.put_with_lease("k", "v", 999).is_none());
        assert!(kv.get("k").is_none());
    }

    #[test]
    fn watch_sees_puts_and_deletes_under_prefix() {
        let kv = KvStore::new();
        kv.put("nodes/0", "before"); // before the watch starts
        let mut watch = kv.watch_prefix("nodes/");
        assert!(watch.poll(&kv).is_empty());
        kv.put("nodes/1", "a");
        kv.put("other/9", "x");
        kv.delete("nodes/0");
        let events = watch.poll(&kv);
        assert_eq!(
            events,
            vec![
                WatchEvent::Put {
                    key: "nodes/1".into(),
                    version: 1
                },
                WatchEvent::Delete {
                    key: "nodes/0".into()
                },
            ]
        );
        assert!(watch.poll(&kv).is_empty(), "poll drains");
    }

    #[test]
    fn watch_observes_lease_expiry() {
        let kv = KvStore::new();
        let lease = kv.lease_grant(1);
        kv.put_with_lease("nodes/3", "addr", lease).unwrap();
        let mut watch = kv.watch_prefix("nodes/");
        kv.tick();
        kv.expire_due();
        let events = watch.poll(&kv);
        assert_eq!(
            events,
            vec![WatchEvent::Delete {
                key: "nodes/3".into()
            }]
        );
    }
}
