//! Bounded model checking for the Crystal runtime's concurrency protocols.
//!
//! This is a from-scratch, std-only, CHESS-style *stateless* explorer: a
//! protocol is written as a small set of virtual threads, each an explicit
//! step machine over shared state where **one step = one atomic action**
//! (one lock acquisition, one atomic RMW, one guarded critical section).
//! The explorer then enumerates schedules by depth-first search over the
//! scheduler's choice points, re-executing the model from its initial
//! state along each recorded prefix — exactly loom's execution model,
//! minus weak-memory simulation (steps interleave under sequential
//! consistency; the nightly TSan job covers ordering-level races, and the
//! `sync` shim keeps the `cfg(loom)` hooks so the real loom can slot in
//! the day a registry route exists).
//!
//! What the explorer *proves*, per model, within its bounds:
//!
//! * every invariant holds in **every reachable interleaving** (not just
//!   the ones a stress test happens to hit),
//! * every final-state check holds on **every completed schedule**, and
//! * no schedule reaches a state where every unfinished thread is
//!   [`Step::Blocked`] — i.e. no deadlock.
//!
//! Bounds: schedules are explored exhaustively up to a context-switch
//! budget ([`Explorer::preemptions`], CHESS-style — a preemption is
//! switching away from a thread that could still run) and a schedule cap
//! ([`Explorer::max_schedules`]). Both widen under `--cfg rock_model`
//! (the dedicated `models` CI job) and via `ROCK_MODEL_PREEMPTIONS` /
//! `ROCK_MODEL_ITERS`, mirroring how loom's own CI jobs are configured.
//! With small models (≤4 threads, ≤20 steps) a preemption bound of 2–3
//! empirically covers every bug CHESS-class checkers find.

use std::fmt;

/// Outcome of driving one thread one atomic step forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Performed one atomic action; thread has more work.
    Ready,
    /// Cannot act now (e.g. a modeled mutex is held, a condition not yet
    /// set). The scheduler must run someone else; if *all* unfinished
    /// threads are blocked, the explorer reports a deadlock.
    Blocked,
    /// Thread finished.
    Done,
}

/// One virtual thread: a resumable step function over the shared state.
/// Implementations keep a program counter in captured state and perform
/// exactly one atomic action per call.
pub type ThreadFn<S> = Box<dyn FnMut(&mut S) -> Step>;

/// A freshly-built instance of a protocol model: shared state, threads,
/// and the properties to check. Rebuilt from scratch for every schedule
/// (stateless exploration), so construction must be deterministic.
pub struct ModelInstance<S> {
    pub state: S,
    pub threads: Vec<ThreadFn<S>>,
    /// Checked after **every** step of every schedule. Return an error
    /// string to fail the run with a schedule trace.
    pub invariant: Box<dyn Fn(&S) -> Result<(), String>>,
    /// Checked once per schedule, after all threads are `Done`.
    pub finally: Box<dyn Fn(&S) -> Result<(), String>>,
}

impl<S> ModelInstance<S> {
    pub fn new(state: S) -> Self {
        ModelInstance {
            state,
            threads: Vec::new(),
            invariant: Box::new(|_| Ok(())),
            finally: Box::new(|_| Ok(())),
        }
    }

    pub fn thread(mut self, f: impl FnMut(&mut S) -> Step + 'static) -> Self {
        self.threads.push(Box::new(f));
        self
    }

    pub fn invariant(mut self, f: impl Fn(&S) -> Result<(), String> + 'static) -> Self {
        self.invariant = Box::new(f);
        self
    }

    pub fn finally(mut self, f: impl Fn(&S) -> Result<(), String> + 'static) -> Self {
        self.finally = Box::new(f);
        self
    }
}

/// A violation found by [`Explorer::check`], carrying the exact schedule
/// (sequence of thread ids) that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelViolation {
    pub model: String,
    pub kind: ViolationKind,
    pub message: String,
    /// Thread ids in execution order up to the violation.
    pub schedule: Vec<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Invariant failed mid-schedule.
    Invariant,
    /// Final-state check failed on a completed schedule.
    Final,
    /// Every unfinished thread reported [`Step::Blocked`].
    Deadlock,
    /// A thread ran more steps than [`Explorer::max_steps`] allows
    /// (livelock / unbounded loop in the model).
    StepOverflow,
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model {}: {:?}: {} (schedule: {:?})",
            self.model, self.kind, self.message, self.schedule
        )
    }
}

/// Summary of one exhausted (or capped) exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    pub model: String,
    pub schedules: u64,
    pub steps: u64,
    /// True when DFS finished inside the schedule cap — every
    /// interleaving within the preemption bound was visited.
    pub exhausted: bool,
}

/// Depth-first schedule enumerator with a CHESS-style preemption bound.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Max context switches away from a still-runnable thread per
    /// schedule. Switches forced by a block/finish are free.
    pub preemptions: usize,
    /// Hard cap on schedules per model (DFS stops there, `exhausted =
    /// false`).
    pub max_schedules: u64,
    /// Per-schedule total step cap — exceeded means a livelock.
    pub max_steps: usize,
}

/// Defaults widen under the dedicated `--cfg rock_model` CI job, like
/// loom's `LOOM_MAX_PREEMPTIONS` profiles.
#[cfg(rock_model)]
const DEFAULTS: Explorer = Explorer {
    preemptions: 3,
    max_schedules: 200_000,
    max_steps: 4_096,
};
#[cfg(not(rock_model))]
const DEFAULTS: Explorer = Explorer {
    preemptions: 2,
    max_schedules: 20_000,
    max_steps: 4_096,
};

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::from_env()
    }
}

impl Explorer {
    /// Compile-time defaults, then `ROCK_MODEL_PREEMPTIONS` /
    /// `ROCK_MODEL_ITERS` overrides.
    pub fn from_env() -> Self {
        let mut e = DEFAULTS;
        if let Some(p) = env_usize("ROCK_MODEL_PREEMPTIONS") {
            e.preemptions = p;
        }
        if let Some(i) = env_usize("ROCK_MODEL_ITERS") {
            e.max_schedules = i as u64;
        }
        e
    }

    /// Explore every interleaving of `build()`'s threads within the
    /// bounds. Returns the exploration summary, or the first violation
    /// with its reproducing schedule.
    pub fn check<S, F>(&self, model: &str, build: F) -> Result<Exploration, ModelViolation>
    where
        F: Fn() -> ModelInstance<S>,
    {
        // The DFS frontier: each entry is a schedule prefix (thread
        // choices) to replay, then extend greedily.
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        let mut schedules = 0u64;
        let mut total_steps = 0u64;
        let mut exhausted = true;

        while let Some(prefix) = stack.pop() {
            if schedules >= self.max_schedules {
                exhausted = false;
                break;
            }
            schedules += 1;
            let steps = self.run_one(model, &build, &prefix, &mut stack)?;
            total_steps += steps;
        }

        Ok(Exploration {
            model: model.to_string(),
            schedules,
            steps: total_steps,
            exhausted,
        })
    }

    /// Run one schedule: follow `prefix`, then schedule greedily
    /// (keep running the current thread while it can run — non-preemptive
    /// choices are free), pushing every unexplored alternative branch
    /// point onto `stack`.
    fn run_one<S, F>(
        &self,
        model: &str,
        build: &F,
        prefix: &[usize],
        stack: &mut Vec<Vec<usize>>,
    ) -> Result<u64, ModelViolation>
    where
        F: Fn() -> ModelInstance<S>,
    {
        let mut inst = build();
        let n = inst.threads.len();
        let mut done = vec![false; n];
        // Threads observed Blocked since the last state change; cleared
        // whenever any thread makes progress.
        let mut blocked = vec![false; n];
        let mut trace: Vec<usize> = Vec::new();
        let mut preemptions_used = 0usize;
        let mut last: Option<usize> = None;
        let mut steps = 0u64;

        let fail = |kind, msg: String, trace: &[usize]| ModelViolation {
            model: model.to_string(),
            kind,
            message: msg,
            schedule: trace.to_vec(),
        };

        loop {
            if done.iter().all(|&d| d) {
                (inst.finally)(&inst.state).map_err(|m| fail(ViolationKind::Final, m, &trace))?;
                return Ok(steps);
            }
            let runnable: Vec<usize> = (0..n).filter(|&t| !done[t] && !blocked[t]).collect();
            if runnable.is_empty() {
                let stuck: Vec<usize> = (0..n).filter(|&t| !done[t]).collect();
                return Err(fail(
                    ViolationKind::Deadlock,
                    format!("threads {stuck:?} all blocked"),
                    &trace,
                ));
            }

            // Choose who runs: replay the prefix first, then greedy.
            let pos = trace.len();
            let choice = if pos < prefix.len() {
                // A replayed choice might name a thread that is blocked or
                // done at this point only if the model is nondeterministic
                // — treat as a hard error to catch bad models.
                let c = prefix[pos];
                if done[c] || blocked[c] {
                    return Err(fail(
                        ViolationKind::Invariant,
                        format!(
                            "schedule replay diverged: thread {c} not runnable \
                             (model construction must be deterministic)"
                        ),
                        &trace,
                    ));
                }
                c
            } else {
                // Greedy default: stay on `last` if runnable (free), else
                // lowest-id runnable (forced switch, also free).
                let default = match last {
                    Some(l) if runnable.contains(&l) => l,
                    _ => runnable[0],
                };
                // Branch: every *other* runnable thread is an alternative
                // — a preemption if `last` could have kept running.
                for &alt in &runnable {
                    if alt == default {
                        continue;
                    }
                    let is_preemption =
                        matches!(last, Some(l) if runnable.contains(&l) && alt != l);
                    if is_preemption && preemptions_used >= self.preemptions {
                        continue;
                    }
                    let mut p = trace.clone();
                    p.push(alt);
                    stack.push(p);
                }
                default
            };

            if matches!(last, Some(l) if l != choice && runnable.contains(&l)) {
                preemptions_used += 1;
            }

            let step = (inst.threads[choice])(&mut inst.state);
            steps += 1;
            trace.push(choice);
            if steps as usize > self.max_steps {
                return Err(fail(
                    ViolationKind::StepOverflow,
                    format!("schedule exceeded {} steps", self.max_steps),
                    &trace,
                ));
            }
            match step {
                Step::Done => {
                    done[choice] = true;
                    blocked.iter_mut().for_each(|b| *b = false);
                    last = None;
                }
                Step::Ready => {
                    // Progress may have unblocked others.
                    blocked.iter_mut().for_each(|b| *b = false);
                    last = Some(choice);
                }
                Step::Blocked => {
                    blocked[choice] = true;
                    last = None;
                }
            }
            (inst.invariant)(&inst.state).map_err(|m| fail(ViolationKind::Invariant, m, &trace))?;
        }
    }
}

/// Convenience wrapper used by the protocol test suite: check with the
/// environment-configured bounds and panic with the reproducing schedule
/// on violation.
pub fn check<S, F>(model: &str, build: F) -> Exploration
where
    F: Fn() -> ModelInstance<S>,
{
    match Explorer::from_env().check(model, build) {
        Ok(ex) => ex,
        Err(v) => panic!("{v}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a "counter" with a modeled non-atomic
    /// read-modify-write. The explorer must find the lost update.
    #[test]
    fn finds_lost_update() {
        #[derive(Default)]
        struct S {
            counter: u32,
            tmp: [u32; 2],
        }
        let incrementer = |id: usize| {
            let mut pc = 0;
            move |s: &mut S| match pc {
                0 => {
                    s.tmp[id] = s.counter; // read
                    pc = 1;
                    Step::Ready
                }
                _ => {
                    s.counter = s.tmp[id] + 1; // write
                    Step::Done
                }
            }
        };
        let err = Explorer {
            preemptions: 2,
            max_schedules: 10_000,
            max_steps: 64,
        }
        .check("lost-update", || {
            ModelInstance::new(S::default())
                .thread(incrementer(0))
                .thread(incrementer(1))
                .finally(|s| {
                    if s.counter == 2 {
                        Ok(())
                    } else {
                        Err(format!("lost update: counter = {}", s.counter))
                    }
                })
        })
        .unwrap_err();
        assert_eq!(err.kind, ViolationKind::Final);
        assert!(err.message.contains("lost update"));
    }

    /// The same protocol with a modeled atomic fetch_add has no bug.
    #[test]
    fn atomic_counter_is_clean() {
        let ex = Explorer {
            preemptions: 3,
            max_schedules: 10_000,
            max_steps: 64,
        }
        .check("atomic-counter", || {
            ModelInstance::new(0u32)
                .thread(|s: &mut u32| {
                    *s += 1;
                    Step::Done
                })
                .thread(|s: &mut u32| {
                    *s += 1;
                    Step::Done
                })
                .finally(|s| {
                    if *s == 2 {
                        Ok(())
                    } else {
                        Err(format!("counter = {s}"))
                    }
                })
        })
        .unwrap_or_else(|v| panic!("{v}"));
        assert!(ex.exhausted);
        assert!(ex.schedules >= 2, "must explore both orders");
    }

    /// Classic AB/BA double-lock: the explorer must report Deadlock.
    #[test]
    fn finds_ab_ba_deadlock() {
        #[derive(Default)]
        struct S {
            a: bool, // mutex A held?
            b: bool, // mutex B held?
        }
        fn locker(first_a: bool) -> impl FnMut(&mut S) -> Step {
            let mut pc = 0;
            move |s: &mut S| {
                let (first, second): (fn(&mut S) -> &mut bool, fn(&mut S) -> &mut bool) = if first_a
                {
                    (|s| &mut s.a, |s| &mut s.b)
                } else {
                    (|s| &mut s.b, |s| &mut s.a)
                };
                match pc {
                    0 => {
                        if *first(s) {
                            return Step::Blocked;
                        }
                        *first(s) = true;
                        pc = 1;
                        Step::Ready
                    }
                    1 => {
                        if *second(s) {
                            return Step::Blocked;
                        }
                        *second(s) = true;
                        pc = 2;
                        Step::Ready
                    }
                    _ => {
                        *second(s) = false;
                        *first(s) = false;
                        Step::Done
                    }
                }
            }
        }
        let err = Explorer {
            preemptions: 2,
            max_schedules: 10_000,
            max_steps: 64,
        }
        .check("ab-ba", || {
            ModelInstance::new(S::default())
                .thread(locker(true))
                .thread(locker(false))
        })
        .unwrap_err();
        assert_eq!(err.kind, ViolationKind::Deadlock);
    }

    /// Rank-ordered locking of the same two mutexes passes exhaustively.
    #[test]
    fn ranked_locking_has_no_deadlock() {
        #[derive(Default)]
        struct S {
            a: bool,
            b: bool,
        }
        fn ordered() -> impl FnMut(&mut S) -> Step {
            let mut pc = 0;
            move |s: &mut S| match pc {
                0 => {
                    if s.a {
                        return Step::Blocked;
                    }
                    s.a = true;
                    pc = 1;
                    Step::Ready
                }
                1 => {
                    if s.b {
                        return Step::Blocked;
                    }
                    s.b = true;
                    pc = 2;
                    Step::Ready
                }
                _ => {
                    s.b = false;
                    s.a = false;
                    Step::Done
                }
            }
        }
        let ex = Explorer {
            preemptions: 3,
            max_schedules: 50_000,
            max_steps: 128,
        }
        .check("ranked", || {
            ModelInstance::new(S::default())
                .thread(ordered())
                .thread(ordered())
        })
        .unwrap_or_else(|v| panic!("{v}"));
        assert!(ex.exhausted);
    }

    #[test]
    fn step_overflow_reports_livelock() {
        let err = Explorer {
            preemptions: 0,
            max_schedules: 4,
            max_steps: 16,
        }
        .check("spin", || {
            ModelInstance::new(()).thread(|_: &mut ()| Step::Ready)
        })
        .unwrap_err();
        assert_eq!(err.kind, ViolationKind::StepOverflow);
    }

    #[test]
    fn env_overrides_parse() {
        let e = Explorer::from_env();
        assert!(e.preemptions >= 1);
        assert!(e.max_schedules >= 1);
    }
}
