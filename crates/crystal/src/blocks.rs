//! Block store with two-level addressing (paper §5.1):
//!
//! "Data objects are partitioned and stored distributedly over a cluster …
//! Crystal develops a two-level addressing model. The first-level metadata
//! always resides in the memory of a cluster … each node maintains the
//! global meta information and knows where to fetch data. … Data at each
//! node is partitioned into blocks, stored as a linked list."
//!
//! The simulation: blocks hold opaque bytes; the directory (level 1) maps
//! `object → [block ids]` and `block → node`; fetching a block owned by a
//! remote node charges a simulated network cost. Per-node blocks are
//! chained (each block records the next block of its object on that node),
//! mirroring the linked-list layout.

use crate::ring::{ConsistentHashRing, NodeId};
use crate::sync::{AtomicU64, LockRank, Ordering, RankedRwLock};
use bytes::Bytes;
use rustc_hash::FxHashMap;

/// Identifies a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

#[derive(Debug, Clone)]
struct Block {
    data: Bytes,
    node: NodeId,
    /// Next block of the same object on the same node (linked-list layout).
    next: Option<BlockId>,
}

/// First-level metadata for one object.
#[derive(Debug, Clone, Default)]
struct ObjectMeta {
    blocks: Vec<BlockId>,
}

/// The block store (a single shared directory — exactly what "first-level
/// metadata always resides in memory of the cluster" gives every node).
#[derive(Debug)]
pub struct BlockStore {
    // Rank order: BlockObjects < BlockData — a reader resolves the
    // directory before the data map (`get_object`); `put_object` takes
    // them one at a time in the other direction, which is legal because
    // it never holds both.
    blocks: RankedRwLock<FxHashMap<BlockId, Block>>,
    objects: RankedRwLock<FxHashMap<String, ObjectMeta>>,
    next_id: AtomicU64,
    /// Simulated bytes transferred across nodes.
    remote_bytes: AtomicU64,
    /// Simulated remote fetches.
    remote_fetches: AtomicU64,
}

impl Default for BlockStore {
    fn default() -> Self {
        BlockStore {
            blocks: RankedRwLock::new(LockRank::BlockData, FxHashMap::default()),
            objects: RankedRwLock::new(LockRank::BlockObjects, FxHashMap::default()),
            next_id: AtomicU64::new(0),
            remote_bytes: AtomicU64::new(0),
            remote_fetches: AtomicU64::new(0),
        }
    }
}

impl BlockStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Store an object split into blocks of `block_size`, placing each
    /// block on the ring owner of `(object, index)`. Returns `None` when
    /// the ring has no nodes to own the blocks (nothing is stored).
    pub fn put_object(
        &self,
        ring: &ConsistentHashRing,
        name: &str,
        data: &[u8],
        block_size: usize,
    ) -> Option<Vec<BlockId>> {
        assert!(block_size > 0);
        if ring.node_count() == 0 {
            return None;
        }
        let mut ids = Vec::new();
        let mut last_on_node: FxHashMap<NodeId, BlockId> = FxHashMap::default();
        let mut blocks = self.blocks.write();
        for (i, chunk) in data.chunks(block_size).enumerate() {
            let node = ring.owner(format!("{name}/{i}").as_bytes())?;
            let id = BlockId(self.next_id.fetch_add(1, Ordering::Relaxed));
            blocks.insert(
                id,
                Block {
                    data: Bytes::copy_from_slice(chunk),
                    node,
                    next: None,
                },
            );
            if let Some(prev) = last_on_node.insert(node, id) {
                if let Some(b) = blocks.get_mut(&prev) {
                    b.next = Some(id);
                }
            }
            ids.push(id);
        }
        drop(blocks);
        self.objects.write().insert(
            name.to_owned(),
            ObjectMeta {
                blocks: ids.clone(),
            },
        );
        Some(ids)
    }

    /// Fetch an object's full contents from the perspective of `reader`:
    /// blocks on other nodes charge remote traffic.
    pub fn get_object(&self, name: &str, reader: NodeId) -> Option<Vec<u8>> {
        let meta = self.objects.read().get(name)?.clone();
        let blocks = self.blocks.read();
        let mut out = Vec::new();
        for id in &meta.blocks {
            let b = blocks.get(id)?;
            if b.node != reader {
                self.remote_bytes
                    .fetch_add(b.data.len() as u64, Ordering::Relaxed);
                self.remote_fetches.fetch_add(1, Ordering::Relaxed);
            }
            out.extend_from_slice(&b.data);
        }
        Some(out)
    }

    /// Which node hosts a block (level-1 lookup).
    pub fn block_node(&self, id: BlockId) -> Option<NodeId> {
        self.blocks.read().get(&id).map(|b| b.node)
    }

    /// Blocks of an object hosted on one node, in chain order.
    pub fn chain_on_node(&self, name: &str, node: NodeId) -> Vec<BlockId> {
        let Some(meta) = self.objects.read().get(name).cloned() else {
            return Vec::new();
        };
        let blocks = self.blocks.read();
        let mine: Vec<BlockId> = meta
            .blocks
            .iter()
            .copied()
            .filter(|id| blocks.get(id).map(|b| b.node) == Some(node))
            .collect();
        // verify chain integrity: each block's `next` is the following one
        let mut chained = Vec::new();
        let mut cur = mine.first().copied();
        while let Some(id) = cur {
            chained.push(id);
            cur = blocks.get(&id).and_then(|b| b.next);
        }
        if chained.len() == mine.len() {
            chained
        } else {
            mine
        }
    }

    /// Total simulated cross-node traffic in bytes.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes.load(Ordering::Relaxed)
    }

    /// Total simulated remote fetches.
    pub fn remote_fetches(&self) -> u64 {
        self.remote_fetches.load(Ordering::Relaxed)
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> ConsistentHashRing {
        let mut r = ConsistentHashRing::new(32);
        for i in 0..n {
            r.add_node(NodeId(i), &format!("10.0.0.{i}"));
        }
        r
    }

    #[test]
    fn roundtrip_object() {
        let store = BlockStore::new();
        let r = ring(4);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let ids = store.put_object(&r, "table/part0", &data, 64).unwrap();
        assert_eq!(ids.len(), 16); // ceil(1000/64)
        let back = store.get_object("table/part0", NodeId(0)).unwrap();
        assert_eq!(back, data);
        assert!(store.get_object("missing", NodeId(0)).is_none());
    }

    #[test]
    fn remote_traffic_accounted() {
        let store = BlockStore::new();
        let r = ring(4);
        let data = vec![7u8; 640];
        store.put_object(&r, "obj", &data, 64).unwrap();
        store.get_object("obj", NodeId(0)).unwrap();
        // with 4 nodes, roughly 3/4 of blocks are remote to node 0
        assert!(store.remote_fetches() > 0);
        assert!(store.remote_bytes() > 0);
        assert!(store.remote_bytes() <= 640);
    }

    #[test]
    fn single_node_no_remote_traffic() {
        let store = BlockStore::new();
        let r = ring(1);
        store.put_object(&r, "obj", &[1, 2, 3, 4], 2).unwrap();
        store.get_object("obj", NodeId(0)).unwrap();
        assert_eq!(store.remote_fetches(), 0);
    }

    #[test]
    fn empty_ring_rejects_put() {
        let store = BlockStore::new();
        let r = ConsistentHashRing::new(8);
        assert!(store.put_object(&r, "obj", &[1, 2, 3], 2).is_none());
        assert_eq!(store.object_count(), 0);
    }

    #[test]
    fn chains_are_per_node_linked_lists() {
        let store = BlockStore::new();
        let r = ring(3);
        let data = vec![0u8; 64 * 30];
        let ids = store.put_object(&r, "obj", &data, 64).unwrap();
        let mut covered = 0usize;
        for n in 0..3 {
            let chain = store.chain_on_node("obj", NodeId(n));
            covered += chain.len();
            for id in &chain {
                assert_eq!(store.block_node(*id), Some(NodeId(n)));
            }
        }
        assert_eq!(covered, ids.len());
    }
}
