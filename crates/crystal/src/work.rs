//! Work units and cost estimation (paper §5.2).
//!
//! "In rule discovery and error detection/correction, each work unit is
//! specified as T = (φ, D_T), where φ is a (partial) REE++ and D_T is a data
//! partition. … During work unit generation, Rock estimates the cost of
//! each work unit using the metadata stored in Crystal."
//!
//! The unit here is deliberately generic: a rule identifier, a partition
//! descriptor, and an estimated cost — the scheduler does not care what the
//! unit computes. The detect/chase/discovery crates construct units with a
//! closure payload when they submit to the [`crate::scheduler::Cluster`].

use serde::{Deserialize, Serialize};

/// Descriptor of a data partition `D_T` (a HyperCube-style virtual block:
/// a relation plus a contiguous tuple-id range; multi-relation rules carry
/// one range per variable, flattened by the producer into multiple units).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    /// Relation index.
    pub rel: u16,
    /// Tuple-id range `[start, end)`.
    pub start: u32,
    pub end: u32,
}

impl Partition {
    pub fn new(rel: u16, start: u32, end: u32) -> Self {
        assert!(start <= end);
        Partition { rel, start, end }
    }

    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Stable placement key: units are distributed "based on the hash of
    /// D_T" (§5.2).
    pub fn placement_hash(&self) -> u32 {
        crate::crc32::crc32(format!("{}/{}..{}", self.rel, self.start, self.end).as_bytes())
    }
}

/// One work unit `T = (φ, D_T)` plus its cost estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Which rule (index into the submitted Σ) this unit evaluates.
    pub rule: u32,
    /// The data partitions bound to the rule's tuple variables.
    pub partitions: Vec<Partition>,
    /// Estimated cost (abstract units; drives initial placement order).
    pub est_cost: f64,
    /// Opaque producer tag carried through scheduling untouched. Discovery
    /// uses it to name the parent frontier entry whose satisfaction bitset
    /// the worker extends, so siblings share one read-only parent.
    #[serde(default)]
    pub payload: u64,
}

impl WorkUnit {
    pub fn new(rule: u32, partitions: Vec<Partition>) -> Self {
        WorkUnit {
            rule,
            partitions,
            est_cost: 1.0,
            payload: 0,
        }
    }

    /// Attach a producer tag (builder-style).
    pub fn with_payload(mut self, payload: u64) -> Self {
        self.payload = payload;
        self
    }

    /// Placement hash combines all partitions.
    pub fn placement_hash(&self) -> u32 {
        let mut h = 0u32;
        for p in &self.partitions {
            h = h.rotate_left(13) ^ p.placement_hash();
        }
        h ^ self.rule
    }
}

/// Metadata-driven cost estimation (§5.2 strategy 2). Inputs come from
/// `rock_data::TableStats`; the estimate multiplies partition sizes (join
/// fan-out) and scales by predicate selectivity and per-ML-inference cost.
#[derive(Debug, Clone, Default)]
pub struct CostEstimator {
    /// Estimated equality-join selectivity of the rule's cheap predicates.
    pub selectivity: f64,
    /// Number of ML predicates in the rule.
    pub ml_predicates: usize,
    /// Declared per-inference cost of the most expensive model in the rule.
    pub ml_unit_cost: f64,
}

impl CostEstimator {
    pub fn new(selectivity: f64, ml_predicates: usize, ml_unit_cost: f64) -> Self {
        CostEstimator {
            selectivity: selectivity.clamp(0.0, 1.0),
            ml_predicates,
            ml_unit_cost,
        }
    }

    /// Estimate the cost of one unit.
    pub fn estimate(&self, unit: &WorkUnit) -> f64 {
        let cartesian: f64 = unit
            .partitions
            .iter()
            .map(|p| p.len().max(1) as f64)
            .product();
        // cheap-predicate pass + surviving pairs hitting ML predicates
        let survivors = cartesian * self.selectivity.max(1e-9);
        cartesian + survivors * self.ml_predicates as f64 * self.ml_unit_cost.max(0.0)
    }

    /// Estimate and record into the unit.
    pub fn annotate(&self, unit: &mut WorkUnit) {
        unit.est_cost = self.estimate(unit);
    }
}

/// Split a relation of `rows` tuples into `target_units` roughly equal
/// partitions (HyperCube's virtual-block division; §5.3).
pub fn partition_range(rel: u16, rows: u32, target_units: u32) -> Vec<Partition> {
    if rows == 0 {
        return Vec::new();
    }
    let units = target_units.clamp(1, rows);
    let base = rows / units;
    let extra = rows % units;
    let mut out = Vec::with_capacity(units as usize);
    let mut start = 0;
    for i in 0..units {
        let len = base + u32::from(i < extra);
        out.push(Partition::new(rel, start, start + len));
        start += len;
    }
    debug_assert_eq!(start, rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_range_covers_exactly() {
        let parts = partition_range(0, 103, 10);
        assert_eq!(parts.len(), 10);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, 103);
        let total: u32 = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 103);
        // contiguity
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // sizes differ by at most 1
        let lens: Vec<u32> = parts.iter().map(|p| p.len()).collect();
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partition_range_edge_cases() {
        assert!(partition_range(0, 0, 4).is_empty());
        let one = partition_range(0, 3, 10);
        assert_eq!(one.len(), 3, "never more units than rows");
    }

    #[test]
    fn cost_scales_with_partition_product_and_ml() {
        let est_cheap = CostEstimator::new(0.01, 0, 0.0);
        let est_ml = CostEstimator::new(0.01, 1, 100.0);
        let unit = WorkUnit::new(
            0,
            vec![Partition::new(0, 0, 100), Partition::new(0, 0, 100)],
        );
        let c0 = est_cheap.estimate(&unit);
        let c1 = est_ml.estimate(&unit);
        assert!(c1 > c0);
        assert!((c0 - 10_000.0).abs() < 1e-6);
        let small = WorkUnit::new(0, vec![Partition::new(0, 0, 10), Partition::new(0, 0, 10)]);
        assert!(est_ml.estimate(&small) < c1);
    }

    #[test]
    fn placement_hash_stable_and_distinct() {
        let a = WorkUnit::new(0, vec![Partition::new(0, 0, 10)]);
        let b = WorkUnit::new(0, vec![Partition::new(0, 10, 20)]);
        assert_eq!(a.placement_hash(), a.placement_hash());
        assert_ne!(a.placement_hash(), b.placement_hash());
    }

    #[test]
    fn payload_roundtrips_and_defaults_to_zero() {
        let unit = WorkUnit::new(3, vec![Partition::new(0, 0, 5)]).with_payload(42);
        assert_eq!(unit.payload, 42);
        let json = serde_json::to_string(&unit).unwrap();
        let back: WorkUnit = serde_json::from_str(&json).unwrap();
        assert_eq!(back, unit);
        // pre-payload serializations still deserialize (field defaults)
        let legacy = r#"{"rule":1,"partitions":[],"est_cost":1.0}"#;
        let old: WorkUnit = serde_json::from_str(legacy).unwrap();
        assert_eq!(old.payload, 0);
    }

    #[test]
    fn annotate_records_cost() {
        let mut unit = WorkUnit::new(2, vec![Partition::new(1, 0, 50)]);
        CostEstimator::new(0.1, 0, 0.0).annotate(&mut unit);
        assert!((unit.est_cost - 50.0).abs() < 1e-9);
    }
}
