//! Bounded model-checking certificates for the five concurrency protocols
//! the Crystal runtime (and its dependents) stake correctness on. Each
//! test builds a small step-machine model of the protocol — one step per
//! atomic action, exactly as implemented — and lets
//! [`rock_crystal::model`] explore **every** interleaving within the
//! configured preemption bound, checking the protocol's invariant after
//! every step and its final-state contract on every completed schedule.
//!
//! These run in the regular test suite with the narrow default bounds and
//! in the dedicated `models` CI job with `--cfg rock_model` widening
//! (plus `ROCK_MODEL_PREEMPTIONS` / `ROCK_MODEL_ITERS` overrides).
//!
//! | model | protocol under certificate |
//! |-------|----------------------------|
//! | `steal-quarantine-alive`  | scheduler work-stealing + crash quarantine + alive-bitmap handshake: first `settled` swap wins, unit commits exactly once |
//! | `lease-keepalive-expiry`  | kvstore lease renewal vs. expiry sweep: lock-atomic check+renew never resurrects a revoked lease |
//! | `speculative-first-writer`| speculative chase commit: two executors, one cell — first writer wins, no torn or double commit |
//! | `column-cache-version`    | `ColumnCache` version keying: a version-matched snapshot never serves stale data (uniqueness check load-bearing) |
//! | `sharded-memo`            | 16-shard (modeled: 2) registry memo: hit and miss paths agree with the oracle under shard races |

use rock_crystal::model::{check, ModelInstance, Step};

/// Scheduler handshake (scheduler.rs): a worker publishes liveness via the
/// alive bitmap; the failure detector quarantines units of workers it
/// suspects dead and resubmits them. Both the original execution and the
/// resubmission race to commit through one `settled` swap (AcqRel in the
/// implementation). Certificate: the unit commits exactly once in every
/// interleaving — no double execution, no lost unit.
#[test]
fn steal_quarantine_alive_handshake() {
    #[derive(Default)]
    struct S {
        alive: bool,
        settled: bool,
        commits: u32,
        result: Option<u64>,
    }
    let ex = check("steal-quarantine-alive", || {
        ModelInstance::new(S::default())
            .thread({
                // worker: heartbeat, execute, then settle-or-lose
                let mut pc = 0;
                let mut computed = 0u64;
                move |s: &mut S| match pc {
                    0 => {
                        s.alive = true; // Release store in the implementation
                        pc = 1;
                        Step::Ready
                    }
                    1 => {
                        computed = 42; // run the unit (no shared state)
                        pc = 2;
                        Step::Ready
                    }
                    _ => {
                        // settled.swap(true, AcqRel): first swapper commits
                        if !s.settled {
                            s.settled = true;
                            s.commits += 1;
                            s.result = Some(computed);
                        }
                        Step::Done
                    }
                }
            })
            .thread({
                // failure detector: suspect, quarantine, resubmit elsewhere
                let mut pc = 0;
                let mut suspected = false;
                move |s: &mut S| match pc {
                    0 => {
                        // Acquire load of the alive bit: a worker observed
                        // alive is left alone
                        suspected = !s.alive;
                        pc = 1;
                        Step::Ready
                    }
                    _ => {
                        if suspected && !s.settled {
                            // resubmitted unit executed on another node,
                            // committing through the same settled swap
                            s.settled = true;
                            s.commits += 1;
                            s.result = Some(42);
                        }
                        Step::Done
                    }
                }
            })
            .invariant(|s| {
                if s.commits <= 1 {
                    Ok(())
                } else {
                    Err(format!("unit committed {} times", s.commits))
                }
            })
            .finally(|s| match (s.commits, s.result) {
                (1, Some(42)) => Ok(()),
                (c, r) => Err(format!("unit lost or torn: commits={c} result={r:?}")),
            })
    });
    assert!(ex.exhausted, "exploration must be exhaustive within bounds");
}

/// Lease protocol (kvstore.rs): the holder renews under the lease-table
/// lock; the expiry sweep revokes under the same lock, and only once
/// `now` passes the recorded expiry. Check+renew and check+revoke are
/// each one critical section (one model step — exactly the atomicity the
/// lock buys). Certificate: a revoked lease is never resurrected — the
/// holder's renewal either lands while the lease is live (and then the
/// sweep can no longer expire it) or fails visibly after revocation.
#[test]
fn lease_keepalive_vs_expiry() {
    #[derive(Default)]
    struct S {
        locked: bool,
        now: u64,
        expiry: u64,
        renewed: bool,
        revoked: bool,
    }
    let build = || {
        ModelInstance::new(S {
            expiry: 1,
            ..S::default()
        })
        .thread({
            // holder: keep-alive renewal
            let mut pc = 0;
            move |s: &mut S| match pc {
                0 => {
                    if s.locked {
                        return Step::Blocked;
                    }
                    s.locked = true;
                    pc = 1;
                    Step::Ready
                }
                1 => {
                    // one critical section: check + renew; a lease gone
                    // from the table fails the renewal, it never extends
                    if !s.revoked {
                        s.expiry = s.now + 2;
                        s.renewed = true;
                    }
                    pc = 2;
                    Step::Ready
                }
                _ => {
                    s.locked = false;
                    Step::Done
                }
            }
        })
        .thread({
            // expiry sweep: tick the clock, then revoke if expired
            let mut pc = 0;
            move |s: &mut S| match pc {
                0 => {
                    s.now += 2;
                    pc = 1;
                    Step::Ready
                }
                1 => {
                    if s.locked {
                        return Step::Blocked;
                    }
                    s.locked = true;
                    pc = 2;
                    Step::Ready
                }
                2 => {
                    // one critical section: check + revoke
                    if s.now > s.expiry {
                        s.revoked = true;
                    }
                    pc = 3;
                    Step::Ready
                }
                _ => {
                    s.locked = false;
                    Step::Done
                }
            }
        })
        .invariant(|s| {
            if s.renewed && s.revoked {
                return Err("lease both renewed and revoked (zombie)".to_owned());
            }
            if s.revoked && s.expiry >= s.now {
                return Err(format!(
                    "revoked a live lease: expiry {} >= now {}",
                    s.expiry, s.now
                ));
            }
            Ok(())
        })
        .finally(|s| {
            if s.locked {
                return Err("lease-table lock leaked".to_owned());
            }
            if s.renewed == s.revoked {
                return Err(format!(
                    "exactly one outcome expected: renewed={} revoked={}",
                    s.renewed, s.revoked
                ));
            }
            Ok(())
        })
    };
    let ex = check("lease-keepalive-expiry", build);
    assert!(ex.exhausted);
    assert!(ex.schedules >= 2, "both lock orders must be explored");
}

/// Speculative chase commit: two speculative executors compute a repair
/// for the same cell and race to commit. The commit is a single swap on a
/// claim word (first-writer-wins); the loser discards its result.
/// Certificate: exactly one commit, and the committed value is the
/// winner's own — never a torn mix.
#[test]
fn speculative_first_writer_wins() {
    #[derive(Default)]
    struct S {
        claimed_by: Option<usize>,
        cell: Option<(usize, u64)>,
        commits: u32,
    }
    let speculator = |id: usize| {
        let mut pc = 0;
        let mut value = 0u64;
        move |s: &mut S| match pc {
            0 => {
                value = 10 + id as u64; // speculative evaluation, private
                pc = 1;
                Step::Ready
            }
            _ => {
                // claim.swap: first writer installs value and id together
                if s.claimed_by.is_none() {
                    s.claimed_by = Some(id);
                    s.cell = Some((id, value));
                    s.commits += 1;
                }
                Step::Done
            }
        }
    };
    let ex = check("speculative-first-writer", || {
        ModelInstance::new(S::default())
            .thread(speculator(0))
            .thread(speculator(1))
            .invariant(|s| {
                if s.commits > 1 {
                    return Err("double commit".to_owned());
                }
                match (s.claimed_by, s.cell) {
                    (Some(w), Some((id, v))) if id != w || v != 10 + w as u64 => {
                        Err(format!("torn commit: winner {w}, cell ({id}, {v})"))
                    }
                    (None, Some(_)) => Err("cell written without a claim".to_owned()),
                    _ => Ok(()),
                }
            })
            .finally(|s| {
                if s.commits == 1 {
                    Ok(())
                } else {
                    Err(format!("{} commits", s.commits))
                }
            })
    });
    assert!(ex.exhausted);
}

/// Shared scaffolding for the two `ColumnCache` models: an explicit heap
/// of `Arc<ColumnSet>` allocations so in-place mutation of a snapshot a
/// caller still holds is observable.
#[derive(Default)]
struct CacheState {
    /// Outstanding `&Relation` shared borrows — `write_cell` runs under
    /// `&mut Relation`, so it blocks while any reader is inside.
    borrows: u32,
    version: u64,
    truth: u64,
    /// Arc allocations (ColumnSet payloads), addressed by index.
    heap: Vec<u64>,
    /// The cache slot: (keyed version, heap index).
    snapshot: Option<(u64, usize)>,
    /// Caller-held clones: (heap index, value observed at serve time).
    /// Entries outlive the borrow — callers keep the Arc after returning.
    holds: Vec<(usize, u64)>,
}

impl CacheState {
    fn arc_is_unique(&self, idx: usize) -> bool {
        !self.holds.iter().any(|(i, _)| *i == idx)
    }
}

fn cache_reader() -> impl FnMut(&mut CacheState) -> Step {
    let mut pc = 0;
    let mut v = 0u64;
    let mut held: Option<(usize, u64)> = None;
    move |s: &mut CacheState| match pc {
        0 => {
            // enter get_or_build: take the shared borrow, Acquire-load
            // the version (nothing bumps it while the borrow is out)
            s.borrows += 1;
            v = s.version;
            pc = 1;
            Step::Ready
        }
        1 => {
            // read lock: serve on version match, cloning the Arc out
            if let Some((ver, idx)) = s.snapshot {
                if ver == v {
                    held = Some((idx, s.heap[idx]));
                    s.holds.push((idx, s.heap[idx]));
                    pc = 3;
                    return Step::Ready;
                }
            }
            pc = 2;
            Step::Ready
        }
        2 => {
            // miss: build a private allocation from the rows, then take
            // the write lock and install last-write-wins, keyed by v;
            // the caller keeps its own clone of the installed Arc
            let idx = s.heap.len();
            s.heap.push(s.truth);
            s.snapshot = Some((v, idx));
            held = Some((idx, s.heap[idx]));
            s.holds.push((idx, s.heap[idx]));
            pc = 3;
            Step::Ready
        }
        3 => {
            // return: release the borrow, Arc clone still held
            s.borrows -= 1;
            pc = 4;
            Step::Ready
        }
        _ => {
            // caller eventually drops its clone
            if let Some(entry) = held.take() {
                if let Some(pos) = s.holds.iter().position(|e| *e == entry) {
                    s.holds.remove(pos);
                }
            }
            Step::Done
        }
    }
}

/// `ColumnCache` (rock-data column.rs): readers race to rebuild a
/// version-keyed snapshot under a shared borrow; `write_cell` runs under
/// `&mut Relation` (modeled: blocks until no borrows are out) and writes
/// through only when the snapshot is version-fresh AND uniquely owned
/// (`Arc::get_mut`), invalidating otherwise. Certificate: a snapshot
/// matching the current version always equals the current data, and an
/// Arc a caller was served never mutates under it. The companion test
/// below shows the uniqueness check is load-bearing.
#[test]
fn column_cache_version_protocol() {
    let write_cell = || {
        let mut pc = 0;
        move |s: &mut CacheState| match pc {
            0 => {
                if s.borrows > 0 {
                    return Step::Blocked; // &mut Relation excludes readers
                }
                // exclusive section: mutate the row, then update the cache
                s.truth += 1;
                match s.snapshot {
                    Some((ver, idx)) if ver == s.version && s.arc_is_unique(idx) => {
                        s.heap[idx] = s.truth; // Arc::get_mut: write through
                    }
                    _ => s.version += 1, // shared or stale: invalidate
                }
                pc = 1;
                Step::Done
            }
            _ => Step::Done,
        }
    };
    let ex = check("column-cache-version", || {
        ModelInstance::new(CacheState::default())
            .thread(cache_reader())
            .thread(cache_reader())
            .thread(write_cell())
            .invariant(|s| {
                if let Some((ver, idx)) = s.snapshot {
                    if ver == s.version && s.heap[idx] != s.truth {
                        return Err(format!(
                            "version-matched snapshot is stale: holds {}, truth {}",
                            s.heap[idx], s.truth
                        ));
                    }
                }
                for (idx, seen) in &s.holds {
                    if s.heap[*idx] != *seen {
                        return Err(format!(
                            "served snapshot mutated under the caller: saw {seen}, now {}",
                            s.heap[*idx]
                        ));
                    }
                }
                Ok(())
            })
            .finally(|s| {
                if s.borrows != 0 || !s.holds.is_empty() {
                    return Err("borrow or Arc clone leaked".to_owned());
                }
                Ok(())
            })
    });
    assert!(ex.exhausted);
    assert!(
        ex.schedules >= 3,
        "reader/reader/writer races must interleave"
    );
}

/// Registry memo (rock-ml registry.rs): predictions are memoized in
/// sharded maps. Two threads race the same key (same shard) while a third
/// works an independent shard. Certificate: whether a thread takes the hit
/// path or the miss path, it returns the oracle value, and shards only
/// ever hold oracle entries (adopt-on-race, never overwrite).
#[test]
fn sharded_memo_hit_and_miss_agree() {
    const fn oracle(k: u64) -> u64 {
        k * 10 + 7
    }
    #[derive(Default)]
    struct S {
        shards: [Option<(u64, u64)>; 2],
        results: Vec<(u64, u64)>,
    }
    let prober = |key: u64| {
        let mut pc = 0;
        let mut computed = 0u64;
        move |s: &mut S| {
            let shard = (key % 2) as usize;
            match pc {
                0 => {
                    // locked shard probe
                    if let Some((k, v)) = s.shards[shard] {
                        if k == key {
                            s.results.push((key, v)); // hit path
                            return Step::Done;
                        }
                    }
                    pc = 1;
                    Step::Ready
                }
                1 => {
                    computed = oracle(key); // model evaluation, off-lock
                    pc = 2;
                    Step::Ready
                }
                _ => {
                    // locked insert: adopt a racing winner's entry
                    match s.shards[shard] {
                        Some((k, v)) if k == key => s.results.push((key, v)),
                        _ => {
                            s.shards[shard] = Some((key, computed));
                            s.results.push((key, computed));
                        }
                    }
                    Step::Done
                }
            }
        }
    };
    let ex = check("sharded-memo", || {
        ModelInstance::new(S::default())
            .thread(prober(0))
            .thread(prober(0)) // same key: races the same shard
            .thread(prober(1)) // independent shard
            .invariant(|s| {
                for entry in s.shards.iter().flatten() {
                    let (k, v) = *entry;
                    if v != oracle(k) {
                        return Err(format!("shard holds ({k}, {v}), oracle {}", oracle(k)));
                    }
                }
                Ok(())
            })
            .finally(|s| {
                if s.results.len() != 3 {
                    return Err(format!("{} results, expected 3", s.results.len()));
                }
                for (k, v) in &s.results {
                    if *v != oracle(*k) {
                        return Err(format!("probe({k}) returned {v}, oracle {}", oracle(*k)));
                    }
                }
                Ok(())
            })
    });
    assert!(ex.exhausted);
}

/// Negative control: break the column-cache protocol by removing the
/// `Arc::get_mut` uniqueness check — write through into a version-fresh
/// snapshot even while a caller still holds a clone of it. The explorer
/// must find the interleaving where the caller's supposedly-immutable
/// snapshot mutates under it. This pins the explorer's power — if this
/// test ever passes silently, the models above prove nothing.
#[test]
fn column_cache_without_uniqueness_check_fails() {
    let broken_write_cell = || {
        let mut pc = 0;
        move |s: &mut CacheState| match pc {
            0 => {
                if s.borrows > 0 {
                    return Step::Blocked;
                }
                s.truth += 1;
                match s.snapshot {
                    // BUG under model: no arc_is_unique(idx) guard
                    Some((ver, idx)) if ver == s.version => {
                        s.heap[idx] = s.truth;
                    }
                    _ => s.version += 1,
                }
                pc = 1;
                Step::Done
            }
            _ => Step::Done,
        }
    };
    let result = rock_crystal::model::Explorer::from_env().check("column-cache-broken", || {
        ModelInstance::new(CacheState::default())
            .thread(cache_reader())
            .thread(broken_write_cell())
            .invariant(|s| {
                for (idx, seen) in &s.holds {
                    if s.heap[*idx] != *seen {
                        return Err(format!(
                            "served snapshot mutated under the caller: saw {seen}, now {}",
                            s.heap[*idx]
                        ));
                    }
                }
                Ok(())
            })
    });
    let violation = result.expect_err("the broken protocol must be caught");
    assert_eq!(
        violation.kind,
        rock_crystal::model::ViolationKind::Invariant,
        "expected the mutated-under-caller invariant to fire: {violation}"
    );
}
