//! Concurrency regression test for the sharded `ModelRegistry` memo: the
//! hit path and the miss path must agree with the classifier under
//! contention, and once every key has been seen, the memo must answer
//! everything without another inference.
//!
//! The bounded model-checking certificate lives in
//! `rock-crystal/tests/model_protocols.rs` (`sharded-memo`); this test
//! drives the real 16-shard implementation with raw `std` threads (the
//! build carries no loom), so shard lock contention, the benign
//! double-compute race on a shared miss, and cross-shard independence all
//! execute for real.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rock_data::Value;
use rock_ml::{ModelRegistry, PairClassifier};

/// Deterministic classifier that counts how often real inference runs.
struct CountingModel {
    calls: AtomicU64,
}

fn raw_score(a: &[Value], b: &[Value]) -> f64 {
    let pick = |vs: &[Value]| match vs.first() {
        Some(Value::Int(n)) => *n,
        _ => 0,
    };
    ((pick(a) * 31 + pick(b)).rem_euclid(10)) as f64 / 10.0
}

impl PairClassifier for CountingModel {
    fn score(&self, a: &[Value], b: &[Value]) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        raw_score(a, b)
    }

    fn cost(&self) -> f64 {
        1.0
    }
}

const THREADS: usize = 8;
const KEYS: i64 = 32;
const REPS: usize = 4;

#[test]
fn memo_hit_and_miss_paths_agree_under_contention() {
    let model = Arc::new(CountingModel {
        calls: AtomicU64::new(0),
    });
    let reg = ModelRegistry::new();
    let id = reg.register_pair("counting", Arc::clone(&model) as _);

    let pairs: Vec<(Vec<Value>, Vec<Value>)> = (0..KEYS)
        .map(|i| (vec![Value::Int(i)], vec![Value::Int(i * 7 + 1)]))
        .collect();

    // miss storm: every thread sweeps every key, offset so the first
    // touches of each key are spread across threads and shards race
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (reg, pairs) = (&reg, &pairs);
            scope.spawn(move || {
                for rep in 0..REPS {
                    for k in 0..pairs.len() {
                        let (a, b) = &pairs[(k + t * 5 + rep) % pairs.len()];
                        let expect = raw_score(a, b) >= 0.5;
                        assert_eq!(
                            reg.predict_pair(id, a, b),
                            expect,
                            "hit/miss paths disagree for {a:?} / {b:?}"
                        );
                        assert_eq!(reg.score_pair(id, a, b), raw_score(a, b));
                    }
                }
            });
        }
    });

    // every key was truly inferred at least once, and the benign race on
    // a shared miss is bounded: never more computes than thread×key pairs
    let after_storm = model.calls.load(Ordering::Relaxed);
    assert!(after_storm >= KEYS as u64, "memo invented results");
    assert!(
        after_storm <= (THREADS as u64) * 2 * KEYS as u64,
        "memo never hit: {after_storm} raw inferences"
    );

    // hit storm: the memo is fully populated, so no inference may run
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (reg, pairs) = (&reg, &pairs);
            scope.spawn(move || {
                for (a, b) in pairs.iter() {
                    assert_eq!(reg.predict_pair(id, a, b), raw_score(a, b) >= 0.5);
                    assert_eq!(reg.score_pair(id, a, b), raw_score(a, b));
                }
            });
        }
    });
    assert_eq!(
        model.calls.load(Ordering::Relaxed),
        after_storm,
        "a fully-populated memo must serve pure hits"
    );
    assert!(reg.meter.memo_hits() >= (THREADS * 2 * KEYS as usize) as u64);

    // clear_memo forces the miss path again — results must not change
    reg.clear_memo();
    let (a, b) = &pairs[0];
    assert_eq!(reg.predict_pair(id, a, b), raw_score(a, b) >= 0.5);
    assert!(model.calls.load(Ordering::Relaxed) > after_storm);
}
