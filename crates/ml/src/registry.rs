//! The model registry and cost accounting.
//!
//! REE++ rules reference ML models *by name* (`MER`, `Maddr`, `Mrank`, …);
//! the registry resolves names to model instances at evaluation time — the
//! "ML library" Crystal maintains (paper §5.1: "Crystal maintains various
//! pre-trained models for different tasks and domains").
//!
//! Two cross-cutting concerns live here:
//! * **Memoization / pre-computation** (§5.4 "ML predication": "Rock
//!   pre-computes the results in advance once the ML predicates are
//!   ready") — inference results are cached keyed by input hashes, so the
//!   chase never pays for the same inference twice.
//! * **Cost metering** — every inference adds the model's declared cost to
//!   a [`CostMeter`]. The benchmark harness reads it to reproduce the
//!   paper's *relative* runtime shapes (e.g. a T5-class model is ~10⁴×
//!   a similarity kernel) without actually running transformer inference.

use crate::correlation::{CorrelationModel, ValuePredictor};
use crate::features::fnv1a;
use crate::her::HerModel;
use crate::pair::PairClassifier;
use crate::rank::RankModel;
use rock_crystal::sync::{
    Arc, AtomicU64, LockRank, Ordering, RankedMutex, RankedMutexGuard, RankedRwLock,
};
use rock_data::Value;
use rustc_hash::FxHashMap;

/// Identifier of a registered model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub u32);

/// Accumulates modeled inference cost (in abstract cost units) and
/// inference counts. Thread-safe; cost is stored in milli-units.
#[derive(Debug, Default)]
pub struct CostMeter {
    milli_cost: AtomicU64,
    inferences: AtomicU64,
    memo_hits: AtomicU64,
    contentions: AtomicU64,
}

impl CostMeter {
    pub fn add(&self, cost: f64) {
        self.milli_cost
            .fetch_add((cost * 1000.0) as u64, Ordering::Relaxed);
        self.inferences.fetch_add(1, Ordering::Relaxed);
    }

    pub fn hit(&self) {
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Total modeled cost units.
    pub fn cost(&self) -> f64 {
        self.milli_cost.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Number of actual (non-memoized) inferences.
    pub fn inferences(&self) -> u64 {
        self.inferences.load(Ordering::Relaxed)
    }

    /// Number of memoized lookups.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Record one contended memo-shard acquisition (a `try_lock` that had
    /// to fall back to blocking).
    pub fn contend(&self) {
        self.contentions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of contended memo-shard acquisitions — with the sharded memo
    /// this should stay near zero even under parallel chase workers.
    pub fn contentions(&self) -> u64 {
        self.contentions.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.milli_cost.store(0, Ordering::Relaxed);
        self.inferences.store(0, Ordering::Relaxed);
        self.memo_hits.store(0, Ordering::Relaxed);
        self.contentions.store(0, Ordering::Relaxed);
    }
}

enum Model {
    Pair(Arc<dyn PairClassifier>),
    Rank(Arc<RankModel>),
    Correlation(Arc<CorrelationModel>),
    Predictor(Arc<ValuePredictor>),
    Her(Arc<HerModel>),
}

/// Number of lock shards for the inference memos. Chase workers hash to
/// shards by input, so concurrent lookups of different pairs rarely touch
/// the same mutex.
const MEMO_SHARDS: usize = 16;

/// Shard index for a memo key: multiply-shift over the two input hashes.
fn memo_shard(h1: u64, h2: u64) -> usize {
    (((h1 ^ h2).wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 60) as usize & (MEMO_SHARDS - 1)
}

/// Thread-safe registry of named models with memoized inference.
pub struct ModelRegistry {
    // Rank order: RegistryModels < RegistryNames (`register` holds the
    // model table while inserting into the name index) < RegistryFilters
    // < RegistryMemo. All 16 memo shards share one rank — a thread never
    // holds two shards at once.
    models: RankedRwLock<Vec<(String, Model)>>,
    by_name: RankedRwLock<FxHashMap<String, ModelId>>,
    memo_bool: Vec<RankedMutex<FxHashMap<(ModelId, u64, u64), bool>>>,
    memo_score: Vec<RankedMutex<FxHashMap<(ModelId, u64, u64), f64>>>,
    /// Blocking filters (§5.3 filter-and-verify): when a model has a
    /// filter, pairs outside it short-circuit to `false` without inference
    /// — LSH guarantees matches are in the filter with high probability.
    /// Read-mostly after precomputation, hence the `RwLock`.
    block_filters: RankedRwLock<FxHashMap<ModelId, rustc_hash::FxHashSet<(u64, u64)>>>,
    pub meter: CostMeter,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.models.read().len())
            .field("cost", &self.meter.cost())
            .finish()
    }
}

fn hash_values(vs: &[Value]) -> u64 {
    let mut buf = String::new();
    for v in vs {
        buf.push_str(&format!("{v:?}\u{1}"));
    }
    fnv1a(buf.as_bytes())
}

impl ModelRegistry {
    pub fn new() -> Self {
        ModelRegistry {
            models: RankedRwLock::new(LockRank::RegistryModels, Vec::new()),
            by_name: RankedRwLock::new(LockRank::RegistryNames, FxHashMap::default()),
            memo_bool: (0..MEMO_SHARDS)
                .map(|_| RankedMutex::new(LockRank::RegistryMemo, FxHashMap::default()))
                .collect(),
            memo_score: (0..MEMO_SHARDS)
                .map(|_| RankedMutex::new(LockRank::RegistryMemo, FxHashMap::default()))
                .collect(),
            block_filters: RankedRwLock::new(LockRank::RegistryFilters, FxHashMap::default()),
            meter: CostMeter::default(),
        }
    }

    /// Lock one memo shard, counting contended acquisitions.
    fn lock_shard<'a, T>(
        &self,
        shards: &'a [RankedMutex<T>],
        idx: usize,
    ) -> RankedMutexGuard<'a, T> {
        match shards[idx].try_lock() {
            Some(g) => g,
            None => {
                self.meter.contend();
                shards[idx].lock()
            }
        }
    }

    /// Hash key of a value vector — the blocking layer builds its filter
    /// sets from these.
    pub fn pair_key(vs: &[Value]) -> u64 {
        hash_values(vs)
    }

    /// Install a blocking filter for a pair model: `predict_pair` returns
    /// `false` without inference for pairs outside `candidates`.
    pub fn set_block_filter(&self, id: ModelId, candidates: rustc_hash::FxHashSet<(u64, u64)>) {
        self.block_filters.write().insert(id, candidates);
    }

    /// Remove a model's blocking filter.
    pub fn clear_block_filter(&self, id: ModelId) {
        self.block_filters.write().remove(&id);
    }

    /// Whether a blocking filter is installed for this model — the
    /// semi-naive chase only trusts block-mate pruning when the full
    /// filter-and-verify pass ran.
    pub fn has_block_filter(&self, id: ModelId) -> bool {
        self.block_filters.read().contains_key(&id)
    }

    fn register(&self, name: &str, model: Model) -> ModelId {
        let mut models = self.models.write();
        let id = ModelId(models.len() as u32);
        models.push((name.to_owned(), model));
        self.by_name.write().insert(name.to_owned(), id);
        id
    }

    pub fn register_pair(&self, name: &str, m: Arc<dyn PairClassifier>) -> ModelId {
        self.register(name, Model::Pair(m))
    }

    pub fn register_rank(&self, name: &str, m: Arc<RankModel>) -> ModelId {
        self.register(name, Model::Rank(m))
    }

    pub fn register_correlation(&self, name: &str, m: Arc<CorrelationModel>) -> ModelId {
        self.register(name, Model::Correlation(m))
    }

    pub fn register_predictor(&self, name: &str, m: Arc<ValuePredictor>) -> ModelId {
        self.register(name, Model::Predictor(m))
    }

    pub fn register_her(&self, name: &str, m: Arc<HerModel>) -> ModelId {
        self.register(name, Model::Her(m))
    }

    /// Resolve a model name (rule parsing uses this).
    pub fn id(&self, name: &str) -> Option<ModelId> {
        self.by_name.read().get(name).copied()
    }

    /// Name of a model id (pretty-printing rules).
    pub fn name(&self, id: ModelId) -> Option<String> {
        self.models
            .read()
            .get(id.0 as usize)
            .map(|(n, _)| n.clone())
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Boolean pair inference `M(a, b)`, memoized, block-filtered and
    /// cost-metered.
    pub fn predict_pair(&self, id: ModelId, a: &[Value], b: &[Value]) -> bool {
        let key = (id, hash_values(a), hash_values(b));
        {
            let filters = self.block_filters.read();
            if let Some(f) = filters.get(&id) {
                if !f.contains(&(key.1, key.2)) {
                    self.meter.hit();
                    return false;
                }
            }
        }
        let shard = memo_shard(key.1, key.2);
        if let Some(&v) = self.lock_shard(&self.memo_bool, shard).get(&key) {
            self.meter.hit();
            return v;
        }
        let models = self.models.read();
        let Some((_, Model::Pair(m))) = models.get(id.0 as usize) else {
            panic!("model {id:?} is not a pair classifier");
        };
        self.meter.add(m.cost());
        let v = m.predict(a, b);
        drop(models);
        self.lock_shard(&self.memo_bool, shard).insert(key, v);
        v
    }

    /// Pair score, memoized.
    pub fn score_pair(&self, id: ModelId, a: &[Value], b: &[Value]) -> f64 {
        let key = (id, hash_values(a), hash_values(b));
        let shard = memo_shard(key.1, key.2);
        if let Some(&v) = self.lock_shard(&self.memo_score, shard).get(&key) {
            self.meter.hit();
            return v;
        }
        let models = self.models.read();
        let Some((_, Model::Pair(m))) = models.get(id.0 as usize) else {
            panic!("model {id:?} is not a pair classifier");
        };
        self.meter.add(m.cost());
        let v = m.score(a, b);
        drop(models);
        self.lock_shard(&self.memo_score, shard).insert(key, v);
        v
    }

    /// Access the pair classifier itself (for blocking).
    pub fn pair(&self, id: ModelId) -> Option<Arc<dyn PairClassifier>> {
        match self.models.read().get(id.0 as usize) {
            Some((_, Model::Pair(m))) => Some(Arc::clone(m)),
            _ => None,
        }
    }

    /// `Mrank` confidence that `t1 ⪯ t2`, cost-metered (not memoized: the
    /// caller — TD conflict resolution — usually wants both directions and
    /// they derive from one subtraction anyway).
    pub fn rank_confidence(&self, id: ModelId, t1: &[Value], t2: &[Value]) -> f64 {
        let models = self.models.read();
        let Some((_, Model::Rank(m))) = models.get(id.0 as usize) else {
            panic!("model {id:?} is not a rank model");
        };
        self.meter.add(2.0);
        m.confidence(t1, t2)
    }

    /// `Mc` strength, cost-metered.
    pub fn correlation_strength(&self, id: ModelId, evidence: &[Value], c: &Value) -> f64 {
        let models = self.models.read();
        let Some((_, Model::Correlation(m))) = models.get(id.0 as usize) else {
            panic!("model {id:?} is not a correlation model");
        };
        self.meter.add(m.cost());
        m.strength(evidence, c)
    }

    /// `Md` prediction, cost-metered.
    pub fn predict_value(&self, id: ModelId, evidence: &[Value]) -> Option<Value> {
        let models = self.models.read();
        let Some((_, Model::Predictor(m))) = models.get(id.0 as usize) else {
            panic!("model {id:?} is not a value predictor");
        };
        self.meter.add(m.cost());
        m.predict(evidence)
    }

    /// `Md` restricted to a candidate set (MI conflict resolution, §4.2(3)).
    pub fn best_of(&self, id: ModelId, evidence: &[Value], cands: &[Value]) -> Option<Value> {
        let models = self.models.read();
        let Some((_, Model::Predictor(m))) = models.get(id.0 as usize) else {
            panic!("model {id:?} is not a value predictor");
        };
        self.meter.add(m.cost());
        m.best_of(evidence, cands)
    }

    /// HER model handle.
    pub fn her(&self, id: ModelId) -> Option<Arc<HerModel>> {
        match self.models.read().get(id.0 as usize) {
            Some((_, Model::Her(m))) => {
                self.meter.add(m.cost());
                Some(Arc::clone(m))
            }
            _ => None,
        }
    }

    /// Seed the memo with a known result without running inference — the
    /// pre-computation path of §5.4 ("Rock pre-computes the results in
    /// advance once the ML predicates are ready"): the blocking layer
    /// memoizes `false` for all non-candidate pairs and the model's real
    /// output for candidates.
    pub fn memoize_pair(&self, id: ModelId, a: &[Value], b: &[Value], result: bool) {
        let key = (id, hash_values(a), hash_values(b));
        let shard = memo_shard(key.1, key.2);
        self.lock_shard(&self.memo_bool, shard).insert(key, result);
    }

    /// Drop all memoized results (tests / repeated experiments).
    pub fn clear_memo(&self) {
        for s in &self.memo_bool {
            s.lock().clear();
        }
        for s in &self.memo_score {
            s.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::ExactMatchModel;

    #[test]
    fn register_and_resolve() {
        let reg = ModelRegistry::new();
        let id = reg.register_pair("MER", Arc::new(ExactMatchModel));
        assert_eq!(reg.id("MER"), Some(id));
        assert_eq!(reg.name(id).as_deref(), Some("MER"));
        assert_eq!(reg.id("nope"), None);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn memoization_counts_one_inference() {
        let reg = ModelRegistry::new();
        let id = reg.register_pair("M", Arc::new(ExactMatchModel));
        let a = [Value::Int(1)];
        let b = [Value::Int(1)];
        assert!(reg.predict_pair(id, &a, &b));
        assert!(reg.predict_pair(id, &a, &b));
        assert_eq!(reg.meter.inferences(), 1);
        assert_eq!(reg.meter.memo_hits(), 1);
        assert!(reg.meter.cost() > 0.0);
    }

    #[test]
    fn clear_memo_forces_reinference() {
        let reg = ModelRegistry::new();
        let id = reg.register_pair("M", Arc::new(ExactMatchModel));
        reg.predict_pair(id, &[Value::Int(1)], &[Value::Int(1)]);
        reg.clear_memo();
        reg.predict_pair(id, &[Value::Int(1)], &[Value::Int(1)]);
        assert_eq!(reg.meter.inferences(), 2);
    }

    #[test]
    fn distinct_inputs_distinct_memo_keys() {
        let reg = ModelRegistry::new();
        let id = reg.register_pair("M", Arc::new(ExactMatchModel));
        assert!(reg.predict_pair(id, &[Value::Int(1)], &[Value::Int(1)]));
        assert!(!reg.predict_pair(id, &[Value::Int(1)], &[Value::Int(2)]));
        assert_eq!(reg.meter.inferences(), 2);
    }

    #[test]
    fn meter_reset() {
        let m = CostMeter::default();
        m.add(1.5);
        m.hit();
        assert_eq!(m.inferences(), 1);
        m.reset();
        assert_eq!(m.cost(), 0.0);
        assert_eq!(m.memo_hits(), 0);
    }

    #[test]
    fn block_filter_short_circuits() {
        let reg = ModelRegistry::new();
        let id = reg.register_pair("M", Arc::new(ExactMatchModel));
        let a = [Value::Int(1)];
        let b = [Value::Int(1)];
        let c = [Value::Int(2)];
        // filter admits only (a, b)
        let mut filter = rustc_hash::FxHashSet::default();
        filter.insert((ModelRegistry::pair_key(&a), ModelRegistry::pair_key(&b)));
        reg.set_block_filter(id, filter);
        assert!(
            reg.predict_pair(id, &a, &b),
            "candidate pair runs the model"
        );
        assert!(
            !reg.predict_pair(id, &a, &c),
            "non-candidate short-circuits to false"
        );
        // only one real inference happened; the blocked pair was a hit
        assert_eq!(reg.meter.inferences(), 1);
        assert_eq!(reg.meter.memo_hits(), 1);
        // removing the filter lets the blocked pair run for real
        reg.clear_block_filter(id);
        assert!(!reg.predict_pair(id, &a, &c));
        assert_eq!(reg.meter.inferences(), 2);
    }

    #[test]
    #[should_panic(expected = "not a rank model")]
    fn wrong_kind_panics() {
        let reg = ModelRegistry::new();
        let id = reg.register_pair("M", Arc::new(ExactMatchModel));
        reg.rank_confidence(id, &[], &[]);
    }

    #[test]
    fn sharded_memo_counts_hits_across_shards() {
        // keys spread over many shards must still memoize exactly once each
        let reg = ModelRegistry::new();
        let id = reg.register_pair("M", Arc::new(ExactMatchModel));
        for i in 0..64 {
            let a = [Value::Int(i)];
            reg.predict_pair(id, &a, &a);
            reg.predict_pair(id, &a, &a);
        }
        assert_eq!(reg.meter.inferences(), 64);
        assert_eq!(reg.meter.memo_hits(), 64);
        // single-threaded access never contends
        assert_eq!(reg.meter.contentions(), 0);
    }

    #[test]
    fn has_block_filter_tracks_install_and_clear() {
        let reg = ModelRegistry::new();
        let id = reg.register_pair("M", Arc::new(ExactMatchModel));
        assert!(!reg.has_block_filter(id));
        reg.set_block_filter(id, rustc_hash::FxHashSet::default());
        assert!(reg.has_block_filter(id));
        reg.clear_block_filter(id);
        assert!(!reg.has_block_filter(id));
    }

    #[test]
    fn parallel_memo_access_is_consistent() {
        let reg = Arc::new(ModelRegistry::new());
        let id = reg.register_pair("M", Arc::new(ExactMatchModel));
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..128 {
                    let a = [Value::Int((t * 128 + i) % 32)];
                    assert!(reg.predict_pair(id, &a, &a));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 32 distinct keys; races may run a key's inference more than once
        // but the memo stays consistent and bounded
        assert!(reg.meter.inferences() >= 32);
        assert!(reg.meter.inferences() + reg.meter.memo_hits() == 4 * 128);
    }
}
