//! Linear models: logistic regression via SGD, and LASSO via coordinate
//! descent.
//!
//! Logistic regression is the workhorse classifier behind the trained pair
//! models; LASSO implements the polynomial-expression learner of §5.4
//! ("feeding the selected features … to a predefined polynomial expression
//! with LASSO regularization, it learns a weight for each feature;
//! unimportant features tend to have zero weights").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Binary logistic-regression classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    pub weights: Vec<f64>,
    pub bias: f64,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdParams {
    pub epochs: usize,
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
    pub seed: u64,
}

impl Default for SgdParams {
    fn default() -> Self {
        SgdParams {
            epochs: 60,
            lr: 0.2,
            l2: 1e-4,
            seed: 7,
        }
    }
}

impl LogisticRegression {
    pub fn zeros(dim: usize) -> Self {
        LogisticRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// Train from `(features, label)` pairs with mini-SGD. Deterministic for
    /// a fixed seed. Returns the final average log-loss.
    pub fn train(&mut self, xs: &[Vec<f64>], ys: &[bool], p: SgdParams) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let dim = self.weights.len();
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut loss = 0.0;
        for epoch in 0..p.epochs {
            order.shuffle(&mut rng);
            let lr = p.lr / (1.0 + epoch as f64 * 0.05);
            loss = 0.0;
            for &i in &order {
                let x = &xs[i];
                debug_assert_eq!(x.len(), dim);
                let z = self.raw(x);
                let pred = sigmoid(z);
                let y = ys[i] as u8 as f64;
                let err = pred - y;
                for (w, xi) in self.weights.iter_mut().zip(x) {
                    *w -= lr * (err * xi + p.l2 * *w);
                }
                self.bias -= lr * err;
                let eps = 1e-12;
                loss -= y * (pred + eps).ln() + (1.0 - y) * (1.0 - pred + eps).ln();
            }
            loss /= xs.len() as f64;
        }
        loss
    }

    /// Raw linear score `w·x + b`.
    #[inline]
    pub fn raw(&self, x: &[f64]) -> f64 {
        self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(w, xi)| w * xi)
                .sum::<f64>()
    }

    /// Probability of the positive class.
    #[inline]
    pub fn prob(&self, x: &[f64]) -> f64 {
        sigmoid(self.raw(x))
    }

    /// Boolean decision at threshold 0.5.
    #[inline]
    pub fn predict(&self, x: &[f64]) -> bool {
        self.raw(x) >= 0.0
    }
}

/// LASSO linear regression solved by cyclic coordinate descent with
/// soft-thresholding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lasso {
    pub weights: Vec<f64>,
    pub intercept: f64,
    pub lambda: f64,
}

impl Lasso {
    /// Fit `y ≈ X·w + b` with an L1 penalty `lambda`. `iters` full sweeps.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64, iters: usize) -> Self {
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        if n == 0 {
            return Lasso {
                weights: Vec::new(),
                intercept: 0.0,
                lambda,
            };
        }
        let dim = xs[0].len();
        let mut w = vec![0.0; dim];
        let mut b = ys.iter().sum::<f64>() / n as f64;
        // Precompute column squared norms.
        let mut col_sq = vec![0.0f64; dim];
        for x in xs {
            for (j, xi) in x.iter().enumerate() {
                col_sq[j] += xi * xi;
            }
        }
        // Residuals r = y - (Xw + b)
        let mut r: Vec<f64> = ys.iter().zip(xs).map(|(y, _)| y - b).collect();
        for _ in 0..iters {
            for j in 0..dim {
                if col_sq[j] == 0.0 {
                    continue;
                }
                // rho = x_j · (r + w_j x_j)
                let mut rho = 0.0;
                for (i, x) in xs.iter().enumerate() {
                    rho += x[j] * (r[i] + w[j] * x[j]);
                }
                let new_w = soft_threshold(rho, lambda * n as f64) / col_sq[j];
                if new_w != w[j] {
                    let delta = new_w - w[j];
                    for (i, x) in xs.iter().enumerate() {
                        r[i] -= delta * x[j];
                    }
                    w[j] = new_w;
                }
            }
            // refit intercept
            let mean_r = r.iter().sum::<f64>() / n as f64;
            if mean_r.abs() > 1e-12 {
                b += mean_r;
                for ri in &mut r {
                    *ri -= mean_r;
                }
            }
        }
        Lasso {
            weights: w,
            intercept: b,
            lambda,
        }
    }

    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(w, xi)| w * xi)
                .sum::<f64>()
    }

    /// Indices of features with non-zero weight (the "selected" features of
    /// the §5.4 polynomial-expression discovery).
    pub fn support(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, w)| w.abs() > 1e-9)
            .map(|(i, _)| i)
            .collect()
    }
}

#[inline]
fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lr_learns_linearly_separable() {
        // y = x0 > x1
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let a = i as f64 / 40.0;
            xs.push(vec![a, 1.0 - a]);
            ys.push(a > 0.5);
        }
        let mut m = LogisticRegression::zeros(2);
        let loss = m.train(&xs, &ys, SgdParams::default());
        assert!(loss < 0.4, "loss {loss}");
        assert!(m.predict(&[0.9, 0.1]));
        assert!(!m.predict(&[0.1, 0.9]));
    }

    #[test]
    fn lr_training_deterministic() {
        let xs = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ];
        let ys = vec![true, false, true, false];
        let mut a = LogisticRegression::zeros(2);
        let mut b = LogisticRegression::zeros(2);
        a.train(&xs, &ys, SgdParams::default());
        b.train(&xs, &ys, SgdParams::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn lasso_recovers_sparse_signal() {
        // y = 3*x0 - 2*x2, x1 is noise-free but irrelevant
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.91).cos();
            let c = (i as f64 * 0.13).sin();
            xs.push(vec![a, b, c]);
            ys.push(3.0 * a - 2.0 * c);
        }
        let m = Lasso::fit(&xs, &ys, 0.01, 200);
        assert!((m.weights[0] - 3.0).abs() < 0.1, "{:?}", m.weights);
        assert!((m.weights[2] + 2.0).abs() < 0.1, "{:?}", m.weights);
        assert!(m.weights[1].abs() < 0.05, "{:?}", m.weights);
    }

    #[test]
    fn lasso_strong_penalty_zeroes_everything() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![0.1, 0.2, 0.3];
        let m = Lasso::fit(&xs, &ys, 100.0, 50);
        assert!(m.support().is_empty());
    }

    #[test]
    fn lasso_support_identifies_features() {
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, (i * i) as f64 / 30.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[1]).collect();
        let m = Lasso::fit(&xs, &ys, 0.05, 300);
        assert!(m.support().contains(&1));
    }

    #[test]
    fn empty_training_is_safe() {
        let mut m = LogisticRegression::zeros(3);
        assert_eq!(m.train(&[], &[], SgdParams::default()), 0.0);
        let l = Lasso::fit(&[], &[], 0.1, 10);
        assert!(l.weights.is_empty());
    }
}
