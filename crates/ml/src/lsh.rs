//! MinHash LSH blocking (paper §5.3):
//!
//! "To support ML models M(t[Ā], s[B̄]), Locality Sensitive Hashing (LSH)
//! is used to generate hash codes, such that if M(t[Ā], s[B̄]) = true, then
//! LSH(t[Ā]) = LSH(s[B̄]) with high probability."
//!
//! We implement classic MinHash over token shingles with banding: each item
//! gets `bands` signatures of `rows` min-hashes; two items are *candidates*
//! if any band collides. Rule evaluation then only runs the (expensive) ML
//! predicate on candidate pairs — the filter-and-verify paradigm of §5.4.

use crate::features::fnv1a;
use crate::text::{char_ngrams, tokenize};
use rustc_hash::FxHashMap;

/// MinHash-with-banding index.
///
/// ```
/// use rock_ml::MinHashLsh;
///
/// let mut lsh = MinHashLsh::new(16, 2);
/// lsh.insert(0, "IPhone 14 Discount ID 41");
/// lsh.insert(1, "fresh organic juice bottle");
/// let candidates = lsh.candidates("IPhone 14 Discount Code 41");
/// assert!(candidates.contains(&0));
/// assert!(!candidates.contains(&1));
/// ```
#[derive(Debug)]
pub struct MinHashLsh {
    bands: usize,
    rows: usize,
    seeds: Vec<u64>,
    /// band index -> band signature -> item ids
    buckets: Vec<FxHashMap<u64, Vec<u32>>>,
    items: usize,
}

impl MinHashLsh {
    /// `bands * rows` hash functions. More bands = higher recall, more rows
    /// per band = higher precision. Defaults tuned for ~0.5+ similarity.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0);
        let seeds = (0..bands * rows)
            .map(|i| fnv1a(format!("lsh-seed-{i}").as_bytes()))
            .collect();
        MinHashLsh {
            bands,
            rows,
            seeds,
            buckets: vec![FxHashMap::default(); bands],
            items: 0,
        }
    }

    /// Shingle a string into hashed features (tokens + char 4-grams).
    fn shingles(text: &str) -> Vec<u64> {
        let mut out: Vec<u64> = tokenize(text).iter().map(|t| fnv1a(t.as_bytes())).collect();
        out.extend(char_ngrams(text, 4).iter().map(|g| fnv1a(g.as_bytes())));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// MinHash signature of a text.
    fn signature(&self, text: &str) -> Vec<u64> {
        let shingles = Self::shingles(text);
        self.seeds
            .iter()
            .map(|&seed| {
                shingles
                    .iter()
                    .map(|&s| s ^ seed)
                    .map(|x| x.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    .min()
                    .unwrap_or(seed)
            })
            .collect()
    }

    /// Insert an item; `id` is caller-chosen (e.g. a TupleId index).
    pub fn insert(&mut self, id: u32, text: &str) {
        let sig = self.signature(text);
        for b in 0..self.bands {
            let band = &sig[b * self.rows..(b + 1) * self.rows];
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &x in band {
                h ^= x;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            self.buckets[b].entry(h).or_default().push(id);
        }
        self.items += 1;
    }

    /// Number of inserted items.
    pub fn len(&self) -> usize {
        self.items
    }

    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Candidate ids for a query text (deduplicated; may include the item
    /// itself if it was inserted).
    pub fn candidates(&self, text: &str) -> Vec<u32> {
        let sig = self.signature(text);
        let mut out = Vec::new();
        for b in 0..self.bands {
            let band = &sig[b * self.rows..(b + 1) * self.rows];
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &x in band {
                h ^= x;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Some(ids) = self.buckets[b].get(&h) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All candidate pairs `(i, j)` with `i < j` across the index.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for band in &self.buckets {
            for ids in band.values() {
                if ids.len() < 2 {
                    continue;
                }
                for i in 0..ids.len() {
                    for j in (i + 1)..ids.len() {
                        let (a, b) = (ids[i].min(ids[j]), ids[i].max(ids[j]));
                        if a != b {
                            pairs.push((a, b));
                        }
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_duplicates_collide() {
        let mut lsh = MinHashLsh::new(16, 2);
        lsh.insert(0, "IPhone 14 Discount ID 41 Apple");
        lsh.insert(1, "IPhone 14 Discount Code 41 Apple");
        lsh.insert(2, "Nike Air Max running shoes Shanghai");
        let cands = lsh.candidates("IPhone 14 Discount ID 41 Apple");
        assert!(cands.contains(&0));
        assert!(cands.contains(&1), "near-duplicate should be a candidate");
        assert!(!cands.contains(&2), "unrelated item should be filtered");
    }

    #[test]
    fn candidate_pairs_dedup_and_order() {
        let mut lsh = MinHashLsh::new(8, 2);
        lsh.insert(5, "alpha beta gamma delta");
        lsh.insert(3, "alpha beta gamma delta");
        lsh.insert(9, "zeta eta theta iota kappa");
        let pairs = lsh.candidate_pairs();
        assert!(pairs.contains(&(3, 5)));
        for (a, b) in &pairs {
            assert!(a < b);
        }
    }

    #[test]
    fn empty_and_len() {
        let mut lsh = MinHashLsh::new(2, 2);
        assert!(lsh.is_empty());
        lsh.insert(0, "x");
        assert_eq!(lsh.len(), 1);
    }

    #[test]
    fn blocking_reduces_pairs() {
        // 2 clusters of 5 similar items each: candidate pairs should be far
        // fewer than the 45 total pairs.
        let mut lsh = MinHashLsh::new(8, 2);
        for i in 0..5 {
            lsh.insert(i, &format!("huawei mate x2 limited edition store {i}"));
        }
        for i in 5..10 {
            lsh.insert(i, &format!("fresh organic apple fruit juice bottle {i}"));
        }
        let pairs = lsh.candidate_pairs();
        let cross = pairs.iter().filter(|(a, b)| (*a < 5) != (*b < 5)).count();
        assert_eq!(cross, 0, "no cross-cluster candidates expected");
        assert!(pairs.len() <= 20);
    }
}
