//! Correlation models `Mc` and the value predictor `Md` (paper §2.3, §4.2).
//!
//! * `Mc(t[Ā], t[B]=c) ≥ δ` assesses the strength of the correlation between
//!   a partial tuple and a candidate value for attribute `B`.
//! * `t[B] = Md(t[Ā], B)` suggests a value for a missing attribute; per the
//!   paper, Md "first retrieves a set of candidate values for t[B] …, and
//!   then uses a ranking model to get a suggested value", reusing Mc's
//!   encoders.
//!
//! The paper's Mc combines graph-embedding and language-model-embedding
//! classifications. Our stand-in combines (a) smoothed conditional
//! co-occurrence statistics mined from validated data — the "graph" half:
//! the co-occurrence graph of values — with (b) embedding cosine between
//! evidence and candidate — the "language" half. Both halves are
//! deterministic and trainable from the workloads' validated tuples.

use crate::features::{cosine, HashingEmbedder};
use rock_data::Value;
use rustc_hash::FxHashMap;

/// Evidence key: (attribute position within the feature tuple, value).
type Evidence = (usize, Value);

/// Correlation model for one target attribute.
#[derive(Debug, Clone)]
pub struct CorrelationModel {
    /// Co-occurrence counts: evidence -> candidate value -> count.
    cooc: FxHashMap<Evidence, FxHashMap<Value, u32>>,
    /// Marginal counts of candidate values.
    marginal: FxHashMap<Value, u32>,
    total: u32,
    embedder: HashingEmbedder,
    /// Mixing weight of the statistical half vs the embedding half.
    pub alpha: f64,
}

impl CorrelationModel {
    /// Train from rows: each row is the evidence tuple `t[Ā]` plus the
    /// observed target value. Null targets are skipped; null evidence cells
    /// contribute nothing.
    pub fn train(rows: &[(Vec<Value>, Value)]) -> Self {
        let mut cooc: FxHashMap<Evidence, FxHashMap<Value, u32>> = FxHashMap::default();
        let mut marginal: FxHashMap<Value, u32> = FxHashMap::default();
        let mut total = 0u32;
        for (evidence, target) in rows {
            if target.is_null() {
                continue;
            }
            *marginal.entry(target.clone()).or_insert(0) += 1;
            total += 1;
            for (pos, v) in evidence.iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                *cooc
                    .entry((pos, v.clone()))
                    .or_default()
                    .entry(target.clone())
                    .or_insert(0) += 1;
            }
        }
        CorrelationModel {
            cooc,
            marginal,
            total,
            embedder: HashingEmbedder::default(),
            alpha: 0.85,
        }
    }

    /// Correlation strength between partial tuple `evidence` and candidate
    /// `c` for the target attribute, in [0, 1].
    pub fn strength(&self, evidence: &[Value], c: &Value) -> f64 {
        if c.is_null() {
            return 0.0;
        }
        // Statistical half: mean smoothed P(c | a) over non-null evidence.
        let mut stat = 0.0;
        let mut n = 0usize;
        for (pos, v) in evidence.iter().enumerate() {
            if v.is_null() {
                continue;
            }
            n += 1;
            if let Some(dist) = self.cooc.get(&(pos, v.clone())) {
                let count = dist.get(c).copied().unwrap_or(0) as f64;
                let denom: u32 = dist.values().sum();
                // Laplace smoothing over the observed candidate set.
                stat += (count + 0.5) / (denom as f64 + 0.5 * (dist.len() as f64 + 1.0));
            } else if self.total > 0 {
                stat += self.marginal.get(c).copied().unwrap_or(0) as f64 / self.total as f64;
            }
        }
        let stat = if n == 0 { 0.0 } else { stat / n as f64 };
        // Embedding half: cosine between mean evidence embedding and c.
        let emb = cosine(
            &self.embedder.embed_values(evidence),
            &self.embedder.embed_value(c),
        )
        .max(0.0);
        self.alpha * stat + (1.0 - self.alpha) * emb
    }

    /// Candidate values for the target given the evidence: every value seen
    /// co-occurring with any evidence cell, ordered by strength descending.
    pub fn candidates(&self, evidence: &[Value]) -> Vec<(Value, f64)> {
        let mut set: Vec<Value> = Vec::new();
        for (pos, v) in evidence.iter().enumerate() {
            if v.is_null() {
                continue;
            }
            if let Some(dist) = self.cooc.get(&(pos, v.clone())) {
                set.extend(dist.keys().cloned());
            }
        }
        set.sort();
        set.dedup();
        let mut scored: Vec<(Value, f64)> = set
            .into_iter()
            .map(|c| {
                let s = self.strength(evidence, &c);
                (c, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored
    }

    /// Synthetic inference cost (the combined-embedding model is mid-weight).
    pub fn cost(&self) -> f64 {
        3.0
    }
}

/// `Md`: the value predictor built on top of `Mc` (paper §4.2: "To extend
/// Mc to Md … we reuse the encoders in Mc").
#[derive(Debug, Clone)]
pub struct ValuePredictor {
    pub mc: CorrelationModel,
    /// Minimum strength below which Md abstains (predicting a wrong value
    /// is worse than leaving a null — certain fixes must stay certain).
    pub min_strength: f64,
}

impl ValuePredictor {
    pub fn new(mc: CorrelationModel, min_strength: f64) -> Self {
        ValuePredictor { mc, min_strength }
    }

    pub fn train(rows: &[(Vec<Value>, Value)], min_strength: f64) -> Self {
        Self::new(CorrelationModel::train(rows), min_strength)
    }

    /// Suggest a value for the target attribute from the evidence, or
    /// abstain. Also used by MI conflict resolution (§4.2(3)): given an
    /// explicit candidate set, pick `argmax Mc(t[Ā], c)`.
    pub fn predict(&self, evidence: &[Value]) -> Option<Value> {
        let cands = self.mc.candidates(evidence);
        match cands.first() {
            Some((v, s)) if *s >= self.min_strength => Some(v.clone()),
            _ => None,
        }
    }

    /// `argmax` over an explicit candidate set (MI conflict resolution).
    pub fn best_of(&self, evidence: &[Value], cands: &[Value]) -> Option<Value> {
        cands
            .iter()
            .map(|c| (c, self.mc.strength(evidence, c)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(c, _)| c.clone())
    }

    pub fn cost(&self) -> f64 {
        self.mc.cost() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Beijing → 010, Shanghai → 021 (the φ12 area-code pattern).
    fn area_code_rows() -> Vec<(Vec<Value>, Value)> {
        let mut rows = Vec::new();
        for _ in 0..10 {
            rows.push((vec![Value::str("Beijing")], Value::str("010")));
            rows.push((vec![Value::str("Shanghai")], Value::str("021")));
        }
        rows.push((vec![Value::str("Beijing")], Value::str("021"))); // noise
        rows
    }

    #[test]
    fn strength_separates_correlated_values() {
        let mc = CorrelationModel::train(&area_code_rows());
        let beijing = vec![Value::str("Beijing")];
        assert!(
            mc.strength(&beijing, &Value::str("010")) > mc.strength(&beijing, &Value::str("021"))
        );
        assert_eq!(mc.strength(&beijing, &Value::Null), 0.0);
    }

    #[test]
    fn predictor_fills_area_code() {
        let md = ValuePredictor::train(&area_code_rows(), 0.3);
        assert_eq!(
            md.predict(&[Value::str("Beijing")]),
            Some(Value::str("010"))
        );
        assert_eq!(
            md.predict(&[Value::str("Shanghai")]),
            Some(Value::str("021"))
        );
    }

    #[test]
    fn predictor_abstains_without_evidence() {
        let md = ValuePredictor::train(&area_code_rows(), 0.3);
        assert_eq!(md.predict(&[Value::Null]), None);
        assert_eq!(md.predict(&[Value::str("Shenzhen")]), None);
    }

    #[test]
    fn best_of_candidate_set() {
        let md = ValuePredictor::train(&area_code_rows(), 0.3);
        let pick = md.best_of(
            &[Value::str("Beijing")],
            &[Value::str("021"), Value::str("010")],
        );
        assert_eq!(pick, Some(Value::str("010")));
        assert_eq!(md.best_of(&[Value::str("Beijing")], &[]), None);
    }

    #[test]
    fn candidates_sorted_by_strength() {
        let mc = CorrelationModel::train(&area_code_rows());
        let cands = mc.candidates(&[Value::str("Beijing")]);
        assert_eq!(cands[0].0, Value::str("010"));
        assert!(cands[0].1 >= cands.last().unwrap().1);
    }

    #[test]
    fn multi_evidence_votes() {
        // two evidence columns; second column is pure noise
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push((
                vec![Value::str("Beijing"), Value::Int(i)],
                Value::str("010"),
            ));
        }
        let mc = CorrelationModel::train(&rows);
        let s = mc.strength(
            &[Value::str("Beijing"), Value::Int(999)],
            &Value::str("010"),
        );
        assert!(s > 0.4, "strength {s}");
    }
}
