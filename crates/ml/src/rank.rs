//! `Mrank` — the pairwise temporal ranking model of §2.2, trained under the
//! creator–critic framework of [42].
//!
//! The paper: "Mrank is trained by arranging values chronologically by their
//! distances to a target in the embedding space, and using the distance to
//! quantify the timeliness." Concretely we learn a per-tuple *currency
//! score* `g(t)` (a linear model over embedding + numeric features) such
//! that `t1 ⪯A t2` iff `g(t1) ≤ g(t2)`. The pairwise confidence is
//! `σ(g(t2) − g(t1))` — this is the 0-to-1 confidence that §4.2(2) uses for
//! TD conflict resolution.
//!
//! The **creator** fits `g` from labeled ordered pairs; the **critic**
//! validates the induced ranking against *currency constraints* (e.g.
//! "status: single before married", φ4) and the transitive closure of the
//! training pairs, producing augmented training data for the next round.

use crate::features::HashingEmbedder;
use crate::linear::sigmoid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rock_data::Value;

/// A currency constraint on a categorical attribute: within the feature
/// tuple, position `attr_pos`'s value `earlier` precedes `later`
/// chronologically (cf. [34]).
#[derive(Debug, Clone)]
pub struct CurrencyConstraint {
    pub attr_pos: usize,
    pub earlier: Value,
    pub later: Value,
}

/// The pairwise ranking model. Feature tuples are fixed-width slices of
/// [`Value`]s (the caller projects the relevant attributes).
#[derive(Debug, Clone)]
pub struct RankModel {
    weights: Vec<f64>,
    embedder: HashingEmbedder,
    width: usize,
}

impl RankModel {
    fn feature_dim(embedder: &HashingEmbedder, width: usize) -> usize {
        embedder.dim + width
    }

    /// Per-tuple features: mean embedding of the values plus the raw
    /// numeric view of each position (nulls → 0).
    fn features(&self, t: &[Value]) -> Vec<f64> {
        let mut f = self.embedder.embed_values(t);
        for v in t.iter().take(self.width) {
            f.push(v.as_f64().map(|x| x.tanh_scaled()).unwrap_or(0.0));
        }
        f.resize(Self::feature_dim(&self.embedder, self.width), 0.0);
        f
    }

    /// Currency score `g(t)`; larger = more current.
    pub fn currency(&self, t: &[Value]) -> f64 {
        let f = self.features(t);
        self.weights.iter().zip(&f).map(|(w, x)| w * x).sum()
    }

    /// Confidence that `t1 ⪯ t2` (t2 at least as current as t1), in [0, 1].
    pub fn confidence(&self, t1: &[Value], t2: &[Value]) -> f64 {
        sigmoid(self.currency(t2) - self.currency(t1))
    }

    /// Boolean prediction `Mrank(t1, t2, ⪯)` at threshold 0.5.
    pub fn predict_before(&self, t1: &[Value], t2: &[Value]) -> bool {
        self.confidence(t1, t2) >= 0.5
    }

    /// Train under the creator–critic loop.
    ///
    /// `pairs` are labeled ordered pairs `(earlier, later)`; `constraints`
    /// are currency constraints the critic enforces; `rounds` alternations.
    pub fn train_creator_critic(
        width: usize,
        pairs: &[(Vec<Value>, Vec<Value>)],
        constraints: &[CurrencyConstraint],
        rounds: usize,
        seed: u64,
    ) -> Self {
        let embedder = HashingEmbedder::default();
        let dim = Self::feature_dim(&embedder, width);
        let mut model = RankModel {
            weights: vec![0.0; dim],
            embedder,
            width,
        };
        let mut training: Vec<(Vec<Value>, Vec<Value>)> = pairs.to_vec();
        for round in 0..rounds.max(1) {
            // Creator: fit g on current training pairs (pairwise logistic).
            model.fit_pairs(&training, seed.wrapping_add(round as u64));
            // Critic: deduce more ordered pairs from constraints applied to
            // the training pool, and keep only pairs the constraints do not
            // contradict. (The critic of [42] validates with currency
            // constraints and deduces more ranked pairs.)
            let mut augmented = Vec::new();
            for (a, b) in &training {
                match constraint_verdict(a, b, constraints) {
                    Some(false) => continue, // contradicted: drop
                    _ => augmented.push((a.clone(), b.clone())),
                }
            }
            // Deduce fresh pairs: any two tuples related by a constraint.
            let pool: Vec<&Vec<Value>> = training.iter().flat_map(|(a, b)| [a, b]).collect();
            for i in 0..pool.len() {
                for j in 0..pool.len() {
                    if i == j {
                        continue;
                    }
                    if constraint_verdict(pool[i], pool[j], constraints) == Some(true) {
                        augmented.push((pool[i].clone(), pool[j].clone()));
                    }
                }
            }
            augmented.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            augmented.dedup();
            training = augmented;
        }
        model.fit_pairs(&training, seed.wrapping_mul(31).wrapping_add(17));
        model
    }

    /// Pairwise logistic fit: maximize σ(g(later) − g(earlier)).
    fn fit_pairs(&mut self, pairs: &[(Vec<Value>, Vec<Value>)], seed: u64) {
        if pairs.is_empty() {
            return;
        }
        let feats: Vec<(Vec<f64>, Vec<f64>)> = pairs
            .iter()
            .map(|(a, b)| (self.features(a), self.features(b)))
            .collect();
        let mut order: Vec<usize> = (0..feats.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        self.weights.iter_mut().for_each(|w| *w = 0.0);
        for epoch in 0..80 {
            order.shuffle(&mut rng);
            let lr = 0.5 / (1.0 + epoch as f64 * 0.05);
            for &i in &order {
                let (fa, fb) = &feats[i];
                let diff: Vec<f64> = fb.iter().zip(fa).map(|(x, y)| x - y).collect();
                let z: f64 = self.weights.iter().zip(&diff).map(|(w, d)| w * d).sum();
                let err = sigmoid(z) - 1.0; // label is always "later after earlier"
                for (w, d) in self.weights.iter_mut().zip(&diff) {
                    *w -= lr * (err * d + 1e-4 * *w);
                }
            }
        }
    }

    /// F-measure of the model on held-out labeled pairs (the paper reports
    /// Mrank F-measure consistently above 0.80).
    pub fn f_measure(&self, pairs: &[(Vec<Value>, Vec<Value>)]) -> f64 {
        if pairs.is_empty() {
            return 1.0;
        }
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fnn = 0usize;
        for (a, b) in pairs {
            // true direction: a ⪯ b
            if self.predict_before(a, b) {
                tp += 1;
            } else {
                fnn += 1;
            }
            // reversed pair should be rejected
            if self.predict_before(b, a) && self.confidence(b, a) > self.confidence(a, b) {
                fp += 1;
            }
        }
        let prec = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let rec = if tp + fnn == 0 {
            0.0
        } else {
            tp as f64 / (tp + fnn) as f64
        };
        if prec + rec == 0.0 {
            0.0
        } else {
            2.0 * prec * rec / (prec + rec)
        }
    }
}

/// Does `(a, b)` agree (Some(true)), disagree (Some(false)) or say nothing
/// (None) about the constraints? `(a, b)` is read as "a earlier, b later".
fn constraint_verdict(
    a: &[Value],
    b: &[Value],
    constraints: &[CurrencyConstraint],
) -> Option<bool> {
    let mut verdict = None;
    for c in constraints {
        let (va, vb) = (a.get(c.attr_pos)?, b.get(c.attr_pos)?);
        if *va == c.earlier && *vb == c.later {
            verdict = Some(true);
        } else if *va == c.later && *vb == c.earlier {
            return Some(false);
        }
    }
    verdict
}

/// Small helper: squash a numeric value into [-1, 1] with a smooth,
/// scale-tolerant transform.
trait TanhScaled {
    fn tanh_scaled(self) -> f64;
}

impl TanhScaled for f64 {
    fn tanh_scaled(self) -> f64 {
        (self / 1e4).tanh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status_pairs() -> Vec<(Vec<Value>, Vec<Value>)> {
        // (earlier, later): single → married, sales grows monotonically
        let mut pairs = Vec::new();
        for i in 0..20 {
            pairs.push((
                vec![Value::str("single"), Value::Int(1000 + i * 10)],
                vec![Value::str("married"), Value::Int(5000 + i * 10)],
            ));
        }
        pairs
    }

    fn constraints() -> Vec<CurrencyConstraint> {
        vec![CurrencyConstraint {
            attr_pos: 0,
            earlier: Value::str("single"),
            later: Value::str("married"),
        }]
    }

    #[test]
    fn learns_monotone_ordering() {
        let m = RankModel::train_creator_critic(2, &status_pairs(), &constraints(), 2, 42);
        let early = vec![Value::str("single"), Value::Int(1200)];
        let late = vec![Value::str("married"), Value::Int(5100)];
        assert!(m.predict_before(&early, &late));
        assert!(m.confidence(&early, &late) > m.confidence(&late, &early));
    }

    #[test]
    fn f_measure_above_paper_bar() {
        let m = RankModel::train_creator_critic(2, &status_pairs(), &constraints(), 2, 42);
        // Paper: "Mrank has F-measure consistently above 0.80".
        let held_out = vec![
            (
                vec![Value::str("single"), Value::Int(1111)],
                vec![Value::str("married"), Value::Int(7777)],
            ),
            (
                vec![Value::str("single"), Value::Int(900)],
                vec![Value::str("married"), Value::Int(4500)],
            ),
        ];
        assert!(m.f_measure(&held_out) > 0.8);
    }

    #[test]
    fn critic_drops_contradicting_pairs() {
        // One poisoned pair (married before single) must be filtered by the
        // critic, so the model still learns the right direction.
        let mut pairs = status_pairs();
        pairs.push((
            vec![Value::str("married"), Value::Int(9000)],
            vec![Value::str("single"), Value::Int(100)],
        ));
        let m = RankModel::train_creator_critic(2, &pairs, &constraints(), 3, 1);
        let early = vec![Value::str("single"), Value::Int(1000)];
        let late = vec![Value::str("married"), Value::Int(6000)];
        assert!(m.predict_before(&early, &late));
    }

    #[test]
    fn constraint_verdict_cases() {
        let cs = constraints();
        assert_eq!(
            constraint_verdict(&[Value::str("single")], &[Value::str("married")], &cs),
            Some(true)
        );
        assert_eq!(
            constraint_verdict(&[Value::str("married")], &[Value::str("single")], &cs),
            Some(false)
        );
        assert_eq!(
            constraint_verdict(&[Value::str("x")], &[Value::str("y")], &cs),
            None
        );
    }

    #[test]
    fn confidence_is_probability() {
        let m = RankModel::train_creator_critic(2, &status_pairs(), &constraints(), 1, 3);
        let a = vec![Value::str("single"), Value::Int(1)];
        let b = vec![Value::str("married"), Value::Int(2)];
        let c = m.confidence(&a, &b);
        assert!((0.0..=1.0).contains(&c));
        assert!((m.confidence(&a, &b) + m.confidence(&b, &a) - 1.0).abs() < 1e-9);
    }
}
