//! Hashing-trick feature vectors and dense embeddings.
//!
//! The paper's models "first pretrain graph embeddings … then combine
//! classifications from graph embeddings and language model embeddings"
//! (§4.2, Mc). Our stand-in embeds any value (or value vector) into a fixed
//! dense vector by feature hashing of its tokens/n-grams; equality of
//! content ⇒ equality of embedding, similarity of content ⇒ cosine-close
//! embeddings. That is exactly the property the downstream classifiers rely
//! on.

use crate::text::{char_ngrams, tokenize};
use rock_data::Value;

/// FNV-1a 64-bit hash — stable across platforms/runs (we must not use
/// `DefaultHasher`, whose seed varies and would break reproducibility).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Dense embedding of dimension `dim` via the hashing trick with sign hashing
/// (Weinberger et al.): each feature adds ±1 at a hashed coordinate.
#[derive(Debug, Clone)]
pub struct HashingEmbedder {
    pub dim: usize,
    /// Character n-gram width mixed into the features (0 disables n-grams).
    pub ngram: usize,
}

impl Default for HashingEmbedder {
    fn default() -> Self {
        HashingEmbedder { dim: 64, ngram: 3 }
    }
}

impl HashingEmbedder {
    pub fn new(dim: usize, ngram: usize) -> Self {
        assert!(dim > 0);
        HashingEmbedder { dim, ngram }
    }

    fn add_feature(&self, out: &mut [f64], feat: &str, weight: f64) {
        let h = fnv1a(feat.as_bytes());
        let idx = (h % self.dim as u64) as usize;
        let sign = if (h >> 63) == 1 { -1.0 } else { 1.0 };
        out[idx] += sign * weight;
    }

    /// Embed one string.
    pub fn embed_str(&self, s: &str) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        for tok in tokenize(s) {
            self.add_feature(&mut v, &tok, 1.0);
        }
        if self.ngram > 0 {
            for g in char_ngrams(s, self.ngram) {
                self.add_feature(&mut v, &g, 0.5);
            }
        }
        normalize(&mut v);
        v
    }

    /// Embed a value: strings via tokens; numerics via bucketized magnitude
    /// features (so close numbers land on shared features); null is the zero
    /// vector.
    pub fn embed_value(&self, v: &Value) -> Vec<f64> {
        match v {
            Value::Null => vec![0.0; self.dim],
            Value::Str(s) => self.embed_str(s),
            other => {
                let mut out = vec![0.0; self.dim];
                if let Some(x) = other.as_f64() {
                    // log-scale magnitude buckets + exact-value feature
                    let mag = if x == 0.0 {
                        0
                    } else {
                        x.abs().log10().floor() as i64
                    };
                    self.add_feature(&mut out, &format!("mag:{mag}:{}", x < 0.0), 1.0);
                    self.add_feature(&mut out, &format!("val:{other}"), 1.0);
                }
                normalize(&mut out);
                out
            }
        }
    }

    /// Embed a value vector `t[Ā]` by averaging component embeddings.
    pub fn embed_values(&self, vs: &[Value]) -> Vec<f64> {
        let mut acc = vec![0.0; self.dim];
        let mut n = 0usize;
        for v in vs {
            if v.is_null() {
                continue;
            }
            let e = self.embed_value(v);
            for (a, b) in acc.iter_mut().zip(e) {
                *a += b;
            }
            n += 1;
        }
        if n > 0 {
            for a in &mut acc {
                *a /= n as f64;
            }
        }
        acc
    }
}

/// L2-normalize in place (no-op on the zero vector).
pub fn normalize(v: &mut [f64]) {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

/// Cosine similarity of two equal-length vectors.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Pairwise feature vector for two value vectors: per-kernel similarities
/// plus aggregate embedding cosine. This is the input representation for
/// trained pair classifiers ([`crate::pair`]).
pub fn pair_features(a: &[Value], b: &[Value], embedder: &HashingEmbedder) -> Vec<f64> {
    use crate::text::{edit_similarity, token_jaccard, trigram_cosine};
    let mut f = Vec::with_capacity(6);
    let (sa, sb) = (render_join(a), render_join(b));
    f.push(edit_similarity(&sa, &sb));
    f.push(token_jaccard(&sa, &sb));
    f.push(trigram_cosine(&sa, &sb));
    f.push(cosine(&embedder.embed_values(a), &embedder.embed_values(b)));
    // exact-equality fraction over aligned components
    let k = a.len().min(b.len());
    let eq = (0..k).filter(|&i| a[i].sql_eq(&b[i])).count();
    f.push(if k == 0 { 0.0 } else { eq as f64 / k as f64 });
    // numeric closeness over aligned numeric components
    let mut num = 0.0;
    let mut nn = 0usize;
    for i in 0..k {
        if let (Some(x), Some(y)) = (a[i].as_f64(), b[i].as_f64()) {
            let d = (x - y).abs();
            let scale = x.abs().max(y.abs()).max(1.0);
            num += 1.0 - (d / scale).min(1.0);
            nn += 1;
        }
    }
    f.push(if nn == 0 { 0.0 } else { num / nn as f64 });
    f
}

fn render_join(vs: &[Value]) -> String {
    let mut s = String::new();
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&v.render());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_stable() {
        // Known FNV-1a vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn embedding_deterministic_and_normalized() {
        let e = HashingEmbedder::default();
        let v1 = e.embed_str("Beijing West Road");
        let v2 = e.embed_str("Beijing West Road");
        assert_eq!(v1, v2);
        let norm: f64 = v1.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similar_strings_closer_than_dissimilar() {
        let e = HashingEmbedder::default();
        let a = e.embed_str("5 Beijing West Road");
        let b = e.embed_str("5 West Road Beijing");
        let c = e.embed_str("Nike China Sports Shanghai");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn null_embeds_to_zero() {
        let e = HashingEmbedder::default();
        let z = e.embed_value(&Value::Null);
        assert!(z.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&z, &z), 0.0);
    }

    #[test]
    fn close_numbers_share_magnitude_bucket() {
        let e = HashingEmbedder::default();
        let a = e.embed_value(&Value::Int(5200));
        let b = e.embed_value(&Value::Int(5300));
        let c = e.embed_value(&Value::Int(5));
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn pair_features_shape_and_identity() {
        let e = HashingEmbedder::default();
        let a = vec![Value::str("IPhone 14"), Value::Int(6500)];
        let f_same = pair_features(&a, &a, &e);
        assert_eq!(f_same.len(), 6);
        assert!((f_same[0] - 1.0).abs() < 1e-9); // edit sim
        assert!((f_same[4] - 1.0).abs() < 1e-9); // eq fraction
        let b = vec![Value::str("Mate X2"), Value::Int(1)];
        let f_diff = pair_features(&a, &b, &e);
        assert!(f_diff[0] < f_same[0]);
        assert!(f_diff[4] < 1.0);
    }
}
