//! Decision stumps and gradient boosting.
//!
//! Stands in for two XGBoost uses in the paper:
//! * §5.4 "Polynomial expressions": "a tree-based model, XGBoost, ranks the
//!   importance of numerical attributes via self-supervised learning, and
//!   prunes irrelevant features" — [`GradientBoosting::feature_importance`].
//! * the RB (Baran) baseline's downstream random-forest-ish corrector.

use serde::{Deserialize, Serialize};

/// A depth-1 regression tree: split one feature at one threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stump {
    pub feature: usize,
    pub threshold: f64,
    pub left: f64,
    pub right: f64,
}

impl Stump {
    #[inline]
    pub fn predict(&self, x: &[f64]) -> f64 {
        if x[self.feature] <= self.threshold {
            self.left
        } else {
            self.right
        }
    }

    /// Fit a stump minimizing squared error against residuals.
    /// Returns `None` when no split reduces error (constant input).
    pub fn fit(xs: &[Vec<f64>], residuals: &[f64]) -> Option<(Stump, f64)> {
        let n = xs.len();
        if n == 0 {
            return None;
        }
        let dim = xs[0].len();
        let total: f64 = residuals.iter().sum();
        let total_sq: f64 = residuals.iter().map(|r| r * r).sum();
        let base_err = total_sq - total * total / n as f64;
        let mut best: Option<(Stump, f64)> = None;
        #[allow(clippy::needless_range_loop)] // f indexes parallel arrays
        for f in 0..dim {
            // candidate thresholds: midpoints of sorted distinct values
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
            let mut left_sum = 0.0;
            let mut left_n = 0usize;
            for w in 0..n - 1 {
                let i = idx[w];
                left_sum += residuals[i];
                left_n += 1;
                if xs[idx[w]][f] == xs[idx[w + 1]][f] {
                    continue;
                }
                let right_sum = total - left_sum;
                let right_n = n - left_n;
                // error reduction of the split
                let gain = left_sum * left_sum / left_n as f64
                    + right_sum * right_sum / right_n as f64
                    - total * total / n as f64;
                if gain > best.as_ref().map(|(_, g)| *g).unwrap_or(1e-12) {
                    best = Some((
                        Stump {
                            feature: f,
                            threshold: (xs[idx[w]][f] + xs[idx[w + 1]][f]) / 2.0,
                            left: left_sum / left_n as f64,
                            right: right_sum / right_n as f64,
                        },
                        gain,
                    ));
                }
            }
        }
        let _ = base_err;
        best
    }
}

/// Gradient-boosted stumps for regression (squared loss).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    pub base: f64,
    pub learning_rate: f64,
    pub stumps: Vec<Stump>,
    /// Total squared-error gain contributed per feature.
    gains: Vec<f64>,
}

impl GradientBoosting {
    /// Fit `rounds` stumps with shrinkage `learning_rate`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], rounds: usize, learning_rate: f64) -> Self {
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        let dim = xs.first().map(|x| x.len()).unwrap_or(0);
        let base = if n == 0 {
            0.0
        } else {
            ys.iter().sum::<f64>() / n as f64
        };
        let mut model = GradientBoosting {
            base,
            learning_rate,
            stumps: Vec::with_capacity(rounds),
            gains: vec![0.0; dim],
        };
        if n == 0 {
            return model;
        }
        let mut pred = vec![base; n];
        for _ in 0..rounds {
            let residuals: Vec<f64> = ys.iter().zip(&pred).map(|(y, p)| y - p).collect();
            let Some((stump, gain)) = Stump::fit(xs, &residuals) else {
                break;
            };
            model.gains[stump.feature] += gain;
            for (p, x) in pred.iter_mut().zip(xs) {
                *p += learning_rate * stump.predict(x);
            }
            model.stumps.push(stump);
        }
        model
    }

    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.stumps.iter().map(|s| s.predict(x)).sum::<f64>()
    }

    /// Per-feature importance (normalized total gain, sums to 1 when any
    /// splits were made). Used to rank/prune numerical attributes (§5.4).
    pub fn feature_importance(&self) -> Vec<f64> {
        let total: f64 = self.gains.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.gains.len()];
        }
        self.gains.iter().map(|g| g / total).collect()
    }

    /// Features ranked by importance, descending, pruned at `min_importance`.
    pub fn selected_features(&self, min_importance: f64) -> Vec<usize> {
        let imp = self.feature_importance();
        let mut ranked: Vec<usize> = (0..imp.len())
            .filter(|&i| imp[i] >= min_importance)
            .collect();
        ranked.sort_by(|&a, &b| imp[b].total_cmp(&imp[a]));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y depends strongly on x0, weakly on nothing else
        let xs: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let a = i as f64 / 10.0;
                vec![a, (i % 7) as f64, 3.0]
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] > 3.0 { 10.0 } else { -10.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn stump_finds_split() {
        let (xs, ys) = xy();
        let (s, gain) = Stump::fit(&xs, &ys).unwrap();
        assert_eq!(s.feature, 0);
        assert!((s.threshold - 3.05).abs() < 0.2);
        assert!(gain > 0.0);
        assert!(s.predict(&[5.0, 0.0, 0.0]) > 0.0);
        assert!(s.predict(&[1.0, 0.0, 0.0]) < 0.0);
    }

    #[test]
    fn stump_constant_input_no_split() {
        let xs = vec![vec![1.0], vec![1.0]];
        let ys = vec![0.0, 10.0];
        assert!(Stump::fit(&xs, &ys).is_none());
    }

    #[test]
    fn boosting_fits_step_function() {
        let (xs, ys) = xy();
        let m = GradientBoosting::fit(&xs, &ys, 30, 0.5);
        assert!(m.predict(&[5.0, 0.0, 3.0]) > 5.0);
        assert!(m.predict(&[0.5, 0.0, 3.0]) < -5.0);
    }

    #[test]
    fn importance_concentrates_on_predictive_feature() {
        let (xs, ys) = xy();
        let m = GradientBoosting::fit(&xs, &ys, 20, 0.5);
        let imp = m.feature_importance();
        assert!(imp[0] > 0.9, "{imp:?}");
        assert_eq!(m.selected_features(0.05), vec![0]);
    }

    #[test]
    fn empty_input_safe() {
        let m = GradientBoosting::fit(&[], &[], 10, 0.1);
        assert_eq!(m.stumps.len(), 0);
        assert_eq!(m.base, 0.0);
    }
}
