//! Text kernels: tokenization, character n-grams, and string similarity.
//!
//! These are the building blocks of the feature-based stand-ins for the
//! paper's BERT/LSTM models: address normalization (`Maddr`), commodity SKU
//! identification (`MSKU`), discount-code ER (`MER`), etc. all reduce to
//! similarity/classification over token and n-gram features.

/// Lowercase alphanumeric word tokens.
pub fn tokenize(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Character n-grams (over the lowercased string with spaces collapsed).
/// Strings shorter than `n` yield the whole string as a single gram.
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    let norm: Vec<char> = s
        .to_lowercase()
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if norm.is_empty() {
        return Vec::new();
    }
    if norm.len() <= n {
        return vec![norm.into_iter().collect()];
    }
    (0..=norm.len() - n)
        .map(|i| norm[i..i + n].iter().collect())
        .collect()
}

/// Levenshtein edit distance (two-row DP; O(|a|·|b|) time, O(|b|) space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized edit similarity in [0, 1].
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaccard similarity over token sets.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    use rustc_hash::FxHashSet;
    let sa: FxHashSet<String> = tokenize(a).into_iter().collect();
    let sb: FxHashSet<String> = tokenize(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Cosine similarity over character-trigram multisets.
pub fn trigram_cosine(a: &str, b: &str) -> f64 {
    use rustc_hash::FxHashMap;
    let count = |s: &str| -> FxHashMap<String, f64> {
        let mut m = FxHashMap::default();
        for g in char_ngrams(s, 3) {
            *m.entry(g).or_insert(0.0) += 1.0;
        }
        m
    };
    let ma = count(a);
    let mb = count(b);
    if ma.is_empty() && mb.is_empty() {
        return 1.0;
    }
    let dot: f64 = ma
        .iter()
        .filter_map(|(g, x)| mb.get(g).map(|y| x * y))
        .sum();
    let na: f64 = ma.values().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = mb.values().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(
            tokenize("IPhone 14 (Discount ID 41)"),
            vec!["iphone", "14", "discount", "id", "41"]
        );
        assert!(tokenize("  ,, ").is_empty());
    }

    #[test]
    fn ngrams() {
        assert_eq!(char_ngrams("abcd", 3), vec!["abc", "bcd"]);
        assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
        assert!(char_ngrams("", 3).is_empty());
        // whitespace collapsed
        assert_eq!(char_ngrams("a b c", 3), vec!["abc"]);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("a", "a"), 1.0);
        assert!(edit_similarity("abc", "xyz") <= 0.0 + 1e-12);
        let s = edit_similarity("Beijing Road", "Beijing Rd");
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn jaccard_and_cosine_agree_on_identity() {
        assert_eq!(token_jaccard("a b c", "c b a"), 1.0);
        assert!((trigram_cosine("hello world", "hello world") - 1.0).abs() < 1e-12);
        assert_eq!(token_jaccard("", ""), 1.0);
    }

    #[test]
    fn similar_addresses_score_high() {
        let a = "5 Beijing West Road";
        let b = "5 West Road";
        assert!(token_jaccard(a, b) >= 0.5);
        assert!(trigram_cosine(a, b) > 0.5);
        assert!(trigram_cosine(a, "Nike China Shanghai") < 0.35);
    }
}
