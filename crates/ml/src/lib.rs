//! # rock-ml — the embedded-ML substrate
//!
//! REE++ rules embed ML classifiers *as predicates* (paper §2.1(e)): any
//! model that returns a Boolean on a pair of attribute vectors can appear in
//! a rule. The paper uses BERT-class NLP models, an LSTM for `match`, a
//! pairwise ranking network `Mrank` trained under a creator–critic loop, and
//! correlation models `Mc`/`Md` combining graph and language-model
//! embeddings. Those exact networks are proprietary-scale; per DESIGN.md §1
//! this crate substitutes deterministic, trainable, feature-based models
//! that expose the identical interfaces and — crucially for the evaluation —
//! a *per-inference cost model* so the paper's relative runtime shapes
//! reproduce.
//!
//! Modules:
//! * [`text`] — tokenizers, n-grams, string similarity kernels
//!   (Levenshtein, Jaccard, cosine).
//! * [`features`] — hashing-trick feature vectors and embeddings.
//! * [`linear`] — logistic regression (SGD) and LASSO coordinate descent
//!   (the polynomial-expression learner of §5.4 uses LASSO).
//! * [`tree`] — decision stumps + gradient boosting; feature-importance
//!   ranking stands in for the XGBoost attribute pruning of §5.4.
//! * [`pair`] — pair classifiers `M(t[Ā], s[B̄])` (the ER-style predicates).
//! * [`rank`] — `Mrank(t1, t2, ⊗A)` pairwise temporal ranking with
//!   creator–critic training (§2.2, [42]).
//! * [`correlation`] — `Mc` correlation strength and `Md` value prediction
//!   (§2.3).
//! * [`her`] — heterogeneous entity resolution `HER(t, x)` across a
//!   relation and a knowledge graph ([31]).
//! * [`lsh`] — MinHash LSH blocking for ML predicates (§5.3/§5.4
//!   filter-and-verify).
//! * [`registry`] — the model registry REE++ predicates reference by name,
//!   with memoized inference and cost accounting.

// Model inference runs inside rule evaluation on worker threads: a panic
// there voids a chase round or a discovery sweep, so non-test code
// surfaces errors as values (same gate as the engine crates).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod block_index;
pub mod correlation;
pub mod features;
pub mod her;
pub mod linear;
pub mod lsh;
pub mod pair;
pub mod rank;
pub mod registry;
pub mod text;
pub mod tree;

pub use block_index::{MlBlockIndex, PairBlockIndex, PairSignature};
pub use correlation::{CorrelationModel, ValuePredictor};
pub use her::HerModel;
pub use lsh::MinHashLsh;
pub use pair::{NgramPairModel, PairClassifier};
pub use rank::RankModel;
pub use registry::{CostMeter, ModelId, ModelRegistry};
