//! Pair classifiers — the `M(t[Ā], s[B̄])` predicates of §2.1(e).
//!
//! "Here M can be any existing ML model that returns a Boolean value, e.g.
//! Mreg ≥ δ for the strength of a regression model and a predefined
//! threshold δ." The trait below is exactly that contract: a score in
//! [0, 1] plus a decision threshold, with a declared per-inference cost so
//! the evaluation harness can account for expensive models (the paper's
//! T5-class baselines lose on exactly this axis).

use crate::features::{pair_features, HashingEmbedder};
use crate::linear::{LogisticRegression, SgdParams};
use rock_data::Value;

/// A Boolean ML predicate over two value vectors.
pub trait PairClassifier: Send + Sync {
    /// Match strength in [0, 1].
    fn score(&self, a: &[Value], b: &[Value]) -> f64;

    /// Decision threshold δ.
    fn threshold(&self) -> f64 {
        0.5
    }

    /// Boolean prediction `M(a, b)`.
    fn predict(&self, a: &[Value], b: &[Value]) -> bool {
        self.score(a, b) >= self.threshold()
    }

    /// Synthetic cost units per inference (see `registry::CostMeter`).
    /// 1.0 ≈ one cheap feature-kernel evaluation; transformer-class models
    /// declare costs orders of magnitude higher.
    fn cost(&self) -> f64 {
        1.0
    }

    /// Blocking key strings for LSH (filter-and-verify, §5.3): tokens of the
    /// rendered values. Models may override to block on a designated field.
    fn blocking_text(&self, a: &[Value]) -> String {
        let mut s = String::new();
        for v in a {
            s.push_str(&v.render());
            s.push(' ');
        }
        s
    }
}

/// Untrained n-gram similarity model: score = mean of edit/Jaccard/trigram
/// kernels. Good default `MER`-style matcher for noisy text.
#[derive(Debug, Clone)]
pub struct NgramPairModel {
    pub threshold: f64,
    pub cost: f64,
}

impl Default for NgramPairModel {
    fn default() -> Self {
        NgramPairModel {
            threshold: 0.7,
            cost: 1.0,
        }
    }
}

impl NgramPairModel {
    pub fn with_threshold(threshold: f64) -> Self {
        NgramPairModel {
            threshold,
            cost: 1.0,
        }
    }
}

impl PairClassifier for NgramPairModel {
    fn score(&self, a: &[Value], b: &[Value]) -> f64 {
        use crate::text::{edit_similarity, token_jaccard, trigram_cosine};
        let join = |vs: &[Value]| {
            let mut s = String::new();
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                s.push_str(&v.render());
            }
            s
        };
        let (sa, sb) = (join(a), join(b));
        if sa.is_empty() || sb.is_empty() {
            return 0.0;
        }
        (edit_similarity(&sa, &sb) + token_jaccard(&sa, &sb) + trigram_cosine(&sa, &sb)) / 3.0
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn cost(&self) -> f64 {
        self.cost
    }
}

/// Trained pair classifier: logistic regression over [`pair_features`].
/// This is the reproduction's `MER`/`Mlimited`/`Mad`-style model — trained
/// from labeled match/non-match pairs (the workloads generate labels).
#[derive(Debug, Clone)]
pub struct TrainedPairModel {
    pub lr: LogisticRegression,
    pub embedder: HashingEmbedder,
    pub threshold: f64,
    pub cost: f64,
}

impl TrainedPairModel {
    /// Train from labeled pairs.
    pub fn train(
        pairs: &[(Vec<Value>, Vec<Value>, bool)],
        params: SgdParams,
        threshold: f64,
    ) -> Self {
        let embedder = HashingEmbedder::default();
        let xs: Vec<Vec<f64>> = pairs
            .iter()
            .map(|(a, b, _)| pair_features(a, b, &embedder))
            .collect();
        let ys: Vec<bool> = pairs.iter().map(|(_, _, y)| *y).collect();
        let mut lr = LogisticRegression::zeros(xs.first().map(|x| x.len()).unwrap_or(6));
        lr.train(&xs, &ys, params);
        TrainedPairModel {
            lr,
            embedder,
            threshold,
            cost: 2.0,
        }
    }
}

impl PairClassifier for TrainedPairModel {
    fn score(&self, a: &[Value], b: &[Value]) -> f64 {
        self.lr.prob(&pair_features(a, b, &self.embedder))
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn cost(&self) -> f64 {
        self.cost
    }
}

/// Exact-equality "model" — useful to express plain joins through the same
/// machinery and in tests.
#[derive(Debug, Clone, Default)]
pub struct ExactMatchModel;

impl PairClassifier for ExactMatchModel {
    fn score(&self, a: &[Value], b: &[Value]) -> f64 {
        let same = a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.sql_eq(y));
        if same {
            1.0
        } else {
            0.0
        }
    }

    fn cost(&self) -> f64 {
        0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngram_model_matches_discount_codes() {
        // φ1's MER: "IPhone 14 (Discount ID 41)" vs "(Discount Code 41)"
        let m = NgramPairModel::with_threshold(0.6);
        let a = vec![Value::str("IPhone 14 (Discount ID 41)")];
        let b = vec![Value::str("IPhone 14 (Discount Code 41)")];
        let c = vec![Value::str("Mate X2 (Limited Sold)")];
        assert!(m.predict(&a, &b));
        assert!(!m.predict(&a, &c));
    }

    #[test]
    fn ngram_model_null_scores_zero() {
        let m = NgramPairModel::default();
        assert_eq!(m.score(&[Value::Null], &[Value::str("x")]), 0.0);
    }

    #[test]
    fn trained_model_learns_pairs() {
        let mut pairs = Vec::new();
        for i in 0..30 {
            let s = format!("Product {i} deluxe");
            pairs.push((
                vec![Value::str(&s)],
                vec![Value::str(format!("product {i} DELUXE"))],
                true,
            ));
            pairs.push((
                vec![Value::str(&s)],
                vec![Value::str(format!("Gadget {} basic", (i + 13) % 30))],
                false,
            ));
        }
        let m = TrainedPairModel::train(&pairs, SgdParams::default(), 0.5);
        assert!(m.predict(
            &[Value::str("Product 99 deluxe")],
            &[Value::str("product 99 Deluxe")]
        ));
        assert!(!m.predict(
            &[Value::str("Product 99 deluxe")],
            &[Value::str("Completely different thing")]
        ));
    }

    #[test]
    fn exact_match_model() {
        let m = ExactMatchModel;
        assert!(m.predict(&[Value::Int(1)], &[Value::Int(1)]));
        assert!(!m.predict(&[Value::Int(1)], &[Value::Int(2)]));
        assert!(!m.predict(&[Value::Null], &[Value::Null])); // sql_eq
        assert!(!m.predict(&[Value::Int(1)], &[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn blocking_text_joins_values() {
        let m = ExactMatchModel;
        assert_eq!(m.blocking_text(&[Value::str("a"), Value::Int(3)]), "a 3 ");
    }
}
