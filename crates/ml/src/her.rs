//! `HER(t, x)` — heterogeneous entity resolution across a relation and a
//! knowledge graph (paper §2.3, implementing the role of [31]'s parametric
//! simulation).
//!
//! Given a tuple `t` and a KG vertex `x`, decide whether they refer to the
//! same entity. The paper's implementation uses parametric simulation over
//! the graph neighbourhood; our stand-in compares (a) the tuple's key
//! attributes against the vertex label and (b) the tuple's remaining
//! attributes against the vertex's one-hop neighbourhood labels — which is
//! the same signal a one-round parametric simulation consumes.

use crate::text::{edit_similarity, token_jaccard};
use rock_data::Value;
use rock_kg::{Graph, VertexId};

/// The HER classifier.
#[derive(Debug, Clone)]
pub struct HerModel {
    /// Decision threshold on the combined score.
    pub threshold: f64,
    /// Required vertex kind, if any (e.g. only match `Store` vertices).
    pub kind: Option<String>,
}

impl Default for HerModel {
    fn default() -> Self {
        HerModel {
            threshold: 0.62,
            kind: None,
        }
    }
}

impl HerModel {
    pub fn for_kind(kind: impl Into<String>) -> Self {
        HerModel {
            threshold: 0.62,
            kind: Some(kind.into()),
        }
    }

    /// Similarity between the tuple's name-ish projection and the vertex.
    ///
    /// `name_values` should be the tuple's identifying attributes (e.g.
    /// Store.name); `context_values` the rest (location, type, …).
    pub fn score(
        &self,
        g: &Graph,
        x: VertexId,
        name_values: &[Value],
        context_values: &[Value],
    ) -> f64 {
        let v = g.vertex(x);
        if let Some(kind) = &self.kind {
            if &*v.kind != kind.as_str() {
                return 0.0;
            }
        }
        let name = join(name_values);
        let vertex_name = v.label.render();
        if name.is_empty() || vertex_name.is_empty() {
            return 0.0;
        }
        let name_sim =
            0.5 * edit_similarity(&name, &vertex_name) + 0.5 * token_jaccard(&name, &vertex_name);
        // One-hop neighbourhood labels approximate the vertex's "attributes".
        let mut hood = String::new();
        let labels: Vec<_> = g.out_labels(x).cloned().collect();
        for l in labels {
            for n in g.neighbours(x, &l) {
                hood.push_str(&g.vertex(*n).label.render());
                hood.push(' ');
            }
        }
        let ctx = join(context_values);
        let ctx_sim = if ctx.is_empty() || hood.is_empty() {
            // no context on either side: rely on the name alone
            name_sim
        } else {
            token_jaccard(&ctx, &hood)
        };
        0.7 * name_sim + 0.3 * ctx_sim
    }

    /// Boolean `HER(t, x)`.
    pub fn matches(
        &self,
        g: &Graph,
        x: VertexId,
        name_values: &[Value],
        context_values: &[Value],
    ) -> bool {
        self.score(g, x, name_values, context_values) >= self.threshold
    }

    /// Best-matching vertex of the model's kind (or all vertices when
    /// untyped), or `None` when nothing clears the threshold. This is the
    /// entry point the extraction REE++s use: bind `x` to the match.
    pub fn align(
        &self,
        g: &Graph,
        name_values: &[Value],
        context_values: &[Value],
    ) -> Option<(VertexId, f64)> {
        let pool: Vec<VertexId> = match &self.kind {
            Some(k) => g.vertices_of_kind(k).collect(),
            None => g.iter_vertices().map(|(id, _)| id).collect(),
        };
        pool.into_iter()
            .map(|x| (x, self.score(g, x, name_values, context_values)))
            .filter(|(_, s)| *s >= self.threshold)
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
    }

    /// Synthetic cost per (tuple, vertex) inference — LSTM-class.
    pub fn cost(&self) -> f64 {
        5.0
    }
}

fn join(vs: &[Value]) -> String {
    let mut s = String::new();
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&v.render());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiki() -> (Graph, VertexId, VertexId) {
        let mut g = Graph::new("Wiki");
        let huawei = g.add_vertex(Value::str("Huawei Flagship"), "Store");
        let nike = g.add_vertex(Value::str("Nike China"), "Store");
        let beijing = g.add_vertex(Value::str("Beijing"), "City");
        let shanghai = g.add_vertex(Value::str("Shanghai"), "City");
        g.add_edge(huawei, "LocationAt", beijing);
        g.add_edge(nike, "LocationAt", shanghai);
        (g, huawei, nike)
    }

    #[test]
    fn matches_same_entity() {
        let (g, huawei, nike) = wiki();
        let m = HerModel::for_kind("Store");
        let name = vec![Value::str("Huawei Flagship")];
        let ctx = vec![Value::str("Beijing"), Value::str("Electron.")];
        assert!(m.matches(&g, huawei, &name, &ctx));
        assert!(!m.matches(&g, nike, &name, &ctx));
    }

    #[test]
    fn kind_filter_rejects() {
        let (g, huawei, _) = wiki();
        let m = HerModel::for_kind("City");
        assert_eq!(
            m.score(&g, huawei, &[Value::str("Huawei Flagship")], &[]),
            0.0
        );
    }

    #[test]
    fn align_picks_best_vertex() {
        let (g, huawei, _) = wiki();
        let m = HerModel::for_kind("Store");
        let got = m.align(
            &g,
            &[Value::str("Huawei Flagship")],
            &[Value::str("Beijing")],
        );
        assert_eq!(got.map(|(v, _)| v), Some(huawei));
    }

    #[test]
    fn align_abstains_on_garbage() {
        let (g, ..) = wiki();
        let m = HerModel::for_kind("Store");
        assert!(m
            .align(&g, &[Value::str("zzzz qqqq")], &[Value::str("nowhere")])
            .is_none());
        assert!(m.align(&g, &[Value::Null], &[]).is_none());
    }

    #[test]
    fn noisy_name_still_matches() {
        let (g, huawei, _) = wiki();
        let m = HerModel::for_kind("Store");
        // typo'd name
        assert!(m.matches(
            &g,
            huawei,
            &[Value::str("Huawai Flagship")],
            &[Value::str("Beijing")]
        ));
    }
}
