//! Reusable LSH blocking index for ML pair predicates (§5.3/§5.4
//! filter-and-verify, re-used by the semi-naive chase).
//!
//! The detection-time blocking pass (`rock_detect`'s `precompute_ml`)
//! already computes, for every ML pair-predicate signature, which tuple
//! pairs are LSH block-mates — everything else is memoized `false`. This
//! module captures that information in a *tuple-level* index so the chase
//! can turn "enumerate all partners of a delta tuple" into "enumerate its
//! block-mates": for a pinned tuple `d`, any tuple `s` with `M(d, s)` true
//! must share an LSH bucket with `d` (up to the usual LSH recall caveat the
//! block filter already accepts), so the non-pinned variable only scans
//! `mates(d)` instead of the whole relation.
//!
//! **Staleness contract.** Block-mate lists are computed from *build-time*
//! attribute values. The index therefore stores each tuple's build-time
//! [`ModelRegistry::pair_key`](crate::ModelRegistry::pair_key) so consumers
//! can detect that a tuple's projection changed since the build and fall
//! back to a full scan (the chase additionally unions in its cumulative
//! dirty set; see DESIGN.md).

use crate::registry::ModelId;
use rock_data::{AttrId, RelId, TupleId};
use rustc_hash::FxHashMap;

/// Identifies one ML pair-predicate signature: the model plus the two
/// (relation, projection) sides it compares.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PairSignature {
    pub model: ModelId,
    pub lrel: RelId,
    pub lattrs: Vec<AttrId>,
    pub rrel: RelId,
    pub rattrs: Vec<AttrId>,
}

/// Tuple-level blocking index for one signature.
#[derive(Debug, Default, Clone)]
pub struct PairBlockIndex {
    /// Build-time `pair_key` of every left-relation tuple's projection.
    pub left_key: FxHashMap<TupleId, u64>,
    /// Build-time `pair_key` of every right-relation tuple's projection.
    pub right_key: FxHashMap<TupleId, u64>,
    /// Right-relation block-mates of each left tuple.
    pub left_mates: FxHashMap<TupleId, Vec<TupleId>>,
    /// Left-relation block-mates of each right tuple.
    pub right_mates: FxHashMap<TupleId, Vec<TupleId>>,
}

impl PairBlockIndex {
    /// Block-mates of `tid` when it binds the left (`left = true`) or
    /// right variable of the predicate. Empty slice when the tuple shares
    /// no bucket with anything.
    pub fn mates(&self, tid: TupleId, left: bool) -> &[TupleId] {
        let m = if left {
            &self.left_mates
        } else {
            &self.right_mates
        };
        m.get(&tid).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The build-time projection key of `tid` on the given side, if the
    /// tuple existed at build time.
    pub fn build_key(&self, tid: TupleId, left: bool) -> Option<u64> {
        let k = if left {
            &self.left_key
        } else {
            &self.right_key
        };
        k.get(&tid).copied()
    }
}

/// All per-signature blocking indexes built in one precomputation pass.
#[derive(Debug, Default)]
pub struct MlBlockIndex {
    entries: FxHashMap<PairSignature, PairBlockIndex>,
}

impl MlBlockIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, sig: PairSignature, idx: PairBlockIndex) {
        self.entries.insert(sig, idx);
    }

    pub fn get(&self, sig: &PairSignature) -> Option<&PairBlockIndex> {
        self.entries.get(sig)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> PairSignature {
        PairSignature {
            model: ModelId(0),
            lrel: RelId(0),
            lattrs: vec![AttrId(1)],
            rrel: RelId(0),
            rattrs: vec![AttrId(1)],
        }
    }

    #[test]
    fn mates_and_keys_round_trip() {
        let mut idx = PairBlockIndex::default();
        idx.left_key.insert(TupleId(0), 11);
        idx.right_key.insert(TupleId(1), 22);
        idx.left_mates.insert(TupleId(0), vec![TupleId(1)]);
        idx.right_mates.insert(TupleId(1), vec![TupleId(0)]);
        assert_eq!(idx.mates(TupleId(0), true), &[TupleId(1)]);
        assert_eq!(idx.mates(TupleId(1), false), &[TupleId(0)]);
        assert_eq!(idx.mates(TupleId(9), true), &[] as &[TupleId]);
        assert_eq!(idx.build_key(TupleId(0), true), Some(11));
        assert_eq!(idx.build_key(TupleId(0), false), None);

        let mut all = MlBlockIndex::new();
        assert!(all.is_empty());
        all.insert(sig(), idx);
        assert_eq!(all.len(), 1);
        assert!(all.get(&sig()).is_some());
    }
}
