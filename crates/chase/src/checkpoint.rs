//! Round-boundary checkpoints and the crash-recovery locator.
//!
//! A [`ChaseCheckpoint`] is the complete loop state of `run_inner` at a
//! round boundary: every round is a deterministic function of this state,
//! so `checkpoint(round k)` + re-running rounds `k+1..` reproduces an
//! uninterrupted run *byte-identically* (enforced by the CI kill-and-
//! resume job and `tests/wal_durability.rs`).
//!
//! Recovery invariants:
//!
//! 1. The checkpoint file is written (atomically, fsynced) **before** its
//!    `RoundCommit` marker is appended — a marker in the WAL's valid
//!    prefix implies its checkpoint is complete on disk.
//! 2. Resume picks the **last** commit marker in the valid prefix whose
//!    checkpoint file exists, parses, and matches the marker's CRC-32,
//!    falling back to earlier markers if a file was lost.
//! 3. The WAL is truncated to the chosen marker before appending — the
//!    re-run rounds regenerate their records in place, so replay after
//!    any number of crashes is idempotent.
//! 4. Timing observability (`round_makespans`, fault counters) is *not*
//!    checkpointed: it restarts empty on resume. Repair state — database,
//!    fixes, deltas, carries, changes — is complete.

use crate::chase::Proposal;
use crate::delta::{DeltaSet, RoundStats};
use crate::fixes::FixSnapshot;
use crate::wal::{self, DurabilityConfig, WalError, WalRecord, WalWriter, WAL_FILE};
use rock_crystal::crc32;
use rock_data::{CellRef, Database, GlobalTid, Value};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Bumped when the checkpoint encoding changes incompatibly.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Complete chase loop state at a round boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaseCheckpoint {
    pub version: u32,
    /// Engine fingerprint (rules + config) the state belongs to.
    pub fingerprint: u64,
    /// Rounds completed when this checkpoint was taken.
    pub round: u64,
    /// True when the loop decided to stop after this round — resume then
    /// skips straight to the final materialization.
    pub done: bool,
    /// The working database with all committed fixes materialized.
    pub db: Database,
    pub fixes: FixSnapshot,
    /// Rules activated for the next round (sorted).
    pub active: Vec<usize>,
    pub pruned_carry: usize,
    pub seeded: bool,
    /// Per-rule deltas accumulated since each rule last ran.
    pub pending: Vec<DeltaSet>,
    /// Per-rule carried emissions (valuation tuples + proposal).
    pub carry: Vec<Option<Vec<(Vec<GlobalTid>, Proposal)>>>,
    /// Union of every committed delta since chase start.
    pub cumulative: DeltaSet,
    pub changes: Vec<(CellRef, Value, Value)>,
    pub merged_pairs: Vec<(GlobalTid, GlobalTid)>,
    pub conflicts: usize,
    pub steps: usize,
    pub round_stats: Vec<RoundStats>,
}

impl ChaseCheckpoint {
    /// Canonical checkpoint file name for a round.
    pub fn file_name(round: u64) -> String {
        format!("checkpoint-{round:06}.json")
    }

    pub fn to_bytes(&self) -> Result<Vec<u8>, WalError> {
        serde_json::to_vec(self).map_err(|e| WalError::Codec(e.to_string()))
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WalError> {
        serde_json::from_slice(bytes).map_err(|e| WalError::Codec(e.to_string()))
    }
}

/// Everything `ChaseEngine::resume` needs: the recovered state, where to
/// truncate the WAL, and the replayed provenance-id state.
pub struct ResumePoint {
    pub checkpoint: ChaseCheckpoint,
    /// Byte offset one past the chosen `RoundCommit` frame.
    pub wal_offset: u64,
    pub next_fix_id: u64,
    pub last_fix: FxHashMap<GlobalTid, u64>,
}

/// Locate the last durable round in `cfg.dir` (or the specific round
/// `at`, for the resume-at-every-round oracle tests) and load its
/// checkpoint. See the module docs for the recovery invariants.
pub fn locate(
    cfg: &DurabilityConfig,
    fingerprint: u64,
    at: Option<u64>,
) -> Result<ResumePoint, WalError> {
    let scan = wal::read_wal(&cfg.dir.join(WAL_FILE))?;
    match scan.records.first() {
        Some((_, WalRecord::Begin { fingerprint: f })) if *f == fingerprint => {}
        Some((_, WalRecord::Begin { fingerprint: f })) => {
            return Err(WalError::Mismatch(format!(
                "WAL belongs to a different engine (fingerprint {f:#x}, expected {fingerprint:#x})"
            )));
        }
        _ => return Err(WalError::Mismatch("WAL has no Begin header".into())),
    }
    // candidate commit markers, newest last
    let mut commits: Vec<(u64, u64, String, u32)> = Vec::new();
    for (end, rec) in &scan.records {
        if let WalRecord::RoundCommit {
            round,
            checkpoint: Some(name),
            state_crc,
        } = rec
        {
            if at.is_none() || at == Some(*round) {
                commits.push((*round, *end, name.clone(), *state_crc));
            }
        }
    }
    while let Some((round, end, name, state_crc)) = commits.pop() {
        let Ok(bytes) = std::fs::read(cfg.dir.join(&name)) else {
            continue;
        };
        if crc32(&bytes) != state_crc {
            continue;
        }
        let ckpt = match ChaseCheckpoint::from_bytes(&bytes) {
            Ok(c) => c,
            Err(_) => continue,
        };
        if ckpt.version != CHECKPOINT_VERSION || ckpt.fingerprint != fingerprint {
            continue;
        }
        debug_assert_eq!(ckpt.round, round);
        // replay the surviving prefix to restore the provenance id state
        let mut next_fix_id = 0u64;
        let mut last_fix: FxHashMap<GlobalTid, u64> = FxHashMap::default();
        for (rend, rec) in &scan.records {
            if *rend > end {
                break;
            }
            if let WalRecord::Fix(f) = rec {
                next_fix_id = next_fix_id.max(f.id + 1);
                for t in f.kind.touched() {
                    last_fix.insert(t, f.id);
                }
            }
        }
        return Ok(ResumePoint {
            checkpoint: ckpt,
            wal_offset: end,
            next_fix_id,
            last_fix,
        });
    }
    Err(WalError::NoDurableRound)
}

/// Open the WAL for appending at a resume point (truncating the crashed
/// suffix).
pub(crate) fn reopen_writer(cfg: &DurabilityConfig, offset: u64) -> Result<WalWriter, WalError> {
    WalWriter::open_at(&cfg.dir.join(WAL_FILE), offset, cfg.sync)
}
