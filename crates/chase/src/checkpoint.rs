//! Round-boundary checkpoints (full + incremental) and the crash-recovery
//! locator.
//!
//! A [`ChaseCheckpoint`] is the complete loop state of `run_inner` at a
//! round boundary: every round is a deterministic function of this state,
//! so `checkpoint(round k)` + re-running rounds `k+1..` reproduces an
//! uninterrupted run *byte-identically* (enforced by the CI kill-and-
//! resume job, the crashsim sweep, and `tests/wal_durability.rs`).
//!
//! On disk a checkpoint is a [`CheckpointDoc`]: either a **full** snapshot
//! or a **delta** against the previous snapshot. A delta stores only the
//! cells/eids of the working database that changed, the per-rule
//! pending/carry slots that changed, and the suffixes of the append-only
//! accumulators (changes, merged pairs, round stats); the fix store,
//! activation set, and cumulative delta ride along verbatim (they are
//! small next to the database). Deltas chain back to their full through
//! `(base_name, base_crc)` pairs — `base_crc` is the CRC-32 of the base
//! *file*, the same value the base's own `RoundCommit` marker carries, so
//! one flipped bit anywhere in the chain invalidates every checkpoint
//! built on it. [`DurabilityConfig::full_every`] inserts periodic fulls to
//! bound chain length and re-anchor compaction.
//!
//! Recovery invariants:
//!
//! 1. The checkpoint file is written (atomically, fsynced) **before** its
//!    `RoundCommit` marker is appended — a marker in the WAL's valid
//!    prefix implies its checkpoint is complete on disk.
//! 2. Resume picks the **last** commit marker in the valid prefix whose
//!    checkpoint *chain* exists, parses, and matches every CRC link,
//!    falling back to earlier markers if any file in the chain was lost
//!    or damaged.
//! 3. The WAL is truncated to the chosen marker before appending — the
//!    re-run rounds regenerate their records in place, so replay after
//!    any number of crashes is idempotent.
//! 4. Whether round k's checkpoint is full or delta is a pure function of
//!    `(round, round_base, full_every, previous checkpoint)` — a resumed
//!    run makes the same choices as the uninterrupted one, keeping the
//!    on-disk chain byte-identical across crashes.
//! 5. Timing observability (`round_makespans`, fault counters) is *not*
//!    checkpointed: it restarts empty on resume. Repair state — database,
//!    fixes, deltas, carries, changes — is complete, and since v2 the
//!    provenance id state (`next_fix_id`, `last_fix`) is stored in the
//!    document itself, so resume needs no WAL replay and compaction may
//!    drop segments older than the latest full.

use crate::chase::Proposal;
use crate::delta::{DeltaSet, RoundStats};
use crate::fixes::FixSnapshot;
use crate::wal::{self, DurabilityConfig, WalError, WalPos, WalRecord, WalWriter};
use rock_crystal::{crc32, FaultVfs};
use rock_data::{AttrId, CellRef, Database, Eid, GlobalTid, RelId, TupleId, Value};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Bumped when the checkpoint encoding changes incompatibly.
/// v2: self-contained provenance id state, session batches, delta docs.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Hard cap on delta-chain length: a longer chain means a corrupt or
/// cyclic `base_name` graph, not a real configuration.
const MAX_CHAIN: usize = 1024;

/// Complete chase loop state at a round boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaseCheckpoint {
    pub version: u32,
    /// Engine fingerprint (rules + config) the state belongs to.
    pub fingerprint: u64,
    /// Rounds completed when this checkpoint was taken (global across the
    /// batches of a durable session).
    pub round: u64,
    /// ΔD batch this state belongs to (1 for plain runs).
    pub batch: u64,
    /// Global rounds committed by earlier batches of the session.
    pub round_base: u64,
    /// True when the loop decided to stop after this round — resume then
    /// skips straight to the final materialization.
    pub done: bool,
    /// The working database with all committed fixes materialized.
    pub db: Database,
    pub fixes: FixSnapshot,
    /// Rules activated for the next round (sorted).
    pub active: Vec<usize>,
    pub pruned_carry: usize,
    pub seeded: bool,
    /// Per-rule deltas accumulated since each rule last ran.
    pub pending: Vec<DeltaSet>,
    /// Per-rule carried emissions (valuation tuples + proposal).
    pub carry: Vec<Option<Vec<(Vec<GlobalTid>, Proposal)>>>,
    /// Union of every committed delta since the batch started.
    pub cumulative: DeltaSet,
    pub changes: Vec<(CellRef, Value, Value)>,
    pub merged_pairs: Vec<(GlobalTid, GlobalTid)>,
    pub conflicts: usize,
    pub steps: usize,
    pub round_stats: Vec<RoundStats>,
    /// Provenance id state as of this round's commit marker: the next fix
    /// id and the last fix that touched each tuple (sorted). Filled by the
    /// durability context at write time.
    pub next_fix_id: u64,
    pub last_fix: Vec<(GlobalTid, u64)>,
}

impl ChaseCheckpoint {
    /// Canonical file name of a **full** checkpoint for a round.
    pub fn file_name(round: u64) -> String {
        format!("checkpoint-{round:06}.json")
    }

    /// Canonical file name of a **delta** checkpoint for a round.
    pub fn delta_file_name(round: u64) -> String {
        format!("checkpoint-{round:06}.delta.json")
    }

    pub fn to_bytes(&self) -> Result<Vec<u8>, WalError> {
        serde_json::to_vec(self).map_err(|e| WalError::Codec(e.to_string()))
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WalError> {
        serde_json::from_slice(bytes).map_err(|e| WalError::Codec(e.to_string()))
    }
}

/// Incremental checkpoint: the difference between this round's state and
/// `base_name`'s (the previously written checkpoint). Everything not
/// listed is inherited from the base.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointDelta {
    pub version: u32,
    pub fingerprint: u64,
    pub round: u64,
    pub batch: u64,
    pub round_base: u64,
    pub done: bool,
    /// Round of the checkpoint this delta builds on.
    pub base_round: u64,
    /// File name of the base document.
    pub base_name: String,
    /// CRC-32 of the base document's bytes (= the base marker's
    /// `state_crc`) — the chain link.
    pub base_crc: u32,
    /// Working-database cells whose value changed since the base.
    pub cells: Vec<(CellRef, Value)>,
    /// Tuples whose entity id changed since the base (defensive: the loop
    /// only materializes eids after it finishes).
    pub eids: Vec<(RelId, TupleId, Eid)>,
    /// Fix store, verbatim (small next to the database).
    pub fixes: FixSnapshot,
    pub active: Vec<usize>,
    pub pruned_carry: usize,
    pub seeded: bool,
    /// Per-rule pending slots that differ from the base.
    pub pending: Vec<(usize, DeltaSet)>,
    /// Per-rule carry slots that differ from the base.
    pub carry: Vec<(usize, Option<Vec<(Vec<GlobalTid>, Proposal)>>)>,
    pub cumulative: DeltaSet,
    /// `changes` is append-only within a batch: the base's length plus the
    /// new suffix reconstructs it.
    pub changes_base: usize,
    pub changes_suffix: Vec<(CellRef, Value, Value)>,
    pub merged_base: usize,
    pub merged_suffix: Vec<(GlobalTid, GlobalTid)>,
    pub conflicts: usize,
    pub steps: usize,
    pub stats_base: usize,
    pub stats_suffix: Vec<RoundStats>,
    pub next_fix_id: u64,
    pub last_fix: Vec<(GlobalTid, u64)>,
}

/// What actually sits in a `checkpoint-*.json` file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CheckpointDoc {
    Full(ChaseCheckpoint),
    Delta(CheckpointDelta),
}

impl CheckpointDoc {
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WalError> {
        serde_json::from_slice(bytes).map_err(|e| WalError::Codec(e.to_string()))
    }
}

/// Borrowing serializer for [`CheckpointDoc`] (avoids cloning a full
/// database image just to write it). Variant names must match.
#[derive(Serialize)]
enum CheckpointDocSer<'a> {
    Full(&'a ChaseCheckpoint),
    Delta(&'a CheckpointDelta),
}

/// The last checkpoint the durability context wrote: the delta base, its
/// file identity, and the live chain (full first) that compaction must
/// keep.
pub(crate) struct PrevCheckpoint {
    pub(crate) state: ChaseCheckpoint,
    pub(crate) name: String,
    pub(crate) crc: u32,
    pub(crate) chain: Vec<String>,
}

/// A checkpoint encoded for writing.
pub(crate) struct EncodedCheckpoint {
    pub(crate) name: String,
    pub(crate) bytes: Vec<u8>,
    pub(crate) is_full: bool,
    /// The full materialized state (delta or not) — the next delta base.
    pub(crate) state: ChaseCheckpoint,
}

/// True when round `round` of a batch rooted at `round_base` is scheduled
/// to be a full checkpoint. Pure in its inputs (invariant 4).
fn periodic_full(round: u64, round_base: u64, full_every: usize) -> bool {
    if full_every <= 1 {
        return true;
    }
    let k = round.saturating_sub(round_base).saturating_sub(1);
    k % full_every as u64 == 0
}

/// Encode `ck` as a full or delta document per the schedule and the
/// available base. Falls back to a full whenever a delta is unsafe (no
/// base, batch boundary, shape change).
pub(crate) fn encode_doc(
    prev: Option<&PrevCheckpoint>,
    ck: ChaseCheckpoint,
    full_every: usize,
) -> Result<EncodedCheckpoint, WalError> {
    let delta = if periodic_full(ck.round, ck.round_base, full_every) {
        None
    } else {
        prev.and_then(|p| diff_checkpoint(p, &ck))
    };
    match delta {
        Some(d) => {
            let bytes = serde_json::to_vec(&CheckpointDocSer::Delta(&d))
                .map_err(|e| WalError::Codec(e.to_string()))?;
            Ok(EncodedCheckpoint {
                name: ChaseCheckpoint::delta_file_name(ck.round),
                bytes,
                is_full: false,
                state: ck,
            })
        }
        None => {
            let bytes = serde_json::to_vec(&CheckpointDocSer::Full(&ck))
                .map_err(|e| WalError::Codec(e.to_string()))?;
            Ok(EncodedCheckpoint {
                name: ChaseCheckpoint::file_name(ck.round),
                bytes,
                is_full: true,
                state: ck,
            })
        }
    }
}

/// Cell/eid difference between two working databases. `None` when the
/// shapes diverge (different relations, capacities, or liveness) — then
/// only a full checkpoint is safe.
#[allow(clippy::type_complexity)]
fn diff_db(
    base: &Database,
    new: &Database,
) -> Option<(Vec<(CellRef, Value)>, Vec<(RelId, TupleId, Eid)>)> {
    let base_rels: Vec<(RelId, &rock_data::Relation)> = base.iter().collect();
    let new_rels: Vec<(RelId, &rock_data::Relation)> = new.iter().collect();
    if base_rels.len() != new_rels.len() {
        return None;
    }
    let mut cells = Vec::new();
    let mut eids = Vec::new();
    for ((rid, rb), (_, rn)) in base_rels.iter().zip(&new_rels) {
        if rb.capacity() != rn.capacity() || rb.len() != rn.len() {
            return None;
        }
        for tid in rn.tids() {
            let tn = rn.get(tid)?;
            let tb = rb.get(tid)?; // same liveness or bail to a full
            if tb.values.len() != tn.values.len() {
                return None;
            }
            if tb.eid != tn.eid {
                eids.push((*rid, tid, tn.eid));
            }
            for (ai, (vb, vn)) in tb.values.iter().zip(&tn.values).enumerate() {
                if vb != vn {
                    cells.push((CellRef::new(*rid, tid, AttrId(ai as u16)), vn.clone()));
                }
            }
        }
    }
    Some((cells, eids))
}

/// Compute the delta of `ck` against `p`. `None` forces a full checkpoint
/// (batch boundary, engine change, non-monotonic accumulators, shape
/// change).
fn diff_checkpoint(p: &PrevCheckpoint, ck: &ChaseCheckpoint) -> Option<CheckpointDelta> {
    let b = &p.state;
    if b.fingerprint != ck.fingerprint
        || b.batch != ck.batch
        || ck.round <= b.round
        || b.pending.len() != ck.pending.len()
        || b.carry.len() != ck.carry.len()
        || ck.changes.len() < b.changes.len()
        || ck.changes[..b.changes.len()] != b.changes[..]
        || ck.merged_pairs.len() < b.merged_pairs.len()
        || ck.merged_pairs[..b.merged_pairs.len()] != b.merged_pairs[..]
        || ck.round_stats.len() < b.round_stats.len()
        || ck.round_stats[..b.round_stats.len()] != b.round_stats[..]
    {
        return None;
    }
    let (cells, eids) = diff_db(&b.db, &ck.db)?;
    let pending = ck
        .pending
        .iter()
        .enumerate()
        .filter(|(i, d)| b.pending[*i] != **d)
        .map(|(i, d)| (i, d.clone()))
        .collect();
    let carry = ck
        .carry
        .iter()
        .enumerate()
        .filter(|(i, c)| b.carry[*i] != **c)
        .map(|(i, c)| (i, c.clone()))
        .collect();
    Some(CheckpointDelta {
        version: ck.version,
        fingerprint: ck.fingerprint,
        round: ck.round,
        batch: ck.batch,
        round_base: ck.round_base,
        done: ck.done,
        base_round: b.round,
        base_name: p.name.clone(),
        base_crc: p.crc,
        cells,
        eids,
        fixes: ck.fixes.clone(),
        active: ck.active.clone(),
        pruned_carry: ck.pruned_carry,
        seeded: ck.seeded,
        pending,
        carry,
        cumulative: ck.cumulative.clone(),
        changes_base: b.changes.len(),
        changes_suffix: ck.changes[b.changes.len()..].to_vec(),
        merged_base: b.merged_pairs.len(),
        merged_suffix: ck.merged_pairs[b.merged_pairs.len()..].to_vec(),
        conflicts: ck.conflicts,
        steps: ck.steps,
        stats_base: b.round_stats.len(),
        stats_suffix: ck.round_stats[b.round_stats.len()..].to_vec(),
        next_fix_id: ck.next_fix_id,
        last_fix: ck.last_fix.clone(),
    })
}

/// Materialize `base + delta` back into a full state. Inverse of
/// [`diff_checkpoint`] — `apply_delta(b, diff(b, ck)) == ck` (checked by
/// the round-trip unit test and, transitively, by every byte-identity
/// assertion over resumed runs).
pub(crate) fn apply_delta(
    base: &ChaseCheckpoint,
    d: &CheckpointDelta,
) -> Result<ChaseCheckpoint, WalError> {
    if d.base_round != base.round || d.fingerprint != base.fingerprint {
        return Err(WalError::Mismatch(format!(
            "delta for round {} bases on round {} but chained to round {}",
            d.round, d.base_round, base.round
        )));
    }
    let mut st = base.clone();
    st.version = d.version;
    st.round = d.round;
    st.batch = d.batch;
    st.round_base = d.round_base;
    st.done = d.done;
    let rels = st.db.iter().count();
    for (cell, v) in &d.cells {
        if cell.rel.index() >= rels
            || !st
                .db
                .relation_mut(cell.rel)
                .set_cell(cell.tid, cell.attr, v.clone())
        {
            return Err(WalError::Codec(format!(
                "delta cell {cell} targets a dead tuple"
            )));
        }
    }
    for (rel, tid, eid) in &d.eids {
        let tuple = if rel.index() < rels {
            st.db.relation_mut(*rel).get_mut(*tid)
        } else {
            None
        };
        match tuple {
            Some(t) => t.eid = *eid,
            None => {
                return Err(WalError::Codec(format!(
                    "delta eid update targets a dead tuple {rel}.{tid}"
                )))
            }
        }
    }
    st.fixes = d.fixes.clone();
    st.active = d.active.clone();
    st.pruned_carry = d.pruned_carry;
    st.seeded = d.seeded;
    for (i, p) in &d.pending {
        match st.pending.get_mut(*i) {
            Some(slot) => *slot = p.clone(),
            None => {
                return Err(WalError::Codec(format!(
                    "delta pending rule {i} out of range"
                )))
            }
        }
    }
    for (i, c) in &d.carry {
        match st.carry.get_mut(*i) {
            Some(slot) => *slot = c.clone(),
            None => {
                return Err(WalError::Codec(format!(
                    "delta carry rule {i} out of range"
                )))
            }
        }
    }
    st.cumulative = d.cumulative.clone();
    if d.changes_base > st.changes.len()
        || d.merged_base > st.merged_pairs.len()
        || d.stats_base > st.round_stats.len()
    {
        return Err(WalError::Codec(
            "delta suffix bases exceed base state".into(),
        ));
    }
    st.changes.truncate(d.changes_base);
    st.changes.extend(d.changes_suffix.iter().cloned());
    st.merged_pairs.truncate(d.merged_base);
    st.merged_pairs.extend(d.merged_suffix.iter().cloned());
    st.round_stats.truncate(d.stats_base);
    st.round_stats.extend(d.stats_suffix.iter().cloned());
    st.conflicts = d.conflicts;
    st.steps = d.steps;
    st.next_fix_id = d.next_fix_id;
    st.last_fix = d.last_fix.clone();
    Ok(st)
}

/// Everything `ChaseEngine::resume` needs: the recovered (materialized)
/// state, where to truncate the WAL, the chosen checkpoint's file
/// identity, and the chain of files it depends on.
pub struct ResumePoint {
    pub checkpoint: ChaseCheckpoint,
    /// Position one past the chosen `RoundCommit` frame.
    pub pos: WalPos,
    /// File name of the chosen checkpoint document.
    pub name: String,
    /// CRC-32 of that document (= the marker's `state_crc`).
    pub crc: u32,
    /// Files the recovered state depends on, full first.
    pub chain: Vec<String>,
}

impl ResumePoint {
    pub(crate) fn prev(&self) -> PrevCheckpoint {
        PrevCheckpoint {
            state: self.checkpoint.clone(),
            name: self.name.clone(),
            crc: self.crc,
            chain: self.chain.clone(),
        }
    }
}

/// Load and verify a checkpoint chain ending at `name`/`crc`, walking
/// `base_name` links back to a full and re-applying the deltas oldest
/// first. Any read error, CRC mismatch, parse failure, or fingerprint /
/// version divergence anywhere in the chain fails the whole chain.
fn load_chain(
    vfs: &FaultVfs,
    dir: &Path,
    name: &str,
    crc: u32,
    fingerprint: u64,
) -> Result<(ChaseCheckpoint, Vec<String>), WalError> {
    let mut deltas: Vec<CheckpointDelta> = Vec::new();
    let mut chain_rev: Vec<String> = Vec::new();
    let mut cur_name = name.to_string();
    let mut cur_crc = crc;
    let full = loop {
        if chain_rev.len() > MAX_CHAIN {
            return Err(WalError::Codec("checkpoint chain too long".into()));
        }
        let bytes = vfs.read(&dir.join(&cur_name))?;
        if crc32(&bytes) != cur_crc {
            return Err(WalError::Mismatch(format!(
                "checkpoint {cur_name} fails its CRC"
            )));
        }
        chain_rev.push(cur_name.clone());
        match CheckpointDoc::from_bytes(&bytes)? {
            CheckpointDoc::Full(ck) => {
                if ck.version != CHECKPOINT_VERSION || ck.fingerprint != fingerprint {
                    return Err(WalError::Mismatch(format!(
                        "checkpoint {cur_name} has version {} / fingerprint {:#x}",
                        ck.version, ck.fingerprint
                    )));
                }
                break ck;
            }
            CheckpointDoc::Delta(d) => {
                if d.version != CHECKPOINT_VERSION || d.fingerprint != fingerprint {
                    return Err(WalError::Mismatch(format!(
                        "checkpoint {cur_name} has version {} / fingerprint {:#x}",
                        d.version, d.fingerprint
                    )));
                }
                cur_name = d.base_name.clone();
                cur_crc = d.base_crc;
                deltas.push(d);
            }
        }
    };
    let mut state = full;
    for d in deltas.iter().rev() {
        state = apply_delta(&state, d)?;
    }
    chain_rev.reverse();
    Ok((state, chain_rev))
}

/// Locate the last durable round in `cfg.dir` (or the specific round
/// `at`, for the resume-at-every-round oracle tests) and load its
/// checkpoint chain. See the module docs for the recovery invariants.
/// Reads go through `cfg.vfs`, so injected read faults exercise the
/// fallback path.
pub fn locate(
    cfg: &DurabilityConfig,
    fingerprint: u64,
    at: Option<u64>,
) -> Result<ResumePoint, WalError> {
    let scan = wal::read_wal_dir_vfs(&cfg.vfs, &cfg.dir)?;
    match scan.records.first() {
        Some((_, WalRecord::Begin { fingerprint: f })) if *f == fingerprint => {}
        Some((_, WalRecord::Begin { fingerprint: f })) => {
            return Err(WalError::Mismatch(format!(
                "WAL belongs to a different engine (fingerprint {f:#x}, expected {fingerprint:#x})"
            )));
        }
        _ => return Err(WalError::Mismatch("WAL has no Begin header".into())),
    }
    // candidate commit markers, newest last
    let mut commits: Vec<(u64, WalPos, String, u32)> = Vec::new();
    for (pos, rec) in &scan.records {
        if let WalRecord::RoundCommit {
            round,
            checkpoint: Some(name),
            state_crc,
        } = rec
        {
            if at.is_none() || at == Some(*round) {
                commits.push((*round, *pos, name.clone(), *state_crc));
            }
        }
    }
    while let Some((round, pos, name, state_crc)) = commits.pop() {
        let Ok((state, chain)) = load_chain(&cfg.vfs, &cfg.dir, &name, state_crc, fingerprint)
        else {
            continue;
        };
        if state.round != round {
            continue;
        }
        return Ok(ResumePoint {
            checkpoint: state,
            pos,
            name,
            crc: state_crc,
            chain,
        });
    }
    Err(WalError::NoDurableRound)
}

/// One link of a checkpoint chain, for the `debug_panel wal` inspector.
#[derive(Debug, Clone, Serialize)]
pub struct ChainEntry {
    pub name: String,
    pub round: u64,
    pub full: bool,
    pub bytes: u64,
    pub crc_ok: bool,
}

/// Walk the chain ending at `name`/`crc` tolerantly (for display): stops
/// at the first unreadable or unparsable link instead of failing. Entries
/// come back newest first.
pub fn checkpoint_chain(vfs: &FaultVfs, dir: &Path, name: &str, crc: u32) -> Vec<ChainEntry> {
    let mut out = Vec::new();
    let mut cur_name = name.to_string();
    let mut cur_crc = crc;
    while out.len() <= MAX_CHAIN {
        let Ok(bytes) = vfs.read(&dir.join(&cur_name)) else {
            break;
        };
        let crc_ok = crc32(&bytes) == cur_crc;
        let Ok(doc) = CheckpointDoc::from_bytes(&bytes) else {
            out.push(ChainEntry {
                name: cur_name,
                round: 0,
                full: false,
                bytes: bytes.len() as u64,
                crc_ok,
            });
            break;
        };
        match doc {
            CheckpointDoc::Full(ck) => {
                out.push(ChainEntry {
                    name: cur_name,
                    round: ck.round,
                    full: true,
                    bytes: bytes.len() as u64,
                    crc_ok,
                });
                break;
            }
            CheckpointDoc::Delta(d) => {
                out.push(ChainEntry {
                    name: cur_name,
                    round: d.round,
                    full: false,
                    bytes: bytes.len() as u64,
                    crc_ok,
                });
                cur_name = d.base_name;
                cur_crc = d.base_crc;
            }
        }
    }
    out
}

/// Open the WAL for appending at a resume point (truncating the crashed
/// suffix and deleting younger segments).
pub(crate) fn reopen_writer(
    cfg: &DurabilityConfig,
    pos: WalPos,
    fingerprint: u64,
) -> Result<WalWriter, WalError> {
    WalWriter::open_at(cfg, pos, fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, Attribute, DatabaseSchema, RelationSchema};

    fn tiny_db(vals: &[i64]) -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::new(
            "T",
            vec![Attribute::new("a", AttrType::Int)],
        )]);
        let mut db = Database::new(&schema);
        for v in vals {
            db.relation_mut(RelId(0))
                .insert_row(vec![Value::Int(*v)])
                .unwrap();
        }
        db
    }

    fn ck_at(round: u64, vals: &[i64]) -> ChaseCheckpoint {
        let db = tiny_db(vals);
        let cumulative = DeltaSet::empty(&db);
        ChaseCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: 0xfeed,
            round,
            batch: 1,
            round_base: 0,
            done: false,
            db,
            fixes: FixSnapshot::default(),
            active: vec![0],
            pruned_carry: 0,
            seeded: false,
            pending: vec![cumulative.clone()],
            carry: vec![None],
            cumulative,
            changes: Vec::new(),
            merged_pairs: Vec::new(),
            conflicts: 0,
            steps: round as usize,
            round_stats: Vec::new(),
            next_fix_id: round,
            last_fix: Vec::new(),
        }
    }

    #[test]
    fn full_schedule_is_periodic_within_a_batch() {
        // full_every = 3, batch rounds 1.. → full at 1, 4, 7, …
        assert!(periodic_full(1, 0, 3));
        assert!(!periodic_full(2, 0, 3));
        assert!(!periodic_full(3, 0, 3));
        assert!(periodic_full(4, 0, 3));
        // batch 2 rooted at round_base 4 restarts the cycle
        assert!(periodic_full(5, 4, 3));
        assert!(!periodic_full(6, 4, 3));
        // full_every = 1 → always full
        assert!(periodic_full(9, 0, 1));
    }

    #[test]
    fn diff_apply_round_trips() {
        let base = ck_at(1, &[1, 2, 3]);
        let mut next = ck_at(2, &[1, 2, 3]);
        next.db
            .relation_mut(RelId(0))
            .set_cell(TupleId(1), AttrId(0), Value::Int(99));
        next.changes.push((
            CellRef::new(RelId(0), TupleId(1), AttrId(0)),
            Value::Int(2),
            Value::Int(99),
        ));
        let prev = PrevCheckpoint {
            state: base.clone(),
            name: ChaseCheckpoint::file_name(1),
            crc: 7,
            chain: vec![ChaseCheckpoint::file_name(1)],
        };
        let d = diff_checkpoint(&prev, &next).expect("delta must apply");
        assert_eq!(d.cells.len(), 1);
        assert!(d.eids.is_empty());
        let rebuilt = apply_delta(&base, &d).unwrap();
        assert_eq!(rebuilt.to_bytes().unwrap(), next.to_bytes().unwrap());
    }

    #[test]
    fn shape_changes_force_a_full() {
        let base = ck_at(1, &[1, 2, 3]);
        let next = ck_at(2, &[1, 2, 3, 4]); // extra tuple: capacity changed
        let prev = PrevCheckpoint {
            state: base,
            name: ChaseCheckpoint::file_name(1),
            crc: 7,
            chain: vec![],
        };
        assert!(diff_checkpoint(&prev, &next).is_none());
        // encode_doc then falls back to a full document
        let enc = encode_doc(Some(&prev), next, 100).unwrap();
        assert!(enc.is_full);
        assert_eq!(enc.name, ChaseCheckpoint::file_name(2));
    }
}
