//! Tuple-level delta tracking for the semi-naive chase (§4.1 incremental
//! evaluation, DESIGN.md "Semi-naive delta rounds").
//!
//! A [`DeltaSet`] is one bitset per relation over *tuple slots*
//! ([`rock_data::Relation::capacity`], so tombstones keep their index) and
//! records which tuples were touched by a chase round's commit: cells
//! written, entity classes merged, classes that received a validated value,
//! or — coarsely — the whole relation when a temporal order was extended
//! (order edges act transitively, so tuple-level tracking of their
//! consequences would be unsound).
//!
//! Round ≥ 2 of the chase then only enumerates valuations where at least
//! one tuple variable binds a delta tuple; untouched valuations are covered
//! by the per-rule carry (see `chase.rs`).

use rock_data::{Bitset, Database, RelId, TupleId};

/// Per-relation sets of touched tuple slots.
///
/// Serializable so round-boundary checkpoints (`crate::checkpoint`) can
/// persist the per-rule pending deltas and the cumulative dirty set.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeltaSet {
    rels: Vec<Bitset>,
}

impl DeltaSet {
    /// All-empty delta sized to `db`'s relation capacities. Capacities are
    /// stable for the lifetime of a chase (the chase writes cells, it never
    /// inserts tuples), so sets built from the same database can be
    /// unioned.
    pub fn empty(db: &Database) -> DeltaSet {
        let mut rels: Vec<Bitset> = Vec::new();
        for (rid, rel) in db.iter() {
            let i = rid.0 as usize;
            if rels.len() <= i {
                rels.resize_with(i + 1, || Bitset::new(0));
            }
            rels[i] = Bitset::new(rel.capacity());
        }
        DeltaSet { rels }
    }

    /// Mark one tuple as touched. Out-of-range ids are ignored (they cannot
    /// bind a variable anyway).
    pub fn mark(&mut self, rel: RelId, tid: TupleId) {
        if let Some(b) = self.rels.get_mut(rel.0 as usize) {
            if (tid.0 as usize) < b.len() {
                b.set(tid.0 as usize);
            }
        }
    }

    /// Mark every slot of a relation (the temporal-order coarsening).
    pub fn mark_all(&mut self, rel: RelId) {
        if let Some(b) = self.rels.get_mut(rel.0 as usize) {
            *b = Bitset::full(b.len());
        }
    }

    pub fn contains(&self, rel: RelId, tid: TupleId) -> bool {
        self.rels
            .get(rel.0 as usize)
            .map(|b| (tid.0 as usize) < b.len() && b.get(tid.0 as usize))
            .unwrap_or(false)
    }

    pub fn union_with(&mut self, other: &DeltaSet) {
        for (b, o) in self.rels.iter_mut().zip(&other.rels) {
            b.union_with(o);
        }
    }

    /// Drop every mark, keeping the sizing.
    pub fn clear(&mut self) {
        for b in &mut self.rels {
            *b = Bitset::new(b.len());
        }
    }

    /// Total marked tuples across relations.
    pub fn count(&self) -> u64 {
        self.rels.iter().map(|b| b.count_ones()).sum()
    }

    /// Marked tuples in one relation.
    pub fn rel_count(&self, rel: RelId) -> u64 {
        self.rels
            .get(rel.0 as usize)
            .map(|b| b.count_ones())
            .unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Marked tuple ids of one relation, ascending.
    pub fn ones_vec(&self, rel: RelId) -> Vec<TupleId> {
        self.rels
            .get(rel.0 as usize)
            .map(|b| b.ones().map(|i| TupleId(i as u32)).collect())
            .unwrap_or_default()
    }
}

/// Per-round evaluation observability (surfaced by `debug_panel` and the
/// `chase-delta` figure panel).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoundStats {
    /// Rules evaluated this round.
    pub active_rules: usize,
    /// Sum over delta-mode rules of their pending delta sizes (0 in
    /// full-scan rounds).
    pub delta_tuples: u64,
    /// Valuations enumerated (leaf callbacks) across all work units.
    pub valuations: u64,
    /// Proposals after global dedup.
    pub proposals: usize,
    /// Carried emissions re-used without re-enumeration.
    pub carried: usize,
    /// Rules the rule-dependency graph removed from this round's
    /// activation (0 unless `ChaseConfig::use_rule_graph`).
    pub rules_pruned: usize,
    /// Distinct certified strata the round's active rules belong to
    /// (0 unless `ChaseConfig::use_schedule`). `serde(default)` keeps old
    /// checkpoints readable.
    #[serde(default)]
    pub strata: usize,
    /// Rounds left under the instance-resolved certified bound after this
    /// round (0 unless `use_schedule` with a bounded certificate; negative
    /// would mean the certificate was violated).
    #[serde(default)]
    pub bound_margin: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, Eid, RelationSchema, Value};

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::of("A", &[("x", AttrType::Str)]),
            RelationSchema::of("B", &[("y", AttrType::Str)]),
        ]);
        let mut db = Database::new(&schema);
        for i in 0..4 {
            db.relation_mut(RelId(0))
                .insert(Eid(i), vec![Value::str(format!("a{i}"))])
                .unwrap();
        }
        db.relation_mut(RelId(1))
            .insert(Eid(0), vec![Value::str("b0")])
            .unwrap();
        db
    }

    #[test]
    fn mark_union_clear_round_trip() {
        let db = db();
        let mut d = DeltaSet::empty(&db);
        assert!(d.is_empty());
        d.mark(RelId(0), TupleId(1));
        d.mark(RelId(0), TupleId(3));
        d.mark(RelId(1), TupleId(0));
        // out-of-range marks are ignored
        d.mark(RelId(1), TupleId(99));
        d.mark(RelId(7), TupleId(0));
        assert!(d.contains(RelId(0), TupleId(1)));
        assert!(!d.contains(RelId(0), TupleId(0)));
        assert!(!d.contains(RelId(1), TupleId(99)));
        assert!(!d.contains(RelId(7), TupleId(0)));
        assert_eq!(d.count(), 3);
        assert_eq!(d.rel_count(RelId(0)), 2);
        assert_eq!(d.ones_vec(RelId(0)), vec![TupleId(1), TupleId(3)]);

        let mut e = DeltaSet::empty(&db);
        e.mark(RelId(0), TupleId(0));
        e.union_with(&d);
        assert_eq!(e.count(), 4);

        e.clear();
        assert!(e.is_empty());
        assert_eq!(e.ones_vec(RelId(0)), Vec::<TupleId>::new());
    }

    #[test]
    fn mark_all_covers_whole_relation() {
        let db = db();
        let mut d = DeltaSet::empty(&db);
        d.mark_all(RelId(0));
        assert_eq!(d.rel_count(RelId(0)), 4);
        assert_eq!(d.rel_count(RelId(1)), 0);
        assert!(d.contains(RelId(0), TupleId(3)));
    }
}
