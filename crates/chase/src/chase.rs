//! The round-based chase engine (paper §4.1 "Implementing the chase").
//!
//! Each round: (1) activated rules enumerate valuations whose precondition
//! holds under the *resolved view* (the working database with all committed
//! fixes materialized, validated temporal orders, and `[EID]=` classes);
//! (2) valuations whose consequence is not yet satisfied emit *proposals*;
//! (3) all proposals commit together with deterministic, learning-based
//! conflict resolution. Round-atomic commits with deterministic resolution
//! give the Church–Rosser property: the final `Chase(D, Σ, Γ)` does not
//! depend on rule order (property-tested in the workspace `tests/`).
//!
//! Ground-truth gating: trusted tuples' raw cells are never overwritten
//! (certain fixes respect Γ), and in [`GateMode::Strict`] a rule only fires
//! when every precondition cell is trusted or already validated in `U` —
//! the letter of §4.1's chase-step condition (1). The default
//! [`GateMode::Resolved`] treats the current resolved view as validated,
//! which is how the deployed system bootstraps beyond its 10k-tuple seed
//! (DESIGN.md §3 discusses the interpretation).

use crate::checkpoint::{self, ChaseCheckpoint, CHECKPOINT_VERSION};
use crate::conflict::ConflictPolicy;
use crate::delta::{DeltaSet, RoundStats};
use crate::fixes::{ChaseOrderOracle, EntityKey, FixStore, MergeOutcome};
use crate::order::OrderInsert;
use crate::wal::{
    DurabilityConfig, DurabilityCtx, FixKind, RoundFix, WalError, WalHealth, WalSummary,
};
use rock_crystal::work::{partition_range, Partition};
use rock_crystal::{Cluster, ClusterConfig, FaultStats, UnitFailure, WorkUnit};
use rock_data::{AttrId, CellRef, Database, Delta, GlobalTid, RelId, TupleId, Update, Value};
use rock_kg::Graph;
use rock_ml::{MlBlockIndex, ModelRegistry, PairSignature};
use rock_rees::eval::{
    distinct_ok, enumerate_valuations_restricted, enumerate_valuations_with_candidates,
    EntityOracle, EvalContext, Valuation,
};
use rock_rees::{ChaseSchedule, Predicate, RoundBound, Rule, RuleSet, TerminationClass};
use rustc_hash::{FxHashMap, FxHashSet};

/// Work-unit payload tags (see [`WorkUnit::payload`]): how a unit's
/// partition is to be interpreted by the evaluation closure.
const PAYLOAD_FULL: u64 = 0;
/// Full enumeration, then keep only valuations touching the rule's pending
/// delta — the trivially-correct oracle mechanism (`semi_naive: false` in a
/// seeded run).
const PAYLOAD_FILTER: u64 = 1;
/// `PAYLOAD_PINNED_BASE + v`: pin tuple variable `v` to a chunk of the
/// rule's pending-delta ones-list; the partition's `[start, end)` indexes
/// into that shared list.
const PAYLOAD_PINNED_BASE: u64 = 2;

/// One emitted proposal together with the tuples its valuation bound
/// (empty when tuple-level tracking is off).
type Emission = (Vec<GlobalTid>, Proposal);

/// The chase loop's complete mutable state, factored out of the engine so
/// a [`ChaseCheckpoint`] can capture it at a round boundary and `resume`
/// can re-enter `run_loop` with recovered state. Every round is a
/// deterministic function of this struct (plus the immutable engine), so
/// checkpoint + re-run reproduces an uninterrupted run byte-identically.
struct LoopState {
    work_db: Database,
    fixes: FixStore,
    active: FxHashSet<usize>,
    pruned_carry: usize,
    seeded: bool,
    pending: Vec<DeltaSet>,
    carry: Vec<Option<Vec<Emission>>>,
    cumulative: DeltaSet,
    changes: Vec<(CellRef, Value, Value)>,
    merged_pairs: Vec<(GlobalTid, GlobalTid)>,
    conflicts: usize,
    steps: usize,
    rounds: usize,
    round_stats: Vec<RoundStats>,
    /// ΔD batch this loop belongs to (1 for plain runs; durable sessions
    /// increment it per [`ChaseEngine::run_incremental_durable`] step).
    batch: u64,
    /// Global rounds committed by earlier batches of a durable session:
    /// `rounds - round_base` is this batch's own round count, and all
    /// budget/bound accounting is relative to it.
    round_base: usize,
    /// Loop decided to stop after the last completed round; resume skips
    /// straight to the final ER materialization.
    done: bool,
}

/// Valuation tuples supporting a deduped proposal (WAL provenance).
fn support_of(support: &FxHashMap<ProposalKey, Vec<GlobalTid>>, p: &Proposal) -> Vec<GlobalTid> {
    support.get(&p.key()).cloned().unwrap_or_default()
}

/// Fold a proposal's provenance into a cell's attribution: the smallest
/// proposing rule id wins, valuations union.
fn attribute(
    map: &mut FxHashMap<CellRef, (u32, Vec<GlobalTid>)>,
    cell: CellRef,
    rule: u32,
    sup: Vec<GlobalTid>,
) {
    let e = map.entry(cell).or_insert((rule, Vec::new()));
    e.0 = e.0.min(rule);
    e.1.extend(sup);
}

/// How strictly preconditions must be backed by ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Precondition cells must be trusted or validated in `U` (§4.1 chase
    /// step condition (1), literally).
    Strict,
    /// The resolved view is treated as validated (bootstrap mode; default).
    Resolved,
}

/// Chase configuration.
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Safety bound on rounds (the fix lattice is finite, but adversarial
    /// rule sets can oscillate through conflict overrides).
    pub max_rounds: usize,
    /// Crystal workers evaluating rule × partition work units.
    pub workers: usize,
    /// Target partitions per rule for work-unit generation.
    pub partitions_per_rule: u32,
    pub policy: ConflictPolicy,
    pub gate: GateMode,
    /// Lazy REE++ activation (§4.1 Novelty (a)): re-evaluate only rules
    /// whose precondition reads cells fixed in the previous round. `false`
    /// re-activates every rule every round (the naive-re-scan ablation the
    /// benches measure).
    pub lazy_activation: bool,
    /// Semi-naive delta rounds: from round 2 on, enumerate only valuations
    /// where at least one tuple variable binds a tuple touched since the
    /// rule last ran; untouched valuations re-emit their previous proposals
    /// from the per-rule carry. `false` keeps the full re-scan of every
    /// active rule — the equivalence oracle and ablation baseline. Round 1
    /// is a full scan either way, so results are identical by construction
    /// (property-tested in `tests/chase_delta_equivalence.rs`).
    pub semi_naive: bool,
    /// Crystal resilience knobs (fault plan, retry budget, backoff,
    /// speculation threshold). A rule with a quarantined unit has its round
    /// voided and re-runs from scratch the next round, so recoverable
    /// faults never change the committed fixes.
    pub cluster: ClusterConfig,
    /// Schedule rounds with the `rock-analyze` rule-dependency graph:
    /// statically dead rules never activate, and after each round only
    /// rules the committed delta can reach (their reads intersect the
    /// changed cells, their relations saw delta tuples, or another rule
    /// writes into their write set) re-activate. Always a *subset* of the
    /// classic activation, so committed fixes are byte-identical with the
    /// flag off (property-tested in `tests/analyze_properties.rs`); the
    /// default stays `false` so the classic activation remains the oracle.
    pub use_rule_graph: bool,
    /// Schedule rounds with the *certified* [`ChaseSchedule`]: the same
    /// activation filter as `use_rule_graph` (the schedule embeds the same
    /// scheduling graph, so committed fixes stay byte-identical — property
    /// tested in `tests/analyze_properties.rs`), plus runtime enforcement
    /// of the certifier's termination bound. The schedule's round bound is
    /// resolved against the instance before the loop; per-round margins
    /// land in [`RoundStats`], and a run that exceeds its certified bound
    /// reports a [`CertViolation`] in [`ChaseResult::certification`] — a
    /// certifier bug surfaced as a typed error, never silently.
    pub use_schedule: bool,
    /// Durable chase: append every committed fix to a CRC-framed WAL and
    /// checkpoint the loop state at round boundaries, so a crashed run
    /// resumes from its last durable round byte-identically (see
    /// `crate::wal` / `crate::checkpoint`). `None` (default) keeps the
    /// zero-IO in-memory chase.
    pub durability: Option<DurabilityConfig>,
    /// Route valuation enumeration's unary prefilters through the columnar
    /// kernels (`rock_data::ColumnSet`). Off = the scalar row path, kept as
    /// the byte-identical equivalence oracle
    /// (`tests/columnar_equivalence.rs`).
    pub columnar: bool,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 32,
            workers: 1,
            partitions_per_rule: 4,
            policy: ConflictPolicy::default(),
            gate: GateMode::Resolved,
            lazy_activation: true,
            semi_naive: true,
            cluster: ClusterConfig::default(),
            use_rule_graph: false,
            use_schedule: false,
            durability: None,
            columnar: rock_data::DataConfig::default().columnar,
        }
    }
}

/// A deduced fix proposal (one chase step's consequence).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Proposal {
    /// Validate `t[A] = value`.
    SetCell {
        cell: CellRef,
        value: Value,
        rule: u32,
    },
    /// Validate `a[A] = b[B]` without knowing which side is correct.
    EquateCells { a: CellRef, b: CellRef, rule: u32 },
    /// Validate `t.eid = s.eid`.
    Merge {
        a: GlobalTid,
        b: GlobalTid,
        rule: u32,
    },
    /// Validate `t.eid != s.eid`.
    Distinct {
        a: GlobalTid,
        b: GlobalTid,
        rule: u32,
    },
    /// Validate `t1 ⪯A t2` / `t1 ≺A t2`.
    Order {
        rel: RelId,
        attr: AttrId,
        t1: TupleId,
        t2: TupleId,
        strict: bool,
        rule: u32,
    },
}

/// Canonical proposal sort key (also the WAL support-map key).
pub(crate) type ProposalKey = (u8, u64, u64, String);

impl Proposal {
    /// Canonical sort key for deterministic commit order.
    pub(crate) fn key(&self) -> ProposalKey {
        fn cell_key(c: &CellRef) -> u64 {
            ((c.rel.0 as u64) << 48) | ((c.tid.0 as u64) << 16) | c.attr.0 as u64
        }
        fn tid_key(t: &GlobalTid) -> u64 {
            ((t.rel.0 as u64) << 32) | t.tid.0 as u64
        }
        match self {
            Proposal::Distinct { a, b, rule } => (0, tid_key(a), tid_key(b), rule.to_string()),
            Proposal::Merge { a, b, rule } => (1, tid_key(a), tid_key(b), rule.to_string()),
            Proposal::SetCell { cell, value, rule } => {
                (2, cell_key(cell), 0, format!("{rule}/{value:?}"))
            }
            Proposal::EquateCells { a, b, rule } => (2, cell_key(a), cell_key(b), rule.to_string()),
            Proposal::Order {
                rel,
                attr,
                t1,
                t2,
                strict,
                rule,
            } => (
                3,
                ((rel.0 as u64) << 32) | attr.0 as u64,
                ((t1.0 as u64) << 33) | ((t2.0 as u64) << 1) | u64::from(*strict),
                rule.to_string(),
            ),
        }
    }
}

/// Chase outcome.
#[derive(Debug)]
pub struct ChaseResult {
    /// The corrected database (fixes materialized).
    pub db: Database,
    /// The final fix store `U`.
    pub fixes: FixStore,
    pub rounds: usize,
    /// Cell changes materialized: (cell, old value, new value).
    pub changes: Vec<(CellRef, Value, Value)>,
    /// Entity merges committed: pairs of tuples identified.
    pub merged_pairs: Vec<(GlobalTid, GlobalTid)>,
    /// Conflicts encountered (CR value conflicts + TD order conflicts + ER
    /// merge-vs-distinct conflicts).
    pub conflicts: usize,
    /// Total proposals applied (chase steps that extended `U`).
    pub steps: usize,
    /// Modeled per-round scheduler makespans (scaling experiments read the
    /// sum; see `rock_crystal::SchedulerStats::modeled_makespan`).
    pub round_makespans: Vec<Vec<f64>>,
    /// Per-round evaluation observability (valuations enumerated, delta
    /// sizes, carried emissions). Mechanism-dependent: the semi-naive and
    /// full-rescan paths produce identical fixes but different counts here.
    pub round_stats: Vec<RoundStats>,
    /// Fault-handling counters accumulated over all rounds (all zero in an
    /// undisturbed run).
    pub fault_stats: FaultStats,
    /// Units quarantined across the whole chase. Each voids its rule's
    /// round (the rule re-runs from scratch the next round), so this being
    /// non-empty means degraded progress, not wrong fixes.
    pub unit_failures: Vec<UnitFailure>,
    /// Durability totals (records/checkpoints written, resumed round,
    /// degradation error). `None` when durability was not configured.
    pub wal: Option<WalSummary>,
    /// The termination certificate the run executed under, with the bound
    /// resolved against this instance and checked against the observed
    /// round count. `None` unless `use_schedule` was set.
    pub certification: Option<ChaseCertification>,
}

/// Runtime view of the certifier's termination certificate (see
/// `rock_rees::schedule`): what was certified, what it resolved to on this
/// instance, and whether the run respected it.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChaseCertification {
    pub class: TerminationClass,
    /// The certified bound (`None` exactly when `class` is `Unbounded`).
    pub bound: Option<RoundBound>,
    /// The bound resolved against this instance's tuple/cell counts.
    pub resolved_bound: Option<u64>,
    /// Strata in the certified schedule.
    pub strata: usize,
    /// `Some` when the run exceeded its certified bound — a certifier bug
    /// surfaced as a typed error, never silently.
    pub violation: Option<CertViolation>,
}

/// The chase ran more rounds than its certificate allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CertViolation {
    /// Rounds the certificate permits on this instance.
    pub certified: u64,
    /// Rounds the chase actually ran.
    pub observed: u64,
}

impl std::fmt::Display for CertViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chase ran {} rounds but the termination certificate allows only {}",
            self.observed, self.certified
        )
    }
}

impl std::error::Error for CertViolation {}

impl ChaseResult {
    /// Modeled parallel runtime over `workers` nodes (sum over rounds of
    /// LPT makespans of per-unit durations).
    pub fn modeled_parallel_seconds(&self, workers: usize) -> f64 {
        self.round_makespans
            .iter()
            .map(|durs| rock_crystal::scheduler::makespan_lpt(durs, workers))
            .sum()
    }

    /// Typed durability health of the run (`None` when durability was not
    /// configured). `Degraded` means the log is incomplete — the repairs
    /// themselves are still byte-identical to the in-memory oracle.
    pub fn wal_health(&self) -> Option<&WalHealth> {
        self.wal.as_ref().map(|w| &w.health)
    }
}

struct EntityIdx {
    members: FxHashMap<EntityKey, Vec<GlobalTid>>,
}

impl EntityIdx {
    fn build(db: &Database) -> Self {
        let mut members: FxHashMap<EntityKey, Vec<GlobalTid>> = FxHashMap::default();
        for (rid, rel) in db.iter() {
            for t in rel.iter() {
                members
                    .entry(EntityKey::new(rid, t.eid))
                    .or_default()
                    .push(GlobalTid::new(rid, t.tid));
            }
        }
        EntityIdx { members }
    }

    /// One O(E) pass grouping every member by its current class root —
    /// the commit phase does thousands of membership lookups per round,
    /// and per-lookup scans ([`Self::members_of`]) are quadratic.
    fn grouped(&self, fixes: &FixStore) -> FxHashMap<EntityKey, Vec<GlobalTid>> {
        let mut out: FxHashMap<EntityKey, Vec<GlobalTid>> = FxHashMap::default();
        for (k, v) in &self.members {
            out.entry(fixes.find_ref(*k))
                .or_default()
                .extend_from_slice(v);
        }
        for v in out.values_mut() {
            v.sort();
        }
        out
    }
}

struct FixEntityOracle<'a> {
    fixes: &'a FixStore,
}

impl EntityOracle for FixEntityOracle<'_> {
    fn same(&self, a: (RelId, rock_data::Eid), b: (RelId, rock_data::Eid)) -> bool {
        self.fixes
            .same_entity(EntityKey::new(a.0, a.1), EntityKey::new(b.0, b.1))
    }
}

/// The chase engine. Borrows the rule set, model registry and optional
/// knowledge graph; owns nothing but configuration.
pub struct ChaseEngine<'a> {
    pub rules: &'a RuleSet,
    pub registry: &'a ModelRegistry,
    pub graph: Option<&'a Graph>,
    /// Tuple-level blocking index from `precompute_ml_indexed`: pinned
    /// delta enumeration restricts an ML predicate's non-pinned variable to
    /// the pinned tuples' block-mates (plus the cumulative dirty set).
    pub blocking: Option<&'a MlBlockIndex>,
    pub config: ChaseConfig,
}

impl<'a> ChaseEngine<'a> {
    pub fn new(rules: &'a RuleSet, registry: &'a ModelRegistry, config: ChaseConfig) -> Self {
        ChaseEngine {
            rules,
            registry,
            graph: None,
            blocking: None,
            config,
        }
    }

    pub fn with_graph(mut self, g: &'a Graph) -> Self {
        self.graph = Some(g);
        self
    }

    pub fn with_blocking(mut self, idx: &'a MlBlockIndex) -> Self {
        self.blocking = Some(idx);
        self
    }

    /// Batch chase: `Chase(D, Σ, Γ)` with `trusted` seeding Γ=.
    pub fn run(&self, db: &Database, trusted: &[GlobalTid]) -> ChaseResult {
        self.run_inner(db.clone(), trusted, None, FixStore::new())
    }

    /// Batch chase continuing from an existing fix store — the Rockseq /
    /// RocknoC schedules run the ER/CR/MI/TD groups one at a time and must
    /// carry `[EID]=` classes and validated orders across the group runs.
    pub fn run_seeded(&self, db: &Database, trusted: &[GlobalTid], fixes: FixStore) -> ChaseResult {
        self.run_inner(db.clone(), trusted, None, fixes)
    }

    /// Incremental chase: apply ΔD, then chase with the round-1 delta
    /// seeded from the *tuples* ΔD touched (paper §4.1 workflow,
    /// incremental mode). Only valuations binding at least one touched
    /// tuple fire — the tuple-level analogue of incremental detection.
    /// Both `semi_naive` settings run these delta semantics; the flag only
    /// selects the mechanism (pinned enumeration vs. scan-and-filter).
    ///
    /// A malformed ΔD (wrong-arity insert) is rejected as
    /// [`rock_data::DataError`] before anything runs — `Database::apply`
    /// validates the whole batch up front.
    pub fn run_incremental(
        &self,
        db: &Database,
        trusted: &[GlobalTid],
        delta: &Delta,
    ) -> Result<ChaseResult, rock_data::DataError> {
        let mut work = db.clone();
        let inserted = work.apply(delta)?;
        let seed = Self::seed_from_delta(&work, delta, &inserted);
        Ok(self.run_inner(work, trusted, Some(seed), FixStore::new()))
    }

    /// The round-1 delta of an incremental run: the tuples ΔD touched,
    /// sized to the post-apply database. `inserted` is `Database::apply`'s
    /// return (inserted ids in update order).
    fn seed_from_delta(work: &Database, delta: &Delta, inserted: &[TupleId]) -> DeltaSet {
        let mut seed = DeltaSet::empty(work);
        let mut ins = inserted.iter();
        for u in &delta.updates {
            match u {
                Update::Insert { rel, .. } => {
                    if let Some(tid) = ins.next() {
                        seed.mark(*rel, *tid);
                    }
                }
                Update::Delete { rel, tid } | Update::SetCell { rel, tid, .. } => {
                    seed.mark(*rel, *tid);
                }
            }
        }
        seed
    }

    /// One ΔD batch of a **durable incremental session**: semantically the
    /// fold `run_incremental(run_incremental(db, Δ1).db, Δ2)…`, but with
    /// the session state persisted in `config.durability.dir` so a crashed
    /// batch resumes mid-stream via [`ChaseEngine::resume`] and the next
    /// batch continues from the durable state.
    ///
    /// Behaviour per call:
    /// 1. **Empty durability dir** — runs a plain durable incremental
    ///    batch 1 over `db`.
    /// 2. **Existing session** — first brings the log current (finishing a
    ///    crashed batch durably; a no-op when the last batch completed),
    ///    then starts batch N+1 from the previous batch's materialized
    ///    database: applies ΔD, logs a `BatchBegin` record, and chases
    ///    with a fresh fix store (matching the in-memory fold). `db` is
    ///    ignored in this case — the durable state is authoritative.
    ///
    /// `trusted` must be the same set across all batches of a session (it
    /// is re-applied idempotently on resume). Fix ids and provenance
    /// parents continue across batches, so `ProvenanceGraph::load` answers
    /// "why" across the whole session.
    pub fn run_incremental_durable(
        &self,
        db: &Database,
        trusted: &[GlobalTid],
        delta: &Delta,
    ) -> Result<ChaseResult, WalError> {
        let cfg = self
            .config
            .durability
            .clone()
            .ok_or(WalError::NotConfigured)?;
        if crate::wal::list_segments(&cfg.vfs, &cfg.dir)?.is_empty() {
            return self
                .run_incremental(db, trusted, delta)
                .map_err(|e| WalError::Codec(e.to_string()));
        }
        // Bring the existing log current: a crashed batch finishes its
        // remaining rounds durably; a completed one just re-materializes.
        let finished = self.resume(trusted)?;
        let mut work = finished.db;
        // Re-locate for the durable position/state the new batch chains to.
        let rp = checkpoint::locate(&cfg, self.fingerprint(), None)?;
        let batch = rp.checkpoint.batch.max(1) + 1;
        let round_base = rp.checkpoint.round;
        let inserted = work
            .apply(delta)
            .map_err(|e| WalError::Codec(e.to_string()))?;
        let seed = Self::seed_from_delta(&work, delta, &inserted);
        // Fresh fix store per batch, like the in-memory fold; Strict mode
        // re-seeds Γ= from the trusted tuples of the *current* database.
        let mut fixes = FixStore::new();
        for t in trusted {
            fixes.trust_tuple(*t);
        }
        if self.config.gate == GateMode::Strict {
            for t in trusted {
                let rel = work.relation(t.rel);
                if let Some(tu) = rel.get(t.tid) {
                    for (i, v) in tu.values.iter().enumerate() {
                        if !v.is_null() {
                            fixes.set_value(
                                EntityKey::new(t.rel, tu.eid),
                                t.rel,
                                AttrId(i as u16),
                                v.clone(),
                            );
                        }
                    }
                }
            }
        }
        let schedule = self.build_schedule(&work);
        let mut active: FxHashSet<usize> = (0..self.rules.len())
            .filter(|&i| {
                self.rules.rules[i]
                    .tuple_vars
                    .iter()
                    .any(|(_, r)| seed.rel_count(*r) > 0)
            })
            .collect();
        let mut pruned_carry = 0usize;
        if let Some(s) = &schedule {
            let before = active.len();
            active.retain(|&ri| !s.graph.dead[ri]);
            pruned_carry = before - active.len();
        }
        let nrules = self.rules.len();
        let st = LoopState {
            work_db: work,
            fixes,
            active,
            pruned_carry,
            seeded: true,
            pending: vec![seed.clone(); nrules],
            carry: vec![None; nrules],
            cumulative: seed,
            changes: Vec::new(),
            merged_pairs: Vec::new(),
            conflicts: 0,
            steps: 0,
            rounds: round_base as usize,
            round_stats: Vec::new(),
            batch,
            round_base: round_base as usize,
            done: false,
        };
        let writer = checkpoint::reopen_writer(&cfg, rp.pos, self.fingerprint())?;
        let prev = rp.prev();
        let mut dur = DurabilityCtx::attach(cfg, writer, prev, round_base);
        dur.begin_batch(batch, round_base);
        // Batch-opening checkpoint: the post-ΔD state becomes durable
        // *before* the first round runs, so a crash anywhere in this batch
        // (even before its first commit) resumes with the delta applied —
        // and a batch that activates nothing still advances the session.
        // It re-uses the previous batch's final round number; being a
        // batch boundary it is always encoded as a full document.
        dur.commit_round(round_base, &[], Some(self.make_checkpoint(&st)));
        Ok(self.run_loop(st, schedule, Some(dur)))
    }

    fn rule_reads(&self, rule: &Rule) -> FxHashSet<(RelId, AttrId)> {
        let mut reads = FxHashSet::default();
        for p in &rule.precondition {
            for v in p.tuple_vars() {
                let rel = rule.rel_of(v);
                for a in p.reads_of(v) {
                    reads.insert((rel, a));
                }
            }
        }
        reads
    }

    fn run_inner(
        &self,
        work_db: Database,
        trusted: &[GlobalTid],
        seed: Option<DeltaSet>,
        mut fixes: FixStore,
    ) -> ChaseResult {
        for t in trusted {
            fixes.trust_tuple(*t);
        }
        // Γ⪯ is initialized "with the temporal orders in D with initial
        // timestamps" (§4.1). Materializing that order is quadratic in the
        // timestamped cells, so it stays *lazy*: the chase's temporal
        // oracle ([`ChaseOrderOracle`]) answers `t1 ⪯A t2` from the
        // explicit validated pairs OR from the timestamps directly.
        // In Strict mode, Γ= additionally validates every trusted cell.
        if self.config.gate == GateMode::Strict {
            for t in trusted {
                let rel = work_db.relation(t.rel);
                if let Some(tu) = rel.get(t.tid) {
                    for (i, v) in tu.values.iter().enumerate() {
                        if !v.is_null() {
                            fixes.set_value(
                                EntityKey::new(t.rel, tu.eid),
                                t.rel,
                                AttrId(i as u16),
                                v.clone(),
                            );
                        }
                    }
                }
            }
        }

        let schedule = self.build_schedule(&work_db);

        // initial activation: every rule in batch mode, rules reading a
        // seeded relation in incremental mode
        let mut active: FxHashSet<usize> = match &seed {
            None => (0..self.rules.len()).collect(),
            Some(d) => (0..self.rules.len())
                .filter(|&i| {
                    self.rules.rules[i]
                        .tuple_vars
                        .iter()
                        .any(|(_, r)| d.rel_count(*r) > 0)
                })
                .collect(),
        };
        // rules the graph pruned from the upcoming round's activation
        let mut pruned_carry = 0usize;
        if let Some(s) = &schedule {
            let before = active.len();
            active.retain(|&ri| !s.graph.dead[ri]);
            pruned_carry = before - active.len();
        }

        let seeded = seed.is_some();
        let nrules = self.rules.len();
        let empty_delta = DeltaSet::empty(&work_db);
        // per-rule delta accumulated since the rule last ran
        let pending: Vec<DeltaSet> = match &seed {
            Some(d) => vec![d.clone(); nrules],
            None => vec![empty_delta.clone(); nrules],
        };
        // Union of every delta since chase start. Blocking-pruned pinned
        // enumeration unions this into the non-pinned candidates: block-mate
        // lists are build-time state, so tuples rewritten after the index
        // was built must always stay candidates.
        let cumulative = match &seed {
            Some(d) => d.clone(),
            None => empty_delta,
        };

        let st = LoopState {
            work_db,
            fixes,
            active,
            pruned_carry,
            seeded,
            pending,
            // Emissions of each rule's last run, keyed by the valuation's
            // bound tuples. Delta rounds re-emit the untouched ones
            // verbatim: a valuation whose tuples, oracles and gate inputs
            // are all unchanged since the rule last ran emits exactly what
            // it emitted then (and the commit phase re-counts persistent
            // conflicts from them, like the full re-scan does).
            carry: vec![None; nrules],
            cumulative,
            changes: Vec::new(),
            merged_pairs: Vec::new(),
            conflicts: 0,
            steps: 0,
            rounds: 0,
            round_stats: Vec::new(),
            batch: 1,
            round_base: 0,
            done: false,
        };
        let dur = self
            .config
            .durability
            .clone()
            .map(|cfg| DurabilityCtx::begin(cfg, self.fingerprint()));
        self.run_loop(st, schedule, dur)
    }

    /// Rule-dependency-graph scheduling: statically dead rules never
    /// activate, and each round's re-activation is filtered to rules the
    /// committed delta can actually reach. Every filter is a retain() over
    /// the classic activation set, so the graph-driven schedule evaluates
    /// a subset of the oracle's rule × round pairs and commits identical
    /// fixes. [`ChaseSchedule::derive`] mirrors the `rock-analyze` pass
    /// masks exactly, so the self-built schedule and the analyzer's report
    /// can never disagree about which rules are live; `use_schedule`
    /// additionally enforces the schedule's termination certificate.
    fn build_schedule(&self, db: &Database) -> Option<ChaseSchedule> {
        (self.config.use_rule_graph || self.config.use_schedule).then(|| {
            let schema = db.schema();
            ChaseSchedule::derive(self.rules, &schema)
        })
    }

    /// Fingerprint of the ruleset plus the semantics-relevant config,
    /// stamped into the WAL's `Begin` header: resume refuses state written
    /// by a differently-configured engine instead of silently diverging.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes: Vec<u8> = Vec::new();
        for r in &self.rules.rules {
            bytes.extend_from_slice(r.name.as_bytes());
            bytes.push(0);
        }
        bytes.push((self.config.gate == GateMode::Strict) as u8);
        bytes.push(self.config.lazy_activation as u8);
        bytes.push(self.config.semi_naive as u8);
        bytes.push(self.config.use_rule_graph as u8);
        bytes.push(self.config.use_schedule as u8);
        bytes.extend_from_slice(&(self.rules.len() as u32).to_le_bytes());
        let lo = rock_crystal::crc32(&bytes) as u64;
        (lo << 32) | rock_crystal::crc32(&lo.to_le_bytes()) as u64
    }

    /// Resume a crashed durable run from its last durable round. The
    /// continued run commits byte-identical repairs to an uninterrupted
    /// one (see `crate::checkpoint` for the recovery invariants).
    ///
    /// Requires `config.durability`; `trusted` must match the original
    /// run's trusted set (it is re-applied idempotently).
    pub fn resume(&self, trusted: &[GlobalTid]) -> Result<ChaseResult, WalError> {
        self.resume_impl(trusted, None)
    }

    /// Resume from a *specific* durable round instead of the newest — the
    /// resume-at-every-round oracle check in `tests/wal_durability.rs`.
    pub fn resume_at(&self, trusted: &[GlobalTid], round: u64) -> Result<ChaseResult, WalError> {
        self.resume_impl(trusted, Some(round))
    }

    fn resume_impl(&self, trusted: &[GlobalTid], at: Option<u64>) -> Result<ChaseResult, WalError> {
        let cfg = self
            .config
            .durability
            .clone()
            .ok_or(WalError::NotConfigured)?;
        let rp = checkpoint::locate(&cfg, self.fingerprint(), at)?;
        let writer = checkpoint::reopen_writer(&cfg, rp.pos, self.fingerprint())?;
        let prev = rp.prev();
        let ck = rp.checkpoint;
        let mut fixes = FixStore::from_snapshot(&ck.fixes);
        for t in trusted {
            fixes.trust_tuple(*t);
        }
        let st = LoopState {
            work_db: ck.db,
            fixes,
            active: ck.active.iter().copied().collect(),
            pruned_carry: ck.pruned_carry,
            seeded: ck.seeded,
            pending: ck.pending,
            carry: ck.carry,
            cumulative: ck.cumulative,
            changes: ck.changes,
            merged_pairs: ck.merged_pairs,
            conflicts: ck.conflicts,
            steps: ck.steps,
            rounds: ck.round as usize,
            round_stats: ck.round_stats,
            batch: ck.batch.max(1),
            round_base: ck.round_base as usize,
            done: ck.done,
        };
        let schedule = self.build_schedule(&st.work_db);
        let dur = DurabilityCtx::attach(cfg, writer, prev, ck.round);
        Ok(self.run_loop(st, schedule, Some(dur)))
    }

    /// The round loop, entered with a fresh [`LoopState`] (`run_inner`) or
    /// a recovered one (`resume`). Every round is a deterministic function
    /// of `st`, which is what makes checkpoint + re-run byte-identical to
    /// an uninterrupted run.
    fn run_loop(
        &self,
        mut st: LoopState,
        schedule: Option<ChaseSchedule>,
        mut dur: Option<DurabilityCtx>,
    ) -> ChaseResult {
        let rule_graph = schedule.as_ref().map(|s| &s.graph);
        // Certified-bound enforcement (`use_schedule`): resolve the
        // schedule's round bound against this instance once, up front. A
        // resume re-resolves against the recovered database — recovered
        // state never relaxes the certificate.
        let resolved_bound: Option<u64> = match (&schedule, self.config.use_schedule) {
            (Some(s), true) => s.bound.map(|b| {
                let schema = st.work_db.schema();
                let tuples: u64 = (0..schema.relations.len())
                    .map(|r| st.work_db.relation(RelId(r as u16)).len() as u64)
                    .sum();
                let cells: u64 = s
                    .writable_cells()
                    .iter()
                    .map(|(rel, _)| st.work_db.relation(*rel).len() as u64)
                    .sum();
                b.resolve(tuples, cells)
            }),
            _ => None,
        };
        let entity_idx = EntityIdx::build(&st.work_db);
        let reads: Vec<FxHashSet<(RelId, AttrId)>> = self
            .rules
            .rules
            .iter()
            .map(|r| self.rule_reads(r))
            .collect();
        let nrules = self.rules.len();
        let empty_delta = DeltaSet::empty(&st.work_db);
        // Tuple-level tracking is needed whenever delta rounds can happen
        // (semi-naive batch rounds >= 2, any seeded run) and whenever the
        // WAL needs valuations for provenance records. The full-rescan
        // ablation without durability keeps the untracked zero-overhead
        // path; tracking never changes the deduped proposal set.
        let track = self.config.semi_naive || st.seeded || dur.is_some();
        // capture per-proposal support + per-phase fix records for the WAL
        let capture = dur.is_some();

        // One Cluster for all rounds: membership (a crashed node, the
        // rebuilt ring) persists across rounds, so later rounds place work
        // on survivors only.
        let cluster = Cluster::with_config(self.config.workers, self.config.cluster.clone());
        let mut round_makespans: Vec<Vec<f64>> = Vec::new();
        let mut fault_stats = FaultStats::default();
        let mut unit_failures: Vec<UnitFailure> = Vec::new();

        while !st.done
            && st.rounds - st.round_base < self.config.max_rounds
            && !st.active.is_empty()
        {
            st.rounds += 1;
            // Rules with a quarantined unit this round: their round is
            // voided (partial emissions discarded, carry dropped, pending
            // kept) and they re-run from scratch next round.
            let mut round_failed: FxHashSet<usize> = FxHashSet::default();
            let mut stat = RoundStats::default();
            let mut sorted_active: Vec<usize> = st.active.iter().copied().collect();
            sorted_active.sort_unstable();
            stat.active_rules = sorted_active.len();
            stat.rules_pruned = st.pruned_carry;
            if let (Some(s), true) = (&schedule, self.config.use_schedule) {
                let mut strata: Vec<usize> = sorted_active
                    .iter()
                    .filter_map(|&ri| s.stratum_of.get(ri).copied().flatten())
                    .collect();
                strata.sort_unstable();
                strata.dedup();
                stat.strata = strata.len();
                // margin left under the certified bound after this round;
                // monotonically decreasing, and never negative on a run
                // whose certificate holds
                stat.bound_margin =
                    resolved_bound.map_or(0, |b| b as i64 - (st.rounds - st.round_base) as i64);
            }
            // Full scan when: batch round 1, the full-rescan ablation, or a
            // rule first activated mid-run (it has no carry to complete a
            // delta round with). Seeded runs are delta rounds throughout.
            let full_mode: Vec<bool> = (0..nrules)
                .map(|ri| {
                    !st.seeded
                        && (st.rounds - st.round_base == 1
                            || !self.config.semi_naive
                            || st.carry[ri].is_none())
                })
                .collect();
            // valuation tuples supporting each deduped proposal, and the
            // round's committed fixes — both feed the WAL's provenance
            // records; empty/unused without durability
            let mut support: FxHashMap<ProposalKey, Vec<GlobalTid>> = FxHashMap::default();
            let mut round_fixes: Vec<RoundFix> = Vec::new();
            // ---- evaluation phase ----
            let proposals = {
                let oracle = ChaseOrderOracle {
                    fixes: &st.fixes,
                    db: &st.work_db,
                };
                let entity_oracle = FixEntityOracle { fixes: &st.fixes };
                let mut ctx = EvalContext::new(&st.work_db, self.registry)
                    .with_temporal(&oracle)
                    .with_entities(&entity_oracle)
                    .with_columnar(self.config.columnar);
                if let Some(g) = self.graph {
                    ctx = ctx.with_graph(g);
                }
                // Build work units. Full/filter scans partition var0's slot
                // range; pinned delta units partition the rule's pending
                // ones-list for one variable (symmetric over variables, so
                // every delta-touching valuation is reached).
                let mut units = Vec::new();
                let mut pinned_lists: FxHashMap<(usize, usize), Vec<TupleId>> =
                    FxHashMap::default();
                for &ri in &sorted_active {
                    let rule = &self.rules.rules[ri];
                    if !full_mode[ri] {
                        stat.delta_tuples += st.pending[ri].count();
                    }
                    if full_mode[ri] || !self.config.semi_naive {
                        let payload = if full_mode[ri] {
                            PAYLOAD_FULL
                        } else {
                            PAYLOAD_FILTER
                        };
                        let rel0 = rule.rel_of(0);
                        let rows = st.work_db.relation(rel0).capacity() as u32;
                        for p in partition_range(rel0.0, rows, self.config.partitions_per_rule) {
                            units.push(WorkUnit::new(ri as u32, vec![p]).with_payload(payload));
                        }
                        if rows == 0 {
                            units.push(
                                WorkUnit::new(ri as u32, vec![Partition::new(rel0.0, 0, 0)])
                                    .with_payload(payload),
                            );
                        }
                    } else {
                        for v in 0..rule.tuple_vars.len() {
                            let rel = rule.rel_of(v);
                            let ones = st.pending[ri].ones_vec(rel);
                            if ones.is_empty() {
                                continue;
                            }
                            let n = ones.len() as u32;
                            pinned_lists.insert((ri, v), ones);
                            for p in partition_range(rel.0, n, self.config.partitions_per_rule) {
                                units.push(
                                    WorkUnit::new(ri as u32, vec![p])
                                        .with_payload(PAYLOAD_PINNED_BASE + v as u64),
                                );
                            }
                        }
                    }
                }
                let gate = self.config.gate;
                let fixes_ref = &st.fixes;
                let rules = self.rules;
                let pending_ref = &st.pending;
                let pinned_ref = &pinned_lists;
                let dirty_ref = &st.cumulative;
                let blocking = self.blocking;
                let registry = self.registry;
                let unit_rules: Vec<usize> = units.iter().map(|u| u.rule as usize).collect();
                let outcome = cluster.execute(units, |unit| {
                    let ri = unit.rule as usize;
                    let rule = &rules.rules[ri];
                    let mut out: Vec<Emission> = Vec::new();
                    let mut count = 0u64;
                    match unit.payload {
                        PAYLOAD_FULL => {
                            let range = unit.partitions[0].start..unit.partitions[0].end;
                            enumerate_valuations_restricted(rule, &ctx, Some((0, range)), |h| {
                                count += 1;
                                visit_valuation(
                                    rule, unit.rule, h, &ctx, gate, fixes_ref, track, &mut out,
                                );
                                true
                            });
                        }
                        PAYLOAD_FILTER => {
                            // trivially-correct delta oracle: enumerate
                            // everything, keep valuations touching the
                            // rule's pending delta
                            let pend = &pending_ref[ri];
                            let range = unit.partitions[0].start..unit.partitions[0].end;
                            enumerate_valuations_restricted(rule, &ctx, Some((0, range)), |h| {
                                count += 1;
                                if h.tuples.iter().any(|gt| pend.contains(gt.rel, gt.tid)) {
                                    visit_valuation(
                                        rule, unit.rule, h, &ctx, gate, fixes_ref, track, &mut out,
                                    );
                                }
                                true
                            });
                        }
                        payload => {
                            let v = (payload - PAYLOAD_PINNED_BASE) as usize;
                            let list = &pinned_ref[&(ri, v)];
                            let chunk = &list[unit.partitions[0].start as usize
                                ..unit.partitions[0].end as usize];
                            let pend = &pending_ref[ri];
                            let mut overrides: FxHashMap<usize, Vec<TupleId>> =
                                FxHashMap::default();
                            overrides.insert(v, chunk.to_vec());
                            prune_with_blocking(
                                rule,
                                v,
                                chunk,
                                blocking,
                                registry,
                                dirty_ref,
                                ctx.db,
                                &mut overrides,
                            );
                            enumerate_valuations_with_candidates(rule, &ctx, &overrides, |h| {
                                count += 1;
                                // symmetric passes overlap: a valuation is
                                // handled by the pass pinning its first
                                // delta variable only
                                if (0..v).any(|w| pend.contains(h.tuples[w].rel, h.tuples[w].tid)) {
                                    return true;
                                }
                                visit_valuation(
                                    rule, unit.rule, h, &ctx, gate, fixes_ref, track, &mut out,
                                );
                                true
                            });
                        }
                    }
                    Ok((out, count))
                });
                round_makespans.push(outcome.stats.unit_seconds.clone());
                fault_stats.merge(&outcome.stats.faults);
                for fl in &outcome.failures {
                    round_failed.insert(fl.rule as usize);
                }
                unit_failures.extend(outcome.failures);
                let mut per_rule: FxHashMap<usize, Vec<Emission>> = FxHashMap::default();
                for (ri, res) in unit_rules.iter().zip(outcome.results) {
                    let Some((ems, cnt)) = res else { continue };
                    stat.valuations += cnt;
                    per_rule.entry(*ri).or_default().extend(ems);
                }
                let mut all: Vec<Proposal> = Vec::new();
                for &ri in &sorted_active {
                    if round_failed.contains(&ri) {
                        // void the rule's round: partial emissions could
                        // miss valuations, so nothing commits and the
                        // carry is dropped (next round is a full scan)
                        st.carry[ri] = None;
                        per_rule.remove(&ri);
                        continue;
                    }
                    let mut emissions = per_rule.remove(&ri).unwrap_or_default();
                    if track {
                        if !full_mode[ri] {
                            if let Some(prev) = &st.carry[ri] {
                                let pend = &st.pending[ri];
                                for (tids, p) in prev {
                                    // untouched valuations re-emit verbatim;
                                    // touched ones were re-derived (or
                                    // retracted) by the delta enumeration
                                    if tids.iter().any(|gt| pend.contains(gt.rel, gt.tid)) {
                                        continue;
                                    }
                                    stat.carried += 1;
                                    emissions.push((tids.clone(), p.clone()));
                                }
                            }
                        }
                        emissions
                            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.key().cmp(&b.1.key())));
                        emissions.dedup();
                        st.carry[ri] = Some(emissions.clone());
                    }
                    for (tids, p) in emissions {
                        if capture {
                            support
                                .entry(p.key())
                                .or_default()
                                .extend(tids.iter().copied());
                        }
                        all.push(p);
                    }
                }
                all.sort_by_key(|p| p.key());
                all.dedup();
                all
            };
            if capture {
                for v in support.values_mut() {
                    v.sort_unstable();
                    v.dedup();
                }
            }
            // pending was consumed by every rule that ran this round
            // (failed rules keep theirs: their round is retried)
            if track {
                for &ri in &sorted_active {
                    if !round_failed.contains(&ri) {
                        st.pending[ri].clear();
                    }
                }
            }
            stat.proposals = proposals.len();

            if proposals.is_empty() {
                st.round_stats.push(stat);
                if round_failed.is_empty() {
                    st.done = true;
                } else {
                    // nothing committed, but failed rules must retry
                    st.active = round_failed;
                    st.pruned_carry = 0;
                }
                // still a round boundary: carries/pendings changed
                self.commit_round_durable(&st, &mut dur, &round_fixes);
                continue;
            }

            // ---- commit phase ----
            let mut changed_cells: FxHashSet<(RelId, AttrId)> = FxHashSet::default();
            let mut any_merge = false;
            let mut groups_by_root = entity_idx.grouped(&st.fixes);
            // tuples this round's commit touches, for the next delta rounds
            let mut round_delta = empty_delta.clone();
            let changes_start = st.changes.len();

            // Phase A: distinctness
            for p in &proposals {
                if let Proposal::Distinct { a, b, rule } = p {
                    let (ka, kb) = (entity_key(&st.work_db, *a), entity_key(&st.work_db, *b));
                    if let (Some(ka), Some(kb)) = (ka, kb) {
                        if !st.fixes.set_distinct(ka, kb) {
                            st.conflicts += 1; // already merged: ER conflict
                        } else {
                            st.steps += 1;
                            if capture {
                                round_fixes.push((
                                    FixKind::Distinct { a: *a, b: *b },
                                    *rule,
                                    support_of(&support, p),
                                ));
                            }
                        }
                    }
                }
            }

            // Phase B: merges
            for p in &proposals {
                if let Proposal::Merge { a, b, rule } = p {
                    let (Some(ka), Some(kb)) =
                        (entity_key(&st.work_db, *a), entity_key(&st.work_db, *b))
                    else {
                        continue;
                    };
                    match st.fixes.merge(ka, kb) {
                        MergeOutcome::Merged { conflicts: vcs } => {
                            st.steps += 1;
                            any_merge = true;
                            st.merged_pairs.push((*a, *b));
                            let merge_changes_start = st.changes.len();
                            if capture {
                                round_fixes.push((
                                    FixKind::Merge { a: *a, b: *b },
                                    *rule,
                                    support_of(&support, p),
                                ));
                            }
                            // membership changed: refresh the grouped view
                            groups_by_root = entity_idx.grouped(&st.fixes);
                            // the merge changes the entity oracle (and the
                            // validated-value visibility) for every member
                            // of the united class, even when no cell is
                            // rewritten — all of them join the delta
                            let root = st.fixes.find(ka);
                            if let Some(ms) = groups_by_root.get(&root) {
                                for m in ms {
                                    round_delta.mark(m.rel, m.tid);
                                }
                            }
                            for (rel, attr, v1, v2) in vcs {
                                st.conflicts += 1;
                                self.resolve_and_commit(
                                    &mut st.fixes,
                                    &mut st.work_db,
                                    &groups_by_root,
                                    ka,
                                    rel,
                                    attr,
                                    &[v1, v2],
                                    &mut st.changes,
                                    &mut changed_cells,
                                );
                            }
                            // propagate the merged class's validated values
                            self.materialize_class(
                                &mut st.fixes,
                                &mut st.work_db,
                                &groups_by_root,
                                ka,
                                &mut st.changes,
                                &mut changed_cells,
                            );
                            if capture {
                                // cell writes the merge forced (conflict
                                // resolutions + class materialization) are
                                // fixes of the merge's rule; within-round
                                // parent chaining makes the Merge record
                                // their provenance parent
                                for (cell, old, new) in &st.changes[merge_changes_start..] {
                                    round_fixes.push((
                                        FixKind::Cell {
                                            cell: *cell,
                                            old: old.clone(),
                                            new: new.clone(),
                                        },
                                        *rule,
                                        support_of(&support, p),
                                    ));
                                }
                            }
                        }
                        MergeOutcome::Known => {}
                        MergeOutcome::Distinct => st.conflicts += 1,
                    }
                }
            }

            // Phase C: value fixes. Cells connected by EquateCells form
            // *clusters* (union–find over CellRef): the FD-repair semantics
            // equate all connected cells, then one resolution picks the
            // cluster's value (majority over the cluster's raw cells, Mc,
            // ground truth — see ConflictPolicy). SetCell proposals pin an
            // explicit candidate onto the cell's cluster.
            let mut cluster = CellClusters::default();
            // provenance attribution per member cell: smallest proposing
            // rule id + the union of supporting valuations
            let mut cell_prov: FxHashMap<CellRef, (u32, Vec<GlobalTid>)> = FxHashMap::default();
            for p in &proposals {
                match p {
                    Proposal::SetCell { cell, value, rule } => {
                        cluster.propose(*cell, value.clone());
                        if capture {
                            attribute(&mut cell_prov, *cell, *rule, support_of(&support, p));
                        }
                    }
                    Proposal::EquateCells { a, b, rule } => {
                        cluster.union(*a, *b);
                        if capture {
                            let sup = support_of(&support, p);
                            attribute(&mut cell_prov, *a, *rule, sup.clone());
                            attribute(&mut cell_prov, *b, *rule, sup);
                        }
                    }
                    _ => {}
                }
            }
            for (members, mut cands) in cluster.into_groups() {
                // cluster-level provenance: min rule over the member cells,
                // union of their supporting valuations
                let (cl_rule, cl_sup) = if capture {
                    let mut rule = u32::MAX;
                    let mut sup: Vec<GlobalTid> = Vec::new();
                    for cell in &members {
                        if let Some((r, s)) = cell_prov.get(cell) {
                            rule = rule.min(*r);
                            sup.extend(s.iter().copied());
                        }
                    }
                    sup.sort_unstable();
                    sup.dedup();
                    (if rule == u32::MAX { 0 } else { rule }, sup)
                } else {
                    (0, Vec::new())
                };
                // candidates: proposed constants + current non-null member
                // values + any already-validated value of a member entity.
                // A *single-cell* cluster (a rule-asserted value with no
                // equate group: extraction, prediction, constant) does NOT
                // take its own current value as a candidate — the rule
                // asserts what the cell should be and the current value is
                // the suspect (trusted cells stay protected below).
                let equate_group = members.len() > 1;
                let mut raw_votes: Vec<Value> = Vec::new();
                let mut trusted_val: Option<Value> = None;
                let mut evidence: Vec<Value> = Vec::new();
                for cell in &members {
                    if let Some(v) = st.work_db.cell(cell.rel, cell.tid, cell.attr) {
                        if !v.is_null() {
                            raw_votes.push(v.clone());
                            if equate_group {
                                cands.push(v.clone());
                            }
                            if trusted_val.is_none() && st.fixes.is_trusted(cell.tuple()) {
                                trusted_val = Some(v.clone());
                            }
                        }
                    }
                    if let Some(k) = entity_key(&st.work_db, cell.tuple()) {
                        if let Some(v) = st.fixes.validated_value(k, cell.rel, cell.attr) {
                            cands.push(v.clone());
                            // Strict mode: validated facts ARE ground truth
                            // (certain fixes may not contradict them).
                            if self.config.gate == GateMode::Strict && trusted_val.is_none() {
                                trusted_val = Some(v.clone());
                            }
                        }
                    }
                    if evidence.is_empty() {
                        if let Some(t) = st.work_db.relation(cell.rel).get(cell.tid) {
                            let mut ev = t.values.clone();
                            ev[cell.attr.index()] = Value::Null;
                            evidence = ev;
                        }
                    }
                }
                let distinct: FxHashSet<&Value> = cands.iter().filter(|v| !v.is_null()).collect();
                if distinct.len() > 1 {
                    st.conflicts += 1;
                }
                // single-cell clusters carry no majority signal — the
                // only raw vote would be the suspect cell itself
                let votes: &[Value] = if equate_group { &raw_votes } else { &[] };
                let Some((winner, _)) = self.config.policy.resolve_value(
                    self.registry,
                    trusted_val.as_ref(),
                    &evidence,
                    &cands,
                    votes,
                ) else {
                    continue;
                };
                st.steps += 1;
                // validate on every member's entity and materialize onto
                // every member tuple of that entity.
                let mut roots_done: FxHashSet<(EntityKey, RelId, AttrId)> = FxHashSet::default();
                for cell in &members {
                    let Some(k) = entity_key(&st.work_db, cell.tuple()) else {
                        continue;
                    };
                    let root = st.fixes.find(k);
                    if !roots_done.insert((root, cell.rel, cell.attr)) {
                        continue;
                    }
                    st.fixes
                        .override_value(root, cell.rel, cell.attr, winner.clone());
                    if capture {
                        round_fixes.push((
                            FixKind::Validate {
                                entity: root,
                                rel: cell.rel,
                                attr: cell.attr,
                                value: winner.clone(),
                            },
                            cl_rule,
                            cl_sup.clone(),
                        ));
                    }
                    // the validated value is visible to the Strict gate for
                    // every member of the class in this relation, whether
                    // or not its cell is rewritten below
                    if let Some(ms) = groups_by_root.get(&root) {
                        for m in ms {
                            if m.rel == cell.rel {
                                round_delta.mark(m.rel, m.tid);
                            }
                        }
                    }
                    for m in groups_by_root.get(&root).cloned().unwrap_or_default() {
                        if m.rel != cell.rel {
                            continue;
                        }
                        let old = st
                            .work_db
                            .cell(m.rel, m.tid, cell.attr)
                            .cloned()
                            .unwrap_or(Value::Null);
                        // ground truth protects non-null trusted cells;
                        // filling a trusted tuple's null is fine.
                        if st.fixes.is_trusted(m) && !old.is_null() {
                            continue;
                        }
                        if old != winner {
                            st.work_db.relation_mut(m.rel).set_cell(
                                m.tid,
                                cell.attr,
                                winner.clone(),
                            );
                            let cref = CellRef::new(m.rel, m.tid, cell.attr);
                            if capture {
                                round_fixes.push((
                                    FixKind::Cell {
                                        cell: cref,
                                        old: old.clone(),
                                        new: winner.clone(),
                                    },
                                    cl_rule,
                                    cl_sup.clone(),
                                ));
                            }
                            st.changes.push((cref, old, winner.clone()));
                            changed_cells.insert((cell.rel, cell.attr));
                        }
                    }
                }
            }

            // Phase D: temporal orders
            for p in &proposals {
                if let Proposal::Order {
                    rel,
                    attr,
                    t1,
                    t2,
                    strict,
                    rule,
                } = p
                {
                    match st.fixes.add_order(*rel, *attr, *t1, *t2, *strict) {
                        OrderInsert::Added => {
                            st.steps += 1;
                            if capture {
                                round_fixes.push((
                                    FixKind::Order {
                                        rel: *rel,
                                        attr: *attr,
                                        t1: *t1,
                                        t2: *t2,
                                        strict: *strict,
                                    },
                                    *rule,
                                    support_of(&support, p),
                                ));
                            }
                            changed_cells.insert((*rel, *attr));
                            // order edges act transitively through the DAG,
                            // so tuple-level delta tracking of their reach
                            // is unsound — coarsen to the whole relation
                            round_delta.mark_all(*rel);
                        }
                        OrderInsert::Known => {}
                        OrderInsert::Conflict => {
                            st.conflicts += 1;
                            // TD conflict resolution (§4.2(2)): Mrank
                            // confidences decide; the validated direction is
                            // retained when it wins, otherwise the new pair
                            // is dropped (the store cannot retract derived
                            // closure edges, so a losing existing *direct*
                            // edge simply stays — deterministic either way).
                            let f1 = tuple_features(&st.work_db, *rel, *t1);
                            let f2 = tuple_features(&st.work_db, *rel, *t2);
                            let (_keep_new, _) =
                                self.config.policy.resolve_order(self.registry, &f1, &f2);
                        }
                    }
                }
            }

            // ---- delta bookkeeping ----
            if track {
                for (cell, _, _) in &st.changes[changes_start..] {
                    round_delta.mark(cell.rel, cell.tid);
                }
                st.cumulative.union_with(&round_delta);
                for p in st.pending.iter_mut() {
                    p.union_with(&round_delta);
                }
            }
            st.round_stats.push(stat);

            // ---- next activation ----
            st.active.clear();
            if !self.config.lazy_activation {
                // naive re-scan ablation: everything stays active as long
                // as anything changed
                if !changed_cells.is_empty() || any_merge {
                    st.active.extend(0..self.rules.len());
                }
                st.active.extend(round_failed.iter().copied());
                if let Some(g) = &rule_graph {
                    let before = st.active.len();
                    st.active.retain(|&ri| !g.dead[ri]);
                    st.pruned_carry = before - st.active.len();
                }
            } else {
                if any_merge {
                    // merges may enable any rule with multi-variable
                    // predicates
                    st.active.extend(0..self.rules.len());
                } else {
                    for (ri, rs) in reads.iter().enumerate() {
                        if rs.iter().any(|ra| changed_cells.contains(ra)) {
                            st.active.insert(ri);
                        }
                    }
                }
                // failed rules always retry, whatever the lazy analysis says
                st.active.extend(round_failed.iter().copied());
                if let Some(g) = &rule_graph {
                    // Graph refinement: keep a rule only when the round's
                    // committed delta can reach it — its reads saw a changed
                    // cell, one of its relations holds pending delta tuples
                    // (covers merges, validated-value visibility and the
                    // order-write coarsening, all of which mark tuples), or
                    // another rule writes into its write set (its carried
                    // proposals must keep joining those conflict clusters).
                    // Tuple-level pending is only maintained when `track`;
                    // without it only the dead filter applies.
                    let before = st.active.len();
                    st.active.retain(|&ri| {
                        !g.dead[ri]
                            && (round_failed.contains(&ri)
                                || !track
                                || g.follows_writes[ri]
                                || reads[ri].iter().any(|ra| changed_cells.contains(ra))
                                || g.rels[ri].iter().any(|r| st.pending[ri].rel_count(*r) > 0))
                    });
                    st.pruned_carry = before - st.active.len();
                }
                if changed_cells.is_empty() && !any_merge && round_failed.is_empty() {
                    st.done = true;
                }
            }
            // ---- round boundary: make the round durable ----
            self.commit_round_durable(&st, &mut dur, &round_fixes);
        }

        // Materialize the ER outcome into the repaired database: within
        // each validated entity class, all member tuples of a relation get
        // the class's smallest eid in that relation (the repaired data then
        // *carries* the deduplication, and re-chasing it is a no-op for
        // same-relation ER rules).
        for members in entity_idx.grouped(&st.fixes).values() {
            let mut min_per_rel: FxHashMap<RelId, rock_data::Eid> = FxHashMap::default();
            for m in members {
                if let Some(t) = st.work_db.relation(m.rel).get(m.tid) {
                    min_per_rel
                        .entry(m.rel)
                        .and_modify(|e| *e = (*e).min(t.eid))
                        .or_insert(t.eid);
                }
            }
            for m in members {
                let target = min_per_rel[&m.rel];
                if let Some(t) = st.work_db.relation_mut(m.rel).get_mut(m.tid) {
                    t.eid = target;
                }
            }
        }

        let certification = match (&schedule, self.config.use_schedule) {
            (Some(s), true) => Some(ChaseCertification {
                class: s.class,
                bound: s.bound,
                resolved_bound,
                strata: s.strata.len(),
                violation: resolved_bound.and_then(|b| {
                    ((st.rounds - st.round_base) as u64 > b).then_some(CertViolation {
                        certified: b,
                        observed: (st.rounds - st.round_base) as u64,
                    })
                }),
            }),
            _ => None,
        };

        ChaseResult {
            db: st.work_db,
            fixes: st.fixes,
            rounds: st.rounds - st.round_base,
            changes: st.changes,
            merged_pairs: st.merged_pairs,
            conflicts: st.conflicts,
            steps: st.steps,
            round_makespans,
            round_stats: st.round_stats,
            fault_stats,
            unit_failures,
            wal: dur.map(DurabilityCtx::into_summary),
            certification,
        }
    }

    /// Snapshot the loop state for a round-boundary checkpoint.
    fn make_checkpoint(&self, st: &LoopState) -> ChaseCheckpoint {
        let mut active: Vec<usize> = st.active.iter().copied().collect();
        active.sort_unstable();
        ChaseCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: self.fingerprint(),
            round: st.rounds as u64,
            batch: st.batch,
            round_base: st.round_base as u64,
            done: st.done,
            db: st.work_db.clone(),
            fixes: st.fixes.to_snapshot(),
            active,
            pruned_carry: st.pruned_carry,
            seeded: st.seeded,
            pending: st.pending.clone(),
            carry: st.carry.clone(),
            cumulative: st.cumulative.clone(),
            changes: st.changes.clone(),
            merged_pairs: st.merged_pairs.clone(),
            conflicts: st.conflicts,
            steps: st.steps,
            round_stats: st.round_stats.clone(),
            // provenance id state is stamped by the durability context at
            // write time (it owns the fix-id counter)
            next_fix_id: 0,
            last_fix: Vec::new(),
        }
    }

    /// Round-boundary durability hook: append the round's fix records to
    /// the WAL, write a checkpoint when due (every `snapshot_every` rounds
    /// and always on the final round), fsync the boundary, then honour the
    /// planned-crash drill. A no-op without durability or after the
    /// context poisoned itself on an earlier IO error.
    fn commit_round_durable(
        &self,
        st: &LoopState,
        dur: &mut Option<DurabilityCtx>,
        round_fixes: &[RoundFix],
    ) {
        let Some(d) = dur.as_mut() else { return };
        let round = st.rounds as u64;
        let due = st.done
            || st.active.is_empty()
            || st.rounds - st.round_base >= self.config.max_rounds
            || d.cfg.snapshot_every <= 1
            || st.rounds % d.cfg.snapshot_every == 0;
        let checkpoint = due.then(|| self.make_checkpoint(st));
        d.commit_round(round, round_fixes, checkpoint);
        if d.cfg.crash_at_round == Some(st.rounds) {
            // planned crash drill (the CI kill-and-resume job): die hard
            // *after* the round became durable, like a kill -9 would
            std::process::abort();
        }
    }

    /// Resolve a multi-candidate value for one entity attribute and commit
    /// the winner to the fix store and the working database.
    #[allow(clippy::too_many_arguments)]
    fn resolve_and_commit(
        &self,
        fixes: &mut FixStore,
        work_db: &mut Database,
        groups_by_root: &FxHashMap<EntityKey, Vec<GlobalTid>>,
        key: EntityKey,
        rel: RelId,
        attr: AttrId,
        candidates: &[Value],
        changes: &mut Vec<(CellRef, Value, Value)>,
        changed_cells: &mut FxHashSet<(RelId, AttrId)>,
    ) {
        let root = fixes.find(key);
        let members = groups_by_root.get(&root).cloned().unwrap_or_default();
        // trusted value: a trusted member tuple's raw cell, if non-null
        let mut trusted_val: Option<Value> = None;
        let mut raw_votes: Vec<Value> = Vec::new();
        let mut evidence: Vec<Value> = Vec::new();
        for m in &members {
            if m.rel != rel {
                continue;
            }
            if let Some(t) = work_db.relation(m.rel).get(m.tid) {
                let v = t.get(attr);
                if !v.is_null() {
                    raw_votes.push(v.clone());
                    if fixes.is_trusted(*m) && trusted_val.is_none() {
                        trusted_val = Some(v.clone());
                    }
                }
                if evidence.is_empty() {
                    let mut ev = t.values.clone();
                    ev[attr.index()] = Value::Null;
                    evidence = ev;
                }
            }
        }
        let Some((winner, _)) = self.config.policy.resolve_value(
            self.registry,
            trusted_val.as_ref(),
            &evidence,
            candidates,
            &raw_votes,
        ) else {
            return;
        };
        fixes.override_value(key, rel, attr, winner.clone());
        // materialize onto all member tuples of this relation
        for m in members {
            if m.rel != rel {
                continue;
            }
            let old = work_db
                .cell(m.rel, m.tid, attr)
                .cloned()
                .unwrap_or(Value::Null);
            if fixes.is_trusted(m) && !old.is_null() {
                continue;
            }
            if old != winner {
                work_db
                    .relation_mut(m.rel)
                    .set_cell(m.tid, attr, winner.clone());
                changes.push((CellRef::new(m.rel, m.tid, attr), old, winner.clone()));
                changed_cells.insert((rel, attr));
            }
        }
    }

    /// After a merge, propagate every validated value of the class onto all
    /// member tuples.
    fn materialize_class(
        &self,
        fixes: &mut FixStore,
        work_db: &mut Database,
        groups_by_root: &FxHashMap<EntityKey, Vec<GlobalTid>>,
        key: EntityKey,
        changes: &mut Vec<(CellRef, Value, Value)>,
        changed_cells: &mut FxHashSet<(RelId, AttrId)>,
    ) {
        let root = fixes.find(key);
        let members = groups_by_root.get(&root).cloned().unwrap_or_default();
        // snapshot the validated values of this class
        let mut vals: Vec<(RelId, AttrId, Value)> = Vec::new();
        for m in &members {
            let rel = work_db.relation(m.rel);
            for a in 0..rel.schema.arity() {
                let attr = AttrId(a as u16);
                if let Some(v) = fixes.validated_value(root, m.rel, attr) {
                    vals.push((m.rel, attr, v.clone()));
                }
            }
        }
        vals.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then_with(|| a.2.cmp(&b.2)));
        vals.dedup();
        for (rel, attr, v) in vals {
            for m in &members {
                if m.rel != rel {
                    continue;
                }
                let old = work_db
                    .cell(m.rel, m.tid, attr)
                    .cloned()
                    .unwrap_or(Value::Null);
                if fixes.is_trusted(*m) && !old.is_null() {
                    continue;
                }
                if old != v {
                    work_db.relation_mut(m.rel).set_cell(m.tid, attr, v.clone());
                    changes.push((CellRef::new(m.rel, m.tid, attr), old, v.clone()));
                    changed_cells.insert((rel, attr));
                }
            }
        }
    }
}

/// A Phase C cluster: its member cells and the rule-proposed candidates.
type CellGroup = (Vec<CellRef>, Vec<Value>);

/// Union–find over cells for Phase C value clustering, with proposed
/// constants attached to each cluster.
#[derive(Default)]
struct CellClusters {
    parent: FxHashMap<CellRef, CellRef>,
    proposed: FxHashMap<CellRef, Vec<Value>>,
}

impl CellClusters {
    fn find(&mut self, c: CellRef) -> CellRef {
        let mut root = c;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        let mut cur = c;
        while let Some(&p) = self.parent.get(&cur) {
            if p == root || p == cur {
                break;
            }
            self.parent.insert(cur, root);
            cur = p;
        }
        self.parent.entry(root).or_insert(root);
        root
    }

    fn union(&mut self, a: CellRef, b: CellRef) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // deterministic: smaller root wins
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(drop, keep);
        }
    }

    fn propose(&mut self, c: CellRef, v: Value) {
        self.find(c);
        self.proposed.entry(c).or_default().push(v);
    }

    /// Consume into `(member cells, proposed candidates)` groups, sorted
    /// deterministically by root cell.
    fn into_groups(mut self) -> Vec<CellGroup> {
        let cells: Vec<CellRef> = self.parent.keys().copied().collect();
        let mut groups: FxHashMap<CellRef, CellGroup> = FxHashMap::default();
        for c in cells {
            let root = self.find(c);
            groups.entry(root).or_default().0.push(c);
        }
        let proposed = std::mem::take(&mut self.proposed);
        for (c, vs) in proposed {
            let root = self.find(c);
            groups.entry(root).or_default().1.extend(vs);
        }
        let mut out: Vec<(CellRef, CellGroup)> = groups.into_iter().collect();
        out.sort_by_key(|(root, _)| *root);
        out.into_iter()
            .map(|(_, (mut members, mut cands))| {
                members.sort();
                members.dedup();
                cands.sort();
                cands.dedup();
                (members, cands)
            })
            .collect()
    }
}

fn entity_key(db: &Database, t: GlobalTid) -> Option<EntityKey> {
    db.relation(t.rel)
        .get(t.tid)
        .map(|tu| EntityKey::new(t.rel, tu.eid))
}

fn tuple_features(db: &Database, rel: RelId, tid: TupleId) -> Vec<Value> {
    db.relation(rel)
        .get(tid)
        .map(|t| t.values.clone())
        .unwrap_or_default()
}

/// Shared leaf of every evaluation mode: distinctness, the Strict gate, the
/// consequence check, and the proposal emission (with the valuation's bound
/// tuples recorded when tuple-level tracking is on).
#[allow(clippy::too_many_arguments)]
fn visit_valuation(
    rule: &Rule,
    ri: u32,
    h: &Valuation,
    ctx: &EvalContext<'_>,
    gate: GateMode,
    fixes: &FixStore,
    track: bool,
    out: &mut Vec<Emission>,
) {
    if !distinct_ok(rule, h) {
        return;
    }
    if gate == GateMode::Strict && !precondition_validated(rule, h, ctx, fixes) {
        return;
    }
    if ctx.eval_predicate(rule, h, &rule.consequence) == Some(true) {
        // Already satisfied. In Strict mode the fix is still recorded in U
        // — satisfied consequences are validated facts, and accumulation of
        // ground truth (§4.1) depends on them.
        if gate == GateMode::Strict {
            if let Some(p) = propose(rule, ri, h, ctx) {
                out.push((if track { h.tuples.clone() } else { Vec::new() }, p));
            }
        }
        return;
    }
    if let Some(p) = propose(rule, ri, h, ctx) {
        out.push((if track { h.tuples.clone() } else { Vec::new() }, p));
    }
}

/// Blocking-pruned pair enumeration: for each tuple variable paired with
/// the pinned variable by an ML predicate, restrict its candidates to the
/// pinned chunk's block-mates plus the cumulative dirty set.
///
/// Soundness: a pair excluded here has both projections unchanged since the
/// index build (the pinned side is checked against its build-time key
/// below; the other side would be in `dirty` otherwise), was no LSH
/// candidate at build time, and is therefore excluded by the model's block
/// filter — the full scan would evaluate it to `false` anyway. Pruning is
/// skipped (full fallback for that variable) when the index or block filter
/// is missing or any pinned tuple's projection changed.
#[allow(clippy::too_many_arguments)]
fn prune_with_blocking(
    rule: &Rule,
    pinned: usize,
    chunk: &[TupleId],
    blocking: Option<&MlBlockIndex>,
    registry: &ModelRegistry,
    dirty: &DeltaSet,
    db: &Database,
    overrides: &mut FxHashMap<usize, Vec<TupleId>>,
) {
    let Some(index) = blocking else {
        return;
    };
    for p in &rule.precondition {
        let Predicate::Ml {
            model,
            lvar,
            lattrs,
            rvar,
            rattrs,
        } = p
        else {
            continue;
        };
        if lvar == rvar {
            continue;
        }
        let (other, pinned_left) = if *lvar == pinned {
            (*rvar, true)
        } else if *rvar == pinned {
            (*lvar, false)
        } else {
            continue;
        };
        if overrides.contains_key(&other) {
            continue; // first applicable predicate wins
        }
        let id = model.resolved();
        if !registry.has_block_filter(id) {
            continue;
        }
        let sig = PairSignature {
            model: id,
            lrel: rule.rel_of(*lvar),
            lattrs: lattrs.clone(),
            rrel: rule.rel_of(*rvar),
            rattrs: rattrs.clone(),
        };
        let Some(pair_idx) = index.get(&sig) else {
            continue;
        };
        // every pinned tuple must still project to its build-time key,
        // otherwise its mate list is stale and pruning would be unsound
        let attrs = if pinned_left { lattrs } else { rattrs };
        let rel = db.relation(rule.rel_of(pinned));
        let fresh = chunk.iter().all(|tid| match rel.get(*tid) {
            Some(t) => {
                pair_idx.build_key(*tid, pinned_left)
                    == Some(ModelRegistry::pair_key(&t.project(attrs)))
            }
            None => true, // dead tuples bind nothing
        });
        if !fresh {
            continue;
        }
        let mut cands: Vec<TupleId> = Vec::new();
        for tid in chunk {
            cands.extend_from_slice(pair_idx.mates(*tid, pinned_left));
        }
        cands.extend(dirty.ones_vec(rule.rel_of(other)));
        cands.sort_unstable();
        cands.dedup();
        overrides.insert(other, cands);
    }
}

/// Strict-gate check: every precondition cell read by the rule must belong
/// to a trusted tuple or be validated in `U`.
fn precondition_validated(
    rule: &Rule,
    h: &Valuation,
    ctx: &EvalContext<'_>,
    fixes: &FixStore,
) -> bool {
    for p in &rule.precondition {
        // `null(t.A)` is the MI trigger: a null cell has no value to
        // validate — exempt (the rest of the precondition still gates).
        if matches!(p, Predicate::IsNull { .. }) {
            continue;
        }
        for v in p.tuple_vars() {
            let gt = h.tuples[v];
            if fixes.is_trusted(gt) {
                continue;
            }
            let Some(tu) = ctx.db.relation(gt.rel).get(gt.tid) else {
                return false;
            };
            let key = EntityKey::new(gt.rel, tu.eid);
            for a in p.reads_of(v) {
                if fixes.validated_value(key, gt.rel, a).is_none() {
                    return false;
                }
            }
        }
    }
    true
}

/// Turn a satisfied-precondition, unsatisfied-consequence valuation into a
/// fix proposal. Returns `None` for consequences that cannot generate fixes
/// (inequality comparisons, bare ML assertions) — those are detection-only.
fn propose(rule: &Rule, ri: u32, h: &Valuation, ctx: &EvalContext<'_>) -> Option<Proposal> {
    use rock_rees::CmpOp;
    match &rule.consequence {
        Predicate::Const {
            var,
            attr,
            op: CmpOp::Eq,
            value,
        } => {
            let gt = h.tuples[*var];
            Some(Proposal::SetCell {
                cell: CellRef::new(gt.rel, gt.tid, *attr),
                value: value.clone(),
                rule: ri,
            })
        }
        Predicate::Attr {
            lvar,
            lattr,
            op: CmpOp::Eq,
            rvar,
            rattr,
        } => {
            let (l, r) = (h.tuples[*lvar], h.tuples[*rvar]);
            Some(Proposal::EquateCells {
                a: CellRef::new(l.rel, l.tid, *lattr),
                b: CellRef::new(r.rel, r.tid, *rattr),
                rule: ri,
            })
        }
        Predicate::EidCmp { lvar, rvar, eq } => {
            let (l, r) = (h.tuples[*lvar], h.tuples[*rvar]);
            if *eq {
                Some(Proposal::Merge {
                    a: l,
                    b: r,
                    rule: ri,
                })
            } else {
                Some(Proposal::Distinct {
                    a: l,
                    b: r,
                    rule: ri,
                })
            }
        }
        Predicate::Temporal {
            lvar,
            rvar,
            attr,
            strict,
        } => {
            let (l, r) = (h.tuples[*lvar], h.tuples[*rvar]);
            Some(Proposal::Order {
                rel: l.rel,
                attr: *attr,
                t1: l.tid,
                t2: r.tid,
                strict: *strict,
                rule: ri,
            })
        }
        Predicate::ValExtract {
            tvar,
            attr,
            xvar,
            path,
        } => {
            let x = h.vertices[*xvar]?;
            let value = path.val(ctx.graph?, x)?;
            let gt = h.tuples[*tvar];
            Some(Proposal::SetCell {
                cell: CellRef::new(gt.rel, gt.tid, *attr),
                value,
                rule: ri,
            })
        }
        Predicate::Predict {
            model,
            var,
            evidence,
            target,
        } => {
            let gt = h.tuples[*var];
            let t = ctx.db.relation(gt.rel).get(gt.tid)?;
            let ev = t.project(evidence);
            let value = ctx.models.predict_value(model.resolved(), &ev)?;
            Some(Proposal::SetCell {
                cell: CellRef::new(gt.rel, gt.tid, *target),
                value,
                rule: ri,
            })
        }
        // Inequalities and bare ML consequences assert properties but
        // cannot be turned into a single certain fix.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, Eid, RelationSchema};
    use rock_rees::parse_rules;

    fn trans_schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::of(
            "Trans",
            &[
                ("pid", AttrType::Str),
                ("com", AttrType::Str),
                ("mfg", AttrType::Str),
                ("price", AttrType::Float),
            ],
        )])
    }

    fn trans_db() -> Database {
        let mut db = Database::new(&trans_schema());
        let r = db.relation_mut(RelId(0));
        r.insert(
            Eid(0),
            vec![
                Value::str("p1"),
                Value::str("IPhone 14"),
                Value::str("Apple"),
                Value::Float(6500.0),
            ],
        )
        .unwrap();
        r.insert(
            Eid(1),
            vec![
                Value::str("p2"),
                Value::str("IPhone 14"),
                Value::str("Appel"),
                Value::Float(6500.0),
            ],
        )
        .unwrap();
        r.insert(
            Eid(2),
            vec![
                Value::str("p3"),
                Value::str("IPhone 14"),
                Value::str("Apple"),
                Value::Null,
            ],
        )
        .unwrap();
        db
    }

    fn registry() -> ModelRegistry {
        ModelRegistry::new()
    }

    #[test]
    fn cr_fix_majority() {
        // φ2: same com → same mfg; majority (Apple ×2 vs Appel ×1) wins.
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
        let db = trans_db();
        let res = engine.run(&db, &[]);
        for tid in [0u32, 1, 2] {
            assert_eq!(
                res.db.cell(RelId(0), TupleId(tid), AttrId(2)),
                Some(&Value::str("Apple")),
                "tuple {tid}"
            );
        }
        assert!(
            res.conflicts >= 1,
            "the Appel/Apple conflict must be counted"
        );
        assert!(res.changes.iter().any(|(c, old, new)| {
            c.tid == TupleId(1) && old == &Value::str("Appel") && new == &Value::str("Apple")
        }));
    }

    #[test]
    fn trusted_tuple_wins_over_majority() {
        // trust the Appel tuple: ground truth overrides majority.
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
        let db = trans_db();
        let trusted = vec![GlobalTid::new(RelId(0), TupleId(1))];
        let res = engine.run(&db, &trusted);
        assert_eq!(
            res.db.cell(RelId(0), TupleId(0), AttrId(2)),
            Some(&Value::str("Appel"))
        );
        // the trusted tuple itself is untouched
        assert_eq!(
            res.db.cell(RelId(0), TupleId(1), AttrId(2)),
            Some(&Value::str("Appel"))
        );
    }

    #[test]
    fn mi_constant_fix() {
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule fill: Trans(t) && t.com = 'IPhone 14' && null(t.price) -> t.price = 6500",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
        let res = engine.run(&trans_db(), &[]);
        assert_eq!(
            res.db.cell(RelId(0), TupleId(2), AttrId(3)),
            Some(&Value::Float(6500.0))
        );
        assert!(res.rounds >= 1);
    }

    #[test]
    fn er_merge_and_interaction() {
        // ER: same com+price → same entity; then CR propagates mfg within
        // the merged entity via φ2' (eid-based).
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule er: Trans(t) && Trans(s) && t.com = s.com && t.price = s.price -> t.eid = s.eid\nrule cr: Trans(t) && Trans(s) && t.eid = s.eid -> t.mfg = s.mfg",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
        let res = engine.run(&trans_db(), &[]);
        assert!(!res.merged_pairs.is_empty());
        assert!(res.fixes.same_entity(
            EntityKey::new(RelId(0), Eid(0)),
            EntityKey::new(RelId(0), Eid(1))
        ));
        // mfg reconciled within the merged entity
        assert_eq!(
            res.db.cell(RelId(0), TupleId(1), AttrId(2)),
            res.db.cell(RelId(0), TupleId(0), AttrId(2))
        );
    }

    #[test]
    fn td_orders_deduced() {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Person",
            &[("pid", AttrType::Str), ("status", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        r.insert(Eid(0), vec![Value::str("p1"), Value::str("single")])
            .unwrap();
        r.insert(Eid(1), vec![Value::str("p1"), Value::str("married")])
            .unwrap();
        let rules = RuleSet::new(
            parse_rules(
                "rule phi4: Person(t) && Person(s) && t.status = 'single' && s.status = 'married' -> t <=[status] s",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
        let res = engine.run(&db, &[]);
        assert!(res
            .fixes
            .order_holds(RelId(0), AttrId(1), TupleId(0), TupleId(1), false));
        assert!(!res
            .fixes
            .order_holds(RelId(0), AttrId(1), TupleId(1), TupleId(0), false));
    }

    #[test]
    fn incremental_only_activates_touched() {
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule fill: Trans(t) && t.com = 'IPhone 14' && null(t.price) -> t.price = 6500",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
        let db = trans_db();
        let delta = Delta::new(vec![rock_data::Update::Insert {
            rel: RelId(0),
            eid: Eid(9),
            values: vec![
                Value::str("p9"),
                Value::str("IPhone 14"),
                Value::str("Apple"),
                Value::Null,
            ],
        }]);
        let res = engine.run_incremental(&db, &[], &delta).unwrap();
        // the inserted tuple's null gets filled...
        assert_eq!(
            res.db.cell(RelId(0), TupleId(3), AttrId(3)),
            Some(&Value::Float(6500.0))
        );
        // ...but the pre-existing null does NOT: incremental mode is
        // tuple-level — only valuations binding a ΔD tuple fire
        assert_eq!(
            res.db.cell(RelId(0), TupleId(2), AttrId(3)),
            Some(&Value::Null)
        );
    }

    #[test]
    fn fixpoint_reached_and_idempotent() {
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
        let res1 = engine.run(&trans_db(), &[]);
        // chasing the already-chased database changes nothing
        let res2 = engine.run(&res1.db, &[]);
        assert!(res2.changes.is_empty(), "{:?}", res2.changes);
        assert!(res1.rounds < ChaseConfig::default().max_rounds);
    }

    #[test]
    fn parallel_chase_same_result() {
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let seq = ChaseEngine::new(&rules, &reg, ChaseConfig::default()).run(&trans_db(), &[]);
        let par = ChaseEngine::new(
            &rules,
            &reg,
            ChaseConfig {
                workers: 4,
                partitions_per_rule: 8,
                ..ChaseConfig::default()
            },
        )
        .run(&trans_db(), &[]);
        for tid in 0..3u32 {
            assert_eq!(
                seq.db.cell(RelId(0), TupleId(tid), AttrId(2)),
                par.db.cell(RelId(0), TupleId(tid), AttrId(2))
            );
        }
    }

    #[test]
    fn schedule_run_matches_classic_and_certifies() {
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let classic = ChaseEngine::new(&rules, &reg, ChaseConfig::default()).run(&trans_db(), &[]);
        let cfg = ChaseConfig {
            use_schedule: true,
            ..ChaseConfig::default()
        };
        let sched = ChaseEngine::new(&rules, &reg, cfg).run(&trans_db(), &[]);
        // byte-identical repairs: the schedule only *filters* activation
        assert_eq!(classic.changes, sched.changes);
        assert_eq!(classic.merged_pairs, sched.merged_pairs);
        assert_eq!(classic.conflicts, sched.conflicts);
        // the run carries its certificate and respected the bound
        assert!(classic.certification.is_none());
        let cert = sched.certification.expect("use_schedule must certify");
        assert_eq!(cert.class, TerminationClass::AcyclicStrata);
        let resolved = cert.resolved_bound.expect("bounded class resolves");
        assert!(cert.violation.is_none(), "{:?}", cert.violation);
        assert!(sched.rounds as u64 <= resolved);
        assert!(sched
            .round_stats
            .iter()
            .all(|s| s.strata >= 1 && s.bound_margin >= 0));
    }

    #[test]
    fn strict_gate_requires_validated_precondition() {
        let schema = trans_schema();
        let rules = RuleSet::new(
            parse_rules(
                "rule fill: Trans(t) && t.com = 'IPhone 14' && null(t.price) -> t.price = 6500",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let cfg = ChaseConfig {
            gate: GateMode::Strict,
            ..ChaseConfig::default()
        };
        let engine = ChaseEngine::new(&rules, &reg, cfg);
        // no trusted tuples: nothing may fire (t2.com is not validated)
        let res = engine.run(&trans_db(), &[]);
        assert!(res.changes.is_empty(), "{:?}", res.changes);
        // trusting the null-price tuple validates its com; the MI rule fires
        let trusted = vec![GlobalTid::new(RelId(0), TupleId(2))];
        let res = engine.run(&trans_db(), &trusted);
        assert_eq!(
            res.db.cell(RelId(0), TupleId(2), AttrId(3)),
            Some(&Value::Float(6500.0))
        );
    }

    #[test]
    fn strict_gate_accumulates_ground_truth() {
        // Chained deduction across an entity: rule1 fires on the trusted
        // tuple t0 and validates mfg='AppleInc' on its entity, which
        // materializes onto the untrusted co-entity tuple t1; in a later
        // round rule2 (reading the now-validated mfg) fills t1's price —
        // the "accumulating ground truth" loop of §4.1.
        let schema = trans_schema();
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        r.insert(
            Eid(0),
            vec![
                Value::str("p1"),
                Value::str("IPhone 14"),
                Value::str("AppleInc"),
                Value::Float(1.0),
            ],
        )
        .unwrap();
        r.insert(
            Eid(0),
            vec![
                Value::str("p1"),
                Value::Null,
                Value::str("junk"),
                Value::Null,
            ],
        )
        .unwrap();
        let rules = RuleSet::new(
            parse_rules(
                "rule r1: Trans(t) && t.com = 'IPhone 14' -> t.mfg = 'AppleInc'\nrule r2: Trans(t) && t.mfg = 'AppleInc' && null(t.price) -> t.price = 6500",
                &schema,
            )
            .unwrap(),
        );
        let reg = registry();
        let cfg = ChaseConfig {
            gate: GateMode::Strict,
            ..ChaseConfig::default()
        };
        let engine = ChaseEngine::new(&rules, &reg, cfg);
        let trusted = vec![GlobalTid::new(RelId(0), TupleId(0))];
        let res = engine.run(&db, &trusted);
        assert_eq!(
            res.db.cell(RelId(0), TupleId(1), AttrId(2)),
            Some(&Value::str("AppleInc")),
            "rule1's validated value must materialize onto the co-entity tuple"
        );
        // t1 shares t0's entity, and t0's price=1.0 is trusted ground
        // truth: the entity's validated price fills t1's null. Rule2's
        // constant 6500 must NOT override a validated fact — that is the
        // certain-fix guarantee.
        assert_eq!(
            res.db.cell(RelId(0), TupleId(1), AttrId(3)),
            Some(&Value::Float(1.0)),
            "validated entity value must beat rule2's constant"
        );
        assert!(res.rounds >= 2);
    }
}
