//! Learning-based conflict resolution (paper §4.2 "Resolving conflicts").
//!
//! 1. **ER / CR** — conflicting entity ids or attribute values. The paper
//!    presents these to users alongside the witnessing rules; Rock also
//!    "develops learning-based strategies to resolve conflicts" (§4.1
//!    Novelty (b)). The autonomous reproduction resolves them with, in
//!    priority order: ground truth (a trusted cell wins), the correlation
//!    model `Mc` (pick the candidate with the higher strength given the
//!    tuple's validated evidence), then majority vote over the entity
//!    class's raw cells, then a deterministic tie-break — so the chase
//!    stays Church–Rosser.
//! 2. **TD** — conflicting temporal orders are resolved by the extended
//!    `Mrank` confidence: whichever direction scores higher is retained.
//! 3. **MI** — multiple imputed candidates: `argmax Mc(t[Ā], c)`.

use rock_data::Value;
use rock_ml::{ModelId, ModelRegistry};
use serde::{Deserialize, Serialize};

/// Which strategy resolved a conflict (reported in chase stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resolution {
    GroundTruth,
    Correlation,
    Majority,
    RankConfidence,
    TieBreak,
}

/// Conflict-resolution policy.
#[derive(Debug, Clone, Default)]
pub struct ConflictPolicy {
    /// Correlation model used for CR/MI arbitration, when available.
    pub mc: Option<ModelId>,
    /// Ranking model used for TD arbitration, when available.
    pub mrank: Option<ModelId>,
}

impl ConflictPolicy {
    /// Pick the winning value among candidates for a CR/MI conflict.
    ///
    /// * `trusted` — the value coming from ground truth, if any (wins
    ///   outright).
    /// * `evidence` — the tuple's validated values (input to `Mc`).
    /// * `raw_votes` — raw cell values across the entity class, for the
    ///   majority fallback.
    ///
    /// Returns the winner and which strategy decided.
    pub fn resolve_value(
        &self,
        registry: &ModelRegistry,
        trusted: Option<&Value>,
        evidence: &[Value],
        candidates: &[Value],
        raw_votes: &[Value],
    ) -> Option<(Value, Resolution)> {
        if let Some(t) = trusted {
            return Some((t.clone(), Resolution::GroundTruth));
        }
        let mut cands: Vec<Value> = candidates
            .iter()
            .filter(|c| !c.is_null())
            .cloned()
            .collect();
        cands.sort();
        cands.dedup();
        match cands.as_slice() {
            [] => return None,
            [only] => return Some((only.clone(), Resolution::TieBreak)),
            _ => {}
        }
        // Correlation model, when present and discriminative.
        if let Some(mc) = self.mc {
            let mut scored: Vec<(f64, &Value)> = cands
                .iter()
                .map(|c| (registry.correlation_strength(mc, evidence, c), c))
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(b.1)));
            if scored.len() >= 2 && (scored[0].0 - scored[1].0) > 1e-9 {
                return Some((scored[0].1.clone(), Resolution::Correlation));
            }
        }
        // Majority vote over raw cells.
        let mut best: Option<(usize, &Value)> = None;
        for c in &cands {
            let votes = raw_votes.iter().filter(|v| v.sql_eq(c)).count();
            best = match best {
                Some((n, v)) if n > votes || (n == votes && v <= c) => Some((n, v)),
                _ => Some((votes, c)),
            };
        }
        match best {
            Some((n, v)) if n > 0 => {
                // distinguish true majority from pure tie-break
                let runner_up = cands
                    .iter()
                    .filter(|c| !c.sql_eq(v))
                    .map(|c| raw_votes.iter().filter(|r| r.sql_eq(c)).count())
                    .max()
                    .unwrap_or(0);
                let res = if n > runner_up {
                    Resolution::Majority
                } else {
                    Resolution::TieBreak
                };
                Some((v.clone(), res))
            }
            _ => {
                // no votes at all: deterministic smallest candidate (the
                // list is sorted and non-empty past the guard above)
                cands.into_iter().next().map(|c| (c, Resolution::TieBreak))
            }
        }
    }

    /// Resolve a TD conflict between `t1 ⪯ t2` and `t2 ⪯ t1` using the
    /// extended `Mrank` confidence (§4.2(2)); `true` means keep `t1 ⪯ t2`.
    /// Without a ranking model the first-validated direction is kept
    /// (deterministic).
    pub fn resolve_order(
        &self,
        registry: &ModelRegistry,
        t1_features: &[Value],
        t2_features: &[Value],
    ) -> (bool, Resolution) {
        if let Some(mrank) = self.mrank {
            let fwd = registry.rank_confidence(mrank, t1_features, t2_features);
            let bwd = registry.rank_confidence(mrank, t2_features, t1_features);
            if (fwd - bwd).abs() > 1e-12 {
                return (fwd > bwd, Resolution::RankConfidence);
            }
        }
        (true, Resolution::TieBreak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_ml::correlation::CorrelationModel;
    use rock_ml::rank::{CurrencyConstraint, RankModel};
    use std::sync::Arc;

    #[test]
    fn ground_truth_wins() {
        let reg = ModelRegistry::new();
        let p = ConflictPolicy::default();
        let (v, r) = p
            .resolve_value(
                &reg,
                Some(&Value::str("truth")),
                &[],
                &[Value::str("a"), Value::str("b")],
                &[],
            )
            .unwrap();
        assert_eq!(v, Value::str("truth"));
        assert_eq!(r, Resolution::GroundTruth);
    }

    #[test]
    fn majority_vote() {
        let reg = ModelRegistry::new();
        let p = ConflictPolicy::default();
        let votes = vec![Value::str("a"), Value::str("a"), Value::str("b")];
        let (v, r) = p
            .resolve_value(&reg, None, &[], &[Value::str("a"), Value::str("b")], &votes)
            .unwrap();
        assert_eq!(v, Value::str("a"));
        assert_eq!(r, Resolution::Majority);
    }

    #[test]
    fn correlation_model_arbitrates() {
        let reg = ModelRegistry::new();
        let rows = vec![
            (vec![Value::str("Beijing")], Value::str("010")),
            (vec![Value::str("Beijing")], Value::str("010")),
            (vec![Value::str("Beijing")], Value::str("010")),
            (vec![Value::str("Shanghai")], Value::str("021")),
        ];
        let mc = reg.register_correlation("Mc", Arc::new(CorrelationModel::train(&rows)));
        let p = ConflictPolicy {
            mc: Some(mc),
            mrank: None,
        };
        let (v, r) = p
            .resolve_value(
                &reg,
                None,
                &[Value::str("Beijing")],
                &[Value::str("021"), Value::str("010")],
                &[],
            )
            .unwrap();
        assert_eq!(v, Value::str("010"));
        assert_eq!(r, Resolution::Correlation);
    }

    #[test]
    fn deterministic_tiebreak() {
        let reg = ModelRegistry::new();
        let p = ConflictPolicy::default();
        let (v, r) = p
            .resolve_value(&reg, None, &[], &[Value::str("b"), Value::str("a")], &[])
            .unwrap();
        assert_eq!(v, Value::str("a"), "smallest candidate wins ties");
        assert_eq!(r, Resolution::TieBreak);
    }

    #[test]
    fn null_candidates_filtered() {
        let reg = ModelRegistry::new();
        let p = ConflictPolicy::default();
        assert!(p
            .resolve_value(&reg, None, &[], &[Value::Null], &[])
            .is_none());
        let (v, _) = p
            .resolve_value(&reg, None, &[], &[Value::Null, Value::str("x")], &[])
            .unwrap();
        assert_eq!(v, Value::str("x"));
    }

    #[test]
    fn rank_confidence_resolves_order() {
        let reg = ModelRegistry::new();
        let pairs: Vec<(Vec<Value>, Vec<Value>)> = (0..10)
            .map(|i| {
                (
                    vec![Value::str("single"), Value::Int(100 + i)],
                    vec![Value::str("married"), Value::Int(5000 + i)],
                )
            })
            .collect();
        let constraints = vec![CurrencyConstraint {
            attr_pos: 0,
            earlier: Value::str("single"),
            later: Value::str("married"),
        }];
        let model = RankModel::train_creator_critic(2, &pairs, &constraints, 2, 5);
        let mrank = reg.register_rank("Mrank", Arc::new(model));
        let p = ConflictPolicy {
            mc: None,
            mrank: Some(mrank),
        };
        let early = vec![Value::str("single"), Value::Int(150)];
        let late = vec![Value::str("married"), Value::Int(5500)];
        let (keep_fwd, r) = p.resolve_order(&reg, &early, &late);
        assert!(keep_fwd);
        assert_eq!(r, Resolution::RankConfidence);
        let (keep_fwd2, _) = p.resolve_order(&reg, &late, &early);
        assert!(!keep_fwd2);
    }

    #[test]
    fn order_tiebreak_without_model() {
        let reg = ModelRegistry::new();
        let p = ConflictPolicy::default();
        let (keep, r) = p.resolve_order(&reg, &[Value::Int(1)], &[Value::Int(2)]);
        assert!(keep);
        assert_eq!(r, Resolution::TieBreak);
    }
}
