//! Data-quality assessment (paper §4.1: "Rock adopts built-in constraints
//! and user-defined templates to monitor data quality in terms of
//! completeness, timeliness, validity and consistency, e.g., checking
//! nulls/duplicates in an attribute").

use rock_data::{AttrId, Database, RelId};
use rock_ml::ModelRegistry;
use rock_rees::eval::{find_violations, EvalContext};
use rock_rees::RuleSet;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Quality report over a database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityReport {
    /// 1 − fraction of null cells.
    pub completeness: f64,
    /// 1 − duplicate fraction over designated key attributes.
    pub uniqueness: f64,
    /// 1 − (rule violations / precondition matches), over the supplied Σ.
    pub consistency: f64,
    /// Fraction of timestamped cells (timeliness coverage).
    pub timeliness_coverage: f64,
    /// Per-rule violation counts.
    pub violations: Vec<(String, usize)>,
}

impl QualityReport {
    /// Assess a database. `keys` lists (relation, attribute) pairs expected
    /// to be duplicate-free (the "checking nulls/duplicates in an
    /// attribute" template). `rules` drive the consistency dimension.
    pub fn assess(
        db: &Database,
        keys: &[(RelId, AttrId)],
        rules: &RuleSet,
        registry: &ModelRegistry,
    ) -> QualityReport {
        let completeness = 1.0 - db.null_fraction();

        // uniqueness over designated keys
        let mut dup = 0usize;
        let mut total = 0usize;
        for (rel, attr) in keys {
            let r = db.relation(*rel);
            let mut seen: FxHashMap<rock_data::Value, usize> = FxHashMap::default();
            for t in r.iter() {
                let v = t.get(*attr);
                if v.is_null() {
                    continue;
                }
                *seen.entry(v.clone()).or_insert(0) += 1;
                total += 1;
            }
            dup += seen
                .values()
                .filter(|&&c| c > 1)
                .map(|c| c - 1)
                .sum::<usize>();
        }
        let uniqueness = if total == 0 {
            1.0
        } else {
            1.0 - dup as f64 / total as f64
        };

        // consistency: violations of the rules
        let ctx = EvalContext::new(db, registry);
        let mut violations = Vec::new();
        let mut viol_count = 0usize;
        for rule in rules.iter() {
            let v = find_violations(rule, &ctx).len();
            viol_count += v;
            violations.push((rule.name.clone(), v));
        }
        let tuples = db.total_tuples().max(1);
        let consistency = (1.0 - viol_count as f64 / tuples as f64).max(0.0);

        // timeliness coverage
        let mut stamped = 0usize;
        let mut cells = 0usize;
        for (_, rel) in db.iter() {
            stamped += rel.timestamps.len();
            cells += rel.len() * rel.schema.arity();
        }
        let timeliness_coverage = if cells == 0 {
            0.0
        } else {
            stamped as f64 / cells as f64
        };

        QualityReport {
            completeness,
            uniqueness,
            consistency,
            timeliness_coverage,
            violations,
        }
    }

    /// Scalar summary in [0, 1] (equal-weight mean of the dimensions,
    /// ignoring timeliness coverage which measures metadata presence, not
    /// quality).
    pub fn overall(&self) -> f64 {
        (self.completeness + self.uniqueness + self.consistency) / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, Value};
    use rock_rees::parse_rules;

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("k", AttrType::Str), ("v", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        r.insert_row(vec![Value::str("a"), Value::str("1")])
            .unwrap();
        r.insert_row(vec![Value::str("a"), Value::str("2")])
            .unwrap(); // dup key + conflict
        r.insert_row(vec![Value::str("b"), Value::Null]).unwrap(); // null
        db
    }

    #[test]
    fn dimensions_reflect_errors() {
        let d = db();
        let schema = d.schema();
        let rules = RuleSet::new(
            parse_rules("rule fd: T(t) && T(s) && t.k = s.k -> t.v = s.v", &schema).unwrap(),
        );
        let reg = ModelRegistry::new();
        let q = QualityReport::assess(&d, &[(RelId(0), AttrId(0))], &rules, &reg);
        assert!((q.completeness - (1.0 - 1.0 / 6.0)).abs() < 1e-9);
        assert!(q.uniqueness < 1.0);
        assert!(q.consistency < 1.0);
        assert_eq!(q.violations[0].0, "fd");
        assert_eq!(q.violations[0].1, 2); // (t0,t1) both directions
        assert!(q.overall() < 1.0);
    }

    #[test]
    fn clean_db_scores_high() {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("k", AttrType::Str), ("v", AttrType::Str)],
        )]);
        let mut d = Database::new(&schema);
        d.relation_mut(RelId(0))
            .insert_row(vec![Value::str("a"), Value::str("1")])
            .unwrap();
        let rules = RuleSet::default();
        let reg = ModelRegistry::new();
        let q = QualityReport::assess(&d, &[(RelId(0), AttrId(0))], &rules, &reg);
        assert_eq!(q.completeness, 1.0);
        assert_eq!(q.uniqueness, 1.0);
        assert_eq!(q.consistency, 1.0);
        assert_eq!(q.overall(), 1.0);
    }
}
