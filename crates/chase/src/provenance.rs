//! Fix provenance: "why is this cell 42?" (ROADMAP item 4; the repair-
//! lineage framing follows HoloClean — see PAPERS.md).
//!
//! The WAL already records everything a lineage query needs: each
//! [`FixRecord`] carries its rule id, the valuation's bound tuples, and
//! the ids of the prior fixes that last touched those tuples. This module
//! replays a log's *committed* prefix (records past the last
//! `RoundCommit` are a crashed tail and excluded — durable provenance
//! only) into an id-indexed graph with a per-cell index.

use crate::wal::{self, FixKind, FixRecord, WalError, WalRecord, WAL_FILE};
use rock_data::CellRef;
use rustc_hash::FxHashMap;
use serde::Serialize;
use std::path::Path;

/// The provenance graph of one chase run.
#[derive(Debug, Default)]
pub struct ProvenanceGraph {
    /// All committed fixes, ascending id.
    nodes: Vec<FixRecord>,
    by_id: FxHashMap<u64, usize>,
    /// Fix ids that rewrote each cell, in commit order.
    by_cell: FxHashMap<CellRef, Vec<u64>>,
}

/// Answer to a `why(cell)` query.
#[derive(Debug, Clone, Serialize)]
pub struct ProvenanceChain {
    /// The last fix that wrote the cell.
    pub fix: FixRecord,
    /// Its transitive parents, ascending id — the full derivation.
    pub ancestors: Vec<FixRecord>,
}

impl ProvenanceGraph {
    /// Load from a durability directory's WAL.
    pub fn load(dir: &Path) -> Result<Self, WalError> {
        let scan = wal::read_wal(&dir.join(WAL_FILE))?;
        // keep only the committed prefix
        let mut committed = 0usize;
        for (i, (_, rec)) in scan.records.iter().enumerate() {
            if matches!(rec, WalRecord::RoundCommit { .. }) {
                committed = i + 1;
            }
        }
        let records: Vec<WalRecord> = scan
            .records
            .into_iter()
            .take(committed)
            .map(|(_, r)| r)
            .collect();
        Ok(Self::from_records(&records))
    }

    /// Build from an already-decoded record sequence.
    pub fn from_records(records: &[WalRecord]) -> Self {
        let mut g = ProvenanceGraph::default();
        for rec in records {
            if let WalRecord::Fix(f) = rec {
                if let Some(cell) = f.kind.cell() {
                    g.by_cell.entry(cell).or_default().push(f.id);
                }
                g.by_id.insert(f.id, g.nodes.len());
                g.nodes.push(f.clone());
            }
        }
        g
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: u64) -> Option<&FixRecord> {
        self.by_id.get(&id).map(|&i| &self.nodes[i])
    }

    /// All committed fixes, ascending id.
    pub fn nodes(&self) -> &[FixRecord] {
        &self.nodes
    }

    /// Every fix that rewrote `cell`, in commit order.
    pub fn fixes_for_cell(&self, cell: CellRef) -> &[u64] {
        self.by_cell.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Cells with at least one recorded fix, sorted (stable output for
    /// panels and the harness's `--provenance auto` mode).
    pub fn repaired_cells(&self) -> Vec<CellRef> {
        let mut cells: Vec<CellRef> = self.by_cell.keys().copied().collect();
        cells.sort_unstable();
        cells
    }

    /// Why does this cell hold its value? Returns the last fix that wrote
    /// it plus the transitive closure of its provenance parents.
    pub fn why(&self, cell: CellRef) -> Option<ProvenanceChain> {
        let &last = self.by_cell.get(&cell)?.last()?;
        let fix = self.node(last)?.clone();
        let mut seen: Vec<u64> = Vec::new();
        let mut stack: Vec<u64> = fix.parents.clone();
        while let Some(id) = stack.pop() {
            if seen.contains(&id) {
                continue;
            }
            seen.push(id);
            if let Some(n) = self.node(id) {
                stack.extend(n.parents.iter().copied());
            }
        }
        seen.sort_unstable();
        let ancestors = seen
            .into_iter()
            .filter_map(|id| self.node(id).cloned())
            .collect();
        Some(ProvenanceChain { fix, ancestors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrId, GlobalTid, RelId, TupleId, Value};

    fn fix(id: u64, round: u64, cell_tid: u32, parents: Vec<u64>) -> WalRecord {
        let cell = CellRef::new(RelId(0), TupleId(cell_tid), AttrId(1));
        WalRecord::Fix(FixRecord {
            id,
            round,
            rule: 3,
            kind: FixKind::Cell {
                cell,
                old: Value::Null,
                new: Value::Int(42),
            },
            valuation: vec![GlobalTid::new(RelId(0), TupleId(cell_tid))],
            parents,
        })
    }

    #[test]
    fn why_walks_transitive_parents() {
        let records = vec![
            WalRecord::Begin { fingerprint: 1 },
            WalRecord::RoundBegin { round: 1 },
            fix(0, 1, 0, vec![]),
            fix(1, 1, 1, vec![0]),
            WalRecord::RoundCommit {
                round: 1,
                checkpoint: None,
                state_crc: 0,
            },
            WalRecord::RoundBegin { round: 2 },
            fix(2, 2, 2, vec![1]),
            WalRecord::RoundCommit {
                round: 2,
                checkpoint: None,
                state_crc: 0,
            },
        ];
        let g = ProvenanceGraph::from_records(&records);
        assert_eq!(g.len(), 3);
        let chain = g
            .why(CellRef::new(RelId(0), TupleId(2), AttrId(1)))
            .unwrap();
        assert_eq!(chain.fix.id, 2);
        assert_eq!(chain.fix.rule, 3);
        assert!(!chain.fix.valuation.is_empty());
        let ids: Vec<u64> = chain.ancestors.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![0, 1]);
        // unknown cell
        assert!(g
            .why(CellRef::new(RelId(0), TupleId(9), AttrId(1)))
            .is_none());
    }
}
