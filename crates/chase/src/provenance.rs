//! Fix provenance: "why is this cell 42?" (ROADMAP item 4; the repair-
//! lineage framing follows HoloClean — see PAPERS.md).
//!
//! The WAL already records everything a lineage query needs: each
//! [`FixRecord`] carries its rule id, the valuation's bound tuples, and
//! the ids of the prior fixes that last touched those tuples. This module
//! replays a log's *committed* prefix (records past the last
//! `RoundCommit` are a crashed tail and excluded — durable provenance
//! only) into an id-indexed graph with a per-cell index.

use crate::chase::{ChaseConfig, ChaseEngine};
use crate::wal::{self, DurabilityConfig, FixKind, FixRecord, WalError, WalRecord};
use rock_crystal::sync::{AtomicU64, Ordering};
use rock_data::{AttrId, CellRef, DataError, Database, DatabaseSchema, RelId, Value};
use rock_ml::ModelRegistry;
use rock_rees::RuleSet;
use rustc_hash::FxHashMap;
use serde::Serialize;
use std::fmt;
use std::path::Path;

/// The provenance graph of one chase run.
#[derive(Debug, Default)]
pub struct ProvenanceGraph {
    /// All committed fixes, ascending id.
    nodes: Vec<FixRecord>,
    by_id: FxHashMap<u64, usize>,
    /// Fix ids that rewrote each cell, in commit order.
    by_cell: FxHashMap<CellRef, Vec<u64>>,
}

/// Answer to a `why(cell)` query.
#[derive(Debug, Clone, Serialize)]
pub struct ProvenanceChain {
    /// The last fix that wrote the cell.
    pub fix: FixRecord,
    /// Its transitive parents, ascending id — the full derivation.
    pub ancestors: Vec<FixRecord>,
}

impl ProvenanceGraph {
    /// Load from a durability directory's WAL (all segments, in order).
    pub fn load(dir: &Path) -> Result<Self, WalError> {
        let scan = wal::read_wal_dir(dir)?;
        // keep only the committed prefix
        let mut committed = 0usize;
        for (i, (_, rec)) in scan.records.iter().enumerate() {
            if matches!(rec, WalRecord::RoundCommit { .. }) {
                committed = i + 1;
            }
        }
        let records: Vec<WalRecord> = scan
            .records
            .into_iter()
            .take(committed)
            .map(|(_, r)| r)
            .collect();
        Ok(Self::from_records(&records))
    }

    /// Build from an already-decoded record sequence.
    pub fn from_records(records: &[WalRecord]) -> Self {
        let mut g = ProvenanceGraph::default();
        for rec in records {
            if let WalRecord::Fix(f) = rec {
                if let Some(cell) = f.kind.cell() {
                    g.by_cell.entry(cell).or_default().push(f.id);
                }
                g.by_id.insert(f.id, g.nodes.len());
                g.nodes.push(f.clone());
            }
        }
        g
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: u64) -> Option<&FixRecord> {
        self.by_id.get(&id).map(|&i| &self.nodes[i])
    }

    /// All committed fixes, ascending id.
    pub fn nodes(&self) -> &[FixRecord] {
        &self.nodes
    }

    /// Every fix that rewrote `cell`, in commit order.
    pub fn fixes_for_cell(&self, cell: CellRef) -> &[u64] {
        self.by_cell.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Cells with at least one recorded fix, sorted (stable output for
    /// panels and the harness's `--provenance auto` mode).
    pub fn repaired_cells(&self) -> Vec<CellRef> {
        let mut cells: Vec<CellRef> = self.by_cell.keys().copied().collect();
        cells.sort_unstable();
        cells
    }

    /// The derivation of one fix: the record plus the transitive closure
    /// of its provenance parents, ascending id.
    fn chain_of(&self, id: u64) -> Option<ProvenanceChain> {
        let fix = self.node(id)?.clone();
        let mut seen: Vec<u64> = Vec::new();
        let mut stack: Vec<u64> = fix.parents.clone();
        while let Some(id) = stack.pop() {
            if seen.contains(&id) {
                continue;
            }
            seen.push(id);
            if let Some(n) = self.node(id) {
                stack.extend(n.parents.iter().copied());
            }
        }
        seen.sort_unstable();
        let ancestors = seen
            .into_iter()
            .filter_map(|id| self.node(id).cloned())
            .collect();
        Some(ProvenanceChain { fix, ancestors })
    }

    /// Why does this cell hold its value? Returns the last fix that wrote
    /// it plus the transitive closure of its provenance parents.
    pub fn why(&self, cell: CellRef) -> Option<ProvenanceChain> {
        let &last = self.by_cell.get(&cell)?.last()?;
        self.chain_of(last)
    }

    /// Every fix chain that rewrote `cell`, in commit order — the
    /// competing-writers view: where [`Self::why`] answers with the write
    /// that won, this keeps each earlier write's derivation too, so
    /// `rock-analyze --why` can print both sides of a W301 hazard.
    pub fn why_all(&self, cell: CellRef) -> Vec<ProvenanceChain> {
        self.fixes_for_cell(cell)
            .iter()
            .filter_map(|&id| self.chain_of(id))
            .collect()
    }
}

/// Error surface of [`replay_witness`]. Every failure is a value — this
/// crate denies `unwrap`/`expect` outside tests, and the replay path runs
/// inside the `rock-analyze` CLI where a panic would mask the diagnostics
/// the user asked for.
#[derive(Debug)]
pub enum ReplayError {
    /// Creating the scratch durability directory failed.
    Io(std::io::Error),
    /// The witness tuple did not fit the relation (arity or type).
    Witness(DataError),
    /// The scratch WAL could not be read back.
    Wal(WalError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "replay scratch dir: {e}"),
            ReplayError::Witness(e) => write!(f, "witness tuple rejected: {e}"),
            ReplayError::Wal(e) => write!(f, "replay WAL unreadable: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// What replaying a witness tuple produced.
#[derive(Debug)]
pub struct WitnessReplay {
    /// One provenance chain per committed fix on the contested cell, in
    /// commit order. Competing writers yield one chain per write that the
    /// conflict policy let through; a rejected write shows up in
    /// `conflicts` instead.
    pub chains: Vec<ProvenanceChain>,
    /// Chase conflicts observed on the replay instance.
    pub conflicts: usize,
    /// Rounds the replay chase ran.
    pub rounds: usize,
}

/// Replay a minimal synthetic instance — a single `rel` tuple — through a
/// durable chase in a process-private scratch directory and return the
/// provenance chains of the contested `attr` cell.
///
/// This is the counterexample generator behind `rock-analyze --why`: the
/// W301 witness tuple satisfies both competing preconditions, so the
/// replay makes the predicted race actually happen, and the WAL-backed
/// [`ProvenanceGraph`] shows each fix chain that fought over the cell.
/// The scratch directory is removed afterwards (best-effort).
pub fn replay_witness(
    rules: &RuleSet,
    registry: &ModelRegistry,
    schema: &DatabaseSchema,
    rel: RelId,
    tuple: Vec<Value>,
    attr: AttrId,
) -> Result<WitnessReplay, ReplayError> {
    static SCRATCH: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rock-why-{}-{}",
        std::process::id(),
        // Relaxed: a unique-id counter — only atomicity matters, no
        // other memory is published under it.
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(ReplayError::Io)?;
    let replay = || {
        let mut db = Database::new(schema);
        let tid = db
            .relation_mut(rel)
            .insert_row(tuple)
            .map_err(ReplayError::Witness)?;
        let config = ChaseConfig {
            durability: Some(DurabilityConfig {
                sync: false,
                ..DurabilityConfig::new(&dir)
            }),
            ..ChaseConfig::default()
        };
        let result = ChaseEngine::new(rules, registry, config).run(&db, &[]);
        let graph = ProvenanceGraph::load(&dir).map_err(ReplayError::Wal)?;
        Ok(WitnessReplay {
            chains: graph.why_all(CellRef::new(rel, tid, attr)),
            conflicts: result.conflicts,
            rounds: result.rounds,
        })
    };
    let out = replay();
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrId, GlobalTid, RelId, TupleId, Value};

    fn fix(id: u64, round: u64, cell_tid: u32, parents: Vec<u64>) -> WalRecord {
        let cell = CellRef::new(RelId(0), TupleId(cell_tid), AttrId(1));
        WalRecord::Fix(FixRecord {
            id,
            round,
            rule: 3,
            kind: FixKind::Cell {
                cell,
                old: Value::Null,
                new: Value::Int(42),
            },
            valuation: vec![GlobalTid::new(RelId(0), TupleId(cell_tid))],
            parents,
        })
    }

    #[test]
    fn why_walks_transitive_parents() {
        let records = vec![
            WalRecord::Begin { fingerprint: 1 },
            WalRecord::RoundBegin { round: 1 },
            fix(0, 1, 0, vec![]),
            fix(1, 1, 1, vec![0]),
            WalRecord::RoundCommit {
                round: 1,
                checkpoint: None,
                state_crc: 0,
            },
            WalRecord::RoundBegin { round: 2 },
            fix(2, 2, 2, vec![1]),
            WalRecord::RoundCommit {
                round: 2,
                checkpoint: None,
                state_crc: 0,
            },
        ];
        let g = ProvenanceGraph::from_records(&records);
        assert_eq!(g.len(), 3);
        let chain = g
            .why(CellRef::new(RelId(0), TupleId(2), AttrId(1)))
            .unwrap();
        assert_eq!(chain.fix.id, 2);
        assert_eq!(chain.fix.rule, 3);
        assert!(!chain.fix.valuation.is_empty());
        let ids: Vec<u64> = chain.ancestors.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![0, 1]);
        // unknown cell
        assert!(g
            .why(CellRef::new(RelId(0), TupleId(9), AttrId(1)))
            .is_none());
    }

    #[test]
    fn why_all_keeps_every_competing_write() {
        let records = vec![
            WalRecord::Begin { fingerprint: 1 },
            WalRecord::RoundBegin { round: 1 },
            fix(0, 1, 0, vec![]),
            fix(1, 1, 0, vec![0]),
            WalRecord::RoundCommit {
                round: 1,
                checkpoint: None,
                state_crc: 0,
            },
        ];
        let g = ProvenanceGraph::from_records(&records);
        let cell = CellRef::new(RelId(0), TupleId(0), AttrId(1));
        let all = g.why_all(cell);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].fix.id, 0);
        assert!(all[0].ancestors.is_empty());
        assert_eq!(all[1].fix.id, 1);
        let ids: Vec<u64> = all[1].ancestors.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![0]);
        // `why` stays the last-writer view
        assert_eq!(g.why(cell).map(|c| c.fix.id), Some(1));
        assert!(g
            .why_all(CellRef::new(RelId(0), TupleId(9), AttrId(1)))
            .is_empty());
    }

    #[test]
    fn replay_witness_realizes_a_competing_write() {
        use rock_data::{AttrType, DatabaseSchema, RelationSchema};
        use rock_rees::parse_rules;
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[
                ("city", AttrType::Str),
                ("code", AttrType::Str),
                ("pop", AttrType::Int),
            ],
        )]);
        let rules = RuleSet::new(
            parse_rules(
                "rule lo: T(t) && t.pop > 10 -> t.code = 'a'\n\
                 rule hi: T(t) && t.pop < 90 -> t.code = 'b'\n",
                &schema,
            )
            .unwrap(),
        );
        let reg = rock_ml::ModelRegistry::new();
        // pop = 11 satisfies both preconditions — the W301 witness shape.
        let rep = replay_witness(
            &rules,
            &reg,
            &schema,
            RelId(0),
            vec![Value::Null, Value::Null, Value::Int(11)],
            AttrId(1),
        )
        .unwrap();
        assert!(rep.rounds >= 1);
        assert!(
            !rep.chains.is_empty(),
            "one write must commit and leave a chain: {rep:?}"
        );
        assert!(
            rep.chains.len() + rep.conflicts >= 2,
            "the losing writer must surface as a chain or a conflict: {rep:?}"
        );
        // arity mismatch is a typed error, not a panic
        assert!(matches!(
            replay_witness(&rules, &reg, &schema, RelId(0), vec![], AttrId(1)),
            Err(ReplayError::Witness(_))
        ));
    }
}
