//! # rock-chase — the unified chase engine (paper §4)
//!
//! Rock corrects errors by *chasing* the data with a set Σ of REE++s and a
//! collection Γ of ground truth, conducting ER, CR, MI and TD **in the same
//! process** so the four tasks feed each other (§4.2 "Interactions").
//!
//! Fixes are maintained in `U = (E=, E⪯)`:
//! * `[EID]=` — entity classes validated to denote the same real-world
//!   entity (a union–find over `(relation, eid)` keys);
//! * `[EID.A]=` — the validated value of each entity attribute;
//! * `[A]⪯` — validated temporal orders per attribute (a DAG with
//!   conflict, i.e. antisymmetry-violation, detection).
//!
//! A chase step `U_i ⇒(φ,h) U_{i+1}` applies a rule to a valuation whose
//! precondition is validated; the consequence extends `U`. Chasing runs in
//! *rounds* (semi-naive): each round collects every proposal from every
//! activated rule, then commits them with deterministic, learning-based
//! conflict resolution (§4.2) — which is what makes the implementation
//! Church–Rosser: the committed state after each round is independent of
//! rule enumeration order (property-tested in `tests/`).
//!
//! Lazy activation (§4.1 "Novelty" (a)): rules are indexed by the
//! `(relation, attribute)` cells their preconditions read; a round only
//! re-evaluates rules whose read-set intersects the cells fixed in the
//! previous round (plus EID-sensitive rules after merges). Batch mode seeds
//! the worklist with every rule; incremental mode seeds it from ΔD.
//!
//! Durability (`wal` / `checkpoint` / `provenance`): with
//! [`DurabilityConfig`] set, every committed fix is appended to a
//! CRC-framed, *segmented* write-ahead log at round boundaries alongside
//! periodic checkpoints of the loop state (full snapshots plus CRC-chained
//! incremental deltas), so a crashed chase resumes from its last durable
//! round byte-identically ([`ChaseEngine::resume`]) and every repaired
//! cell can answer "why?" ([`ProvenanceGraph::why`]). Segments fully
//! covered by the latest full checkpoint are compacted away when
//! [`DurabilityConfig::with_compaction`] is on; transient I/O errors are
//! retried with capped backoff and the outcome is surfaced as a typed
//! [`WalHealth`] in [`ChaseResult`].

// The chase commits fixes round-atomically; a panic mid-commit would leave
// a torn fix store, so non-test code must surface errors as values (same
// gate as rock-crystal and rock-rees).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chase;
pub mod checkpoint;
pub mod conflict;
pub mod delta;
pub mod fixes;
pub mod order;
pub mod provenance;
pub mod quality;
pub mod wal;

pub use chase::{
    CertViolation, ChaseCertification, ChaseConfig, ChaseEngine, ChaseResult, GateMode, Proposal,
};
pub use checkpoint::{
    checkpoint_chain, locate, ChainEntry, ChaseCheckpoint, CheckpointDelta, CheckpointDoc,
    ResumePoint, CHECKPOINT_VERSION,
};
pub use conflict::ConflictPolicy;
pub use delta::{DeltaSet, RoundStats};
pub use fixes::{EntityKey, FixSnapshot, FixStore};
pub use order::PartialOrderStore;
pub use provenance::{
    replay_witness, ProvenanceChain, ProvenanceGraph, ReplayError, WitnessReplay,
};
pub use quality::QualityReport;
pub use wal::{
    list_segments, read_wal, read_wal_dir, segment_file_name, wal_bytes, DurabilityConfig, FixKind,
    FixRecord, SegmentInfo, WalDirScan, WalError, WalHealth, WalPos, WalRecord, WalSummary,
};
