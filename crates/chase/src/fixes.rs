//! The fix store `U = (E=, E⪯)` and ground truth Γ (paper §4.1).
//!
//! * `[EID]=` — union–find over entity keys `(relation, eid)`; a merge
//!   validates that two entity ids denote the same real-world entity.
//! * `[EID.A]=` — validated attribute values keyed by (entity class,
//!   attribute); each attribute has at most one validated value
//!   ("Validity" (a)).
//! * `[A]⪯` — validated temporal orders (see [`crate::order`]).
//!
//! Ground truth Γ is the *initial* content of `U` (master data, manually
//! checked tuples, timestamp-induced orders); the chase accumulates more
//! validated data as it deduces fixes. Cells belonging to *trusted* tuples
//! can never be overwritten — certain fixes must respect the ground truth.

use crate::order::{OrderInsert, PartialOrderStore};
use rock_data::{AttrId, Eid, GlobalTid, RelId, TupleId, Value};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Entity key: which relation's eid space the entity id lives in. Merges
/// may cross relations (heterogeneous ER).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityKey {
    pub rel: RelId,
    pub eid: Eid,
}

impl EntityKey {
    pub fn new(rel: RelId, eid: Eid) -> Self {
        EntityKey { rel, eid }
    }
}

/// Outcome of trying to validate an attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueInsert {
    Added,
    Known,
    /// A different value is already validated for this entity attribute.
    Conflict(Value),
}

/// Outcome of trying to merge two entity classes.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeOutcome {
    Merged {
        /// Attribute conflicts discovered while unioning the value maps:
        /// (attr, value kept so far, competing value). The caller resolves
        /// them (§4.2(1)) and re-validates.
        conflicts: Vec<(RelId, AttrId, Value, Value)>,
    },
    Known,
    /// The two classes are validated to be *distinct* entities.
    Distinct,
}

/// The fix store.
#[derive(Debug, Clone, Default)]
pub struct FixStore {
    /// union–find parent pointers.
    parent: FxHashMap<EntityKey, EntityKey>,
    /// validated values: class root -> (rel, attr) -> value.
    values: FxHashMap<EntityKey, FxHashMap<(RelId, AttrId), Value>>,
    /// validated *distinctness* (consequences `t.eid != s.eid`): pairs of
    /// class roots, stored with roots ordered.
    distinct: FxHashSet<(EntityKey, EntityKey)>,
    /// per (rel, attr) temporal orders.
    orders: FxHashMap<(RelId, AttrId), PartialOrderStore>,
    /// tuples whose raw cells are ground truth and must not be overwritten.
    trusted: FxHashSet<GlobalTid>,
    /// count of validated value fixes that were *new* (for reporting).
    pub added_values: usize,
    pub merges: usize,
    pub added_orders: usize,
}

impl FixStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Find with path compression (iterative).
    pub fn find(&mut self, k: EntityKey) -> EntityKey {
        let mut root = k;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        // compress
        let mut cur = k;
        while let Some(&p) = self.parent.get(&cur) {
            if p == root || p == cur {
                break;
            }
            self.parent.insert(cur, root);
            cur = p;
        }
        root
    }

    /// Read-only find (no compression) for & contexts.
    pub fn find_ref(&self, k: EntityKey) -> EntityKey {
        let mut root = k;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        root
    }

    /// Are two entities validated as the same?
    pub fn same_entity(&self, a: EntityKey, b: EntityKey) -> bool {
        self.find_ref(a) == self.find_ref(b)
    }

    /// Mark a tuple as ground truth (its raw cells are trusted).
    pub fn trust_tuple(&mut self, t: GlobalTid) {
        self.trusted.insert(t);
    }

    pub fn is_trusted(&self, t: GlobalTid) -> bool {
        self.trusted.contains(&t)
    }

    pub fn trusted_count(&self) -> usize {
        self.trusted.len()
    }

    /// Validated value of an entity's attribute, if any.
    pub fn validated_value(&self, key: EntityKey, rel: RelId, attr: AttrId) -> Option<&Value> {
        let root = self.find_ref(key);
        self.values.get(&root).and_then(|m| m.get(&(rel, attr)))
    }

    /// Validate `[EID.A]= c`.
    pub fn set_value(
        &mut self,
        key: EntityKey,
        rel: RelId,
        attr: AttrId,
        value: Value,
    ) -> ValueInsert {
        let root = self.find(key);
        let map = self.values.entry(root).or_default();
        match map.get(&(rel, attr)) {
            Some(existing) if *existing == value => ValueInsert::Known,
            Some(existing) => ValueInsert::Conflict(existing.clone()),
            None => {
                map.insert((rel, attr), value);
                self.added_values += 1;
                ValueInsert::Added
            }
        }
    }

    /// Forcibly overwrite a validated value (conflict resolution commits
    /// its chosen winner through this).
    pub fn override_value(&mut self, key: EntityKey, rel: RelId, attr: AttrId, value: Value) {
        let root = self.find(key);
        self.values
            .entry(root)
            .or_default()
            .insert((rel, attr), value);
    }

    /// Validate that two entities are distinct (`t.eid != s.eid`).
    /// Returns false (conflict) when they are already merged.
    pub fn set_distinct(&mut self, a: EntityKey, b: EntityKey) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let pair = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.distinct.insert(pair);
        true
    }

    /// Are two entities validated distinct?
    pub fn is_distinct(&self, a: EntityKey, b: EntityKey) -> bool {
        let (ra, rb) = (self.find_ref(a), self.find_ref(b));
        let pair = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.distinct.contains(&pair)
    }

    /// Merge two entity classes (`t.eid = s.eid`).
    pub fn merge(&mut self, a: EntityKey, b: EntityKey) -> MergeOutcome {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return MergeOutcome::Known;
        }
        if self.is_distinct(ra, rb) {
            return MergeOutcome::Distinct;
        }
        // deterministic root choice: smaller key wins
        let (root, child) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(child, root);
        // rewrite distinct pairs involving child
        let rewritten: Vec<(EntityKey, EntityKey)> = self
            .distinct
            .iter()
            .filter(|(x, y)| *x == child || *y == child)
            .copied()
            .collect();
        for (x, y) in rewritten {
            self.distinct.remove(&(x, y));
            let nx = if x == child { root } else { x };
            let ny = if y == child { root } else { y };
            let pair = if nx < ny { (nx, ny) } else { (ny, nx) };
            self.distinct.insert(pair);
        }
        // union value maps, collecting conflicts
        let child_map = self.values.remove(&child).unwrap_or_default();
        let root_map = self.values.entry(root).or_default();
        let mut conflicts = Vec::new();
        for ((rel, attr), v) in child_map {
            match root_map.get(&(rel, attr)) {
                Some(existing) if *existing != v => {
                    conflicts.push((rel, attr, existing.clone(), v));
                }
                Some(_) => {}
                None => {
                    root_map.insert((rel, attr), v);
                }
            }
        }
        self.merges += 1;
        MergeOutcome::Merged { conflicts }
    }

    /// Validate a temporal order pair.
    pub fn add_order(
        &mut self,
        rel: RelId,
        attr: AttrId,
        t1: TupleId,
        t2: TupleId,
        strict: bool,
    ) -> OrderInsert {
        let r = self
            .orders
            .entry((rel, attr))
            .or_default()
            .insert(t1, t2, strict);
        if r == OrderInsert::Added {
            self.added_orders += 1;
        }
        r
    }

    /// The partial order of one attribute (empty default when untouched).
    pub fn order(&self, rel: RelId, attr: AttrId) -> Option<&PartialOrderStore> {
        self.orders.get(&(rel, attr))
    }

    /// Does `t1 ⪯A t2` / `t1 ≺A t2` hold in the validated orders?
    pub fn order_holds(
        &self,
        rel: RelId,
        attr: AttrId,
        t1: TupleId,
        t2: TupleId,
        strict: bool,
    ) -> bool {
        match self.orders.get(&(rel, attr)) {
            Some(p) => p.holds(t1, t2, strict),
            None => t1 == t2 && !strict,
        }
    }

    /// Validity check (§4.1): currently maintained incrementally — value
    /// conflicts and order conflicts are rejected at insert — so this
    /// asserts internal invariants (used by property tests).
    pub fn is_valid(&self) -> bool {
        // every distinct pair must reference distinct roots
        self.distinct
            .iter()
            .all(|(a, b)| self.find_ref(*a) != self.find_ref(*b))
    }

    /// Number of entity classes that have at least one member merged in.
    pub fn merge_count(&self) -> usize {
        self.merges
    }

    /// Flatten into a serializable, *deterministic* image (all maps and
    /// sets become sorted pair lists — serde_json cannot key maps by
    /// struct types, and the sort makes the checkpoint bytes stable).
    pub fn to_snapshot(&self) -> FixSnapshot {
        let mut parent: Vec<(EntityKey, EntityKey)> =
            self.parent.iter().map(|(k, v)| (*k, *v)).collect();
        parent.sort_unstable();
        let mut values: Vec<(EntityKey, Vec<((RelId, AttrId), Value)>)> = self
            .values
            .iter()
            .map(|(k, m)| {
                let mut inner: Vec<((RelId, AttrId), Value)> =
                    m.iter().map(|(ka, v)| (*ka, v.clone())).collect();
                inner.sort_unstable_by_key(|&(ka, _)| ka);
                (*k, inner)
            })
            .collect();
        values.sort_unstable_by_key(|&(k, _)| k);
        let mut distinct: Vec<(EntityKey, EntityKey)> = self.distinct.iter().copied().collect();
        distinct.sort_unstable();
        let mut orders: Vec<((RelId, AttrId), Vec<(TupleId, TupleId, bool)>)> = self
            .orders
            .iter()
            .map(|(k, p)| {
                let mut edges: Vec<(TupleId, TupleId, bool)> = p.iter_edges().collect();
                edges.sort_unstable();
                (*k, edges)
            })
            .collect();
        orders.sort_unstable_by_key(|&(k, _)| k);
        let mut trusted: Vec<GlobalTid> = self.trusted.iter().copied().collect();
        trusted.sort_unstable();
        FixSnapshot {
            parent,
            values,
            distinct,
            orders,
            trusted,
            added_values: self.added_values,
            merges: self.merges,
            added_orders: self.added_orders,
        }
    }

    /// Inverse of [`Self::to_snapshot`]: the rebuilt store is behaviorally
    /// identical (same union–find parents, validated values, distinctness
    /// pairs, direct order edges, trusted set, and counters).
    pub fn from_snapshot(s: &FixSnapshot) -> FixStore {
        let mut f = FixStore::new();
        for (k, v) in &s.parent {
            f.parent.insert(*k, *v);
        }
        for (k, inner) in &s.values {
            let m = f.values.entry(*k).or_default();
            for (ka, v) in inner {
                m.insert(*ka, v.clone());
            }
        }
        for p in &s.distinct {
            f.distinct.insert(*p);
        }
        for (ka, edges) in &s.orders {
            f.orders.insert(*ka, PartialOrderStore::from_edges(edges));
        }
        for t in &s.trusted {
            f.trusted.insert(*t);
        }
        f.added_values = s.added_values;
        f.merges = s.merges;
        f.added_orders = s.added_orders;
        f
    }
}

/// Serializable, deterministic image of a [`FixStore`] for round-boundary
/// checkpoints (see `crate::checkpoint`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixSnapshot {
    parent: Vec<(EntityKey, EntityKey)>,
    values: Vec<(EntityKey, Vec<((RelId, AttrId), Value)>)>,
    distinct: Vec<(EntityKey, EntityKey)>,
    orders: Vec<((RelId, AttrId), Vec<(TupleId, TupleId, bool)>)>,
    trusted: Vec<GlobalTid>,
    added_values: usize,
    merges: usize,
    added_orders: usize,
}

/// [`rock_rees::eval::TemporalOracle`] backed by the fix store: the chase
/// evaluates `t ⪯A s` preconditions against *validated* orders only.
pub struct FixOrderOracle<'a> {
    pub fixes: &'a FixStore,
}

impl rock_rees::eval::TemporalOracle for FixOrderOracle<'_> {
    fn holds(&self, rel: RelId, attr: AttrId, t1: TupleId, t2: TupleId, strict: bool) -> bool {
        self.fixes.order_holds(rel, attr, t1, t2, strict)
    }
}

/// The chase's temporal oracle: validated orders in `U` plus the *lazy*
/// Γ⪯ — pairs implied by the initial cell timestamps (§4.1 initializes Γ⪯
/// "with the temporal orders in D with initial timestamps"; materializing
/// them is quadratic, comparing on demand is O(1)).
pub struct ChaseOrderOracle<'a> {
    pub fixes: &'a FixStore,
    pub db: &'a rock_data::Database,
}

impl rock_rees::eval::TemporalOracle for ChaseOrderOracle<'_> {
    fn holds(&self, rel: RelId, attr: AttrId, t1: TupleId, t2: TupleId, strict: bool) -> bool {
        if self.fixes.order_holds(rel, attr, t1, t2, strict) {
            return true;
        }
        let ts = &self.db.relation(rel).timestamps;
        match (ts.get(t1, attr), ts.get(t2, attr)) {
            (Some(a), Some(b)) => {
                if strict {
                    a < b
                } else {
                    a <= b
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(e: u32) -> EntityKey {
        EntityKey::new(RelId(0), Eid(e))
    }

    #[test]
    fn union_find_basics() {
        let mut f = FixStore::new();
        assert!(!f.same_entity(k(1), k(2)));
        assert!(matches!(f.merge(k(1), k(2)), MergeOutcome::Merged { .. }));
        assert!(f.same_entity(k(1), k(2)));
        assert_eq!(f.merge(k(1), k(2)), MergeOutcome::Known);
        f.merge(k(2), k(3));
        assert!(f.same_entity(k(1), k(3)));
        assert_eq!(f.merge_count(), 2);
    }

    #[test]
    fn value_validation_and_conflict() {
        let mut f = FixStore::new();
        assert_eq!(
            f.set_value(k(1), RelId(0), AttrId(2), Value::str("x")),
            ValueInsert::Added
        );
        assert_eq!(
            f.set_value(k(1), RelId(0), AttrId(2), Value::str("x")),
            ValueInsert::Known
        );
        assert_eq!(
            f.set_value(k(1), RelId(0), AttrId(2), Value::str("y")),
            ValueInsert::Conflict(Value::str("x"))
        );
        assert_eq!(
            f.validated_value(k(1), RelId(0), AttrId(2)),
            Some(&Value::str("x"))
        );
        f.override_value(k(1), RelId(0), AttrId(2), Value::str("y"));
        assert_eq!(
            f.validated_value(k(1), RelId(0), AttrId(2)),
            Some(&Value::str("y"))
        );
    }

    #[test]
    fn merge_unions_values_and_reports_conflicts() {
        let mut f = FixStore::new();
        f.set_value(k(1), RelId(0), AttrId(0), Value::str("a"));
        f.set_value(k(2), RelId(0), AttrId(0), Value::str("b"));
        f.set_value(k(2), RelId(0), AttrId(1), Value::Int(5));
        match f.merge(k(1), k(2)) {
            MergeOutcome::Merged { conflicts } => {
                assert_eq!(conflicts.len(), 1);
                assert_eq!(conflicts[0].2, Value::str("a"));
                assert_eq!(conflicts[0].3, Value::str("b"));
            }
            o => panic!("unexpected {o:?}"),
        }
        // the non-conflicting value flowed into the merged class
        assert_eq!(
            f.validated_value(k(1), RelId(0), AttrId(1)),
            Some(&Value::Int(5))
        );
    }

    #[test]
    fn distinct_blocks_merge() {
        let mut f = FixStore::new();
        assert!(f.set_distinct(k(1), k(2)));
        assert_eq!(f.merge(k(1), k(2)), MergeOutcome::Distinct);
        assert!(f.is_distinct(k(1), k(2)));
        // merging an already-merged pair can't become distinct
        f.merge(k(3), k(4));
        assert!(!f.set_distinct(k(3), k(4)));
        assert!(f.is_valid());
    }

    #[test]
    fn distinctness_follows_merges() {
        let mut f = FixStore::new();
        f.set_distinct(k(1), k(2));
        f.merge(k(2), k(3));
        // k3 is in k2's class, so k1 vs k3 is also distinct
        assert!(f.is_distinct(k(1), k(3)));
        assert!(f.is_valid());
    }

    #[test]
    fn orders_and_oracle() {
        let mut f = FixStore::new();
        assert_eq!(
            f.add_order(RelId(0), AttrId(1), TupleId(0), TupleId(1), false),
            OrderInsert::Added
        );
        assert!(f.order_holds(RelId(0), AttrId(1), TupleId(0), TupleId(1), false));
        assert!(!f.order_holds(RelId(0), AttrId(1), TupleId(1), TupleId(0), false));
        // untouched attribute: only reflexive non-strict holds
        assert!(f.order_holds(RelId(0), AttrId(9), TupleId(3), TupleId(3), false));
        assert!(!f.order_holds(RelId(0), AttrId(9), TupleId(3), TupleId(4), false));
    }

    #[test]
    fn trusted_tuples() {
        let mut f = FixStore::new();
        let t = GlobalTid::new(RelId(0), TupleId(7));
        assert!(!f.is_trusted(t));
        f.trust_tuple(t);
        assert!(f.is_trusted(t));
        assert_eq!(f.trusted_count(), 1);
    }

    #[test]
    fn snapshot_round_trip_preserves_behavior() {
        let mut f = FixStore::new();
        f.merge(k(1), k(2));
        f.set_distinct(k(3), k(4));
        f.set_value(k(1), RelId(0), AttrId(2), Value::str("x"));
        f.add_order(RelId(0), AttrId(1), TupleId(0), TupleId(1), false);
        f.add_order(RelId(0), AttrId(1), TupleId(1), TupleId(2), true);
        f.trust_tuple(GlobalTid::new(RelId(0), TupleId(7)));
        let snap = f.to_snapshot();
        let g = FixStore::from_snapshot(&snap);
        assert!(g.same_entity(k(1), k(2)));
        assert!(g.is_distinct(k(3), k(4)));
        assert_eq!(
            g.validated_value(k(2), RelId(0), AttrId(2)),
            Some(&Value::str("x"))
        );
        assert!(g.order_holds(RelId(0), AttrId(1), TupleId(0), TupleId(2), true));
        assert!(g.is_trusted(GlobalTid::new(RelId(0), TupleId(7))));
        assert_eq!(g.merge_count(), 1);
        assert_eq!(g.added_orders, 2);
        // deterministic: re-snapshotting the rebuilt store is bit-identical
        assert_eq!(
            serde_json::to_string(&snap).unwrap(),
            serde_json::to_string(&g.to_snapshot()).unwrap()
        );
    }

    #[test]
    fn cross_relation_merge() {
        let mut f = FixStore::new();
        let a = EntityKey::new(RelId(0), Eid(1));
        let b = EntityKey::new(RelId(1), Eid(1));
        assert!(!f.same_entity(a, b));
        f.merge(a, b);
        assert!(f.same_entity(a, b));
    }
}
