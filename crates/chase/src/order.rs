//! Partial temporal orders `[A]⪯` with conflict detection (paper §4.1
//! "Validity" (b)): a fix store is invalid when `[A]⪯` contains both
//! `(t1, t2)` and `(t2, t1)` with one of them strict.
//!
//! Representation: a directed graph over tuple ids where an edge `t1 → t2`
//! means `t1 ⪯A t2` (strict edges additionally carry `≺`). Reachability
//! answers `holds` queries; adding an edge that closes a *strict* cycle is
//! a conflict and is rejected (the caller resolves it, §4.2(2)).

use rock_data::TupleId;
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// One attribute's validated partial order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PartialOrderStore {
    /// adjacency: t -> [(successor, strict)]
    succ: FxHashMap<TupleId, Vec<(TupleId, bool)>>,
    edges: usize,
}

/// Result of inserting an order pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderInsert {
    /// The pair is newly validated.
    Added,
    /// The pair was already derivable.
    Known,
    /// The pair contradicts validated orders (antisymmetry violation with a
    /// strict edge on the cycle).
    Conflict,
}

impl PartialOrderStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a store from a previously captured direct-edge list
    /// ([`Self::iter_edges`]). Bypasses the derivability check so the
    /// reconstructed store has the *identical* direct-edge set (and thus
    /// identical `edge_count`), not merely the same closure — checkpoint
    /// resume must restore the store exactly.
    pub fn from_edges(edges: &[(TupleId, TupleId, bool)]) -> Self {
        let mut s = PartialOrderStore::new();
        for &(a, b, strict) in edges {
            s.succ.entry(a).or_default().push((b, strict));
            s.edges += 1;
        }
        s
    }

    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Is `a ⪯ b` derivable (strict=false), or `a ≺ b` (strict=true)?
    /// Reflexive: `a ⪯ a` always holds; `a ≺ a` never does.
    pub fn holds(&self, a: TupleId, b: TupleId, strict: bool) -> bool {
        if a == b {
            return !strict;
        }
        // BFS; track whether any strict edge was used on some path.
        // For non-strict queries any path suffices; for strict queries we
        // need a path containing a strict edge.
        let mut seen: FxHashSet<(TupleId, bool)> = FxHashSet::default();
        let mut queue: Vec<(TupleId, bool)> = vec![(a, false)];
        seen.insert((a, false));
        while let Some((cur, used_strict)) = queue.pop() {
            if let Some(next) = self.succ.get(&cur) {
                for &(nxt, edge_strict) in next {
                    let s = used_strict || edge_strict;
                    if nxt == b && (!strict || s) {
                        return true;
                    }
                    if seen.insert((nxt, s)) {
                        queue.push((nxt, s));
                    }
                }
            }
        }
        false
    }

    /// Try to validate `a ⪯ b` / `a ≺ b`.
    pub fn insert(&mut self, a: TupleId, b: TupleId, strict: bool) -> OrderInsert {
        if a == b {
            return if strict {
                OrderInsert::Conflict
            } else {
                OrderInsert::Known
            };
        }
        // Conflict when the reverse direction holds with strictness on
        // either side: (a ≺ b) ∧ (b ⪯ a), or (a ⪯ b) ∧ (b ≺ a).
        if self.holds(b, a, !strict) && (strict || self.holds(b, a, true)) {
            return OrderInsert::Conflict;
        }
        if strict && self.holds(b, a, false) {
            return OrderInsert::Conflict;
        }
        if self.holds(a, b, strict) {
            return OrderInsert::Known;
        }
        self.succ.entry(a).or_default().push((b, strict));
        self.edges += 1;
        OrderInsert::Added
    }

    /// All directly validated pairs (not the closure).
    pub fn iter_edges(&self) -> impl Iterator<Item = (TupleId, TupleId, bool)> + '_ {
        self.succ
            .iter()
            .flat_map(|(&a, vs)| vs.iter().map(move |&(b, s)| (a, b, s)))
    }

    /// Tuples with no validated successor among `candidates` — the "latest"
    /// values TD reports (paper §1: "infer the latest attribute values of
    /// each entity"). Ties (incomparable tuples) are all returned.
    pub fn maximal(&self, candidates: &[TupleId]) -> Vec<TupleId> {
        candidates
            .iter()
            .copied()
            .filter(|&t| !candidates.iter().any(|&u| u != t && self.holds(t, u, true)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TupleId = TupleId(0);
    const T1: TupleId = TupleId(1);
    const T2: TupleId = TupleId(2);

    #[test]
    fn reflexivity() {
        let p = PartialOrderStore::new();
        assert!(p.holds(T0, T0, false));
        assert!(!p.holds(T0, T0, true));
    }

    #[test]
    fn transitivity_via_reachability() {
        let mut p = PartialOrderStore::new();
        assert_eq!(p.insert(T0, T1, false), OrderInsert::Added);
        assert_eq!(p.insert(T1, T2, true), OrderInsert::Added);
        assert!(p.holds(T0, T2, false));
        // strict holds because a strict edge lies on the path
        assert!(p.holds(T0, T2, true));
        assert!(!p.holds(T2, T0, false));
    }

    #[test]
    fn non_strict_cycle_is_fine() {
        // t0 ⪯ t1 and t1 ⪯ t0 just means "equally current".
        let mut p = PartialOrderStore::new();
        assert_eq!(p.insert(T0, T1, false), OrderInsert::Added);
        assert_eq!(p.insert(T1, T0, false), OrderInsert::Added);
        assert!(p.holds(T0, T1, false));
        assert!(p.holds(T1, T0, false));
        assert!(!p.holds(T0, T1, true));
    }

    #[test]
    fn strict_reverse_is_conflict() {
        let mut p = PartialOrderStore::new();
        assert_eq!(p.insert(T0, T1, true), OrderInsert::Added);
        assert_eq!(p.insert(T1, T0, false), OrderInsert::Conflict);
        assert_eq!(p.insert(T1, T0, true), OrderInsert::Conflict);
    }

    #[test]
    fn strict_after_nonstrict_cycle_is_conflict() {
        let mut p = PartialOrderStore::new();
        p.insert(T0, T1, false);
        p.insert(T1, T0, false);
        assert_eq!(p.insert(T0, T1, true), OrderInsert::Conflict);
    }

    #[test]
    fn duplicate_insert_known() {
        let mut p = PartialOrderStore::new();
        assert_eq!(p.insert(T0, T1, false), OrderInsert::Added);
        assert_eq!(p.insert(T0, T1, false), OrderInsert::Known);
        assert_eq!(p.edge_count(), 1);
        // a strict insert over a known non-strict pair adds information
        assert_eq!(p.insert(T0, T1, true), OrderInsert::Added);
    }

    #[test]
    fn self_strict_is_conflict() {
        let mut p = PartialOrderStore::new();
        assert_eq!(p.insert(T0, T0, true), OrderInsert::Conflict);
        assert_eq!(p.insert(T0, T0, false), OrderInsert::Known);
    }

    #[test]
    fn maximal_elements() {
        let mut p = PartialOrderStore::new();
        p.insert(T0, T1, true);
        p.insert(T1, T2, true);
        assert_eq!(p.maximal(&[T0, T1, T2]), vec![T2]);
        // incomparable tuples are all maximal
        let q = PartialOrderStore::new();
        assert_eq!(q.maximal(&[T0, T1]), vec![T0, T1]);
    }
}
