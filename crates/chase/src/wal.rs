//! Segmented write-ahead log for the durable chase (ROADMAP item 4).
//!
//! The log is a sequence of segment files `wal.000001`, `wal.000002`, …
//! inside the durability directory. Every segment starts with the magic and
//! a `Begin { fingerprint }` header frame; every round that commits fixes
//! appends, at the round boundary, one frame sequence:
//!
//! ```text
//! RoundBegin(r) · Fix* · RoundCommit(r, checkpoint, state_crc)
//! ```
//!
//! Frames are CRC-32 framed (`rock_crystal::crc32`, the same CRC Crystal
//! uses on its hash ring and block checksums):
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: serde_json bytes]
//! ```
//!
//! The reader accepts the longest valid prefix and stops at the first
//! truncated or corrupt frame — a crash mid-append (or a torn sector)
//! loses at most the uncommitted tail, never a committed round. State is
//! only ever resumed from rounds whose `RoundCommit` marker is inside the
//! valid prefix *and* whose checkpoint chain verifies against the
//! marker's CRC (see `crate::checkpoint`).
//!
//! **Segments and compaction.** The writer rotates to a fresh segment at the
//! first round boundary where the live segment exceeds
//! [`DurabilityConfig::segment_bytes`]. The switch is crash-safe: the new
//! segment's header is written and fsynced (file + directory) *before* any
//! round frame lands in it, and a crash mid-rotation at worst leaves a
//! partial next segment that the reader discards as a corrupt tail. With
//! [`DurabilityConfig::compact`] on, committing a *full* checkpoint retires
//! every earlier segment and every checkpoint file outside the live chain —
//! bounding the directory to the latest full checkpoint, its deltas, and at
//! most two segments.
//!
//! **I/O faults.** All I/O goes through the config's
//! [`rock_crystal::FaultVfs`]. Transient errors are retried with the capped
//! exponential backoff Crystal's compute retries use
//! ([`rock_crystal::ClusterConfig::backoff_for`]); once retries are
//! exhausted the context *poisons*: durability degrades to in-memory, the
//! chase keeps repairing, and the failure surfaces as
//! [`WalHealth::Degraded`] on the run's [`WalSummary`].
//!
//! Each [`FixRecord`] doubles as a **provenance node**: it carries the
//! rule id, the valuation's bound tuples, and the ids of the prior fixes
//! those tuples last received (`parents`). `crate::provenance` replays
//! the log into a queryable "why is this cell 42?" graph.

use crate::fixes::EntityKey;
use rock_crystal::{crc32, ClusterConfig, FaultVfs};
use rock_data::{AttrId, CellRef, GlobalTid, RelId, TupleId, Value};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// File magic: identifies the format and its version.
pub const WAL_MAGIC: &[u8; 8] = b"ROCKWAL1";

/// Name of WAL segment `seq` (1-based): `wal.000001`, `wal.000002`, …
pub fn segment_file_name(seq: u64) -> String {
    format!("wal.{seq:06}")
}

/// Parse a segment file name back to its sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?;
    if digits.len() < 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Position in the segmented log: segment sequence number + byte offset
/// within that segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct WalPos {
    pub seg: u64,
    pub off: u64,
}

/// Errors surfaced by the durability layer. The chase itself never fails
/// on these — a mid-run WAL error degrades durability to off and is
/// reported in [`WalSummary::error`] — but [`crate::ChaseEngine::resume`]
/// is fallible by nature.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    /// A frame or checkpoint failed to encode/decode.
    Codec(String),
    /// The log or checkpoint contradicts itself or the engine (bad magic,
    /// fingerprint mismatch, missing checkpoint file).
    Mismatch(String),
    /// No round has been durably committed yet, so there is nothing to
    /// resume from.
    NoDurableRound,
    /// The engine has no durability configured.
    NotConfigured,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Codec(m) => write!(f, "wal codec error: {m}"),
            WalError::Mismatch(m) => write!(f, "wal mismatch: {m}"),
            WalError::NoDurableRound => write!(f, "no durably committed round to resume from"),
            WalError::NotConfigured => write!(f, "chase has no durability configured"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Durability knobs, threaded through `ChaseConfig::durability`.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.NNNNNN` segments and `checkpoint-*` files.
    pub dir: PathBuf,
    /// Checkpoint every N round boundaries (1 = every round). Rounds
    /// without a checkpoint still log their fixes; resume falls back to
    /// the last checkpointed round and deterministically re-runs the gap.
    pub snapshot_every: usize,
    /// fsync the WAL at each round boundary and fsync checkpoint writes.
    /// `false` trades power-loss durability for speed (tests, panels).
    pub sync: bool,
    /// Crash drill: abort the process right *after* round N's commit is
    /// durable. Wired from `ROCK_CRASH_AT_ROUND` by the harness binaries;
    /// never set in production configs.
    pub crash_at_round: Option<usize>,
    /// Rotate to a new WAL segment at the first round boundary where the
    /// live segment holds at least this many bytes (soft budget: a round's
    /// frames never straddle segments).
    pub segment_bytes: u64,
    /// Retire WAL segments and checkpoint files fully covered by the
    /// latest full checkpoint. Off by default: compaction trades
    /// resume-at-any-round and whole-history provenance for bounded disk.
    pub compact: bool,
    /// Write a full checkpoint every N checkpoints, deltas in between
    /// (1 = every checkpoint is full). Deltas diff cells/carries/activation
    /// against the previous snapshot and chain CRCs back to their full.
    pub full_every: usize,
    /// Transient I/O errors on append/sync/checkpoint writes are retried
    /// this many times before durability poisons to in-memory.
    pub max_io_retries: u32,
    /// Base of the capped exponential retry backoff (same shape as
    /// [`rock_crystal::ClusterConfig::backoff_for`]).
    pub io_backoff: Duration,
    /// Filesystem shim all WAL/checkpoint I/O routes through. The clean
    /// default injects nothing; the crash-consistency harness swaps in a
    /// seeded fault plan.
    pub vfs: FaultVfs,
}

impl DurabilityConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        // Reuse Crystal's compute-retry constants for the I/O retry ladder.
        let retry = ClusterConfig::default();
        DurabilityConfig {
            dir: dir.into(),
            snapshot_every: 1,
            sync: true,
            crash_at_round: None,
            segment_bytes: 8 * 1024 * 1024,
            compact: false,
            full_every: 1,
            max_io_retries: retry.max_retries,
            io_backoff: retry.retry_backoff,
            vfs: FaultVfs::clean(),
        }
    }

    pub fn with_vfs(mut self, vfs: FaultVfs) -> Self {
        self.vfs = vfs;
        self
    }

    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    pub fn with_compaction(mut self, on: bool) -> Self {
        self.compact = on;
        self
    }

    pub fn with_full_every(mut self, n: usize) -> Self {
        self.full_every = n.max(1);
        self
    }

    /// Capped exponential backoff before I/O retry `attempt` (0-based) —
    /// delegates to the same formula Crystal's unit retries use.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        ClusterConfig {
            retry_backoff: self.io_backoff,
            ..ClusterConfig::default()
        }
        .backoff_for(attempt)
    }
}

/// Typed durability health of a finished run, surfaced on
/// [`crate::ChaseResult`] via [`WalSummary::health`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum WalHealth {
    /// Every append, sync, and checkpoint write succeeded first try.
    Healthy,
    /// Transient I/O errors occurred but the capped-backoff retries
    /// recovered all of them; the log is complete.
    Recovered { io_retries: u64 },
    /// An I/O error exhausted its retries: durability degraded to
    /// in-memory from that point on. Repairs are still byte-identical to
    /// the in-memory oracle — only the log is incomplete.
    Degraded { reason: String },
}

/// What one fix did to the store / working database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FixKind {
    /// A cell of the working database was rewritten.
    Cell {
        cell: CellRef,
        old: Value,
        new: Value,
    },
    /// Two entity classes were merged (`[EID]=`).
    Merge { a: GlobalTid, b: GlobalTid },
    /// Two entities were validated distinct.
    Distinct { a: GlobalTid, b: GlobalTid },
    /// A value was validated on an entity class (`[EID.A]=`).
    Validate {
        entity: EntityKey,
        rel: RelId,
        attr: AttrId,
        value: Value,
    },
    /// A temporal order edge was validated (`[A]⪯`).
    Order {
        rel: RelId,
        attr: AttrId,
        t1: TupleId,
        t2: TupleId,
        strict: bool,
    },
}

impl FixKind {
    /// Tuples this fix writes/affects — they become the fix's provenance
    /// footprint (later fixes touching them list this fix as a parent).
    pub fn touched(&self) -> Vec<GlobalTid> {
        match self {
            FixKind::Cell { cell, .. } => vec![cell.tuple()],
            FixKind::Merge { a, b } | FixKind::Distinct { a, b } => vec![*a, *b],
            FixKind::Validate { .. } => Vec::new(),
            FixKind::Order { rel, t1, t2, .. } => {
                vec![GlobalTid::new(*rel, *t1), GlobalTid::new(*rel, *t2)]
            }
        }
    }

    /// The cell this fix rewrote, if it is a cell fix.
    pub fn cell(&self) -> Option<CellRef> {
        match self {
            FixKind::Cell { cell, .. } => Some(*cell),
            _ => None,
        }
    }
}

/// One committed fix = one WAL record = one provenance node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixRecord {
    /// Monotonic fix id (stable across crash/resume: rounds re-run after
    /// a resume regenerate identical ids).
    pub id: u64,
    /// Round that committed the fix (1-based, global across session
    /// batches).
    pub round: u64,
    /// Id of the rule whose valuation derived the fix.
    pub rule: u32,
    pub kind: FixKind,
    /// Tuples the deriving valuation bound (sorted, deduplicated).
    pub valuation: Vec<GlobalTid>,
    /// Ids of the prior fixes that last touched the valuation's tuples —
    /// the provenance edges.
    pub parents: Vec<u64>,
}

/// One framed WAL record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Run/segment header: guards resume against a different rule set /
    /// config. Every segment starts with one.
    Begin {
        fingerprint: u64,
    },
    /// A durable `run_incremental` session started ΔD batch `batch`
    /// (1-based); `round_base` is the global round count already committed
    /// by earlier batches.
    BatchBegin {
        batch: u64,
        round_base: u64,
    },
    RoundBegin {
        round: u64,
    },
    Fix(FixRecord),
    /// Round boundary marker: everything up to here is one committed
    /// round. `checkpoint` names the snapshot document written just before
    /// this marker (None on non-snapshot rounds), `state_crc` is the
    /// CRC-32 of its bytes.
    RoundCommit {
        round: u64,
        checkpoint: Option<String>,
        state_crc: u32,
    },
}

/// Encode a record into one `[len][crc][payload]` frame.
pub fn encode_frame(rec: &WalRecord) -> Result<Vec<u8>, WalError> {
    let payload = serde_json::to_vec(rec).map_err(|e| WalError::Codec(e.to_string()))?;
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Result of scanning one segment: records of the longest valid prefix,
/// each with the byte offset one past its frame.
#[derive(Debug)]
pub struct WalScan {
    pub records: Vec<(u64, WalRecord)>,
    /// Bytes of the valid prefix (magic + whole frames).
    pub valid_len: u64,
    /// True when bytes past `valid_len` exist but fail to frame-decode —
    /// the crashed tail the recovery discards.
    pub corrupt_tail: bool,
}

/// Decode a WAL byte image into its longest valid prefix. Never errors on
/// damage past the magic: truncated length fields, short payloads, CRC
/// mismatches and JSON garbage all just end the prefix.
pub fn decode_wal(bytes: &[u8]) -> Result<WalScan, WalError> {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::Mismatch("bad or missing WAL magic".into()));
    }
    let mut records = Vec::new();
    let mut off = WAL_MAGIC.len();
    let mut corrupt_tail = false;
    while off < bytes.len() {
        if off + 8 > bytes.len() {
            corrupt_tail = true;
            break;
        }
        let len = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[off + 4],
            bytes[off + 5],
            bytes[off + 6],
            bytes[off + 7],
        ]);
        let start = off + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= bytes.len() => e,
            _ => {
                corrupt_tail = true;
                break;
            }
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            corrupt_tail = true;
            break;
        }
        let rec: WalRecord = match serde_json::from_slice(payload) {
            Ok(r) => r,
            Err(_) => {
                corrupt_tail = true;
                break;
            }
        };
        off = end;
        records.push((off as u64, rec));
    }
    Ok(WalScan {
        records,
        valid_len: off as u64,
        corrupt_tail,
    })
}

/// Read and scan a single WAL segment file.
pub fn read_wal(path: &Path) -> Result<WalScan, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode_wal(&bytes)
}

/// WAL segments present in `dir`, sorted by sequence number. An absent
/// directory reads as "no segments".
pub fn list_segments(vfs: &FaultVfs, dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let entries = match vfs.list_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut segs: Vec<(u64, PathBuf)> = entries
        .into_iter()
        .filter_map(|p| {
            let seq = p.file_name()?.to_str().and_then(parse_segment_name)?;
            Some((seq, p))
        })
        .collect();
    segs.sort_by_key(|(seq, _)| *seq);
    Ok(segs)
}

/// Per-segment summary from a directory scan.
#[derive(Debug, Clone, Serialize)]
pub struct SegmentInfo {
    pub seq: u64,
    /// Total file bytes on disk.
    pub bytes: u64,
    /// Bytes of the valid prefix.
    pub valid_len: u64,
    /// Valid records in this segment (including its `Begin` header).
    pub records: usize,
    pub corrupt_tail: bool,
}

/// The logical log assembled from all valid segments in order.
#[derive(Debug)]
pub struct WalDirScan {
    /// Records of the longest valid cross-segment prefix. Segment headers
    /// after the first segment are elided, so this reads like one log:
    /// `Begin · (BatchBegin | RoundBegin · Fix* · RoundCommit)*`.
    pub records: Vec<(WalPos, WalRecord)>,
    pub segments: Vec<SegmentInfo>,
    /// True when any scanned segment ended in garbage (later segments are
    /// then ignored — they postdate the tear).
    pub corrupt_tail: bool,
    /// Fingerprint from the first segment's header, when present.
    pub fingerprint: Option<u64>,
}

/// Scan all WAL segments in `dir` through `vfs` and concatenate their
/// valid prefixes. Segments after a corrupt or header-less one are
/// discarded: a torn segment means everything younger is uncommitted.
pub fn read_wal_dir_vfs(vfs: &FaultVfs, dir: &Path) -> Result<WalDirScan, WalError> {
    let segs = list_segments(vfs, dir)?;
    if segs.is_empty() {
        return Err(WalError::Mismatch(format!(
            "no WAL segments in {}",
            dir.display()
        )));
    }
    let mut records = Vec::new();
    let mut segments = Vec::new();
    let mut corrupt_tail = false;
    let mut fingerprint: Option<u64> = None;
    for (i, (seq, path)) in segs.iter().enumerate() {
        let bytes = vfs.read(path)?;
        let scan = match decode_wal(&bytes) {
            Ok(s) => s,
            Err(e) if i == 0 => return Err(e),
            Err(_) => {
                corrupt_tail = true;
                break;
            }
        };
        // Every segment must open with a Begin header matching the first
        // segment's fingerprint; anything else is rotation debris.
        let header_fp = match scan.records.first() {
            Some((_, WalRecord::Begin { fingerprint })) => *fingerprint,
            _ if i == 0 => {
                // first segment with no header at all: surface as-is so
                // locate reports the mismatch
                segments.push(SegmentInfo {
                    seq: *seq,
                    bytes: bytes.len() as u64,
                    valid_len: scan.valid_len,
                    records: scan.records.len(),
                    corrupt_tail: scan.corrupt_tail,
                });
                for (off, rec) in scan.records {
                    records.push((WalPos { seg: *seq, off }, rec));
                }
                corrupt_tail |= scan.corrupt_tail;
                break;
            }
            _ => {
                corrupt_tail = true;
                break;
            }
        };
        match fingerprint {
            None => fingerprint = Some(header_fp),
            Some(fp) if fp != header_fp => {
                corrupt_tail = true;
                break;
            }
            Some(_) => {}
        }
        segments.push(SegmentInfo {
            seq: *seq,
            bytes: bytes.len() as u64,
            valid_len: scan.valid_len,
            records: scan.records.len(),
            corrupt_tail: scan.corrupt_tail,
        });
        let seg_corrupt = scan.corrupt_tail;
        for (j, (off, rec)) in scan.records.into_iter().enumerate() {
            if i > 0 && j == 0 {
                continue; // elide the duplicated segment header
            }
            records.push((WalPos { seg: *seq, off }, rec));
        }
        if seg_corrupt {
            corrupt_tail = true;
            break;
        }
    }
    Ok(WalDirScan {
        records,
        segments,
        corrupt_tail,
        fingerprint,
    })
}

/// [`read_wal_dir_vfs`] through a clean (fault-free) vfs — the reader used
/// by provenance, panels, and tests.
pub fn read_wal_dir(dir: &Path) -> Result<WalDirScan, WalError> {
    read_wal_dir_vfs(&FaultVfs::clean(), dir)
}

/// Raw bytes of all segments concatenated in order — the byte-idempotence
/// oracle (`resume` must leave these bytes unchanged after re-running).
pub fn wal_bytes(dir: &Path) -> Result<Vec<u8>, WalError> {
    let vfs = FaultVfs::clean();
    let mut out = Vec::new();
    for (_, path) in list_segments(&vfs, dir)? {
        out.extend_from_slice(&vfs.read(&path)?);
    }
    Ok(out)
}

/// Append-only segmented WAL writer with capped-backoff I/O retries.
#[derive(Debug)]
pub struct WalWriter {
    vfs: FaultVfs,
    dir: PathBuf,
    sync: bool,
    segment_bytes: u64,
    fingerprint: u64,
    max_retries: u32,
    backoff: Duration,
    seq: u64,
    file: rock_crystal::VfsFile,
    offset: u64,
    /// Records appended this run (headers included).
    pub(crate) appended: u64,
    /// Transient I/O errors recovered by retry.
    pub(crate) io_retries: u64,
    /// Segment rotations performed this run.
    pub(crate) segments_rotated: u64,
}

impl WalWriter {
    /// Start a fresh log: remove any existing segments, create
    /// `wal.000001`, and write its magic + `Begin` header durably.
    pub(crate) fn create(cfg: &DurabilityConfig, fingerprint: u64) -> Result<Self, WalError> {
        let vfs = cfg.vfs.clone();
        for (_, path) in list_segments(&vfs, &cfg.dir)? {
            vfs.remove_file(&path)?;
        }
        let path = cfg.dir.join(segment_file_name(1));
        let mut file = vfs.create(&path)?;
        file.write_all(WAL_MAGIC)?;
        let mut w = WalWriter {
            vfs,
            dir: cfg.dir.clone(),
            sync: cfg.sync,
            segment_bytes: cfg.segment_bytes,
            fingerprint,
            max_retries: cfg.max_io_retries,
            backoff: cfg.io_backoff,
            seq: 1,
            file,
            offset: WAL_MAGIC.len() as u64,
            appended: 0,
            io_retries: 0,
            segments_rotated: 0,
        };
        w.append(&WalRecord::Begin { fingerprint })?;
        if w.sync {
            w.file.sync_all()?;
            w.vfs.fsync_dir(&cfg.dir)?;
        }
        Ok(w)
    }

    /// Open the log for appending at `pos`, discarding any crashed or
    /// uncommitted suffix: segments younger than `pos.seg` are deleted and
    /// the live segment is truncated to `pos.off` — rounds re-run after a
    /// resume then regenerate their records in place (replay is
    /// idempotent).
    pub(crate) fn open_at(
        cfg: &DurabilityConfig,
        pos: WalPos,
        fingerprint: u64,
    ) -> Result<Self, WalError> {
        let vfs = cfg.vfs.clone();
        for (seq, path) in list_segments(&vfs, &cfg.dir)? {
            if seq > pos.seg {
                vfs.remove_file(&path)?;
            }
        }
        let path = cfg.dir.join(segment_file_name(pos.seg));
        let mut file = vfs.open_rw(&path)?;
        file.set_len(pos.off)?;
        file.seek_to(pos.off)?;
        if cfg.sync {
            file.sync_all()?;
            vfs.fsync_dir(&cfg.dir)?;
        }
        Ok(WalWriter {
            vfs,
            dir: cfg.dir.clone(),
            sync: cfg.sync,
            segment_bytes: cfg.segment_bytes,
            fingerprint,
            max_retries: cfg.max_io_retries,
            backoff: cfg.io_backoff,
            seq: pos.seg,
            file,
            offset: pos.off,
            appended: 0,
            io_retries: 0,
            segments_rotated: 0,
        })
    }

    /// Current append position.
    pub(crate) fn pos(&self) -> WalPos {
        WalPos {
            seg: self.seq,
            off: self.offset,
        }
    }

    fn backoff_for(&self, attempt: u32) -> Duration {
        ClusterConfig {
            retry_backoff: self.backoff,
            ..ClusterConfig::default()
        }
        .backoff_for(attempt)
    }

    /// Append one frame, retrying transient write errors after truncating
    /// the partial frame back off the tail (keeps the file frame-aligned
    /// even when a torn write persisted a prefix).
    pub(crate) fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        let frame = encode_frame(rec)?;
        let mut attempt = 0u32;
        loop {
            match self.file.write_all(&frame) {
                Ok(()) => {
                    self.offset += frame.len() as u64;
                    self.appended += 1;
                    return Ok(());
                }
                Err(e) => {
                    let repaired = self
                        .file
                        .set_len(self.offset)
                        .and_then(|()| self.file.seek_to(self.offset))
                        .is_ok();
                    if !repaired || attempt >= self.max_retries {
                        return Err(WalError::Io(e));
                    }
                    self.io_retries += 1;
                    std::thread::sleep(self.backoff_for(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Fsync the live segment (no-op when the config is async), retrying
    /// transient errors.
    pub(crate) fn sync(&mut self) -> Result<(), WalError> {
        if !self.sync {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            match self.file.sync_all() {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if attempt >= self.max_retries {
                        return Err(WalError::Io(e));
                    }
                    self.io_retries += 1;
                    std::thread::sleep(self.backoff_for(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Rotate to a fresh segment if the live one is over budget. Called at
    /// round boundaries only, so a round's frames never straddle segments.
    /// Crash-safe: the new header is written and fsynced (file + dir)
    /// before the writer switches; the old segment was already synced at
    /// its last round boundary.
    pub(crate) fn maybe_rotate(&mut self) -> Result<(), WalError> {
        if self.offset < self.segment_bytes {
            return Ok(());
        }
        let next_seq = self.seq + 1;
        let path = self.dir.join(segment_file_name(next_seq));
        let mut file = self.vfs.create(&path)?;
        file.write_all(WAL_MAGIC)?;
        let frame = encode_frame(&WalRecord::Begin {
            fingerprint: self.fingerprint,
        })?;
        file.write_all(&frame)?;
        if self.sync {
            file.sync_all()?;
            self.vfs.fsync_dir(&self.dir)?;
        }
        self.file = file;
        self.seq = next_seq;
        self.offset = (WAL_MAGIC.len() + frame.len()) as u64;
        self.appended += 1;
        self.segments_rotated += 1;
        Ok(())
    }

    /// Delete every segment older than the live one (compaction after a
    /// full checkpoint). Returns how many were retired.
    pub(crate) fn retire_old_segments(&mut self) -> Result<u64, WalError> {
        let mut retired = 0;
        for (seq, path) in list_segments(&self.vfs, &self.dir)? {
            if seq < self.seq {
                self.vfs.remove_file(&path)?;
                retired += 1;
            }
        }
        Ok(retired)
    }
}

/// Totals reported back on [`crate::ChaseResult`] when durability is on.
#[derive(Debug, Clone, Serialize)]
pub struct WalSummary {
    /// Records appended this run (excluding replayed history).
    pub records: u64,
    /// Checkpoint documents written this run (full + delta).
    pub checkpoints: u64,
    /// Full checkpoints among them.
    pub full_checkpoints: u64,
    /// Delta checkpoints among them.
    pub delta_checkpoints: u64,
    /// Round the run resumed from (None for a fresh run).
    pub resumed_from: Option<u64>,
    /// ΔD batch this run executed (1 for plain runs; >1 for durable
    /// session continuations).
    pub batch: u64,
    /// Transient I/O errors recovered by capped-backoff retry.
    pub io_retries: u64,
    /// Segment rotations performed.
    pub segments_rotated: u64,
    /// Segments retired by compaction.
    pub segments_compacted: u64,
    /// Stale checkpoint temp files garbage-collected on open.
    pub temp_files_removed: u64,
    /// Typed durability health (see [`WalHealth`]).
    pub health: WalHealth,
    /// First durability failure, if any. Fixes stay correct — the run
    /// merely degraded to non-durable from that point on.
    pub error: Option<String>,
}

/// A committed fix captured by the chase's commit phases before it is
/// assigned an id: `(kind, rule, valuation tuples)`.
pub(crate) type RoundFix = (FixKind, u32, Vec<GlobalTid>);

/// Live durability state carried through `run_loop`. Infallible from the
/// caller's view: the first unrecoverable error poisons the context (later
/// calls no-op) and surfaces in [`WalSummary::error`] — a failing disk must
/// degrade durability, never the fixes.
pub(crate) struct DurabilityCtx {
    pub(crate) cfg: DurabilityConfig,
    writer: Option<WalWriter>,
    next_fix_id: u64,
    /// Last fix id that touched each tuple (provenance parent lookup).
    last_fix: FxHashMap<GlobalTid, u64>,
    pub(crate) resumed_from: Option<u64>,
    /// ΔD batch this context logs for (1 unless attached by a session).
    batch: u64,
    /// Last written checkpoint (delta base + live chain).
    prev: Option<crate::checkpoint::PrevCheckpoint>,
    records: u64,
    checkpoints: u64,
    full_checkpoints: u64,
    delta_checkpoints: u64,
    wal_io_retries: u64,
    ckpt_io_retries: u64,
    segments_rotated: u64,
    segments_compacted: u64,
    temp_files_removed: u64,
    pub(crate) error: Option<String>,
}

/// Best-effort GC of stale `*.tmp` checkpoint files (a crash between the
/// temp write and the rename leaves them behind). Returns how many were
/// removed; listing errors read as zero.
fn gc_temp_files(vfs: &FaultVfs, dir: &Path) -> u64 {
    let Ok(entries) = vfs.list_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for path in entries {
        if path.extension().is_some_and(|x| x == "tmp") && vfs.remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

impl DurabilityCtx {
    /// Start a fresh log for a new run.
    pub(crate) fn begin(cfg: DurabilityConfig, fingerprint: u64) -> Self {
        let mut ctx = DurabilityCtx {
            cfg,
            writer: None,
            next_fix_id: 0,
            last_fix: FxHashMap::default(),
            resumed_from: None,
            batch: 1,
            prev: None,
            records: 0,
            checkpoints: 0,
            full_checkpoints: 0,
            delta_checkpoints: 0,
            wal_io_retries: 0,
            ckpt_io_retries: 0,
            segments_rotated: 0,
            segments_compacted: 0,
            temp_files_removed: 0,
            error: None,
        };
        let res = (|| -> Result<WalWriter, WalError> {
            ctx.cfg.vfs.create_dir_all(&ctx.cfg.dir)?;
            ctx.temp_files_removed = gc_temp_files(&ctx.cfg.vfs, &ctx.cfg.dir);
            WalWriter::create(&ctx.cfg, fingerprint)
        })();
        match res {
            Ok(w) => {
                ctx.records = w.appended;
                ctx.wal_io_retries = w.io_retries;
                ctx.writer = Some(w);
            }
            Err(e) => ctx.error = Some(e.to_string()),
        }
        ctx
    }

    /// Attach to a recovered log (see `crate::checkpoint::locate`): the
    /// writer is positioned at the resumed round's commit boundary and
    /// `prev` carries the resumed checkpoint as the next delta base. The
    /// provenance id state comes from the checkpoint itself.
    pub(crate) fn attach(
        cfg: DurabilityConfig,
        writer: WalWriter,
        prev: crate::checkpoint::PrevCheckpoint,
        resumed_from: u64,
    ) -> Self {
        let temp_files_removed = gc_temp_files(&cfg.vfs, &cfg.dir);
        let next_fix_id = prev.state.next_fix_id;
        let last_fix: FxHashMap<GlobalTid, u64> = prev.state.last_fix.iter().copied().collect();
        DurabilityCtx {
            cfg,
            writer: Some(writer),
            next_fix_id,
            last_fix,
            resumed_from: Some(resumed_from),
            batch: prev.state.batch.max(1),
            prev: Some(prev),
            records: 0,
            checkpoints: 0,
            full_checkpoints: 0,
            delta_checkpoints: 0,
            wal_io_retries: 0,
            ckpt_io_retries: 0,
            segments_rotated: 0,
            segments_compacted: 0,
            temp_files_removed,
            error: None,
        }
    }

    /// Mark this context as logging for ΔD batch `batch` of a durable
    /// session and append the `BatchBegin` record. A fresh batch is not a
    /// "resume" even though it attaches to an existing log.
    pub(crate) fn begin_batch(&mut self, batch: u64, round_base: u64) {
        self.batch = batch;
        self.resumed_from = None;
        if self.error.is_some() {
            return;
        }
        let res = (|| -> Result<(), WalError> {
            let Some(writer) = self.writer.as_mut() else {
                return Ok(());
            };
            writer.maybe_rotate()?;
            writer.append(&WalRecord::BatchBegin { batch, round_base })?;
            writer.sync()?;
            Ok(())
        })();
        self.capture_writer_counters();
        if let Err(e) = res {
            self.poison(e);
        }
    }

    fn capture_writer_counters(&mut self) {
        if let Some(w) = self.writer.as_ref() {
            self.records = w.appended;
            self.wal_io_retries = w.io_retries;
            self.segments_rotated = w.segments_rotated;
        }
    }

    fn poison(&mut self, e: WalError) {
        self.error = Some(e.to_string());
        self.writer = None;
    }

    /// Log one committed round: `RoundBegin`, each fix (with provenance
    /// parents), the checkpoint document (when given), and the
    /// `RoundCommit` marker — then one fsync covering the whole boundary,
    /// then compaction when a full checkpoint just made history dead.
    pub(crate) fn commit_round(
        &mut self,
        round: u64,
        fixes: &[RoundFix],
        checkpoint: Option<crate::checkpoint::ChaseCheckpoint>,
    ) {
        if self.error.is_some() {
            return;
        }
        let Some(mut writer) = self.writer.take() else {
            return;
        };
        let res = self.commit_round_inner(&mut writer, round, fixes, checkpoint);
        self.records = writer.appended;
        self.wal_io_retries = writer.io_retries;
        self.segments_rotated = writer.segments_rotated;
        match res {
            Ok(()) => self.writer = Some(writer),
            Err(e) => self.poison(e),
        }
    }

    fn commit_round_inner(
        &mut self,
        writer: &mut WalWriter,
        round: u64,
        fixes: &[RoundFix],
        checkpoint: Option<crate::checkpoint::ChaseCheckpoint>,
    ) -> Result<(), WalError> {
        writer.maybe_rotate()?;
        writer.append(&WalRecord::RoundBegin { round })?;
        for (kind, rule, valuation) in fixes {
            let id = self.next_fix_id;
            self.next_fix_id += 1;
            let mut val = valuation.clone();
            val.sort_unstable();
            val.dedup();
            let mut parents: Vec<u64> = val
                .iter()
                .chain(kind.touched().iter())
                .filter_map(|t| self.last_fix.get(t).copied())
                .collect();
            parents.sort_unstable();
            parents.dedup();
            let rec = FixRecord {
                id,
                round,
                rule: *rule,
                kind: kind.clone(),
                valuation: val,
                parents,
            };
            // within-round chaining: a merge's materialized cell writes
            // list the merge itself as a parent
            for t in rec.kind.touched() {
                self.last_fix.insert(t, id);
            }
            writer.append(&WalRecord::Fix(rec))?;
        }
        let mut compact_after: Option<Vec<String>> = None;
        let (name, state_crc) = match checkpoint {
            Some(mut ck) => {
                // The document is self-contained for resume: it carries the
                // provenance id state as of this marker.
                ck.next_fix_id = self.next_fix_id;
                let mut lf: Vec<(GlobalTid, u64)> =
                    self.last_fix.iter().map(|(t, id)| (*t, *id)).collect();
                lf.sort_unstable();
                ck.last_fix = lf;
                let enc =
                    crate::checkpoint::encode_doc(self.prev.as_ref(), ck, self.cfg.full_every)?;
                let crc = crc32(&enc.bytes);
                self.write_checkpoint_file(&enc.name, &enc.bytes)?;
                self.checkpoints += 1;
                if enc.is_full {
                    self.full_checkpoints += 1;
                } else {
                    self.delta_checkpoints += 1;
                }
                let old_chain = self.prev.take().map(|p| p.chain).unwrap_or_default();
                let chain = if enc.is_full {
                    if self.cfg.compact {
                        let obsolete: Vec<String> = old_chain
                            .iter()
                            .filter(|f| **f != enc.name)
                            .cloned()
                            .collect();
                        compact_after = Some(obsolete);
                    }
                    vec![enc.name.clone()]
                } else {
                    let mut c = old_chain;
                    c.push(enc.name.clone());
                    c
                };
                self.prev = Some(crate::checkpoint::PrevCheckpoint {
                    state: enc.state,
                    name: enc.name.clone(),
                    crc,
                    chain,
                });
                (Some(enc.name), crc)
            }
            None => (None, 0),
        };
        writer.append(&WalRecord::RoundCommit {
            round,
            checkpoint: name,
            state_crc,
        })?;
        writer.sync()?;
        // Only after the marker is durable may covered history be retired.
        if let Some(obsolete) = compact_after {
            for f in &obsolete {
                self.cfg.vfs.remove_file(&self.cfg.dir.join(f))?;
            }
            self.segments_compacted += writer.retire_old_segments()?;
        }
        Ok(())
    }

    /// Write one checkpoint document, retrying transient failures with the
    /// capped backoff. A failed atomic write may leave `<name>.tmp` behind;
    /// the retry recreates it from scratch and the open-time GC reaps
    /// terminal strays.
    fn write_checkpoint_file(&mut self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let path = self.cfg.dir.join(name);
        let mut attempt = 0u32;
        loop {
            let res = if self.cfg.sync {
                self.cfg.vfs.write_atomic_durable(&path, bytes, true)
            } else {
                self.cfg.vfs.write_file(&path, bytes)
            };
            match res {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if attempt >= self.cfg.max_io_retries {
                        return Err(WalError::Io(e));
                    }
                    self.ckpt_io_retries += 1;
                    std::thread::sleep(self.cfg.backoff_for(attempt));
                    attempt += 1;
                }
            }
        }
    }

    pub(crate) fn into_summary(self) -> WalSummary {
        let io_retries = self.wal_io_retries + self.ckpt_io_retries;
        let health = match &self.error {
            Some(reason) => WalHealth::Degraded {
                reason: reason.clone(),
            },
            None if io_retries > 0 => WalHealth::Recovered { io_retries },
            None => WalHealth::Healthy,
        };
        WalSummary {
            records: self.records,
            checkpoints: self.checkpoints,
            full_checkpoints: self.full_checkpoints,
            delta_checkpoints: self.delta_checkpoints,
            resumed_from: self.resumed_from,
            batch: self.batch,
            io_retries,
            segments_rotated: self.segments_rotated,
            segments_compacted: self.segments_compacted,
            temp_files_removed: self.temp_files_removed,
            health,
            error: self.error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_crystal::StorageFaultPlan;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rock-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cfg(d: &Path) -> DurabilityConfig {
        DurabilityConfig {
            sync: false,
            ..DurabilityConfig::new(d)
        }
    }

    fn rec(i: u64) -> WalRecord {
        WalRecord::Fix(FixRecord {
            id: i,
            round: 1,
            rule: 7,
            kind: FixKind::Order {
                rel: RelId(0),
                attr: AttrId(1),
                t1: TupleId(i as u32),
                t2: TupleId(i as u32 + 1),
                strict: false,
            },
            valuation: vec![GlobalTid::new(RelId(0), TupleId(i as u32))],
            parents: vec![],
        })
    }

    fn seg1(d: &Path) -> PathBuf {
        d.join(segment_file_name(1))
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(1), "wal.000001");
        assert_eq!(parse_segment_name("wal.000001"), Some(1));
        assert_eq!(parse_segment_name("wal.001234"), Some(1234));
        assert_eq!(parse_segment_name("wal.log"), None);
        assert_eq!(parse_segment_name("wal.12"), None);
        assert_eq!(parse_segment_name("checkpoint-000001.json"), None);
    }

    #[test]
    fn append_then_scan_round_trips() {
        let d = dir("roundtrip");
        let mut w = WalWriter::create(&cfg(&d), 42).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        drop(w);
        let scan = read_wal(&seg1(&d)).unwrap();
        assert!(!scan.corrupt_tail);
        let got: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(
            got,
            vec![WalRecord::Begin { fingerprint: 42 }, rec(0), rec(1)]
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn truncated_tail_is_ignored() {
        let d = dir("trunc");
        let mut w = WalWriter::create(&cfg(&d), 42).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        drop(w);
        let path = seg1(&d);
        let full = std::fs::read(&path).unwrap();
        // chop mid-way through the last frame
        let second_end = read_wal(&path).unwrap().records[1].0 as usize;
        std::fs::write(&path, &full[..second_end + 5]).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.corrupt_tail);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len as usize, second_end);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn bit_flip_is_detected_by_crc() {
        let d = dir("flip");
        let mut w = WalWriter::create(&cfg(&d), 42).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        drop(w);
        let path = seg1(&d);
        let mut bytes = std::fs::read(&path).unwrap();
        let second_end = read_wal(&path).unwrap().records[1].0 as usize;
        // flip one payload bit in the last frame
        let i = second_end + 12;
        bytes[i] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.corrupt_tail);
        assert_eq!(scan.records.len(), 2);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let d = dir("magic");
        let path = seg1(&d);
        std::fs::write(&path, b"NOTAWAL0rest").unwrap();
        assert!(matches!(read_wal(&path), Err(WalError::Mismatch(_))));
        assert!(matches!(read_wal_dir(&d), Err(WalError::Mismatch(_))));
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn open_at_truncates_the_tail() {
        let d = dir("openat");
        let c = cfg(&d);
        let mut w = WalWriter::create(&c, 42).unwrap();
        w.append(&rec(0)).unwrap();
        let pos = w.pos();
        w.append(&rec(1)).unwrap();
        drop(w);
        let mut w = WalWriter::open_at(&c, pos, 42).unwrap();
        w.append(&rec(9)).unwrap();
        drop(w);
        let got: Vec<WalRecord> = read_wal(&seg1(&d))
            .unwrap()
            .records
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(
            got,
            vec![WalRecord::Begin { fingerprint: 42 }, rec(0), rec(9)]
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_dir_scan_merges_them() {
        let d = dir("rotate");
        let c = DurabilityConfig {
            segment_bytes: 1, // rotate at every opportunity
            ..cfg(&d)
        };
        let mut w = WalWriter::create(&c, 42).unwrap();
        for i in 0..3 {
            w.maybe_rotate().unwrap();
            w.append(&rec(i)).unwrap();
        }
        assert_eq!(w.segments_rotated, 3);
        drop(w);
        let segs = list_segments(&FaultVfs::clean(), &d).unwrap();
        assert_eq!(segs.len(), 4);
        let scan = read_wal_dir(&d).unwrap();
        assert!(!scan.corrupt_tail);
        assert_eq!(scan.fingerprint, Some(42));
        // headers of later segments are elided: Begin, then the 3 fixes
        let got: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(
            got,
            vec![WalRecord::Begin { fingerprint: 42 }, rec(0), rec(1), rec(2)]
        );
        // each fix sits in its own segment
        assert_eq!(scan.segments.len(), 4);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn corrupt_middle_segment_drops_younger_segments() {
        let d = dir("midcorrupt");
        let c = DurabilityConfig {
            segment_bytes: 1,
            ..cfg(&d)
        };
        let mut w = WalWriter::create(&c, 42).unwrap();
        for i in 0..3 {
            w.maybe_rotate().unwrap();
            w.append(&rec(i)).unwrap();
        }
        drop(w);
        // destroy segment 2's magic: segments 2..4 must be discarded
        std::fs::write(d.join(segment_file_name(2)), b"garbage").unwrap();
        let scan = read_wal_dir(&d).unwrap();
        assert!(scan.corrupt_tail);
        let got: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(got, vec![WalRecord::Begin { fingerprint: 42 }, rec(0)]);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn transient_write_faults_are_retried() {
        let d = dir("retry");
        let vfs = FaultVfs::with_plan(
            StorageFaultPlan::seeded(17)
                .with_torn_writes(0.3)
                .with_transient_fraction(1.0),
        );
        let c = DurabilityConfig {
            max_io_retries: 8,
            ..cfg(&d)
        }
        .with_vfs(vfs);
        let mut w = WalWriter::create(&c, 42).unwrap();
        for i in 0..32 {
            w.append(&rec(i)).unwrap();
        }
        assert!(w.io_retries > 0, "some writes must have been retried");
        drop(w);
        // retries truncated every partial frame: the log is fully valid
        let scan = read_wal(&seg1(&d)).unwrap();
        assert!(!scan.corrupt_tail);
        assert_eq!(scan.records.len(), 33);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn persistent_sync_failure_degrades_not_panics() {
        let d = dir("degrade");
        let vfs = FaultVfs::with_plan(StorageFaultPlan::seeded(5).with_sync_errors(1.0));
        let c = DurabilityConfig::new(&d).with_vfs(vfs); // sync: true
        let mut ctx = DurabilityCtx::begin(c, 42);
        assert!(ctx.error.is_some(), "header sync must fail persistently");
        ctx.commit_round(1, &[], None); // no-op on a poisoned context
        let s = ctx.into_summary();
        assert!(matches!(s.health, WalHealth::Degraded { .. }));
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn gc_reaps_stale_temp_files() {
        let d = dir("tmpgc");
        std::fs::write(d.join("checkpoint-000002.json.tmp"), b"stray").unwrap();
        std::fs::write(d.join("checkpoint-000003.json.tmp"), b"stray").unwrap();
        std::fs::write(d.join("checkpoint-000001.json"), b"keep").unwrap();
        let ctx = DurabilityCtx::begin(cfg(&d), 42);
        assert!(ctx.error.is_none());
        assert_eq!(ctx.temp_files_removed, 2);
        assert!(d.join("checkpoint-000001.json").exists());
        assert!(!d.join("checkpoint-000002.json.tmp").exists());
        std::fs::remove_dir_all(&d).unwrap();
    }
}
