//! Write-ahead log for the durable chase (ROADMAP item 4).
//!
//! Every round that commits fixes appends, at the round boundary, one
//! frame sequence to `<dir>/wal.log`:
//!
//! ```text
//! RoundBegin(r) · Fix* · RoundCommit(r, checkpoint, state_crc)
//! ```
//!
//! Frames are CRC-32 framed (`rock_crystal::crc32`, the same CRC Crystal
//! uses on its hash ring and block checksums):
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: serde_json bytes]
//! ```
//!
//! The reader accepts the longest valid prefix and stops at the first
//! truncated or corrupt frame — a crash mid-append (or a torn sector)
//! loses at most the uncommitted tail, never a committed round. State is
//! only ever resumed from rounds whose `RoundCommit` marker is inside the
//! valid prefix *and* whose checkpoint file verifies against the
//! marker's CRC (see `crate::checkpoint`).
//!
//! Each [`FixRecord`] doubles as a **provenance node**: it carries the
//! rule id, the valuation's bound tuples, and the ids of the prior fixes
//! those tuples last received (`parents`). `crate::provenance` replays
//! the log into a queryable "why is this cell 42?" graph.

use crate::fixes::EntityKey;
use rock_crystal::crc32;
use rock_data::{AttrId, CellRef, GlobalTid, RelId, TupleId, Value};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";
/// File magic: identifies the format and its version.
pub const WAL_MAGIC: &[u8; 8] = b"ROCKWAL1";

/// Errors surfaced by the durability layer. The chase itself never fails
/// on these — a mid-run WAL error degrades durability to off and is
/// reported in [`WalSummary::error`] — but [`crate::ChaseEngine::resume`]
/// is fallible by nature.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    /// A frame or checkpoint failed to encode/decode.
    Codec(String),
    /// The log or checkpoint contradicts itself or the engine (bad magic,
    /// fingerprint mismatch, missing checkpoint file).
    Mismatch(String),
    /// No round has been durably committed yet, so there is nothing to
    /// resume from.
    NoDurableRound,
    /// The engine has no durability configured.
    NotConfigured,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Codec(m) => write!(f, "wal codec error: {m}"),
            WalError::Mismatch(m) => write!(f, "wal mismatch: {m}"),
            WalError::NoDurableRound => write!(f, "no durably committed round to resume from"),
            WalError::NotConfigured => write!(f, "chase has no durability configured"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Durability knobs, threaded through `ChaseConfig::durability`.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `checkpoint-*.json`.
    pub dir: PathBuf,
    /// Checkpoint every N round boundaries (1 = every round). Rounds
    /// without a checkpoint still log their fixes; resume falls back to
    /// the last checkpointed round and deterministically re-runs the gap.
    pub snapshot_every: usize,
    /// fsync the WAL at each round boundary and fsync checkpoint writes.
    /// `false` trades power-loss durability for speed (tests, panels).
    pub sync: bool,
    /// Crash drill: abort the process right *after* round N's commit is
    /// durable. Wired from `ROCK_CRASH_AT_ROUND` by the harness binaries;
    /// never set in production configs.
    pub crash_at_round: Option<usize>,
}

impl DurabilityConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            snapshot_every: 1,
            sync: true,
            crash_at_round: None,
        }
    }
}

/// What one fix did to the store / working database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FixKind {
    /// A cell of the working database was rewritten.
    Cell {
        cell: CellRef,
        old: Value,
        new: Value,
    },
    /// Two entity classes were merged (`[EID]=`).
    Merge { a: GlobalTid, b: GlobalTid },
    /// Two entities were validated distinct.
    Distinct { a: GlobalTid, b: GlobalTid },
    /// A value was validated on an entity class (`[EID.A]=`).
    Validate {
        entity: EntityKey,
        rel: RelId,
        attr: AttrId,
        value: Value,
    },
    /// A temporal order edge was validated (`[A]⪯`).
    Order {
        rel: RelId,
        attr: AttrId,
        t1: TupleId,
        t2: TupleId,
        strict: bool,
    },
}

impl FixKind {
    /// Tuples this fix writes/affects — they become the fix's provenance
    /// footprint (later fixes touching them list this fix as a parent).
    pub fn touched(&self) -> Vec<GlobalTid> {
        match self {
            FixKind::Cell { cell, .. } => vec![cell.tuple()],
            FixKind::Merge { a, b } | FixKind::Distinct { a, b } => vec![*a, *b],
            FixKind::Validate { .. } => Vec::new(),
            FixKind::Order { rel, t1, t2, .. } => {
                vec![GlobalTid::new(*rel, *t1), GlobalTid::new(*rel, *t2)]
            }
        }
    }

    /// The cell this fix rewrote, if it is a cell fix.
    pub fn cell(&self) -> Option<CellRef> {
        match self {
            FixKind::Cell { cell, .. } => Some(*cell),
            _ => None,
        }
    }
}

/// One committed fix = one WAL record = one provenance node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixRecord {
    /// Monotonic fix id (stable across crash/resume: rounds re-run after
    /// a resume regenerate identical ids).
    pub id: u64,
    /// Round that committed the fix (1-based).
    pub round: u64,
    /// Id of the rule whose valuation derived the fix.
    pub rule: u32,
    pub kind: FixKind,
    /// Tuples the deriving valuation bound (sorted, deduplicated).
    pub valuation: Vec<GlobalTid>,
    /// Ids of the prior fixes that last touched the valuation's tuples —
    /// the provenance edges.
    pub parents: Vec<u64>,
}

/// One framed WAL record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Run header: guards resume against a different rule set / config.
    Begin {
        fingerprint: u64,
    },
    RoundBegin {
        round: u64,
    },
    Fix(FixRecord),
    /// Round boundary marker: everything up to here is one committed
    /// round. `checkpoint` names the snapshot file written just before
    /// this marker (None on non-snapshot rounds), `state_crc` is the
    /// CRC-32 of its bytes.
    RoundCommit {
        round: u64,
        checkpoint: Option<String>,
        state_crc: u32,
    },
}

/// Encode a record into one `[len][crc][payload]` frame.
pub fn encode_frame(rec: &WalRecord) -> Result<Vec<u8>, WalError> {
    let payload = serde_json::to_vec(rec).map_err(|e| WalError::Codec(e.to_string()))?;
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Result of scanning a WAL: records of the longest valid prefix, each
/// with the byte offset one past its frame.
#[derive(Debug)]
pub struct WalScan {
    pub records: Vec<(u64, WalRecord)>,
    /// Bytes of the valid prefix (magic + whole frames).
    pub valid_len: u64,
    /// True when bytes past `valid_len` exist but fail to frame-decode —
    /// the crashed tail the recovery discards.
    pub corrupt_tail: bool,
}

/// Decode a WAL byte image into its longest valid prefix. Never errors on
/// damage past the magic: truncated length fields, short payloads, CRC
/// mismatches and JSON garbage all just end the prefix.
pub fn decode_wal(bytes: &[u8]) -> Result<WalScan, WalError> {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalError::Mismatch("bad or missing WAL magic".into()));
    }
    let mut records = Vec::new();
    let mut off = WAL_MAGIC.len();
    let mut corrupt_tail = false;
    while off < bytes.len() {
        if off + 8 > bytes.len() {
            corrupt_tail = true;
            break;
        }
        let len = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[off + 4],
            bytes[off + 5],
            bytes[off + 6],
            bytes[off + 7],
        ]);
        let start = off + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= bytes.len() => e,
            _ => {
                corrupt_tail = true;
                break;
            }
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            corrupt_tail = true;
            break;
        }
        let rec: WalRecord = match serde_json::from_slice(payload) {
            Ok(r) => r,
            Err(_) => {
                corrupt_tail = true;
                break;
            }
        };
        off = end;
        records.push((off as u64, rec));
    }
    Ok(WalScan {
        records,
        valid_len: off as u64,
        corrupt_tail,
    })
}

/// Read and scan a WAL file.
pub fn read_wal(path: &Path) -> Result<WalScan, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode_wal(&bytes)
}

/// Append-only WAL writer.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    sync: bool,
}

impl WalWriter {
    /// Create (or truncate) a WAL and write the magic.
    pub fn create(path: &Path, sync: bool) -> Result<Self, WalError> {
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        if sync {
            file.sync_all()?;
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    rock_crystal::fsync_dir(parent)?;
                }
            }
        }
        Ok(WalWriter { file, sync })
    }

    /// Open an existing WAL for appending after `offset`, discarding any
    /// crashed/uncommitted suffix — rounds re-run after a resume then
    /// regenerate their records in place (replay is idempotent).
    pub fn open_at(path: &Path, offset: u64, sync: bool) -> Result<Self, WalError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(offset)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        if sync {
            file.sync_all()?;
        }
        Ok(WalWriter { file, sync })
    }

    pub fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        let frame = encode_frame(rec)?;
        self.file.write_all(&frame)?;
        Ok(())
    }

    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.sync {
            self.file.sync_all()?;
        }
        Ok(())
    }
}

/// Totals reported back on [`crate::ChaseResult`] when durability is on.
#[derive(Debug, Clone, Serialize)]
pub struct WalSummary {
    /// Records appended this run (excluding replayed history).
    pub records: u64,
    /// Checkpoints written this run.
    pub checkpoints: u64,
    /// Round the run resumed from (None for a fresh run).
    pub resumed_from: Option<u64>,
    /// First durability failure, if any. Fixes stay correct — the run
    /// merely degraded to non-durable from that point on.
    pub error: Option<String>,
}

/// A committed fix captured by the chase's commit phases before it is
/// assigned an id: `(kind, rule, valuation tuples)`.
pub(crate) type RoundFix = (FixKind, u32, Vec<GlobalTid>);

/// Live durability state carried through `run_loop`. Infallible from the
/// caller's view: the first error poisons the context (later calls
/// no-op) and surfaces in [`WalSummary::error`] — a failing disk must
/// degrade durability, never the fixes.
pub(crate) struct DurabilityCtx {
    pub(crate) cfg: DurabilityConfig,
    writer: Option<WalWriter>,
    next_fix_id: u64,
    /// Last fix id that touched each tuple (provenance parent lookup).
    last_fix: FxHashMap<GlobalTid, u64>,
    pub(crate) resumed_from: Option<u64>,
    records: u64,
    checkpoints: u64,
    pub(crate) error: Option<String>,
}

impl DurabilityCtx {
    /// Start a fresh log for a new run.
    pub(crate) fn begin(cfg: DurabilityConfig, fingerprint: u64) -> Self {
        let mut ctx = DurabilityCtx {
            cfg,
            writer: None,
            next_fix_id: 0,
            last_fix: FxHashMap::default(),
            resumed_from: None,
            records: 0,
            checkpoints: 0,
            error: None,
        };
        let res = (|| -> Result<WalWriter, WalError> {
            std::fs::create_dir_all(&ctx.cfg.dir)?;
            let mut w = WalWriter::create(&ctx.cfg.dir.join(WAL_FILE), ctx.cfg.sync)?;
            w.append(&WalRecord::Begin { fingerprint })?;
            w.sync()?;
            Ok(w)
        })();
        match res {
            Ok(w) => {
                ctx.writer = Some(w);
                ctx.records = 1;
            }
            Err(e) => ctx.error = Some(e.to_string()),
        }
        ctx
    }

    /// Attach to a recovered log (see `crate::checkpoint::locate`): the
    /// writer is positioned at the resumed round's commit boundary, and
    /// the provenance id state is replayed from the surviving records.
    pub(crate) fn attach(
        cfg: DurabilityConfig,
        writer: WalWriter,
        next_fix_id: u64,
        last_fix: FxHashMap<GlobalTid, u64>,
        resumed_from: u64,
    ) -> Self {
        DurabilityCtx {
            cfg,
            writer: Some(writer),
            next_fix_id,
            last_fix,
            resumed_from: Some(resumed_from),
            records: 0,
            checkpoints: 0,
            error: None,
        }
    }

    /// Log one committed round: `RoundBegin`, each fix (with provenance
    /// parents), the checkpoint file (when given), and the `RoundCommit`
    /// marker — then one fsync covering the whole boundary.
    pub(crate) fn commit_round(
        &mut self,
        round: u64,
        fixes: &[RoundFix],
        checkpoint: Option<(String, Vec<u8>)>,
    ) {
        if self.error.is_some() {
            return;
        }
        let res = self.commit_round_inner(round, fixes, checkpoint);
        if let Err(e) = res {
            self.error = Some(e.to_string());
            self.writer = None;
        }
    }

    fn commit_round_inner(
        &mut self,
        round: u64,
        fixes: &[RoundFix],
        checkpoint: Option<(String, Vec<u8>)>,
    ) -> Result<(), WalError> {
        let Some(writer) = self.writer.as_mut() else {
            return Ok(());
        };
        writer.append(&WalRecord::RoundBegin { round })?;
        self.records += 1;
        for (kind, rule, valuation) in fixes {
            let id = self.next_fix_id;
            self.next_fix_id += 1;
            let mut val = valuation.clone();
            val.sort_unstable();
            val.dedup();
            let mut parents: Vec<u64> = val
                .iter()
                .chain(kind.touched().iter())
                .filter_map(|t| self.last_fix.get(t).copied())
                .collect();
            parents.sort_unstable();
            parents.dedup();
            let rec = FixRecord {
                id,
                round,
                rule: *rule,
                kind: kind.clone(),
                valuation: val,
                parents,
            };
            // within-round chaining: a merge's materialized cell writes
            // list the merge itself as a parent
            for t in rec.kind.touched() {
                self.last_fix.insert(t, id);
            }
            writer.append(&WalRecord::Fix(rec))?;
            self.records += 1;
        }
        let (name, state_crc) = match checkpoint {
            Some((name, bytes)) => {
                let crc = crc32(&bytes);
                let path = self.cfg.dir.join(&name);
                if self.cfg.sync {
                    rock_crystal::write_atomic_durable(&path, &bytes)?;
                } else {
                    std::fs::write(&path, &bytes)?;
                }
                self.checkpoints += 1;
                (Some(name), crc)
            }
            None => (None, 0),
        };
        writer.append(&WalRecord::RoundCommit {
            round,
            checkpoint: name,
            state_crc,
        })?;
        self.records += 1;
        writer.sync()?;
        Ok(())
    }

    pub(crate) fn into_summary(self) -> WalSummary {
        WalSummary {
            records: self.records,
            checkpoints: self.checkpoints,
            resumed_from: self.resumed_from,
            error: self.error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rock-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(i: u64) -> WalRecord {
        WalRecord::Fix(FixRecord {
            id: i,
            round: 1,
            rule: 7,
            kind: FixKind::Order {
                rel: RelId(0),
                attr: AttrId(1),
                t1: TupleId(i as u32),
                t2: TupleId(i as u32 + 1),
                strict: false,
            },
            valuation: vec![GlobalTid::new(RelId(0), TupleId(i as u32))],
            parents: vec![],
        })
    }

    #[test]
    fn append_then_scan_round_trips() {
        let d = dir("roundtrip");
        let path = d.join(WAL_FILE);
        let mut w = WalWriter::create(&path, false).unwrap();
        let recs = vec![WalRecord::Begin { fingerprint: 42 }, rec(0), rec(1)];
        for r in &recs {
            w.append(r).unwrap();
        }
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert!(!scan.corrupt_tail);
        let got: Vec<WalRecord> = scan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(got, recs);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn truncated_tail_is_ignored() {
        let d = dir("trunc");
        let path = d.join(WAL_FILE);
        let mut w = WalWriter::create(&path, false).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // chop mid-way through the second frame
        let first_end = read_wal(&path).unwrap().records[0].0 as usize;
        std::fs::write(&path, &full[..first_end + 5]).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.corrupt_tail);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len as usize, first_end);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn bit_flip_is_detected_by_crc() {
        let d = dir("flip");
        let path = d.join(WAL_FILE);
        let mut w = WalWriter::create(&path, false).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let first_end = read_wal(&path).unwrap().records[0].0 as usize;
        // flip one payload bit in the second frame
        let i = first_end + 12;
        bytes[i] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.corrupt_tail);
        assert_eq!(scan.records.len(), 1);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let d = dir("magic");
        let path = d.join(WAL_FILE);
        std::fs::write(&path, b"NOTAWAL0rest").unwrap();
        assert!(matches!(read_wal(&path), Err(WalError::Mismatch(_))));
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn open_at_truncates_the_tail() {
        let d = dir("openat");
        let path = d.join(WAL_FILE);
        let mut w = WalWriter::create(&path, false).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        drop(w);
        let first_end = read_wal(&path).unwrap().records[0].0;
        let mut w = WalWriter::open_at(&path, first_end, false).unwrap();
        w.append(&rec(9)).unwrap();
        drop(w);
        let got: Vec<WalRecord> = read_wal(&path)
            .unwrap()
            .records
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(got, vec![rec(0), rec(9)]);
        std::fs::remove_dir_all(&d).unwrap();
    }
}
