//! Valuations and satisfaction semantics (paper §2.1 "Semantics", extended
//! in §2.2/§2.3), plus a valuation enumerator with the predicate-ordering
//! optimizer of §5.3.
//!
//! A valuation `h` instantiates each tuple variable with a tuple of its
//! bound relation and each vertex variable with a KG vertex. `h ⊨ p` is
//! defined per predicate kind; `h ⊨ X` iff all conjuncts hold; `h ⊨ φ` iff
//! `h ⊨ X ⇒ h ⊨ p0`; `D ⊨ φ` iff all valuations satisfy φ. A *violation*
//! is a valuation with `h ⊨ X` but `h ⊭ p0` (§4.2).

use crate::predicate::Predicate;
use crate::rule::Rule;
use rock_data::{Database, GlobalTid, TupleId, Value};
use rock_kg::{Graph, VertexId};
use rock_ml::ModelRegistry;
use rustc_hash::FxHashMap;

/// A (partial) valuation of a rule's variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Valuation {
    /// Tuple bound to each tuple variable (aligned with `rule.tuple_vars`).
    pub tuples: Vec<GlobalTid>,
    /// Vertex bound to each vertex variable (aligned with
    /// `rule.vertex_vars`).
    pub vertices: Vec<Option<VertexId>>,
}

impl Valuation {
    pub fn new(tuples: Vec<GlobalTid>, n_vertex: usize) -> Self {
        Valuation {
            tuples,
            vertices: vec![None; n_vertex],
        }
    }
}

/// Everything predicate evaluation needs.
pub struct EvalContext<'a> {
    pub db: &'a Database,
    pub graph: Option<&'a Graph>,
    pub models: &'a ModelRegistry,
    /// Temporal-order oracle: answers `t1 ⪯A t2` / `t1 ≺A t2` queries from
    /// validated orders. During plain detection this is backed by cell
    /// timestamps; during the chase it is the fix store's `[A]⪯`.
    pub temporal: Option<&'a dyn TemporalOracle>,
    /// Entity-identity oracle backing `t.eid = s.eid` (the chase's
    /// `[EID]=` classes). Raw eid comparison when absent.
    pub entities: Option<&'a dyn EntityOracle>,
    /// Route unary constant/two-attribute prefilters through the columnar
    /// kernels ([`rock_data::ColumnSet::eval_const_op`]). Off = the scalar
    /// row path, kept as the byte-identical equivalence oracle.
    pub columnar: bool,
}

/// Oracle for validated temporal orders (implemented by the chase's fix
/// store and, for detection, by timestamp-induced orders). `Sync` so
/// evaluation can run on Crystal worker threads.
pub trait TemporalOracle: Sync {
    /// Is `t1 ⪯A t2` (strict=false) or `t1 ≺A t2` (strict=true) validated?
    fn holds(
        &self,
        rel: rock_data::RelId,
        attr: rock_data::AttrId,
        t1: TupleId,
        t2: TupleId,
        strict: bool,
    ) -> bool;
}

/// Oracle for entity identity: answers whether two `(relation, eid)` keys
/// denote the same validated real-world entity. The chase backs this with
/// its `[EID]=` union–find; without an oracle, raw eids are compared (two
/// tuples of *different* relations are never the same entity by default).
pub trait EntityOracle: Sync {
    fn same(
        &self,
        a: (rock_data::RelId, rock_data::Eid),
        b: (rock_data::RelId, rock_data::Eid),
    ) -> bool;
}

/// Timestamp-backed oracle: `t1 ⪯A t2` iff both cells are stamped and
/// `T(t1[A]) ≤ T(t2[A])` (§2.2).
pub struct TimestampOracle<'a> {
    pub db: &'a Database,
}

impl TemporalOracle for TimestampOracle<'_> {
    fn holds(
        &self,
        rel: rock_data::RelId,
        attr: rock_data::AttrId,
        t1: TupleId,
        t2: TupleId,
        strict: bool,
    ) -> bool {
        let ts = &self.db.relation(rel).timestamps;
        match (ts.get(t1, attr), ts.get(t2, attr)) {
            (Some(a), Some(b)) => {
                if strict {
                    a < b
                } else {
                    a <= b
                }
            }
            _ => false,
        }
    }
}

impl<'a> EvalContext<'a> {
    pub fn new(db: &'a Database, models: &'a ModelRegistry) -> Self {
        EvalContext {
            db,
            graph: None,
            models,
            temporal: None,
            entities: None,
            columnar: rock_data::DataConfig::default().columnar,
        }
    }

    pub fn with_graph(mut self, g: &'a Graph) -> Self {
        self.graph = Some(g);
        self
    }

    pub fn with_temporal(mut self, t: &'a dyn TemporalOracle) -> Self {
        self.temporal = Some(t);
        self
    }

    pub fn with_entities(mut self, e: &'a dyn EntityOracle) -> Self {
        self.entities = Some(e);
        self
    }

    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    fn tuple_values(
        &self,
        rule: &Rule,
        h: &Valuation,
        var: usize,
        attrs: &[rock_data::AttrId],
    ) -> Vec<Value> {
        let gt = h.tuples[var];
        let rel = self.db.relation(gt.rel);
        let t = rel
            .get(gt.tid)
            .unwrap_or_else(|| panic!("valuation references dead tuple {:?}", gt));
        let _ = rule;
        t.project(attrs)
    }

    fn cell(&self, h: &Valuation, var: usize, attr: rock_data::AttrId) -> Value {
        let gt = h.tuples[var];
        self.db
            .relation(gt.rel)
            .get(gt.tid)
            .unwrap_or_else(|| panic!("valuation references dead tuple {:?}", gt))
            .get(attr)
            .clone()
    }

    /// `h ⊨ p`. `None` when the predicate cannot be decided (e.g. a vertex
    /// variable is unbound or no graph is attached) — treated as *not
    /// satisfied* by callers, per the ground-truth-gated chase semantics.
    pub fn eval_predicate(&self, rule: &Rule, h: &Valuation, p: &Predicate) -> Option<bool> {
        use Predicate::*;
        Some(match p {
            Const {
                var,
                attr,
                op,
                value,
            } => op.eval(&self.cell(h, *var, *attr), value),
            Attr {
                lvar,
                lattr,
                op,
                rvar,
                rattr,
            } => op.eval(&self.cell(h, *lvar, *lattr), &self.cell(h, *rvar, *rattr)),
            Ml {
                model,
                lvar,
                lattrs,
                rvar,
                rattrs,
            } => {
                let a = self.tuple_values(rule, h, *lvar, lattrs);
                let b = self.tuple_values(rule, h, *rvar, rattrs);
                self.models.predict_pair(model.resolved(), &a, &b)
            }
            Temporal {
                lvar,
                rvar,
                attr,
                strict,
            } => {
                let oracle = self.temporal?;
                let (l, r) = (h.tuples[*lvar], h.tuples[*rvar]);
                oracle.holds(l.rel, *attr, l.tid, r.tid, *strict)
            }
            MlRank {
                model,
                lvar,
                rvar,
                attr,
                strict,
            } => {
                let all: Vec<rock_data::AttrId> = {
                    let rel = self.db.relation(h.tuples[*lvar].rel);
                    (0..rel.schema.arity())
                        .map(rock_data::AttrId::from)
                        .collect()
                };
                let a = self.tuple_values(rule, h, *lvar, &all);
                let b = self.tuple_values(rule, h, *rvar, &all);
                let conf = self.models.rank_confidence(model.resolved(), &a, &b);
                let _ = attr;
                // Margins keep ties (σ(0) = 0.5, e.g. identical tuples)
                // from asserting an order in either direction.
                if *strict {
                    conf > 0.6
                } else {
                    conf >= 0.55
                }
            }
            Her { model, tvar, xvar } => {
                let x = h.vertices[*xvar]?;
                let g = self.graph?;
                let m = self.models.her(model.resolved())?;
                // name attrs = first attr; context = rest (convention set by
                // the workloads; see rock-workloads::kg).
                let gt = h.tuples[*tvar];
                let rel = self.db.relation(gt.rel);
                let t = rel.get(gt.tid)?;
                let name = vec![t.get(rock_data::AttrId(1)).clone()];
                let ctx: Vec<Value> = t.values.iter().skip(2).cloned().collect();
                m.matches(g, x, &name, &ctx)
            }
            PathMatch { xvar, path, .. } => {
                let x = h.vertices[*xvar]?;
                path.has_match(self.graph?, x)
            }
            ValExtract {
                tvar,
                attr,
                xvar,
                path,
            } => {
                let x = h.vertices[*xvar]?;
                let extracted = path.val(self.graph?, x)?;
                self.cell(h, *tvar, *attr).sql_eq(&extracted)
            }
            CorrConst {
                model,
                var,
                evidence,
                target,
                value,
                delta,
            } => {
                let ev = self.tuple_values(rule, h, *var, evidence);
                let _ = target;
                self.models
                    .correlation_strength(model.resolved(), &ev, value)
                    >= *delta
            }
            CorrAttr {
                model,
                var,
                evidence,
                target,
                delta,
            } => {
                let ev = self.tuple_values(rule, h, *var, evidence);
                let cur = self.cell(h, *var, *target);
                if cur.is_null() {
                    return Some(false);
                }
                self.models
                    .correlation_strength(model.resolved(), &ev, &cur)
                    >= *delta
            }
            Predict {
                model,
                var,
                evidence,
                target,
            } => {
                let ev = self.tuple_values(rule, h, *var, evidence);
                match self.models.predict_value(model.resolved(), &ev) {
                    Some(pred) => self.cell(h, *var, *target).sql_eq(&pred),
                    None => false,
                }
            }
            IsNull { var, attr } => self.cell(h, *var, *attr).is_null(),
            EidCmp { lvar, rvar, eq } => {
                let l = h.tuples[*lvar];
                let r = h.tuples[*rvar];
                let le = self.db.relation(l.rel).get(l.tid)?.eid;
                let re = self.db.relation(r.rel).get(r.tid)?.eid;
                let same = match self.entities {
                    Some(o) => o.same((l.rel, le), (r.rel, re)),
                    None => l.rel == r.rel && le == re,
                };
                if *eq {
                    same
                } else {
                    !same
                }
            }
        })
    }

    /// `h ⊨ X` for the precondition.
    pub fn satisfies_precondition(&self, rule: &Rule, h: &Valuation) -> bool {
        rule.precondition
            .iter()
            .all(|p| self.eval_predicate(rule, h, p) == Some(true))
    }
}

/// Enumerate valuations of `rule` over the database, with cheap predicates
/// evaluated early and equality predicates used as hash joins (§5.3's local
/// query optimizer). Calls `on_valuation` for every valuation satisfying
/// the precondition; return `false` from the callback to stop early.
pub fn enumerate_valuations<F>(rule: &Rule, ctx: &EvalContext<'_>, on_valuation: F)
where
    F: FnMut(&Valuation) -> bool,
{
    enumerate_valuations_restricted(rule, ctx, None, on_valuation)
}

/// Like [`enumerate_valuations`], but requiring one variable to bind only
/// tuples from an explicit id set — the incremental-detection pass
/// restricts a variable to the tuples touched by ΔD ([41]).
pub fn enumerate_valuations_in_set<F>(
    rule: &Rule,
    ctx: &EvalContext<'_>,
    var: usize,
    tids: &rustc_hash::FxHashSet<TupleId>,
    mut on_valuation: F,
) where
    F: FnMut(&Valuation) -> bool,
{
    // Reuse the range-based path by temporarily filtering candidates via a
    // wrapper closure: enumerate unrestricted but skip valuations whose
    // `var` binding is outside the set. To keep the candidate list small
    // (the point of incrementality), pre-check inside the callback AND
    // seed a narrow range when the set is contiguous-ish.
    let (min, max) = match (tids.iter().min(), tids.iter().max()) {
        (Some(a), Some(b)) => (a.0, b.0 + 1),
        _ => return,
    };
    enumerate_valuations_restricted(rule, ctx, Some((var, min..max)), |h| {
        if !tids.contains(&h.tuples[var].tid) {
            return true;
        }
        on_valuation(h)
    });
}

/// Like [`enumerate_valuations`], but optionally restricting one variable's
/// candidate tuples to a tid range `[start, end)` — the HyperCube-style
/// work-unit partitioning of §5.3 slices on the first variable.
pub fn enumerate_valuations_restricted<F>(
    rule: &Rule,
    ctx: &EvalContext<'_>,
    restrict: Option<(usize, std::ops::Range<u32>)>,
    on_valuation: F,
) where
    F: FnMut(&Valuation) -> bool,
{
    let nvars = rule.tuple_vars.len();
    // unary candidate lists
    let mut candidates: Vec<Vec<TupleId>> = Vec::with_capacity(nvars);
    for v in 0..nvars {
        let rel = ctx.db.relation(rule.rel_of(v));
        let mut tids: Vec<TupleId> = rel.tids().collect();
        if let Some((rv, range)) = &restrict {
            if *rv == v {
                tids.retain(|t| range.contains(&t.0));
            }
        }
        apply_unary_prefilters(rule, ctx, v, &mut tids);
        candidates.push(tids);
    }
    enumerate_from_candidates(rule, ctx, candidates, on_valuation);
}

/// Like [`enumerate_valuations`], but with explicit per-variable candidate
/// lists for any subset of the tuple variables — the semi-naive chase pins
/// one variable to the delta set and (for ML pair rules) prunes the other
/// to the pinned tuples' block-mates. Variables absent from `overrides`
/// enumerate the full relation. Overridden lists are filtered to live
/// tuples and re-run through the cheap unary prefilters, so callers may
/// pass raw tid lists.
pub fn enumerate_valuations_with_candidates<F>(
    rule: &Rule,
    ctx: &EvalContext<'_>,
    overrides: &FxHashMap<usize, Vec<TupleId>>,
    on_valuation: F,
) where
    F: FnMut(&Valuation) -> bool,
{
    let nvars = rule.tuple_vars.len();
    let mut candidates: Vec<Vec<TupleId>> = Vec::with_capacity(nvars);
    for v in 0..nvars {
        let rel = ctx.db.relation(rule.rel_of(v));
        let mut tids: Vec<TupleId> = match overrides.get(&v) {
            Some(list) => list
                .iter()
                .copied()
                .filter(|t| rel.get(*t).is_some())
                .collect(),
            None => rel.tids().collect(),
        };
        apply_unary_prefilters(rule, ctx, v, &mut tids);
        candidates.push(tids);
    }
    enumerate_from_candidates(rule, ctx, candidates, on_valuation);
}

/// Cheap single-variable predicate prefilter shared by all enumeration
/// entry points — ML predicates wait for memo/blocking, and
/// vertex-dependent predicates (match/val) wait for vertex binding.
///
/// With `ctx.columnar` set, constant / two-attribute / null predicates are
/// answered by the vectorized kernels: one satisfaction [`rock_data::Bitset`]
/// per predicate, ANDed together, then one retain pass over the candidate
/// list (a `TupleId` indexes the columnar slots directly — ids are stable
/// across deletions on both sides). Predicates the kernels cannot answer
/// fall back to the per-tuple scalar path; the two paths agree exactly
/// because they share [`rock_data::PredOp::eval`].
fn apply_unary_prefilters(rule: &Rule, ctx: &EvalContext<'_>, v: usize, tids: &mut Vec<TupleId>) {
    let nvars = rule.tuple_vars.len();
    let cols = if ctx.columnar {
        Some(ctx.db.relation(rule.rel_of(v)).columns())
    } else {
        None
    };
    let mut mask: Option<rock_data::Bitset> = None;
    for p in &rule.precondition {
        if p.tuple_vars() == [v] && !p.is_ml() && p.vertex_vars().is_empty() {
            if let Some(cols) = &cols {
                if let Some(m) = columnar_prefilter_mask(cols, p) {
                    match &mut mask {
                        Some(acc) => acc.intersect_with(&m),
                        None => mask = Some(m),
                    }
                    continue;
                }
            }
            tids.retain(|tid| {
                let h = single_var_valuation(rule, v, GlobalTid::new(rule.rel_of(v), *tid), nvars);
                ctx.eval_predicate(rule, &h, p) == Some(true)
            });
        }
    }
    if let Some(mask) = mask {
        tids.retain(|tid| mask.get(tid.index()));
    }
}

/// Kernel-answerable unary predicates: `t.A ⊕ c`, `t.A ⊕ t.B`, `null(t.A)`.
/// Returns `None` for anything else (the caller falls back to scalar eval).
fn columnar_prefilter_mask(
    cols: &rock_data::ColumnSet,
    p: &Predicate,
) -> Option<rock_data::Bitset> {
    match p {
        Predicate::Const {
            attr, op, value, ..
        } => Some(cols.eval_const_op(*attr, op.kernel(), value)),
        // tuple_vars() == [v] already implies lvar == rvar here
        Predicate::Attr {
            lattr, op, rattr, ..
        } => Some(cols.eval_col_op_col(*lattr, op.kernel(), *rattr)),
        Predicate::IsNull { attr, .. } => Some(cols.null_mask(*attr)),
        _ => None,
    }
}

/// The shared enumeration core: greedy variable ordering, hash-join
/// narrowing on equality predicates, and recursive binding with full
/// verification at the leaves.
fn enumerate_from_candidates<F>(
    rule: &Rule,
    ctx: &EvalContext<'_>,
    candidates: Vec<Vec<TupleId>>,
    mut on_valuation: F,
) where
    F: FnMut(&Valuation) -> bool,
{
    let nvars = rule.tuple_vars.len();
    // 2. variable order: smallest candidate list first (greedy).
    let mut order: Vec<usize> = (0..nvars).collect();
    order.sort_by_key(|&v| candidates[v].len());

    // 3. binary equality predicates for hash-join binding.
    let eq_preds: Vec<(usize, rock_data::AttrId, usize, rock_data::AttrId)> = rule
        .precondition
        .iter()
        .filter_map(|p| match p {
            Predicate::Attr {
                lvar,
                lattr,
                op: crate::op::CmpOp::Eq,
                rvar,
                rattr,
            } if lvar != rvar => Some((*lvar, *lattr, *rvar, *rattr)),
            _ => None,
        })
        .collect();

    // Pre-build indexes for join attributes (lazily per (var, attr)).
    let mut indexes: FxHashMap<(usize, rock_data::AttrId), FxHashMap<Value, Vec<TupleId>>> =
        FxHashMap::default();
    for &(lv, la, rv, ra) in &eq_preds {
        for (v, a) in [(lv, la), (rv, ra)] {
            indexes.entry((v, a)).or_insert_with(|| {
                let rel = ctx.db.relation(rule.rel_of(v));
                let mut idx: FxHashMap<Value, Vec<TupleId>> = FxHashMap::default();
                let cand: rustc_hash::FxHashSet<TupleId> = candidates[v].iter().copied().collect();
                for (val, tids) in rel.index_on(a) {
                    let filtered: Vec<TupleId> =
                        tids.into_iter().filter(|t| cand.contains(t)).collect();
                    if !filtered.is_empty() {
                        idx.insert(val, filtered);
                    }
                }
                idx
            });
        }
    }

    // 4. ordered precondition for final verification (cheap first).
    let mut ordered_preds: Vec<&Predicate> = rule.precondition.iter().collect();
    ordered_preds.sort_by_key(|p| p.cost_rank());

    // 5. recursive binding.
    let mut h = Valuation::new(
        vec![GlobalTid::new(rock_data::RelId(0), TupleId(0)); nvars],
        rule.vertex_vars.len(),
    );
    let mut bound = vec![false; nvars];
    bind_next(
        rule,
        ctx,
        &order,
        0,
        &candidates,
        &indexes,
        &eq_preds,
        &ordered_preds,
        &mut h,
        &mut bound,
        &mut on_valuation,
    );
}

fn single_var_valuation(rule: &Rule, v: usize, gt: GlobalTid, nvars: usize) -> Valuation {
    let mut tuples = vec![GlobalTid::new(rock_data::RelId(0), TupleId(0)); nvars];
    tuples[v] = gt;
    Valuation::new(tuples, rule.vertex_vars.len())
}

#[allow(clippy::too_many_arguments)]
fn bind_next<F>(
    rule: &Rule,
    ctx: &EvalContext<'_>,
    order: &[usize],
    depth: usize,
    candidates: &[Vec<TupleId>],
    indexes: &FxHashMap<(usize, rock_data::AttrId), FxHashMap<Value, Vec<TupleId>>>,
    eq_preds: &[(usize, rock_data::AttrId, usize, rock_data::AttrId)],
    ordered_preds: &[&Predicate],
    h: &mut Valuation,
    bound: &mut [bool],
    on_valuation: &mut F,
) -> bool
where
    F: FnMut(&Valuation) -> bool,
{
    if depth == order.len() {
        // bind vertex variables via HER alignment, then verify everything.
        if !bind_vertices(rule, ctx, h) {
            return true; // no vertex binding: precondition unsatisfied, keep going
        }
        let ok = ordered_preds
            .iter()
            .all(|p| ctx.eval_predicate(rule, h, p) == Some(true));
        if ok {
            return on_valuation(h);
        }
        return true;
    }
    let v = order[depth];
    // Try to narrow candidates via an equality predicate to a bound var.
    let mut narrowed: Option<Vec<TupleId>> = None;
    for &(lv, la, rv, ra) in eq_preds {
        let (this_attr, other, other_attr) = if lv == v && bound[rv] {
            (la, rv, ra)
        } else if rv == v && bound[lv] {
            (ra, lv, la)
        } else {
            continue;
        };
        let other_val = {
            let gt = h.tuples[other];
            ctx.db
                .relation(gt.rel)
                .get(gt.tid)
                .map(|t| t.get(other_attr).clone())
        };
        let Some(val) = other_val else { continue };
        if val.is_null() {
            return true; // equality with null can never hold
        }
        let idx = &indexes[&(v, this_attr)];
        let hits = idx.get(&val).map(|v| v.as_slice()).unwrap_or(&[]);
        match &mut narrowed {
            None => narrowed = Some(hits.to_vec()),
            Some(cur) => cur.retain(|t| hits.contains(t)),
        }
    }
    let list = narrowed.as_deref().unwrap_or(&candidates[v]);
    for &tid in list {
        h.tuples[v] = GlobalTid::new(rule.rel_of(v), tid);
        bound[v] = true;
        let cont = bind_next(
            rule,
            ctx,
            order,
            depth + 1,
            candidates,
            indexes,
            eq_preds,
            ordered_preds,
            h,
            bound,
            on_valuation,
        );
        bound[v] = false;
        if !cont {
            return false;
        }
    }
    true
}

/// Bind vertex variables. Every vertex variable must be constrained by at
/// least one `HER` predicate (the paper's extraction rules always pair
/// `vertex(x, G)` with `HER(t, x)`); we bind `x` to the best-aligned vertex
/// for the corresponding tuple. Returns false when some variable cannot be
/// bound.
fn bind_vertices(rule: &Rule, ctx: &EvalContext<'_>, h: &mut Valuation) -> bool {
    if rule.vertex_vars.is_empty() {
        return true;
    }
    let Some(g) = ctx.graph else { return false };
    for xvar in 0..rule.vertex_vars.len() {
        let her = rule.precondition.iter().find_map(|p| match p {
            Predicate::Her {
                model,
                tvar,
                xvar: xv,
            } if *xv == xvar => Some((model, *tvar)),
            _ => None,
        });
        let Some((model, tvar)) = her else {
            return false;
        };
        let Some(m) = ctx.models.her(model.resolved()) else {
            return false;
        };
        let gt = h.tuples[tvar];
        let rel = ctx.db.relation(gt.rel);
        let Some(t) = rel.get(gt.tid) else {
            return false;
        };
        let name = vec![t.get(rock_data::AttrId(1)).clone()];
        let ctx_vals: Vec<Value> = t.values.iter().skip(2).cloned().collect();
        match m.align(g, &name, &ctx_vals) {
            Some((v, _)) => h.vertices[xvar] = Some(v),
            None => return false,
        }
    }
    true
}

/// All violations of `rule` in the database: valuations with `h ⊨ X` but
/// `h ⊭ p0` (§4.2). Trivial valuations binding two variables of the same
/// relation to the same tuple are skipped for inequality-flavoured
/// consequences only when they would be vacuous (`t` and `t` always agree).
pub fn find_violations(rule: &Rule, ctx: &EvalContext<'_>) -> Vec<Valuation> {
    let mut out = Vec::new();
    enumerate_valuations(rule, ctx, |h| {
        if distinct_ok(rule, h) && ctx.eval_predicate(rule, h, &rule.consequence) != Some(true) {
            out.push(h.clone());
        }
        true
    });
    out
}

/// All satisfying valuations (X ∧ p0) — used by support computation and the
/// chase's fix deduction.
pub fn find_satisfying(rule: &Rule, ctx: &EvalContext<'_>) -> Vec<Valuation> {
    let mut out = Vec::new();
    enumerate_valuations(rule, ctx, |h| {
        if distinct_ok(rule, h) && ctx.eval_predicate(rule, h, &rule.consequence) == Some(true) {
            out.push(h.clone());
        }
        true
    });
    out
}

/// Skip degenerate valuations that bind two *distinct variables over the
/// same relation* to the *same tuple* — those are vacuous for every rule in
/// the paper (φ over (t, s) compares a tuple with itself).
pub fn distinct_ok(rule: &Rule, h: &Valuation) -> bool {
    for i in 0..h.tuples.len() {
        for j in (i + 1)..h.tuples.len() {
            if rule.rel_of(i) == rule.rel_of(j) && h.tuples[i] == h.tuples[j] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpOp;
    use crate::predicate::ModelRef;
    use rock_data::{AttrId, AttrType, DatabaseSchema, RelId, RelationSchema};
    use rock_ml::pair::NgramPairModel;
    use std::sync::Arc;

    fn trans_db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Trans",
            &[
                ("pid", AttrType::Str),
                ("com", AttrType::Str),
                ("mfg", AttrType::Str),
            ],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        r.insert_row(vec![
            Value::str("p1"),
            Value::str("IPhone 14"),
            Value::str("Apple"),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("p2"),
            Value::str("IPhone 14"),
            Value::str("Apple"),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("p3"),
            Value::str("Mate X2"),
            Value::str("Huawei"),
        ])
        .unwrap();
        // violation of φ2: same commodity, different manufactory
        r.insert_row(vec![
            Value::str("p4"),
            Value::str("Mate X2"),
            Value::str("Apple"),
        ])
        .unwrap();
        db
    }

    fn phi2() -> Rule {
        Rule::new(
            "phi2",
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            vec![Predicate::Attr {
                lvar: 0,
                lattr: AttrId(1),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(1),
            }],
            Predicate::Attr {
                lvar: 0,
                lattr: AttrId(2),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(2),
            },
        )
    }

    #[test]
    fn finds_phi2_violations() {
        let db = trans_db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let viol = find_violations(&phi2(), &ctx);
        // (t2, t3) and (t3, t2): Mate X2 sold by Huawei and Apple
        assert_eq!(viol.len(), 2);
        for v in &viol {
            let tids: Vec<u32> = v.tuples.iter().map(|g| g.tid.0).collect();
            assert!(tids.contains(&2) && tids.contains(&3));
        }
    }

    #[test]
    fn finds_satisfying_valuations() {
        let db = trans_db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let sats = find_satisfying(&phi2(), &ctx);
        // (t0, t1) and (t1, t0): IPhone 14 / Apple consistent
        assert_eq!(sats.len(), 2);
    }

    #[test]
    fn self_join_same_tuple_skipped() {
        let db = trans_db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let mut count = 0;
        enumerate_valuations(&phi2(), &ctx, |h| {
            if distinct_ok(&phi2(), h) {
                count += 1;
            }
            true
        });
        // 2 matching pairs in each direction (iphone pair + mate pair)
        assert_eq!(count, 4);
    }

    #[test]
    fn ml_predicate_in_precondition() {
        // φ1-style: MER(t.com, s.com) && t.pid != s.pid -> eid eq (just
        // check precondition enumeration works with ML + registry).
        let db = trans_db();
        let reg = ModelRegistry::new();
        reg.register_pair("MER", Arc::new(NgramPairModel::with_threshold(0.8)));
        let mut rule = Rule::new(
            "phi1",
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            vec![Predicate::Ml {
                model: ModelRef::named("MER"),
                lvar: 0,
                lattrs: vec![AttrId(1)],
                rvar: 1,
                rattrs: vec![AttrId(1)],
            }],
            Predicate::EidCmp {
                lvar: 0,
                rvar: 1,
                eq: true,
            },
        );
        rule.resolve(&reg).unwrap();
        let ctx = EvalContext::new(&db, &reg);
        let viol = find_violations(&rule, &ctx);
        // identical commodity text pairs have distinct EIDs: 4 violations
        // (iphone pair ×2 directions, mate pair ×2).
        assert_eq!(viol.len(), 4);
    }

    #[test]
    fn constant_predicate_prefilters() {
        let db = trans_db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let rule = Rule::new(
            "const",
            vec![("t".into(), RelId(0))],
            vec![],
            vec![Predicate::Const {
                var: 0,
                attr: AttrId(2),
                op: CmpOp::Eq,
                value: Value::str("Huawei"),
            }],
            Predicate::Const {
                var: 0,
                attr: AttrId(1),
                op: CmpOp::Eq,
                value: Value::str("Mate X2"),
            },
        );
        assert!(find_violations(&rule, &ctx).is_empty());
        assert_eq!(find_satisfying(&rule, &ctx).len(), 1);
    }

    #[test]
    fn temporal_predicate_uses_oracle() {
        let mut db = trans_db();
        let r = db.relation_mut(RelId(0));
        r.set_timestamp(TupleId(0), AttrId(2), rock_data::Timestamp(10));
        r.set_timestamp(TupleId(1), AttrId(2), rock_data::Timestamp(20));
        let reg = ModelRegistry::new();
        let oracle = TimestampOracle { db: &db };
        let ctx = EvalContext::new(&db, &reg).with_temporal(&oracle);
        let rule = Rule::new(
            "td",
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            vec![Predicate::Temporal {
                lvar: 0,
                rvar: 1,
                attr: AttrId(2),
                strict: true,
            }],
            Predicate::EidCmp {
                lvar: 0,
                rvar: 1,
                eq: true,
            },
        );
        let mut found = Vec::new();
        enumerate_valuations(&rule, &ctx, |h| {
            found.push(h.clone());
            true
        });
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].tuples[0].tid, TupleId(0));
        assert_eq!(found[0].tuples[1].tid, TupleId(1));
    }

    use rock_data::TupleId;

    #[test]
    fn four_variable_cross_table_rule() {
        // φ10 (paper Example 4): Trans(t) ∧ Trans(t') ∧ Store(s) ∧
        // Store(s') ∧ t.sid = s.sid ∧ t'.sid = s'.sid ∧
        // Mlimited(t[com], t'[com]) → s.type = s'.type
        use rock_ml::pair::NgramPairModel;
        let schema = DatabaseSchema::new(vec![
            RelationSchema::of("Trans", &[("sid", AttrType::Str), ("com", AttrType::Str)]),
            RelationSchema::of("Store", &[("sid", AttrType::Str), ("type", AttrType::Str)]),
        ]);
        let mut db = Database::new(&schema);
        {
            let tr = db.relation_mut(RelId(0));
            tr.insert_row(vec![Value::str("s1"), Value::str("Mate X2 (Limited Sold)")])
                .unwrap();
            tr.insert_row(vec![Value::str("s2"), Value::str("Mate X2 (Limited Sold)")])
                .unwrap();
            tr.insert_row(vec![Value::str("s1"), Value::str("ordinary socks")])
                .unwrap();
        }
        {
            let st = db.relation_mut(RelId(1));
            st.insert_row(vec![Value::str("s1"), Value::str("Electron.")])
                .unwrap();
            st.insert_row(vec![Value::str("s2"), Value::str("Sports")])
                .unwrap(); // type conflict
        }
        let reg = ModelRegistry::new();
        reg.register_pair("Mlimited", Arc::new(NgramPairModel::with_threshold(0.9)));
        let mut rule = crate::parse_rule(
            "rule phi10: Trans(t) && Trans(u) && Store(s) && Store(v) && t.sid = s.sid && u.sid = v.sid && ml:Mlimited(t[com], u[com]) -> s.type = v.type",
            &schema,
        )
        .unwrap();
        rule.resolve(&reg).unwrap();
        let ctx = EvalContext::new(&db, &reg);
        let violations = find_violations(&rule, &ctx);
        // the limited commodity sold at s1 and s2 exposes the type conflict
        // (both orientations of the two Trans rows)
        assert_eq!(violations.len(), 2, "{violations:?}");
        for v in &violations {
            let stores: Vec<u32> = v.tuples[2..].iter().map(|g| g.tid.0).collect();
            assert!(stores.contains(&0) && stores.contains(&1));
        }
    }

    #[test]
    fn correlation_and_predict_predicates() {
        use rock_ml::correlation::{CorrelationModel, ValuePredictor};
        // city -> area_code correlation from clean rows
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Store",
            &[("city", AttrType::Str), ("area_code", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        {
            let r = db.relation_mut(RelId(0));
            r.insert_row(vec![Value::str("Beijing"), Value::str("010")])
                .unwrap();
            r.insert_row(vec![Value::str("Beijing"), Value::str("999")])
                .unwrap(); // wrong
            r.insert_row(vec![Value::str("Beijing"), Value::Null])
                .unwrap(); // missing
        }
        let rows = vec![
            (vec![Value::str("Beijing")], Value::str("010")),
            (vec![Value::str("Beijing")], Value::str("010")),
            (vec![Value::str("Shanghai")], Value::str("021")),
        ];
        let reg = ModelRegistry::new();
        let mc = reg.register_correlation("Mc", Arc::new(CorrelationModel::train(&rows)));
        let md = reg.register_predictor(
            "Md",
            Arc::new(ValuePredictor::new(CorrelationModel::train(&rows), 0.3)),
        );
        let ctx = EvalContext::new(&db, &reg);
        let mk = |var: usize, p: Predicate| -> (Rule, Valuation) {
            let mut rule = Rule::new("r", vec![("t".into(), RelId(0))], vec![], vec![], p);
            rule.resolve(&reg).unwrap();
            let h = Valuation::new(
                vec![rock_data::GlobalTid::new(RelId(0), TupleId(var as u32))],
                0,
            );
            (rule, h)
        };
        // CorrConst: Mc(t[city], t.area_code='010') >= 0.5 holds
        let mut corr = Predicate::CorrConst {
            model: ModelRef::named("Mc"),
            var: 0,
            evidence: vec![AttrId(0)],
            target: AttrId(1),
            value: Value::str("010"),
            delta: 0.5,
        };
        let (rule, h) = mk(0, corr.clone());
        assert_eq!(ctx.eval_predicate(&rule, &h, &rule.consequence), Some(true));
        // a far-fetched constant fails the threshold
        if let Predicate::CorrConst { value, .. } = &mut corr {
            *value = Value::str("000");
        }
        let (rule, h) = mk(0, corr);
        assert_eq!(
            ctx.eval_predicate(&rule, &h, &rule.consequence),
            Some(false)
        );
        // CorrAttr on the correct row passes, on the corrupted row fails
        let corr_attr = |row: usize| {
            let (rule, h) = mk(
                row,
                Predicate::CorrAttr {
                    model: ModelRef::named("Mc"),
                    var: 0,
                    evidence: vec![AttrId(0)],
                    target: AttrId(1),
                    delta: 0.5,
                },
            );
            ctx.eval_predicate(&rule, &h, &rule.consequence)
        };
        assert_eq!(corr_attr(0), Some(true));
        assert_eq!(corr_attr(1), Some(false));
        assert_eq!(corr_attr(2), Some(false), "null target never correlates");
        // Predict: t.area_code = Md(t[city]) — true where it matches
        let pred = |row: usize| {
            let (rule, h) = mk(
                row,
                Predicate::Predict {
                    model: ModelRef::named("Md"),
                    var: 0,
                    evidence: vec![AttrId(0)],
                    target: AttrId(1),
                },
            );
            ctx.eval_predicate(&rule, &h, &rule.consequence)
        };
        assert_eq!(pred(0), Some(true));
        assert_eq!(pred(1), Some(false));
        assert_eq!(
            pred(2),
            Some(false),
            "null cell != prediction — the MI trigger"
        );
        let _ = (mc, md);
    }
}
