//! Pass 3 — the rule-dependency graph and inter-rule diagnostics.
//!
//! Edges run from a rule's *consequence action* to every rule whose
//! *precondition reads* it can change: value writes (`SetCell` /
//! `EquateCells` targets) feed value reads, order writes (temporal
//! consequences) feed temporal reads, and merge consequences feed every
//! rule touching a mergeable relation (a merge can rewrite any validated
//! attribute of the united class, so it is ⊤ over those relations).
//!
//! The graph doubles as the chase's scheduling artifact
//! (`ChaseConfig::use_rule_graph`):
//!
//! * [`RuleGraph::dead`] — rules that provably never extend the fix
//!   store: unsatisfiable or malformed preconditions, and reflexive
//!   merge consequences (`t.eid = t.eid` is a union–find no-op). The
//!   chase drops them from activation entirely. This is deliberately a
//!   *subset* of the rules `W201` warns about: a rule whose equality
//!   consequence restates its precondition still *validates* cells
//!   (which strict gating can observe), so it is dead weight but not
//!   skip-safe.
//! * [`RuleGraph::follows_writes`] — rules whose written cells another
//!   rule (or a merge) can also write. Their proposals participate in
//!   conflict clusters with other writers, so they must stay active
//!   whenever the store changed; everything else re-activates only when
//!   its own reads or relations saw a delta.
//! * [`RuleGraph::rels`] — relations each rule binds, intersected with
//!   the round's tuple-level delta.

use crate::{CmpOp, DiagCode, Diagnostic, Predicate, Rule, RuleSet};
use rock_data::{AttrId, DatabaseSchema, RelId};
use serde::Serialize;

/// The rule-dependency graph over a ruleset (see module docs).
#[derive(Debug, Clone, Default, Serialize)]
pub struct RuleGraph {
    pub nrules: usize,
    /// Relations each rule binds (sorted, deduped).
    pub rels: Vec<Vec<RelId>>,
    /// `(relation, attribute)` cells each rule's consequence can write.
    pub cell_writes: Vec<Vec<(RelId, AttrId)>>,
    /// Rules whose consequence merges entities (`t.eid = s.eid`).
    pub merge_rule: Vec<bool>,
    /// Skip-safe rules: provably never extend the fix store.
    pub dead: Vec<bool>,
    /// `subsumed_by[i] = Some(j)` — rule `i` can never fire without rule
    /// `j` firing on the same valuation with the same consequence.
    pub subsumed_by: Vec<Option<usize>>,
    /// Rules that must re-activate whenever any round committed a write
    /// (their proposals cluster with other writers of the same cells).
    pub follows_writes: Vec<bool>,
    /// Action → read edges `(writer, reader)`, writer ≠ reader.
    pub edges: Vec<(usize, usize)>,
}

impl RuleGraph {
    /// Build the graph for a ruleset assumed well-formed and satisfiable
    /// (the common case: parsed + validated rules).
    pub fn build(rules: &RuleSet, schema: &DatabaseSchema) -> RuleGraph {
        let mask = vec![false; rules.len()];
        RuleGraph::build_masked(rules, schema, &mask, &mask)
    }

    /// Build with per-rule masks from the earlier passes: `malformed`
    /// rules are excluded from every computation (their variable indices
    /// cannot be trusted), `unsat` rules join the dead set.
    pub fn build_masked(
        rules: &RuleSet,
        _schema: &DatabaseSchema,
        malformed: &[bool],
        unsat: &[bool],
    ) -> RuleGraph {
        let n = rules.len();
        let rs: Vec<&Rule> = rules.iter().collect();

        let mut rels = vec![Vec::new(); n];
        let mut cell_writes = vec![Vec::new(); n];
        let mut merge_rule = vec![false; n];
        let mut dead = vec![false; n];
        for i in 0..n {
            dead[i] = malformed[i] || unsat[i];
            if malformed[i] {
                continue;
            }
            let r = rs[i];
            let mut rr: Vec<RelId> = r.tuple_vars.iter().map(|(_, rel)| *rel).collect();
            rr.sort_unstable();
            rr.dedup();
            rels[i] = rr;
            cell_writes[i] = consequence_cell_writes(r);
            merge_rule[i] = matches!(r.consequence, Predicate::EidCmp { eq: true, .. });
            if reflexive_merge(&r.consequence) || inert_merge(r) {
                dead[i] = true;
            }
        }

        // Relations any merge consequence can touch: a merge validated on
        // (R, S) can rewrite validated attributes of either side's class.
        let mut merge_rels: Vec<RelId> = Vec::new();
        for i in 0..n {
            if merge_rule[i] && !dead[i] {
                if let Predicate::EidCmp { lvar, rvar, .. } = rs[i].consequence {
                    merge_rels.push(rs[i].rel_of(lvar));
                    merge_rels.push(rs[i].rel_of(rvar));
                }
            }
        }
        merge_rels.sort_unstable();
        merge_rels.dedup();

        let mut follows_writes = vec![false; n];
        for i in 0..n {
            if dead[i] || cell_writes[i].is_empty() {
                continue;
            }
            follows_writes[i] = (0..n).any(|j| {
                j != i
                    && !dead[j]
                    && (cell_writes[j].iter().any(|c| cell_writes[i].contains(c))
                        || (merge_rule[j]
                            && cell_writes[i]
                                .iter()
                                .any(|(r, _)| merge_rels.binary_search(r).is_ok())))
            });
        }

        let mut subsumed_by = vec![None; n];
        for i in 0..n {
            if dead[i] || malformed[i] || unsat[i] {
                continue;
            }
            for j in 0..n {
                if i == j || dead[j] || malformed[j] || unsat[j] {
                    continue;
                }
                if covers(rs[j], rs[i]) && (!covers(rs[i], rs[j]) || j < i) {
                    subsumed_by[i] = Some(j);
                    break;
                }
            }
        }

        let mut edges = Vec::new();
        for i in 0..n {
            if dead[i] {
                continue;
            }
            let order_w = order_writes(rs[i]);
            for j in 0..n {
                if i == j || dead[j] {
                    continue;
                }
                let value_edge = cell_writes[i]
                    .iter()
                    .any(|c| value_reads(rs[j]).contains(c));
                let order_edge = order_w.iter().any(|c| order_reads(rs[j]).contains(c));
                let merge_edge =
                    merge_rule[i] && rels[i].iter().any(|r| rels[j].binary_search(r).is_ok());
                if value_edge || order_edge || merge_edge {
                    edges.push((i, j));
                }
            }
        }

        RuleGraph {
            nrules: n,
            rels,
            cell_writes,
            merge_rule,
            dead,
            subsumed_by,
            follows_writes,
            edges,
        }
    }

    /// The inter-rule diagnostics (`W201`/`W202`). Confluence hazards
    /// (`W203`) moved to the certify pass, which upgrades the pairwise
    /// overlap check to critical-pair co-satisfiability.
    pub fn diagnose(&self, rules: &RuleSet, _schema: &DatabaseSchema) -> Vec<Diagnostic> {
        let rs: Vec<&Rule> = rules.iter().collect();
        let mut out = Vec::new();
        // W201 — dead weight: the consequence cannot add information.
        for (i, r) in rs.iter().enumerate() {
            if self.rels[i].is_empty() && self.cell_writes[i].is_empty() && self.dead[i] {
                continue; // malformed/unsat: already reported with errors
            }
            let span = r.spans.consequence;
            if r.precondition.contains(&r.consequence) {
                out.push(Diagnostic::new(
                    DiagCode::DeadRule,
                    &r.name,
                    span,
                    "consequence already appears in the precondition — the rule can \
                     only restate what it matched"
                        .to_owned(),
                ));
            } else if trivial_consequence(&r.consequence) {
                out.push(Diagnostic::new(
                    DiagCode::DeadRule,
                    &r.name,
                    span,
                    format!("consequence {} is trivially satisfied", r.consequence),
                ));
            }
        }
        // W202 — subsumption.
        for (i, r) in rs.iter().enumerate() {
            if let Some(j) = self.subsumed_by[i] {
                out.push(
                    Diagnostic::new(
                        DiagCode::SubsumedRule,
                        &r.name,
                        r.spans.rule,
                        format!(
                            "rule '{}' has the same consequence under a weaker \
                             precondition — '{}' never fires alone",
                            rs[j].name, r.name
                        ),
                    )
                    .with_note(format!("subsumed by rule '{}'", rs[j].name)),
                );
            }
        }
        out
    }
}

/// Cells a consequence writes when it fires (mirrors the chase's
/// `propose()`: only these consequence shapes produce cell proposals).
pub fn consequence_cell_writes(r: &Rule) -> Vec<(RelId, AttrId)> {
    let mut out = match &r.consequence {
        Predicate::Const {
            var,
            attr,
            op: CmpOp::Eq,
            ..
        } => vec![(r.rel_of(*var), *attr)],
        Predicate::Attr {
            lvar,
            lattr,
            op: CmpOp::Eq,
            rvar,
            rattr,
        } => vec![(r.rel_of(*lvar), *lattr), (r.rel_of(*rvar), *rattr)],
        Predicate::ValExtract { tvar, attr, .. } => vec![(r.rel_of(*tvar), *attr)],
        Predicate::Predict { var, target, .. } => vec![(r.rel_of(*var), *target)],
        _ => Vec::new(),
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// `(relation, attribute)` cells the precondition reads as values.
pub fn value_reads(r: &Rule) -> Vec<(RelId, AttrId)> {
    let mut out = Vec::new();
    for p in &r.precondition {
        for v in p.tuple_vars() {
            let rel = r.rel_of(v);
            for a in p.reads_of(v) {
                out.push((rel, a));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Attributes whose validated *order* the precondition consults.
pub fn order_reads(r: &Rule) -> Vec<(RelId, AttrId)> {
    let mut out = Vec::new();
    for p in &r.precondition {
        if let Predicate::Temporal { lvar, attr, .. } | Predicate::MlRank { lvar, attr, .. } = p {
            out.push((r.rel_of(*lvar), *attr));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Attributes whose validated order the consequence extends.
pub fn order_writes(r: &Rule) -> Vec<(RelId, AttrId)> {
    match &r.consequence {
        Predicate::Temporal { lvar, attr, .. } => vec![(r.rel_of(*lvar), *attr)],
        _ => Vec::new(),
    }
}

/// Cells whose *current values* the consequence reads to produce its
/// write — the data-flow sources of a fix. An `Attr`-equality consequence
/// copies between its two cells (either side can be the repair source
/// under §3.2's accuracy ordering), a `Predict` consequence reads the
/// evidence attributes it conditions on; constant and KG-extraction
/// consequences synthesize their value from outside the database.
pub fn consequence_value_sources(r: &Rule) -> Vec<(RelId, AttrId)> {
    let mut out = match &r.consequence {
        Predicate::Attr {
            lvar,
            lattr,
            op: CmpOp::Eq,
            rvar,
            rattr,
        } => vec![(r.rel_of(*lvar), *lattr), (r.rel_of(*rvar), *rattr)],
        Predicate::Predict { var, evidence, .. } => {
            evidence.iter().map(|a| (r.rel_of(*var), *a)).collect()
        }
        _ => Vec::new(),
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// `t.eid = t.eid` — a union–find no-op, always skip-safe.
fn reflexive_merge(p: &Predicate) -> bool {
    matches!(p, Predicate::EidCmp { lvar, rvar, eq: true } if lvar == rvar)
}

/// `… && t.eid = s.eid … -> t.eid = s.eid` — merging a class with itself.
/// The precondition is evaluated over the *current* entity classes, so
/// whenever it holds the merge is already committed.
fn inert_merge(r: &Rule) -> bool {
    matches!(r.consequence, Predicate::EidCmp { eq: true, .. })
        && r.precondition.contains(&r.consequence)
}

/// Consequences satisfied by every tuple (`W201`, not skip-safe in
/// general — equality consequences still validate cells).
fn trivial_consequence(p: &Predicate) -> bool {
    match p {
        Predicate::Attr {
            lvar,
            lattr,
            op,
            rvar,
            rattr,
        } => lvar == rvar && lattr == rattr && matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge),
        Predicate::EidCmp { lvar, rvar, eq } => *eq && lvar == rvar,
        Predicate::Temporal {
            lvar,
            rvar,
            strict: false,
            ..
        } => lvar == rvar,
        _ => false,
    }
}

/// Does `weak` fire on every valuation `strong` fires on, with the same
/// consequence? Requires aligned variable signatures so predicate indices
/// mean the same thing in both rules.
fn covers(weak: &Rule, strong: &Rule) -> bool {
    if weak.name == strong.name {
        return false;
    }
    let sig = |r: &Rule| r.tuple_vars.iter().map(|(_, rel)| *rel).collect::<Vec<_>>();
    if sig(weak) != sig(strong)
        || weak.vertex_vars.len() != strong.vertex_vars.len()
        || weak.consequence != strong.consequence
    {
        return false;
    }
    weak.precondition
        .iter()
        .all(|p| strong.precondition.contains(p))
}

/// The consequence `t.A = 'c'`, as `((var, attr), value)`.
pub fn const_eq_consequence(r: &Rule) -> Option<((usize, AttrId), &rock_data::Value)> {
    match &r.consequence {
        Predicate::Const {
            var,
            attr,
            op: CmpOp::Eq,
            value,
        } => Some(((*var, *attr), value)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_rules;
    use rock_data::{AttrType, RelationSchema};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![
            RelationSchema::of(
                "T",
                &[
                    ("city", AttrType::Str),
                    ("code", AttrType::Str),
                    ("pop", AttrType::Int),
                ],
            ),
            RelationSchema::of("U", &[("k", AttrType::Str), ("v", AttrType::Str)]),
        ])
    }

    fn graph(text: &str) -> (RuleGraph, RuleSet, DatabaseSchema) {
        let s = schema();
        let rules = RuleSet::new(parse_rules(text, &s).expect("rules parse"));
        let g = RuleGraph::build(&rules, &s);
        (g, rules, s)
    }

    #[test]
    fn reflexive_merge_is_dead_and_flagged() {
        let (g, rules, s) = graph(
            "rule d: T(t) && t.city = 'x' -> t.eid = t.eid\n\
                   rule ok: T(t) && T(u) && t.city = u.city -> t.code = u.code\n",
        );
        assert_eq!(g.dead, vec![true, false]);
        let ds = g.diagnose(&rules, &s);
        assert!(ds
            .iter()
            .any(|d| d.code == DiagCode::DeadRule && d.rule == "d"));
    }

    #[test]
    fn restated_consequence_is_w201_but_not_skip_safe() {
        let (g, rules, s) = graph("rule d: T(t) && T(u) && t.code = u.code -> t.code = u.code\n");
        assert_eq!(
            g.dead,
            vec![false],
            "equality consequences still validate cells"
        );
        let ds = g.diagnose(&rules, &s);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::DeadRule);
    }

    #[test]
    fn subsumption_flags_the_stronger_rule() {
        let (g, rules, s) = graph(
            "rule weak: T(t) && T(u) && t.city = u.city -> t.code = u.code\n\
             rule strong: T(t) && T(u) && t.city = u.city && t.pop = u.pop -> t.code = u.code\n",
        );
        assert_eq!(g.subsumed_by, vec![None, Some(0)]);
        let ds = g.diagnose(&rules, &s);
        let w202: Vec<_> = ds
            .iter()
            .filter(|d| d.code == DiagCode::SubsumedRule)
            .collect();
        assert_eq!(w202.len(), 1);
        assert_eq!(w202[0].rule, "strong");
    }

    #[test]
    fn consequence_sources_cover_copies_and_predictions() {
        let (_, rules, _) = graph(
            "rule fd: T(t) && T(u) && t.city = u.city -> t.code = u.code\n\
             rule cfd: T(t) && t.city = 'beijing' -> t.code = '010'\n",
        );
        let fd = rules.iter().next().expect("two rules");
        let srcs = consequence_value_sources(fd);
        assert_eq!(srcs.len(), 1, "both sides are the same (rel, attr) cell");
        let cfd = rules.iter().nth(1).expect("two rules");
        assert!(consequence_value_sources(cfd).is_empty());
    }

    #[test]
    fn edges_follow_writes_into_reads() {
        let (g, _, _) = graph(
            "rule fd: T(t) && T(u) && t.city = u.city -> t.code = u.code\n\
             rule use_code: T(t) && t.code = '010' -> t.pop = 1\n\
             rule unrelated: U(t) && U(u) && t.k = u.k -> t.v = u.v\n",
        );
        assert!(
            g.edges.contains(&(0, 1)),
            "fd writes code, use_code reads it"
        );
        assert!(g.edges.iter().all(|&(i, j)| i != 2 && j != 2));
        // fd and use_code both write T cells? fd writes code, use_code pop —
        // disjoint, and no merge rules: nothing must follow writes.
        assert_eq!(g.follows_writes, vec![false, false, false]);
    }

    #[test]
    fn merge_makes_writers_follow() {
        let (g, _, _) = graph(
            "rule er: T(t) && T(u) && t.city = u.city -> t.eid = u.eid\n\
             rule fd: T(t) && T(u) && t.city = u.city -> t.code = u.code\n\
             rule other: U(t) && U(u) && t.k = u.k -> t.v = u.v\n",
        );
        assert!(g.merge_rule[0]);
        assert!(g.follows_writes[1], "a T merge can rewrite fd's cells");
        assert!(!g.follows_writes[2], "U is not mergeable here");
    }
}
