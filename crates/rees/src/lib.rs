//! # rock-rees — the REE++ rule language (paper §2)
//!
//! An REE++ is a rule `φ : X → p0` over a database schema, where `X` (the
//! *precondition*) is a conjunction of predicates and `p0` (the
//! *consequence*) is a single predicate. The predicate grammar is the full
//! grammar of §2.1–2.3:
//!
//! ```text
//! p ::= R(t)                      relation atom (tuple-variable binding)
//!     | t.A op c                  constant predicate
//!     | t.A op s.B                attribute comparison
//!     | M(t[As], s[Bs])           ML predicate (Boolean classifier)
//!     | t <=[A] s | t <[A] s      temporal predicates            (§2.2)
//!     | Mrank(t1, t2, op[A])      ML ranking predicate           (§2.2)
//!     | vertex(x, G)              vertex-variable binding        (§2.3)
//!     | HER(t, x)                 heterogeneous ER               (§2.3)
//!     | match(t.A, x.path)        path-encodes-attribute check   (§2.3)
//!     | t[A] = val(x.path)        KG value extraction            (§2.3)
//!     | Mc(t[As], t.B='c') >= d   correlation w/ constant        (§2.3)
//!     | Mc(t[As], t.B) >= d       correlation w/ attribute       (§2.3)
//!     | t.B = Md(t[As])           ML value prediction            (§2.3)
//!     | null(t.A)                 null check (syntactic sugar, Ex. 3)
//!     | t.eid op s.eid            entity identification (ER consequences)
//! ```
//!
//! REE++s subsume CFDs, DCs and MDs as special cases ([39]); with op ranging
//! over `{=, !=, <, <=, >, >=}` and ML classifiers permitted on either side
//! of the arrow, they express every rule in the paper's examples (φ1…φ15
//! and the e-commerce rules of §6) — all of which appear in this
//! repository's tests, examples and workloads.
//!
//! The crate provides the AST ([`predicate`], [`rule`]), a text DSL with a
//! parser and pretty-printer ([`parser`]), valuations and satisfaction
//! semantics ([`eval`]), and support/confidence measures ([`measures`]).

// Rule evaluation sits on the chase's hot path and inside discovery's
// measure loops; a panic there takes a whole correction run down, so
// non-test code must surface errors as values (same gate as rock-crystal).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod diag;
pub mod eval;
pub mod graph;
pub mod measures;
pub mod op;
pub mod parser;
pub mod predicate;
pub mod rule;
pub mod sat;
pub mod schedule;

pub use diag::{max_severity, DiagCode, Diagnostic, RuleSpans, Severity, Span};
pub use eval::{EvalContext, Valuation};
pub use graph::RuleGraph;
pub use op::CmpOp;
pub use parser::{parse_rule, parse_rules, ParseError};
pub use predicate::{ModelRef, Predicate};
pub use rule::{Rule, RuleSet};
pub use sat::{co_satisfiable, CoSat};
pub use schedule::{ChaseSchedule, Oscillation, RoundBound, TerminationClass};
