//! Typed, span-carrying diagnostics for ruleset analysis.
//!
//! Every static check over a ruleset — the well-formedness conditions of §2
//! that [`crate::rule::Rule::validate`] used to report as bare strings, plus
//! the satisfiability and inter-rule passes in `rock-analyze` — reports
//! through one [`Diagnostic`] shape, so the CLI, CI gate and discovery
//! filter all consume the same structure. Codes are stable identifiers
//! (`E001`, `W202`, …) documented in DESIGN.md; severity drives the
//! analyzer's process exit code.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A source region inside a rule's DSL text: 1-based line, byte columns
/// `[start, end)` within that line. `Span::none()` (all zeros) marks rules
/// built programmatically rather than parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Span {
    pub line: u32,
    pub start: u32,
    pub end: u32,
}

impl Span {
    /// The empty span, for rules that never went through the parser.
    pub fn none() -> Self {
        Span::default()
    }

    pub fn new(line: u32, start: u32, end: u32) -> Self {
        Span { line, start, end }
    }

    /// True when this span carries no position (programmatic rule).
    pub fn is_none(&self) -> bool {
        *self == Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "<no span>")
        } else {
            write!(f, "{}:{}-{}", self.line, self.start, self.end)
        }
    }
}

/// Source spans for a parsed rule: the whole rule plus one span per
/// precondition predicate and one for the consequence.
///
/// Kept as a side-structure on [`crate::rule::Rule`] rather than inline on
/// [`crate::predicate::Predicate`] so the AST stays a pure value type:
/// spans are *position* metadata, not rule identity. Two rules that parse
/// from different lines of the same DSL text are the same rule, so this
/// type compares equal to everything and is skipped by serde — round-trip
/// (`parse → print → parse`) and serialization equality keep holding.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleSpans {
    pub rule: Span,
    pub preconditions: Vec<Span>,
    pub consequence: Span,
}

impl RuleSpans {
    /// Span of precondition predicate `i`, or the rule span as fallback for
    /// programmatic rules (whose vectors are empty).
    pub fn precondition(&self, i: usize) -> Span {
        self.preconditions.get(i).copied().unwrap_or(self.rule)
    }
}

impl PartialEq for RuleSpans {
    fn eq(&self, _other: &Self) -> bool {
        true // spans carry no semantic identity; see type docs
    }
}

/// Diagnostic severity, ordered so `max()` picks the worst. The
/// `rock-analyze` CLI exits with this as its status code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Severity {
    #[default]
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Process exit code for the CLI: 0 info/clean, 1 warning, 2 error.
    pub fn exit_code(&self) -> i32 {
        match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. `E0xx` well-formedness, `E1xx`/`W1xx` local
/// satisfiability, `W2xx` inter-rule analysis, `E3xx`/`W3xx` chase
/// certification. The numeric bands match the analyzer's pass structure
/// (see DESIGN.md for the full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiagCode {
    /// E001 — predicate uses a tuple variable not bound by a relation atom.
    UnboundTupleVar,
    /// E002 — predicate uses a vertex variable not bound by `vertex(x, G)`.
    UnboundVertexVar,
    /// E003 — attribute id out of range for the variable's relation.
    AttrOutOfRange,
    /// E004 — temporal/ranking predicate spans two different relations.
    CrossRelTemporal,
    /// E005 — constant's type can never satisfy the attribute's declared
    /// type (e.g. `t.amount = 'abc'` on an int attribute).
    ConstTypeMismatch,
    /// E006 — ML predicate with an empty evidence/attribute list.
    EmptyMlAttrs,
    /// E007 — correlation threshold δ outside `(0, 1]`.
    BadThreshold,
    /// E101 — conflicting constant bindings: `t.A = 'a' ∧ t.A = 'b'`.
    UnsatConstEq,
    /// E102 — contradictory comparisons: `t.A < s.B ∧ t.A > s.B`.
    UnsatCompare,
    /// E103 — reflexive predicate that can never hold, e.g. `t.A != t.A`.
    ReflexiveNeverTrue,
    /// W104 — predicate is trivially true (`t.A = t.A`): dead weight.
    TriviallyTrue,
    /// W201 — dead rule: the consequence is implied by the precondition or
    /// trivially true, so the rule can never produce a fix.
    DeadRule,
    /// W202 — subsumed rule: another rule with the same consequence has a
    /// strictly weaker precondition.
    SubsumedRule,
    /// W203 — confluence hazard: two rules can co-fire on overlapping
    /// valuations but assign conflicting constants to the same cell.
    ConfluenceHazard,
    /// E301 — unbounded chase: a constant-flow cycle keeps contesting one
    /// cell with different constants, so no termination bound exists.
    UnboundedChase,
    /// W301 — competing writers proven co-satisfiable: a concrete witness
    /// tuple fires both rules, turning the W203 hazard into a certainty.
    CompetingWriters,
    /// W302 — self-sustaining constant cascade: a constant-flow cycle
    /// whose writes are mutually consistent; terminating, but the round
    /// bound degrades from the dependency depth to the lattice height.
    ConstantCascade,
}

impl DiagCode {
    pub fn as_str(&self) -> &'static str {
        use DiagCode::*;
        match self {
            UnboundTupleVar => "E001",
            UnboundVertexVar => "E002",
            AttrOutOfRange => "E003",
            CrossRelTemporal => "E004",
            ConstTypeMismatch => "E005",
            EmptyMlAttrs => "E006",
            BadThreshold => "E007",
            UnsatConstEq => "E101",
            UnsatCompare => "E102",
            ReflexiveNeverTrue => "E103",
            TriviallyTrue => "W104",
            DeadRule => "W201",
            SubsumedRule => "W202",
            ConfluenceHazard => "W203",
            UnboundedChase => "E301",
            CompetingWriters => "W301",
            ConstantCascade => "W302",
        }
    }

    /// The severity this code always reports at (codes and severities are
    /// 1:1 — the `E`/`W` prefix is part of the code's contract).
    pub fn severity(&self) -> Severity {
        use DiagCode::*;
        match self {
            UnboundTupleVar | UnboundVertexVar | AttrOutOfRange | CrossRelTemporal
            | ConstTypeMismatch | EmptyMlAttrs | BadThreshold | UnsatConstEq | UnsatCompare
            | ReflexiveNeverTrue | UnboundedChase => Severity::Error,
            TriviallyTrue | DeadRule | SubsumedRule | ConfluenceHazard | CompetingWriters
            | ConstantCascade => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding, attached to a rule and a span within it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    pub code: DiagCode,
    pub severity: Severity,
    /// Name of the rule the finding is about.
    pub rule: String,
    pub span: Span,
    pub message: String,
    /// Secondary context lines (e.g. the other rule of a subsumption pair).
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(code: DiagCode, rule: impl Into<String>, span: Span, message: String) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            rule: rule.into(),
            span,
            message,
            notes: Vec::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] rule {}: {}",
            self.severity, self.code, self.rule, self.message
        )?;
        if !self.span.is_none() {
            write!(f, " (at {})", self.span)?;
        }
        for n in &self.notes {
            write!(f, "\n    note: {n}")?;
        }
        Ok(())
    }
}

/// Highest severity across a batch, `None` when there are no diagnostics.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_exits() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.exit_code(), 2);
    }

    #[test]
    fn code_severity_bands() {
        assert_eq!(DiagCode::UnboundTupleVar.severity(), Severity::Error);
        assert_eq!(DiagCode::UnsatConstEq.severity(), Severity::Error);
        assert_eq!(DiagCode::SubsumedRule.severity(), Severity::Warning);
        assert_eq!(DiagCode::UnsatConstEq.as_str(), "E101");
    }

    #[test]
    fn spans_do_not_affect_rule_spans_equality() {
        let a = RuleSpans {
            rule: Span::new(3, 0, 10),
            preconditions: vec![Span::new(3, 2, 5)],
            consequence: Span::new(3, 6, 10),
        };
        let b = RuleSpans::default();
        assert_eq!(a, b);
    }

    #[test]
    fn display_carries_code_rule_and_notes() {
        let d = Diagnostic::new(
            DiagCode::UnsatConstEq,
            "phi9",
            Span::new(2, 4, 9),
            "t.city can never equal both 'a' and 'b'".into(),
        )
        .with_note("first binding here");
        let s = d.to_string();
        assert!(s.contains("E101"));
        assert!(s.contains("phi9"));
        assert!(s.contains("2:4-9"));
        assert!(s.contains("note: first binding"));
    }

    #[test]
    fn max_severity_picks_worst() {
        assert_eq!(max_severity(&[]), None);
        let d1 = Diagnostic::new(DiagCode::TriviallyTrue, "r", Span::none(), "x".into());
        let d2 = Diagnostic::new(DiagCode::AttrOutOfRange, "r", Span::none(), "y".into());
        assert_eq!(max_severity(&[d1.clone()]), Some(Severity::Warning));
        assert_eq!(max_severity(&[d1, d2]), Some(Severity::Error));
    }
}
