//! Pass 4 — termination certification and the stratified chase schedule.
//!
//! The chase (paper §4) terminates on every instance *in principle* — the
//! fix store is a join-semilattice and every accepted fix climbs it — but
//! nothing in the earlier passes says *how fast*, and nothing rules out a
//! ruleset whose constant writes feed each other's guards in a loop and
//! keep contesting the same cell forever. This pass runs an abstract
//! interpretation over the rule program's write→read structure (attribute
//! level: the lattice element for a rule is the set of `(relation,
//! attribute)` cells it can touch) and produces:
//!
//! * a **termination class** per ruleset — [`TerminationClass::StaticBound`]
//!   when the certification graph is acyclic (rounds bounded by the longest
//!   dependency chain, independent of the data), [`TerminationClass::AcyclicStrata`]
//!   when cycles exist but every fix is monotone (rounds bounded by the
//!   lattice height of the instance, applied stratum by stratum), and
//!   [`TerminationClass::Unbounded`] when a constant-flow oscillation
//!   contests one cell with different constants around a cycle;
//! * a **stratified schedule** — the topologically ordered strongly
//!   connected components of the certification graph, each with its own
//!   [`RoundBound`] — which the chase consumes behind
//!   `ChaseConfig { use_schedule: true }`;
//! * **witnesses** for the certify diagnostics: oscillating cycles
//!   (`E301`) and self-sustaining but consistent constant cascades
//!   (`W302`). The diagnostics themselves are emitted by `rock-analyze`'s
//!   certify pass; this module only computes the facts.
//!
//! The certification graph is deliberately *denser* than
//! [`RuleGraph::edges`]: it keeps self-edges and adds consequence-source
//! reads (an FD copy `-> t.code = u.code` re-reads the cell it writes).
//! Scheduling cares about which rules a delta can re-activate; termination
//! cares about whether a rule can keep feeding itself.

use crate::graph::{self, const_eq_consequence, order_reads, order_writes, value_reads};
use crate::{sat, Predicate, Rule, RuleSet, Severity};
use rock_data::{AttrId, DatabaseSchema, RelId};
use serde::Serialize;

/// How the certifier classifies a ruleset's chase termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TerminationClass {
    /// The certification graph is acyclic (self-edges included): new fixes
    /// can only propagate down a finite dependency chain, so the round
    /// count is bounded by a constant of the *ruleset*, independent of the
    /// instance.
    StaticBound,
    /// Cyclic strata exist, but no constant-flow oscillation: every fix is
    /// monotone in the chase lattice, so each stratum quiesces within the
    /// lattice height of the instance and the strata are traversed in
    /// topological order.
    AcyclicStrata,
    /// A constant-flow cycle contests one cell with different constants —
    /// no monotonicity argument applies and the certifier refuses to bound
    /// the chase (`E301` carries the witness).
    Unbounded,
}

impl TerminationClass {
    pub fn as_str(self) -> &'static str {
        match self {
            TerminationClass::StaticBound => "static-bound",
            TerminationClass::AcyclicStrata => "acyclic-strata",
            TerminationClass::Unbounded => "unbounded",
        }
    }
}

/// A certified upper bound on chase rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RoundBound {
    /// Instance-independent: at most this many rounds, full stop.
    Rounds(u64),
    /// Instance-dependent: the height of the fix lattice — one step per
    /// cell repair plus one per tuple for entity merges, plus `tuples²`
    /// order edges when temporal consequences chase validated orders —
    /// plus structural `slack` rounds for cross-stratum propagation.
    LatticeHeight { slack: u64, ordered_attrs: bool },
}

impl RoundBound {
    /// Concretize against an instance of `tuples` tuples / `cells` cells.
    pub fn resolve(&self, tuples: u64, cells: u64) -> u64 {
        match *self {
            RoundBound::Rounds(b) => b,
            RoundBound::LatticeHeight {
                slack,
                ordered_attrs,
            } => {
                let order = if ordered_attrs {
                    tuples.saturating_mul(tuples)
                } else {
                    0
                };
                cells
                    .saturating_add(tuples)
                    .saturating_add(order)
                    .saturating_add(slack)
            }
        }
    }
}

/// An `E301` witness: a constant-flow cycle around which two rules keep
/// pinning the same cell to different constants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Oscillation {
    /// Rule indices forming the cycle (sorted; every member is reachable
    /// from every other through constant-flow edges).
    pub cycle: Vec<usize>,
    /// The contested cell.
    pub rel: RelId,
    pub attr: AttrId,
    /// Two cycle members writing `(rel, attr)` with differing constants.
    pub writers: (usize, usize),
}

/// The certifier's full output: scheduling strata plus the termination
/// certificate the chase enforces at runtime.
#[derive(Debug, Clone, Serialize)]
pub struct ChaseSchedule {
    /// The scheduling graph (shared with `use_rule_graph` activation).
    pub graph: graph::RuleGraph,
    /// Strongly connected components of the certification graph in
    /// topological order; members sorted. Dead rules appear in no stratum.
    pub strata: Vec<Vec<usize>>,
    /// Inverse map: `stratum_of[rule]`, `None` for dead rules.
    pub stratum_of: Vec<Option<usize>>,
    /// Whether each stratum contains a dependency cycle (more than one
    /// member, or a self-edge).
    pub stratum_cyclic: Vec<bool>,
    /// Per-stratum round bounds (acyclic strata quiesce in a constant
    /// number of rounds; cyclic strata climb the lattice).
    pub stratum_bounds: Vec<RoundBound>,
    /// The termination class of the whole ruleset.
    pub class: TerminationClass,
    /// The whole-chase bound; `None` exactly when `class` is `Unbounded`.
    pub bound: Option<RoundBound>,
    /// `E301` witnesses (oscillating constant-flow cycles).
    pub oscillations: Vec<Oscillation>,
    /// `W302` witnesses: constant-flow cycles whose writes are mutually
    /// consistent (sorted rule indices per cycle).
    pub cascades: Vec<Vec<usize>>,
}

impl ChaseSchedule {
    /// Build the schedule straight from a ruleset, mirroring the
    /// analyzer's pass masks (well-formedness, then local satisfiability)
    /// so the chase's self-built schedule and `rock-analyze`'s report can
    /// never disagree about which rules are live.
    pub fn derive(rules: &RuleSet, schema: &DatabaseSchema) -> ChaseSchedule {
        let mut malformed = vec![false; rules.len()];
        for (i, r) in rules.iter().enumerate() {
            malformed[i] = r
                .well_formedness(schema)
                .iter()
                .any(|d| d.severity == Severity::Error);
        }
        let mut unsat = vec![false; rules.len()];
        for (i, r) in rules.iter().enumerate() {
            if !malformed[i] {
                unsat[i] = sat::check_rule(r)
                    .iter()
                    .any(|d| d.severity == Severity::Error);
            }
        }
        let g = graph::RuleGraph::build_masked(rules, schema, &malformed, &unsat);
        ChaseSchedule::from_graph(g, rules)
    }

    /// Build the schedule from an already-computed scheduling graph.
    pub fn from_graph(g: graph::RuleGraph, rules: &RuleSet) -> ChaseSchedule {
        let rs: Vec<&Rule> = rules.iter().collect();
        let n = g.nrules;

        // Certification adjacency: scheduling edges + self-edges +
        // consequence-source reads, live rules only.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            if g.dead[i] {
                continue;
            }
            let order_w = order_writes(rs[i]);
            for j in 0..n {
                if g.dead[j] {
                    continue;
                }
                let reads = value_reads(rs[j]);
                let sources = graph::consequence_value_sources(rs[j]);
                let value_edge = g.cell_writes[i]
                    .iter()
                    .any(|c| reads.contains(c) || sources.contains(c));
                let order_edge = order_w.iter().any(|c| order_reads(rs[j]).contains(c));
                let merge_edge =
                    g.merge_rule[i] && g.rels[i].iter().any(|r| g.rels[j].binary_search(r).is_ok());
                if value_edge || order_edge || merge_edge {
                    adj[i].push(j);
                }
            }
        }

        let live: Vec<bool> = g.dead.iter().map(|d| !d).collect();
        let strata = condense(&adj, &live);
        let mut stratum_of = vec![None; n];
        for (s, members) in strata.iter().enumerate() {
            for &m in members {
                stratum_of[m] = Some(s);
            }
        }
        let stratum_cyclic: Vec<bool> = strata
            .iter()
            .map(|ms| ms.len() > 1 || ms.iter().any(|&m| adj[m].contains(&m)))
            .collect();

        // Constant-flow graph: which constant writes can *trigger* which
        // constant guards. Self-loops are excluded — re-firing a Const-Eq
        // consequence rewrites the identical value, which the fix store
        // absorbs idempotently.
        let mut flow: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            if g.dead[i] {
                continue;
            }
            let Some(((vi, attri), ci)) = const_eq_consequence(rs[i]) else {
                continue;
            };
            let celli = (rs[i].rel_of(vi), attri);
            for (j, rj) in rs.iter().enumerate() {
                if i == j || g.dead[j] || const_eq_consequence(rj).is_none() {
                    continue;
                }
                let triggered = rj.precondition.iter().any(|p| match p {
                    Predicate::Const {
                        var,
                        attr,
                        op,
                        value,
                    } => (rj.rel_of(*var), *attr) == celli && op.eval(ci, value),
                    _ => false,
                });
                if triggered {
                    flow[i].push(j);
                }
            }
        }
        let flow_live: Vec<bool> = (0..n)
            .map(|i| live[i] && const_eq_consequence(rs[i]).is_some())
            .collect();
        let mut oscillations = Vec::new();
        let mut cascades = Vec::new();
        for scc in condense(&flow, &flow_live) {
            if scc.len() < 2 {
                continue;
            }
            let contested = scc.iter().enumerate().find_map(|(k, &i)| {
                scc[k + 1..].iter().find_map(|&j| {
                    let ((vi, ai), ci) = const_eq_consequence(rs[i])?;
                    let ((vj, aj), cj) = const_eq_consequence(rs[j])?;
                    let (reli, relj) = (rs[i].rel_of(vi), rs[j].rel_of(vj));
                    (reli == relj && ai == aj && !ci.sql_eq(cj)).then_some((i, j, reli, ai))
                })
            });
            match contested {
                Some((i, j, rel, attr)) => oscillations.push(Oscillation {
                    cycle: scc,
                    rel,
                    attr,
                    writers: (i, j),
                }),
                None => cascades.push(scc),
            }
        }

        let ordered_attrs = (0..n).any(|i| live[i] && !order_writes(rs[i]).is_empty());
        let stratum_bounds: Vec<RoundBound> = stratum_cyclic
            .iter()
            .map(|&cyc| {
                if cyc {
                    RoundBound::LatticeHeight {
                        slack: 2,
                        ordered_attrs,
                    }
                } else {
                    RoundBound::Rounds(2)
                }
            })
            .collect();

        let (class, bound) = if !oscillations.is_empty() {
            (TerminationClass::Unbounded, None)
        } else if stratum_cyclic.iter().all(|&c| !c) {
            // Longest dependency chain over the (acyclic) certification
            // graph; strata are singletons in topological order.
            let mut depth = vec![0u64; n];
            let mut longest = 0u64;
            for ms in &strata {
                for &i in ms {
                    for &j in &adj[i] {
                        depth[j] = depth[j].max(depth[i].saturating_add(1));
                        longest = longest.max(depth[j]);
                    }
                }
            }
            (
                TerminationClass::StaticBound,
                Some(RoundBound::Rounds(longest.saturating_add(2))),
            )
        } else {
            (
                TerminationClass::AcyclicStrata,
                Some(RoundBound::LatticeHeight {
                    slack: (strata.len() as u64).saturating_add(2),
                    ordered_attrs,
                }),
            )
        };

        ChaseSchedule {
            graph: g,
            strata,
            stratum_of,
            stratum_cyclic,
            stratum_bounds,
            class,
            bound,
            oscillations,
            cascades,
        }
    }

    /// Cells every live rule can ever write — the lattice-height estimate
    /// counts only chased cells, keeping bounds honest on wide schemas.
    pub fn writable_cells(&self) -> Vec<(RelId, AttrId)> {
        let mut out: Vec<(RelId, AttrId)> = self
            .graph
            .cell_writes
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.graph.dead[*i])
            .flat_map(|(_, ws)| ws.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Strongly connected components of `adj` restricted to `live` nodes, in
/// topological order of the condensation (Tarjan emits reverse order).
fn condense(adj: &[Vec<usize>], live: &[bool]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut state = Condense {
        adj,
        live,
        index: vec![usize::MAX; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if live[v] && state.index[v] == usize::MAX {
            state.strongconnect(v);
        }
    }
    let mut sccs = state.sccs;
    sccs.reverse();
    for scc in &mut sccs {
        scc.sort_unstable();
    }
    sccs
}

struct Condense<'a> {
    adj: &'a [Vec<usize>],
    live: &'a [bool],
    index: Vec<usize>,
    low: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next: usize,
    sccs: Vec<Vec<usize>>,
}

impl Condense<'_> {
    fn strongconnect(&mut self, v: usize) {
        self.index[v] = self.next;
        self.low[v] = self.next;
        self.next += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
        for k in 0..self.adj[v].len() {
            let w = self.adj[v][k];
            if !self.live[w] {
                continue;
            }
            if self.index[w] == usize::MAX {
                self.strongconnect(w);
                self.low[v] = self.low[v].min(self.low[w]);
            } else if self.on_stack[w] {
                self.low[v] = self.low[v].min(self.index[w]);
            }
        }
        if self.low[v] == self.index[v] {
            let mut scc = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            self.sccs.push(scc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_rules;
    use rock_data::{AttrType, RelationSchema};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[
                ("a", AttrType::Str),
                ("b", AttrType::Str),
                ("c", AttrType::Str),
                ("n", AttrType::Int),
            ],
        )])
    }

    fn derive(text: &str) -> ChaseSchedule {
        let s = schema();
        let rules = RuleSet::new(parse_rules(text, &s).expect("rules parse"));
        ChaseSchedule::derive(&rules, &s)
    }

    #[test]
    fn acyclic_constant_chain_gets_a_static_bound() {
        let sch = derive(
            "rule r1: T(t) && t.a = 'x' -> t.b = 'y'\n\
             rule r2: T(t) && t.b = 'y' -> t.c = 'z'\n",
        );
        assert_eq!(sch.class, TerminationClass::StaticBound);
        // chain of one edge: depth 1, bound 3
        assert_eq!(sch.bound, Some(RoundBound::Rounds(3)));
        assert_eq!(sch.strata, vec![vec![0], vec![1]]);
        assert!(sch.stratum_cyclic.iter().all(|&c| !c));
        assert!(sch.oscillations.is_empty() && sch.cascades.is_empty());
    }

    #[test]
    fn fd_copy_self_edge_is_a_cyclic_stratum() {
        let sch = derive("rule fd: T(t) && T(u) && t.a = u.a -> t.b = u.b\n");
        assert_eq!(sch.class, TerminationClass::AcyclicStrata);
        assert_eq!(sch.strata, vec![vec![0]]);
        assert_eq!(sch.stratum_cyclic, vec![true]);
        let b = sch.bound.expect("finite bound");
        // 5 tuples × 4 attrs = 20 cells; no temporal rules
        assert_eq!(b.resolve(5, 20), 20 + 5 + 3);
    }

    #[test]
    fn flip_flop_is_unbounded_with_a_witness() {
        let sch = derive(
            "rule f1: T(t) && t.a = 'm1' -> t.a = 'm2'\n\
             rule f2: T(t) && t.a = 'm2' -> t.a = 'm1'\n",
        );
        assert_eq!(sch.class, TerminationClass::Unbounded);
        assert_eq!(sch.bound, None);
        assert_eq!(sch.oscillations.len(), 1);
        let o = &sch.oscillations[0];
        assert_eq!(o.cycle, vec![0, 1]);
        assert_eq!(o.writers, (0, 1));
    }

    #[test]
    fn consistent_ping_cycle_is_a_cascade_not_an_oscillation() {
        let sch = derive(
            "rule p1: T(t) && t.a = 'm1' -> t.b = 'm2'\n\
             rule p2: T(t) && t.b = 'm2' -> t.a = 'm1'\n",
        );
        assert_ne!(sch.class, TerminationClass::Unbounded);
        assert!(sch.oscillations.is_empty());
        assert_eq!(sch.cascades, vec![vec![0, 1]]);
        assert!(sch.bound.is_some());
    }

    #[test]
    fn dead_rules_join_no_stratum() {
        let sch = derive(
            "rule dead: T(t) && t.a = 'x' && t.a = 'y' -> t.b = 'z'\n\
             rule live: T(t) && t.a = 'x' -> t.b = 'z'\n",
        );
        assert_eq!(sch.stratum_of[0], None);
        assert_eq!(sch.stratum_of[1], Some(0));
        assert_eq!(sch.strata, vec![vec![1]]);
    }
}
