//! Comparison operators ⊕ ∈ {=, ≠, <, ≤, >, ≥} (paper §2.1).

use rock_data::{PredOp, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate under SQL null semantics: any comparison involving `Null`
    /// is false (even `Null != x`), matching how violations must not fire
    /// on missing data — MI rules handle nulls explicitly via `null(·)`.
    ///
    /// Delegates to the storage layer's [`PredOp::eval`]: the scalar row
    /// path and the vectorized columnar kernels must share one comparison
    /// implementation, or the row-store equivalence oracle could silently
    /// diverge.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        self.kernel().eval(a, b)
    }

    /// The storage-layer kernel operator this maps to.
    pub fn kernel(self) -> PredOp {
        match self {
            CmpOp::Eq => PredOp::Eq,
            CmpOp::Neq => PredOp::Neq,
            CmpOp::Lt => PredOp::Lt,
            CmpOp::Le => PredOp::Le,
            CmpOp::Gt => PredOp::Gt,
            CmpOp::Ge => PredOp::Ge,
        }
    }

    /// The negation (used to express violations `h ⊨ X ∧ ¬p0`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Parse from the DSL token.
    pub fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "=" | "==" => CmpOp::Eq,
            "!=" | "<>" => CmpOp::Neq,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_all_ops() {
        let a = Value::Int(1);
        let b = Value::Int(2);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &a));
        assert!(CmpOp::Neq.eval(&a, &b));
        assert!(!CmpOp::Eq.eval(&a, &b));
        assert!(CmpOp::Gt.eval(&b, &a));
        assert!(CmpOp::Ge.eval(&b, &b));
    }

    #[test]
    fn null_never_satisfies() {
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert!(!op.eval(&Value::Null, &Value::Int(1)), "{op}");
            assert!(!op.eval(&Value::Int(1), &Value::Null), "{op}");
            assert!(!op.eval(&Value::Null, &Value::Null), "{op}");
        }
    }

    #[test]
    fn negation_involution() {
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn negation_complementary_on_non_null() {
        let a = Value::Int(3);
        let b = Value::Int(7);
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_ne!(op.eval(&a, &b), op.negate().eval(&a, &b));
        }
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["=", "!=", "<", "<=", ">", ">="] {
            let op = CmpOp::parse(s).unwrap();
            assert_eq!(op.to_string(), s);
        }
        assert_eq!(CmpOp::parse("=="), Some(CmpOp::Eq));
        assert_eq!(CmpOp::parse("<>"), Some(CmpOp::Neq));
        assert_eq!(CmpOp::parse("~"), None);
    }
}
