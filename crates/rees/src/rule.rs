//! REE++ rules `φ : X → p0` and rule sets Σ.

use crate::diag::{DiagCode, Diagnostic, RuleSpans};
use crate::predicate::{ModelRef, Predicate, VarId, VertexVarId};
use rock_data::{AttrType, DatabaseSchema, RelId, Value};
use rock_ml::ModelRegistry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An REE++ rule.
///
/// All tuple variables must be bound by relation atoms (`tuple_vars`), and
/// all vertex variables by `vertex(x, G)` atoms (`vertex_vars`) — the
/// well-formedness condition of §2. The precondition is a conjunction; the
/// consequence a single predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    pub name: String,
    /// `(variable name, bound relation)` — the relation atoms `R(t)`.
    pub tuple_vars: Vec<(String, RelId)>,
    /// Vertex variable names — the `vertex(x, G)` atoms.
    pub vertex_vars: Vec<String>,
    pub precondition: Vec<Predicate>,
    pub consequence: Predicate,
    /// Support measured at discovery time (fraction of possible valuations
    /// satisfying X ∧ p0); 0 when hand-written.
    pub support: f64,
    /// Confidence measured at discovery time; 1.0 when hand-written.
    pub confidence: f64,
    /// Source spans when parsed from DSL text; empty for programmatic
    /// rules. Compares equal to everything and is skipped by serde — see
    /// [`RuleSpans`].
    #[serde(skip)]
    pub spans: RuleSpans,
}

impl Rule {
    pub fn new(
        name: impl Into<String>,
        tuple_vars: Vec<(String, RelId)>,
        vertex_vars: Vec<String>,
        precondition: Vec<Predicate>,
        consequence: Predicate,
    ) -> Self {
        Rule {
            name: name.into(),
            tuple_vars,
            vertex_vars,
            precondition,
            consequence,
            support: 0.0,
            confidence: 1.0,
            spans: RuleSpans::default(),
        }
    }

    /// Variable id by name.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.tuple_vars.iter().position(|(n, _)| n == name)
    }

    /// Vertex variable id by name.
    pub fn vertex_var(&self, name: &str) -> Option<VertexVarId> {
        self.vertex_vars.iter().position(|n| n == name)
    }

    /// Relation a tuple variable is bound to.
    pub fn rel_of(&self, var: VarId) -> RelId {
        self.tuple_vars[var].1
    }

    /// All predicates (precondition ∪ {consequence}).
    pub fn all_predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.precondition
            .iter()
            .chain(std::iter::once(&self.consequence))
    }

    /// Does the rule use any ML predicate? (RocknoML drops such rules.)
    pub fn uses_ml(&self) -> bool {
        self.all_predicates().any(|p| p.is_ml())
    }

    /// Mutable model references (for resolution).
    fn model_refs_mut(&mut self) -> Vec<&mut ModelRef> {
        let mut out = Vec::new();
        for p in self
            .precondition
            .iter_mut()
            .chain(std::iter::once(&mut self.consequence))
        {
            use Predicate::*;
            match p {
                Ml { model, .. }
                | MlRank { model, .. }
                | Her { model, .. }
                | CorrConst { model, .. }
                | CorrAttr { model, .. }
                | Predict { model, .. } => out.push(model),
                _ => {}
            }
        }
        out
    }

    /// Resolve every model reference against a registry. Errors on unknown
    /// model names — a rule with a dangling model must not silently no-op.
    pub fn resolve(&mut self, registry: &ModelRegistry) -> Result<(), String> {
        for m in self.model_refs_mut() {
            match registry.id(&m.name) {
                Some(id) => m.id = Some(id),
                None => return Err(format!("rule references unknown ML model '{}'", m.name)),
            }
        }
        Ok(())
    }

    /// Typed well-formedness pass (paper §2 conditions plus type and ML
    /// sanity checks): every diagnostic the rule's structure warrants, in
    /// predicate order. The first four codes (`E001`–`E004`) are the
    /// classic [`Rule::validate`] checks; `E005`–`E007` extend them with
    /// constant-domain and ML-predicate sanity and only surface through
    /// `rock-analyze` so parsing stays as permissive as before.
    pub fn well_formedness(&self, schema: &DatabaseSchema) -> Vec<Diagnostic> {
        let nvars = self.tuple_vars.len();
        let nverts = self.vertex_vars.len();
        let mut out = Vec::new();
        let npre = self.precondition.len();
        for (i, p) in self.all_predicates().enumerate() {
            let span = if i < npre {
                self.spans.precondition(i)
            } else {
                self.spans.consequence
            };
            let mut bound_ok = true;
            for v in p.tuple_vars() {
                if v >= nvars {
                    bound_ok = false;
                    out.push(Diagnostic::new(
                        DiagCode::UnboundTupleVar,
                        &self.name,
                        span,
                        format!("unbound tuple variable ?{v} in {p}"),
                    ));
                }
            }
            for x in p.vertex_vars() {
                if x >= nverts {
                    bound_ok = false;
                    out.push(Diagnostic::new(
                        DiagCode::UnboundVertexVar,
                        &self.name,
                        span,
                        format!("unbound vertex variable ?x{x} in {p}"),
                    ));
                }
            }
            // The remaining checks index tuple_vars; skip them when a
            // variable is unbound so they can't panic on bad indices.
            if !bound_ok {
                continue;
            }
            // attribute ids must exist in the bound relation's schema
            for v in p.tuple_vars() {
                let rel = schema.relation(self.rel_of(v));
                for a in p.reads_of(v) {
                    if a.index() >= rel.arity() {
                        out.push(Diagnostic::new(
                            DiagCode::AttrOutOfRange,
                            &self.name,
                            span,
                            format!("attribute {a} out of range for relation {}", rel.name),
                        ));
                    }
                }
            }
            // Temporal predicates require both sides in the same relation.
            if let Predicate::Temporal { lvar, rvar, .. } | Predicate::MlRank { lvar, rvar, .. } = p
            {
                if self.rel_of(*lvar) != self.rel_of(*rvar) {
                    out.push(Diagnostic::new(
                        DiagCode::CrossRelTemporal,
                        &self.name,
                        span,
                        format!("temporal predicate across different relations in {p}"),
                    ));
                }
            }
            self.check_const_domain(schema, p, span, &mut out);
            self.check_ml_sanity(p, span, &mut out);
        }
        out
    }

    /// E005: a constant that can never satisfy its attribute's type. The
    /// parser coerces constants with [`Value::parse_as`], so an unparseable
    /// literal arrives as `Null` — and under SQL semantics no comparison
    /// with `Null` ever holds, making the predicate unsatisfiable.
    fn check_const_domain(
        &self,
        schema: &DatabaseSchema,
        p: &Predicate,
        span: crate::diag::Span,
        out: &mut Vec<Diagnostic>,
    ) {
        let (var, attr, value) = match p {
            Predicate::Const {
                var, attr, value, ..
            }
            | Predicate::CorrConst {
                var,
                target: attr,
                value,
                ..
            } => (*var, *attr, value),
            _ => return,
        };
        let rel = schema.relation(self.rel_of(var));
        if attr.index() >= rel.arity() {
            return; // already reported as E003
        }
        let ty = rel.attr(attr).ty;
        let vty = match value {
            Value::Null => {
                out.push(Diagnostic::new(
                    DiagCode::ConstTypeMismatch,
                    &self.name,
                    span,
                    format!(
                        "constant in {p} is null (unparseable for {} attribute {}) \
                         and can never compare true",
                        ty.name(),
                        rel.attr_name(attr)
                    ),
                ));
                return;
            }
            Value::Int(_) => AttrType::Int,
            Value::Float(_) => AttrType::Float,
            Value::Str(_) => AttrType::Str,
            Value::Bool(_) => AttrType::Bool,
            Value::Date(_) => AttrType::Date,
        };
        if !vty.compatible(ty) {
            out.push(Diagnostic::new(
                DiagCode::ConstTypeMismatch,
                &self.name,
                span,
                format!(
                    "constant type {} can never satisfy {} attribute {} in {p}",
                    vty.name(),
                    ty.name(),
                    rel.attr_name(attr)
                ),
            ));
        }
    }

    /// E006/E007: ML predicates need a non-empty evidence list, and
    /// correlation thresholds must fall in `(0, 1]`.
    fn check_ml_sanity(&self, p: &Predicate, span: crate::diag::Span, out: &mut Vec<Diagnostic>) {
        let empty = |attrs: &[rock_data::AttrId]| attrs.is_empty();
        let arity_bad = match p {
            Predicate::Ml { lattrs, rattrs, .. } => empty(lattrs) || empty(rattrs),
            Predicate::CorrConst { evidence, .. }
            | Predicate::CorrAttr { evidence, .. }
            | Predicate::Predict { evidence, .. } => empty(evidence),
            _ => false,
        };
        if arity_bad {
            out.push(Diagnostic::new(
                DiagCode::EmptyMlAttrs,
                &self.name,
                span,
                format!("ML predicate {p} has an empty attribute list"),
            ));
        }
        if let Predicate::CorrConst { delta, .. } | Predicate::CorrAttr { delta, .. } = p {
            if !(*delta > 0.0 && *delta <= 1.0) {
                out.push(Diagnostic::new(
                    DiagCode::BadThreshold,
                    &self.name,
                    span,
                    format!("correlation threshold {delta} outside (0, 1] in {p}"),
                ));
            }
        }
    }

    /// Well-formedness: every variable used by a predicate is bound, and
    /// the consequence only uses bound variables (paper §2: "all tuple
    /// variables in φ are bounded in X").
    ///
    /// Back-compat wrapper over [`Rule::well_formedness`]: reports the
    /// first classic error (`E001`–`E004`) as a string, exactly the checks
    /// the parser has always enforced. The extended codes (`E005`+) are
    /// analyzer-only and do not fail validation here.
    pub fn validate(&self, schema: &DatabaseSchema) -> Result<(), String> {
        match self.well_formedness(schema).into_iter().find(|d| {
            matches!(
                d.code,
                DiagCode::UnboundTupleVar
                    | DiagCode::UnboundVertexVar
                    | DiagCode::AttrOutOfRange
                    | DiagCode::CrossRelTemporal
            )
        }) {
            Some(d) => Err(format!("{}: {}", self.name, d.message)),
            None => Ok(()),
        }
    }

    /// Render in the DSL syntax (parse/print round-trips; see `parser`).
    pub fn display<'a>(&'a self, schema: &'a DatabaseSchema) -> RuleDisplay<'a> {
        RuleDisplay { rule: self, schema }
    }
}

/// Pretty-printer bound to a schema (attribute ids → names).
pub struct RuleDisplay<'a> {
    rule: &'a Rule,
    schema: &'a DatabaseSchema,
}

impl fmt::Display for RuleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.rule;
        write!(f, "rule {}: ", r.name)?;
        let mut first = true;
        for (name, rel) in &r.tuple_vars {
            if !first {
                write!(f, " && ")?;
            }
            write!(f, "{}({})", self.schema.relation(*rel).name, name)?;
            first = false;
        }
        for x in &r.vertex_vars {
            if !first {
                write!(f, " && ")?;
            }
            write!(f, "vertex({x})")?;
            first = false;
        }
        for p in &r.precondition {
            if !first {
                write!(f, " && ")?;
            }
            self.fmt_pred(f, p)?;
            first = false;
        }
        write!(f, " -> ")?;
        self.fmt_pred(f, &r.consequence)
    }
}

impl RuleDisplay<'_> {
    fn var_name(&self, v: VarId) -> &str {
        &self.rule.tuple_vars[v].0
    }

    fn vertex_name(&self, x: VertexVarId) -> &str {
        &self.rule.vertex_vars[x]
    }

    fn attr_name(&self, v: VarId, a: rock_data::AttrId) -> &str {
        self.schema.relation(self.rule.rel_of(v)).attr_name(a)
    }

    fn attr_list(&self, v: VarId, attrs: &[rock_data::AttrId]) -> String {
        attrs
            .iter()
            .map(|a| self.attr_name(v, *a).to_owned())
            .collect::<Vec<_>>()
            .join(",")
    }

    fn fmt_pred(&self, f: &mut fmt::Formatter<'_>, p: &Predicate) -> fmt::Result {
        use Predicate::*;
        match p {
            Const {
                var,
                attr,
                op,
                value,
            } => write!(
                f,
                "{}.{} {} '{}'",
                self.var_name(*var),
                self.attr_name(*var, *attr),
                op,
                value
            ),
            Attr {
                lvar,
                lattr,
                op,
                rvar,
                rattr,
            } => write!(
                f,
                "{}.{} {} {}.{}",
                self.var_name(*lvar),
                self.attr_name(*lvar, *lattr),
                op,
                self.var_name(*rvar),
                self.attr_name(*rvar, *rattr)
            ),
            Ml {
                model,
                lvar,
                lattrs,
                rvar,
                rattrs,
            } => write!(
                f,
                "ml:{}({}[{}], {}[{}])",
                model.name,
                self.var_name(*lvar),
                self.attr_list(*lvar, lattrs),
                self.var_name(*rvar),
                self.attr_list(*rvar, rattrs)
            ),
            Temporal {
                lvar,
                rvar,
                attr,
                strict,
            } => write!(
                f,
                "{} {}[{}] {}",
                self.var_name(*lvar),
                if *strict { "<" } else { "<=" },
                self.attr_name(*lvar, *attr),
                self.var_name(*rvar)
            ),
            MlRank {
                model,
                lvar,
                rvar,
                attr,
                strict,
            } => write!(
                f,
                "rank:{}({}, {}, {}[{}])",
                model.name,
                self.var_name(*lvar),
                self.var_name(*rvar),
                if *strict { "<" } else { "<=" },
                self.attr_name(*lvar, *attr)
            ),
            Her { model, tvar, xvar } => write!(
                f,
                "her:{}({}, {})",
                model.name,
                self.var_name(*tvar),
                self.vertex_name(*xvar)
            ),
            PathMatch {
                tvar,
                attr,
                xvar,
                path,
            } => write!(
                f,
                "match({}.{}, {}.{})",
                self.var_name(*tvar),
                self.attr_name(*tvar, *attr),
                self.vertex_name(*xvar),
                path
            ),
            ValExtract {
                tvar,
                attr,
                xvar,
                path,
            } => write!(
                f,
                "{}.{} = val({}.{})",
                self.var_name(*tvar),
                self.attr_name(*tvar, *attr),
                self.vertex_name(*xvar),
                path
            ),
            CorrConst {
                model,
                var,
                evidence,
                target,
                value,
                delta,
            } => write!(
                f,
                "corr:{}({}[{}], {}.{}='{}') >= {}",
                model.name,
                self.var_name(*var),
                self.attr_list(*var, evidence),
                self.var_name(*var),
                self.attr_name(*var, *target),
                value,
                delta
            ),
            CorrAttr {
                model,
                var,
                evidence,
                target,
                delta,
            } => write!(
                f,
                "corr:{}({}[{}], {}.{}) >= {}",
                model.name,
                self.var_name(*var),
                self.attr_list(*var, evidence),
                self.var_name(*var),
                self.attr_name(*var, *target),
                delta
            ),
            Predict {
                model,
                var,
                evidence,
                target,
            } => write!(
                f,
                "{}.{} = predict:{}({}[{}])",
                self.var_name(*var),
                self.attr_name(*var, *target),
                model.name,
                self.var_name(*var),
                self.attr_list(*var, evidence)
            ),
            IsNull { var, attr } => write!(
                f,
                "null({}.{})",
                self.var_name(*var),
                self.attr_name(*var, *attr)
            ),
            EidCmp { lvar, rvar, eq } => write!(
                f,
                "{}.eid {} {}.eid",
                self.var_name(*lvar),
                if *eq { "=" } else { "!=" },
                self.var_name(*rvar)
            ),
        }
    }
}

/// A set Σ of REE++s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleSet {
    pub rules: Vec<Rule>,
}

impl RuleSet {
    pub fn new(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    pub fn push(&mut self, r: Rule) {
        self.rules.push(r);
    }

    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    pub fn get(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// Resolve all model references.
    pub fn resolve(&mut self, registry: &ModelRegistry) -> Result<(), String> {
        for r in &mut self.rules {
            r.resolve(registry)?;
        }
        Ok(())
    }

    /// The RocknoML ablation: drop every rule that uses an ML predicate.
    pub fn without_ml(&self) -> RuleSet {
        RuleSet::new(
            self.rules
                .iter()
                .filter(|r| !r.uses_ml())
                .cloned()
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpOp;
    use rock_data::{AttrId, AttrType, RelationSchema};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::of(
            "Trans",
            &[("com", AttrType::Str), ("mfg", AttrType::Str)],
        )])
    }

    /// φ2: Trans(t) ∧ Trans(s) ∧ t.com = s.com → t.mfg = s.mfg
    fn phi2() -> Rule {
        Rule::new(
            "phi2",
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            vec![Predicate::Attr {
                lvar: 0,
                lattr: AttrId(0),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(0),
            }],
            Predicate::Attr {
                lvar: 0,
                lattr: AttrId(1),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(1),
            },
        )
    }

    use rock_data::RelId;

    #[test]
    fn var_lookup_and_validation() {
        let r = phi2();
        assert_eq!(r.var("t"), Some(0));
        assert_eq!(r.var("s"), Some(1));
        assert_eq!(r.var("x"), None);
        assert!(r.validate(&schema()).is_ok());
    }

    #[test]
    fn validation_rejects_unbound_var() {
        let mut r = phi2();
        r.consequence = Predicate::EidCmp {
            lvar: 0,
            rvar: 5,
            eq: true,
        };
        assert!(r.validate(&schema()).unwrap_err().contains("unbound"));
    }

    #[test]
    fn validation_rejects_bad_attr() {
        let mut r = phi2();
        r.precondition.push(Predicate::IsNull {
            var: 0,
            attr: AttrId(9),
        });
        assert!(r.validate(&schema()).unwrap_err().contains("out of range"));
    }

    #[test]
    fn display_is_dsl_syntax() {
        let s = schema();
        let r = phi2();
        assert_eq!(
            r.display(&s).to_string(),
            "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg"
        );
    }

    #[test]
    fn without_ml_filters() {
        let mut set = RuleSet::new(vec![phi2()]);
        let mut ml_rule = phi2();
        ml_rule.name = "ml".into();
        ml_rule.precondition.push(Predicate::Ml {
            model: ModelRef::named("MER"),
            lvar: 0,
            lattrs: vec![AttrId(0)],
            rvar: 1,
            rattrs: vec![AttrId(0)],
        });
        set.push(ml_rule);
        assert_eq!(set.len(), 2);
        assert_eq!(set.without_ml().len(), 1);
        assert!(set.get("ml").unwrap().uses_ml());
    }

    #[test]
    fn well_formedness_reports_typed_codes() {
        let s = schema();
        assert!(phi2().well_formedness(&s).is_empty());

        let mut r = phi2();
        r.consequence = Predicate::EidCmp {
            lvar: 0,
            rvar: 5,
            eq: true,
        };
        let ds = r.well_formedness(&s);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnboundTupleVar);
        assert_eq!(ds[0].severity, crate::diag::Severity::Error);

        let mut r = phi2();
        r.precondition.push(Predicate::Const {
            var: 0,
            attr: rock_data::AttrId(0),
            op: crate::op::CmpOp::Eq,
            value: Value::Int(7),
        });
        let ds = r.well_formedness(&s);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::ConstTypeMismatch);
        // extended codes don't fail the classic wrapper
        assert!(r.validate(&s).is_ok());
    }

    #[test]
    fn well_formedness_flags_ml_sanity() {
        let s = schema();
        let mut r = phi2();
        r.precondition.push(Predicate::Ml {
            model: ModelRef::named("M"),
            lvar: 0,
            lattrs: vec![],
            rvar: 1,
            rattrs: vec![AttrId(0)],
        });
        let ds = r.well_formedness(&s);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::EmptyMlAttrs);

        let mut r = phi2();
        r.precondition.push(Predicate::CorrConst {
            model: ModelRef::named("Mc"),
            var: 0,
            evidence: vec![AttrId(0)],
            target: AttrId(1),
            value: Value::str("x"),
            delta: 1.5,
        });
        let ds = r.well_formedness(&s);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::BadThreshold);
    }

    #[test]
    fn resolve_unknown_model_errors() {
        let reg = ModelRegistry::new();
        let mut r = phi2();
        r.precondition.push(Predicate::Ml {
            model: ModelRef::named("nope"),
            lvar: 0,
            lattrs: vec![],
            rvar: 1,
            rattrs: vec![],
        });
        assert!(r.resolve(&reg).unwrap_err().contains("unknown ML model"));
    }
}
