//! Text DSL for REE++s, round-tripping with [`crate::rule::RuleDisplay`].
//!
//! ```text
//! rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg
//! rule phi1: Trans(t) && Trans(s) && ml:MER(t[com], s[com])
//!            && t.date = s.date && t.sid = s.sid -> t.pid = s.pid
//! rule phi4: Person(t) && Person(s) && t.status = 'single'
//!            && s.status = 'married' -> t <=[status] s
//! rule phi7: Store(t) && vertex(x) && her:HER(t, x)
//!            && match(t.location, x.LocationAt)
//!            -> t.location = val(x.LocationAt)
//! rule phi8: Trans(t) && null(t.price) -> t.price = predict:Mprice(t[com,mfg])
//! rule corr: Store(t) && corr:Mc(t[location], t.area_code='010') >= 0.8
//!            -> t.area_code = '010'
//! rule phi11: Person(t) && Person(s) && rank:Mrank(t, s, <=[LN]) -> t <=[LN] s
//! ```
//!
//! Atom kinds are dispatched syntactically; see the match arms in
//! [`parse_atom`]. Whitespace is insignificant; `&&` separates conjuncts;
//! the single `->` separates precondition from consequence.

use crate::diag::{RuleSpans, Span};
use crate::op::CmpOp;
use crate::predicate::{ModelRef, Predicate};
use crate::rule::Rule;
use rock_data::{AttrId, DatabaseSchema, RelId, Value};
use rock_kg::LabelPath;
use std::fmt;

/// Parse failure with context. `span` locates the offending atom in the
/// source text (same [`Span`] type diagnostics use); `Span::none()` when
/// the failure has no better anchor than the rule itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub rule: String,
    pub message: String,
    pub span: Span,
}

impl ParseError {
    /// Attach a span unless one is already set (inner errors win: they
    /// point at the narrowest offending region).
    fn or_span(mut self, span: Span) -> Self {
        if self.span.is_none() {
            self.span = span;
        }
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error in rule '{}': {}", self.rule, self.message)?;
        if !self.span.is_none() {
            write!(f, " (at {})", self.span)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

struct Ctx<'a> {
    schema: &'a DatabaseSchema,
    name: String,
    tuple_vars: Vec<(String, RelId)>,
    vertex_vars: Vec<String>,
}

impl Ctx<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            rule: self.name.clone(),
            message: msg.into(),
            span: Span::none(),
        }
    }

    fn var(&self, name: &str) -> Result<usize, ParseError> {
        self.tuple_vars
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| self.err(format!("unknown tuple variable '{name}'")))
    }

    fn vertex(&self, name: &str) -> Result<usize, ParseError> {
        self.vertex_vars
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| self.err(format!("unknown vertex variable '{name}'")))
    }

    fn attr(&self, var: usize, name: &str) -> Result<AttrId, ParseError> {
        let rel = self.schema.relation(self.tuple_vars[var].1);
        rel.attr_id(name)
            .ok_or_else(|| self.err(format!("relation {} has no attribute '{name}'", rel.name)))
    }

    /// Parse `t.attr`, rejecting the pseudo-attribute `eid`.
    fn var_attr(&self, s: &str) -> Result<(usize, AttrId), ParseError> {
        let (v, a) = s
            .split_once('.')
            .ok_or_else(|| self.err(format!("expected var.attr, got '{s}'")))?;
        let var = self.var(v.trim())?;
        Ok((var, self.attr(var, a.trim())?))
    }

    /// Parse `t[a,b,c]` into (var, attrs).
    fn var_attr_list(&self, s: &str) -> Result<(usize, Vec<AttrId>), ParseError> {
        let s = s.trim();
        let open = s
            .find('[')
            .ok_or_else(|| self.err(format!("expected var[attrs], got '{s}'")))?;
        if !s.ends_with(']') {
            return Err(self.err(format!("expected var[attrs], got '{s}'")));
        }
        let var = self.var(s[..open].trim())?;
        let inner = &s[open + 1..s.len() - 1];
        let attrs = inner
            .split(',')
            .filter(|a| !a.trim().is_empty())
            .map(|a| self.attr(var, a.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((var, attrs))
    }

    /// Parse a constant literal against an attribute's type.
    fn constant(&self, var: usize, attr: AttrId, raw: &str) -> Result<Value, ParseError> {
        let raw = raw.trim();
        let unquoted = if raw.len() >= 2 && raw.starts_with('\'') && raw.ends_with('\'') {
            &raw[1..raw.len() - 1]
        } else {
            raw
        };
        let ty = self.schema.relation(self.tuple_vars[var].1).attr(attr).ty;
        Ok(Value::parse_as(unquoted, ty))
    }
}

/// Parse one rule from its DSL line.
///
/// ```
/// use rock_rees::parse_rule;
/// use rock_data::{AttrType, DatabaseSchema, RelationSchema};
///
/// let schema = DatabaseSchema::new(vec![RelationSchema::of(
///     "Trans",
///     &[("com", AttrType::Str), ("mfg", AttrType::Str)],
/// )]);
/// let rule = parse_rule(
///     "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg",
///     &schema,
/// )
/// .unwrap();
/// assert_eq!(rule.name, "phi2");
/// assert_eq!(rule.precondition.len(), 1);
/// // the pretty-printer round-trips
/// assert_eq!(
///     rule.display(&schema).to_string(),
///     "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg"
/// );
/// ```
pub fn parse_rule(input: &str, schema: &DatabaseSchema) -> Result<Rule, ParseError> {
    parse_rule_at(input, schema, 1)
}

/// Byte offset of a subslice within the string it was sliced from. Both
/// arguments must come from the same allocation (every atom the parser
/// handles is a subslice of `input`), so the subtraction is well-defined.
fn offset_in(haystack: &str, needle: &str) -> u32 {
    (needle.as_ptr() as usize - haystack.as_ptr() as usize) as u32
}

/// Column span of `atom` (a subslice of `input`) on line `line`.
fn span_of(input: &str, atom: &str, line: u32) -> Span {
    let start = offset_in(input, atom);
    Span::new(line, start, start + atom.len() as u32)
}

/// [`parse_rule`] with an explicit 1-based source line for spans — this is
/// what [`parse_rules`] calls so diagnostics point into multi-line texts.
/// Columns are byte offsets within the *trimmed* line.
pub fn parse_rule_at(input: &str, schema: &DatabaseSchema, line: u32) -> Result<Rule, ParseError> {
    let input = input.trim();
    let rule_span = Span::new(line, 0, input.len() as u32);
    let fail = |m: &str| ParseError {
        rule: String::new(),
        message: m.into(),
        span: rule_span,
    };
    let rest = input
        .strip_prefix("rule")
        .ok_or_else(|| fail("rule must start with 'rule'"))?
        .trim_start();
    let (name, body) = rest
        .split_once(':')
        .ok_or_else(|| fail("missing ':' after rule name"))?;
    let name = name.trim().to_owned();
    let (pre_text, cons_text) = body.rsplit_once("->").ok_or_else(|| ParseError {
        rule: name.clone(),
        message: "missing '->'".into(),
        span: rule_span,
    })?;

    let mut ctx = Ctx {
        schema,
        name: name.clone(),
        tuple_vars: Vec::new(),
        vertex_vars: Vec::new(),
    };

    // First pass: collect relation atoms and vertex atoms; stash the rest.
    let mut pred_atoms: Vec<&str> = Vec::new();
    for atom in pre_text.split("&&") {
        let atom = atom.trim();
        if atom.is_empty() {
            continue;
        }
        if let Some(inner) = atom
            .strip_prefix("vertex(")
            .and_then(|a| a.strip_suffix(')'))
        {
            ctx.vertex_vars.push(inner.trim().to_owned());
            continue;
        }
        // `Rel(v)` — a bare identifier followed by a parenthesized bare
        // identifier, and the identifier is a known relation.
        if let Some((rel_name, rest)) = atom.split_once('(') {
            let rel_name = rel_name.trim();
            if let Some(rid) = schema.rel_id(rel_name) {
                if let Some(v) = rest.strip_suffix(')') {
                    let v = v.trim();
                    if !v.is_empty() && v.chars().all(|c| c.is_alphanumeric() || c == '_') {
                        ctx.tuple_vars.push((v.to_owned(), rid));
                        continue;
                    }
                }
            }
        }
        pred_atoms.push(atom);
    }
    if ctx.tuple_vars.is_empty() {
        return Err(ctx.err("rule binds no tuple variables"));
    }

    let pre_spans: Vec<Span> = pred_atoms.iter().map(|a| span_of(input, a, line)).collect();
    let cons_trimmed = cons_text.trim();
    let cons_span = span_of(input, cons_trimmed, line);

    let precondition = pred_atoms
        .iter()
        .zip(&pre_spans)
        .map(|(a, sp)| parse_atom(a, &ctx).map_err(|e| e.or_span(*sp)))
        .collect::<Result<Vec<_>, _>>()?;
    let consequence = parse_atom(cons_trimmed, &ctx).map_err(|e| e.or_span(cons_span))?;

    let mut rule = Rule::new(
        name,
        ctx.tuple_vars,
        ctx.vertex_vars,
        precondition,
        consequence,
    );
    rule.spans = RuleSpans {
        rule: rule_span,
        preconditions: pre_spans,
        consequence: cons_span,
    };
    rule.validate(schema).map_err(|m| {
        // re-run the typed pass to anchor the error at the offending atom
        let span = rule
            .well_formedness(schema)
            .first()
            .map(|d| d.span)
            .unwrap_or(rule_span);
        ParseError {
            rule: rule.name.clone(),
            message: m,
            span,
        }
    })?;
    Ok(rule)
}

/// Parse many rules: one per non-empty, non-`#`-comment line. Spans carry
/// the 1-based line number within `input`.
pub fn parse_rules(input: &str, schema: &DatabaseSchema) -> Result<Vec<Rule>, ParseError> {
    input
        .lines()
        .enumerate()
        .map(|(i, l)| (i as u32 + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .map(|(ln, l)| parse_rule_at(l, schema, ln))
        .collect()
}

fn parse_atom(atom: &str, ctx: &Ctx<'_>) -> Result<Predicate, ParseError> {
    let atom = atom.trim();

    // null(t.attr)
    if let Some(inner) = atom.strip_prefix("null(").and_then(|a| a.strip_suffix(')')) {
        let (var, attr) = ctx.var_attr(inner)?;
        return Ok(Predicate::IsNull { var, attr });
    }

    // ml:Model(t[...], s[...])
    if let Some(rest) = atom.strip_prefix("ml:") {
        let (model, args) =
            split_call(rest).ok_or_else(|| ctx.err(format!("bad ml atom '{atom}'")))?;
        let parts = split_args(args);
        if parts.len() != 2 {
            return Err(ctx.err(format!("ml predicate needs 2 args: '{atom}'")));
        }
        let (lvar, lattrs) = ctx.var_attr_list(&parts[0])?;
        let (rvar, rattrs) = ctx.var_attr_list(&parts[1])?;
        return Ok(Predicate::Ml {
            model: ModelRef::named(model),
            lvar,
            lattrs,
            rvar,
            rattrs,
        });
    }

    // rank:Model(t, s, <=[attr]) / <[attr]
    if let Some(rest) = atom.strip_prefix("rank:") {
        let (model, args) =
            split_call(rest).ok_or_else(|| ctx.err(format!("bad rank atom '{atom}'")))?;
        let parts = split_args(args);
        if parts.len() != 3 {
            return Err(ctx.err(format!("rank predicate needs 3 args: '{atom}'")));
        }
        let lvar = ctx.var(parts[0].trim())?;
        let rvar = ctx.var(parts[1].trim())?;
        let (strict, attr_name) = parse_order_spec(parts[2].trim())
            .ok_or_else(|| ctx.err(format!("bad order spec '{}'", parts[2])))?;
        let attr = ctx.attr(lvar, attr_name)?;
        return Ok(Predicate::MlRank {
            model: ModelRef::named(model),
            lvar,
            rvar,
            attr,
            strict,
        });
    }

    // her:Model(t, x)
    if let Some(rest) = atom.strip_prefix("her:") {
        let (model, args) =
            split_call(rest).ok_or_else(|| ctx.err(format!("bad her atom '{atom}'")))?;
        let parts = split_args(args);
        if parts.len() != 2 {
            return Err(ctx.err(format!("her predicate needs 2 args: '{atom}'")));
        }
        let tvar = ctx.var(parts[0].trim())?;
        let xvar = ctx.vertex(parts[1].trim())?;
        return Ok(Predicate::Her {
            model: ModelRef::named(model),
            tvar,
            xvar,
        });
    }

    // match(t.attr, x.path)
    if let Some(inner) = atom
        .strip_prefix("match(")
        .and_then(|a| a.strip_suffix(')'))
    {
        let parts = split_args(inner);
        if parts.len() != 2 {
            return Err(ctx.err(format!("match needs 2 args: '{atom}'")));
        }
        let (tvar, attr) = ctx.var_attr(parts[0].trim())?;
        let (xvar, path) = parse_vertex_path(parts[1].trim(), ctx)?;
        return Ok(Predicate::PathMatch {
            tvar,
            attr,
            xvar,
            path,
        });
    }

    // corr:Mc(t[..], t.B='c') >= d   |   corr:Mc(t[..], t.B) >= d
    if let Some(rest) = atom.strip_prefix("corr:") {
        let ge = rest
            .rfind(">=")
            .ok_or_else(|| ctx.err(format!("corr predicate missing '>= δ': '{atom}'")))?;
        let delta: f64 = rest[ge + 2..]
            .trim()
            .parse()
            .map_err(|_| ctx.err(format!("bad δ in '{atom}'")))?;
        let call = rest[..ge].trim();
        let (model, args) =
            split_call(call).ok_or_else(|| ctx.err(format!("bad corr atom '{atom}'")))?;
        let parts = split_args(args);
        if parts.len() != 2 {
            return Err(ctx.err(format!("corr predicate needs 2 args: '{atom}'")));
        }
        let (var, evidence) = ctx.var_attr_list(&parts[0])?;
        let second = parts[1].trim();
        if let Some((ta, val)) = second.split_once('=') {
            let (v2, target) = ctx.var_attr(ta.trim())?;
            if v2 != var {
                return Err(ctx.err("corr evidence and target must share a variable"));
            }
            let value = ctx.constant(var, target, val)?;
            return Ok(Predicate::CorrConst {
                model: ModelRef::named(model),
                var,
                evidence,
                target,
                value,
                delta,
            });
        }
        let (v2, target) = ctx.var_attr(second)?;
        if v2 != var {
            return Err(ctx.err("corr evidence and target must share a variable"));
        }
        return Ok(Predicate::CorrAttr {
            model: ModelRef::named(model),
            var,
            evidence,
            target,
            delta,
        });
    }

    // t <=[attr] s   |   t <[attr] s   (temporal)
    if let Some(p) = try_parse_temporal(atom, ctx)? {
        return Ok(p);
    }

    // comparison family: find the operator at top level.
    if let Some((lhs, op, rhs)) = split_comparison(atom) {
        let lhs = lhs.trim();
        let rhs = rhs.trim();

        // t.eid = s.eid
        if lhs.ends_with(".eid") && rhs.ends_with(".eid") {
            let lvar = ctx.var(&lhs[..lhs.len() - 4])?;
            let rvar = ctx.var(&rhs[..rhs.len() - 4])?;
            let eq = match op {
                CmpOp::Eq => true,
                CmpOp::Neq => false,
                _ => return Err(ctx.err("eid comparison must be = or !=")),
            };
            return Ok(Predicate::EidCmp { lvar, rvar, eq });
        }

        // t.attr = val(x.path)
        if op == CmpOp::Eq {
            if let Some(inner) = rhs.strip_prefix("val(").and_then(|r| r.strip_suffix(')')) {
                let (tvar, attr) = ctx.var_attr(lhs)?;
                let (xvar, path) = parse_vertex_path(inner.trim(), ctx)?;
                return Ok(Predicate::ValExtract {
                    tvar,
                    attr,
                    xvar,
                    path,
                });
            }
            // t.attr = predict:Md(t[...])
            if let Some(rest) = rhs.strip_prefix("predict:") {
                let (model, args) = split_call(rest)
                    .ok_or_else(|| ctx.err(format!("bad predict atom '{atom}'")))?;
                let (var2, evidence) = ctx.var_attr_list(args)?;
                let (var, target) = ctx.var_attr(lhs)?;
                if var != var2 {
                    return Err(ctx.err("predict target and evidence must share a variable"));
                }
                return Ok(Predicate::Predict {
                    model: ModelRef::named(model),
                    var,
                    evidence,
                    target,
                });
            }
        }

        // t.attr OP s.attr  — rhs looks like var.attr with a known variable
        if let Some((v, _)) = rhs.split_once('.') {
            if ctx.var(v.trim()).is_ok() && !rhs.starts_with('\'') {
                let (lvar, lattr) = ctx.var_attr(lhs)?;
                let (rvar, rattr) = ctx.var_attr(rhs)?;
                return Ok(Predicate::Attr {
                    lvar,
                    lattr,
                    op,
                    rvar,
                    rattr,
                });
            }
        }

        // t.attr OP constant
        let (var, attr) = ctx.var_attr(lhs)?;
        let value = ctx.constant(var, attr, rhs)?;
        return Ok(Predicate::Const {
            var,
            attr,
            op,
            value,
        });
    }

    Err(ctx.err(format!("unrecognized atom '{atom}'")))
}

/// `t <=[attr] s` / `t <[attr] s`
fn try_parse_temporal(atom: &str, ctx: &Ctx<'_>) -> Result<Option<Predicate>, ParseError> {
    for (tok, strict) in [("<=[", false), ("<[", true)] {
        if let Some(pos) = atom.find(tok) {
            let lhs = atom[..pos].trim();
            let rest = &atom[pos + tok.len()..];
            let close = rest
                .find(']')
                .ok_or_else(|| ctx.err(format!("missing ']' in '{atom}'")))?;
            let attr_name = rest[..close].trim();
            let rhs = rest[close + 1..].trim();
            // Distinguish from rank:...(… <=[attr]) — those are handled
            // earlier; here lhs/rhs must be bare variables.
            if lhs.contains('(') || rhs.contains(')') {
                return Ok(None);
            }
            let lvar = ctx.var(lhs)?;
            let rvar = ctx.var(rhs)?;
            let attr = ctx.attr(lvar, attr_name)?;
            return Ok(Some(Predicate::Temporal {
                lvar,
                rvar,
                attr,
                strict,
            }));
        }
    }
    Ok(None)
}

/// `<=[attr]` / `<[attr]` inside rank calls → (strict, attr name).
fn parse_order_spec(s: &str) -> Option<(bool, &str)> {
    let (strict, rest) = if let Some(r) = s.strip_prefix("<=[") {
        (false, r)
    } else if let Some(r) = s.strip_prefix("<[") {
        (true, r)
    } else {
        return None;
    };
    rest.strip_suffix(']').map(|a| (strict, a.trim()))
}

/// `x.Path/Seg` → (vertex var, label path)
fn parse_vertex_path(s: &str, ctx: &Ctx<'_>) -> Result<(usize, LabelPath), ParseError> {
    let (x, path) = s
        .split_once('.')
        .ok_or_else(|| ctx.err(format!("expected x.path, got '{s}'")))?;
    Ok((ctx.vertex(x.trim())?, LabelPath::parse(path.trim())))
}

/// `Name(args)` → (name, args-without-parens). The args span to the final
/// `)` of the string.
fn split_call(s: &str) -> Option<(&str, &str)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close <= open {
        return None;
    }
    Some((s[..open].trim(), &s[open + 1..close]))
}

/// Split call arguments at top-level commas (not inside brackets).
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' | '(' => {
                depth += 1;
                cur.push(c);
            }
            ']' | ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Find the top-level comparison operator, longest-match-first, skipping
/// quoted strings and the `<=[`/`<[` temporal forms.
fn split_comparison(s: &str) -> Option<(&str, CmpOp, &str)> {
    let bytes = s.as_bytes();
    let mut in_quote = false;
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\'' => in_quote = !in_quote,
            '(' | '[' if !in_quote => depth += 1,
            ')' | ']' if !in_quote => depth -= 1,
            _ if in_quote || depth > 0 => {}
            '!' | '<' | '>' | '=' => {
                // skip temporal forms `<=[`, `<[`
                if c == '<' {
                    let two = s.get(i..i + 2).unwrap_or("");
                    let three = s.get(i..i + 3).unwrap_or("");
                    if three == "<=[" || two == "<[" {
                        i += 1;
                        continue;
                    }
                }
                // two-char ops first
                for (tok, op) in [
                    ("<=", CmpOp::Le),
                    (">=", CmpOp::Ge),
                    ("!=", CmpOp::Neq),
                    ("<>", CmpOp::Neq),
                    ("==", CmpOp::Eq),
                ] {
                    if s[i..].starts_with(tok) {
                        return Some((&s[..i], op, &s[i + tok.len()..]));
                    }
                }
                for (tok, op) in [("=", CmpOp::Eq), ("<", CmpOp::Lt), (">", CmpOp::Gt)] {
                    if s[i..].starts_with(tok) {
                        return Some((&s[..i], op, &s[i + tok.len()..]));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, RelationSchema};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![
            RelationSchema::of(
                "Person",
                &[
                    ("pid", AttrType::Str),
                    ("LN", AttrType::Str),
                    ("FN", AttrType::Str),
                    ("gender", AttrType::Str),
                    ("home", AttrType::Str),
                    ("status", AttrType::Str),
                    ("spouse", AttrType::Str),
                ],
            ),
            RelationSchema::of(
                "Store",
                &[
                    ("sid", AttrType::Str),
                    ("name", AttrType::Str),
                    ("type", AttrType::Str),
                    ("location", AttrType::Str),
                    ("accu_sales", AttrType::Float),
                    ("area_code", AttrType::Str),
                ],
            ),
            RelationSchema::of(
                "Trans",
                &[
                    ("pid", AttrType::Str),
                    ("sid", AttrType::Str),
                    ("com", AttrType::Str),
                    ("mfg", AttrType::Str),
                    ("price", AttrType::Float),
                    ("date", AttrType::Date),
                ],
            ),
        ])
    }

    fn roundtrip(line: &str) {
        let s = schema();
        let r = parse_rule(line, &s).unwrap_or_else(|e| panic!("{e}"));
        let printed = r.display(&s).to_string();
        let r2 = parse_rule(&printed, &s).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
        assert_eq!(r, r2, "round-trip mismatch:\n  {line}\n  {printed}");
    }

    #[test]
    fn phi2_plain_fd() {
        roundtrip("rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg");
    }

    #[test]
    fn phi1_ml_predicate() {
        roundtrip(
            "rule phi1: Trans(t) && Trans(s) && ml:MER(t[com], s[com]) && t.date = s.date && t.sid = s.sid -> t.pid = s.pid",
        );
    }

    #[test]
    fn phi4_temporal_consequence() {
        roundtrip(
            "rule phi4: Person(t) && Person(s) && t.status = 'single' && s.status = 'married' -> t <=[status] s",
        );
    }

    #[test]
    fn phi5_temporal_both_sides() {
        roundtrip("rule phi5: Person(t) && Person(s) && t <=[status] s -> t <=[home] s");
    }

    #[test]
    fn phi6_correlated_ordering() {
        roundtrip(
            "rule phi6: Store(t) && Store(s) && t.location = 'Shanghai' && s.location = 'Beijing' && t.accu_sales <= s.accu_sales -> t <=[location] s",
        );
    }

    #[test]
    fn phi7_extraction() {
        roundtrip(
            "rule phi7: Store(t) && vertex(x) && her:HER(t, x) && match(t.location, x.LocationAt) -> t.location = val(x.LocationAt)",
        );
    }

    #[test]
    fn phi8_prediction() {
        roundtrip("rule phi8: Trans(t) && null(t.price) -> t.price = predict:Mprice(t[com,mfg])");
    }

    #[test]
    fn phi11_rank() {
        roundtrip("rule phi11: Person(t) && Person(s) && rank:Mrank(t, s, <=[LN]) -> t <=[LN] s");
    }

    #[test]
    fn phi12_constant_consequence() {
        roundtrip("rule phi12: Store(t) && t.location = 'Beijing' -> t.area_code = '010'");
    }

    #[test]
    fn corr_const_predicate() {
        roundtrip(
            "rule mc: Store(t) && corr:Mc(t[location,name], t.area_code='010') >= 0.8 -> t.area_code = '010'",
        );
    }

    #[test]
    fn corr_attr_predicate() {
        roundtrip(
            "rule mca: Store(t) && corr:Mc(t[location], t.area_code) >= 0.7 -> t.area_code = t.area_code",
        );
    }

    #[test]
    fn eid_consequence() {
        roundtrip(
            "rule er: Person(t) && Person(s) && t.LN = s.LN && t.FN = s.FN && t.home = s.home -> t.eid = s.eid",
        );
        roundtrip("rule ner: Person(t) && Person(s) && t.gender != s.gender -> t.eid != s.eid");
    }

    #[test]
    fn strict_temporal() {
        roundtrip("rule st: Person(t) && Person(s) && t <[home] s -> t <=[status] s");
    }

    #[test]
    fn numeric_constants_typed() {
        let s = schema();
        let r = parse_rule("rule n: Trans(t) && t.price >= 5000 -> t.mfg = 'Apple'", &s).unwrap();
        match &r.precondition[0] {
            Predicate::Const { value, .. } => assert_eq!(value, &Value::Float(5000.0)),
            p => panic!("unexpected {p:?}"),
        }
    }

    #[test]
    fn parse_rules_skips_comments() {
        let text = "\n# comment\nrule a: Trans(t) && t.price >= 1 -> t.mfg = 'Apple'\n\nrule b: Trans(t) && null(t.price) -> t.mfg = 'Apple'\n";
        let rules = parse_rules(text, &schema()).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].name, "b");
    }

    #[test]
    fn error_messages_are_helpful() {
        let s = schema();
        let e = parse_rule("rule x: Trans(t) -> t.nope = 'a'", &s).unwrap_err();
        assert!(e.message.contains("no attribute"), "{e}");
        let e = parse_rule("rule x: Trans(t) -> q.price = 1", &s).unwrap_err();
        assert!(e.message.contains("unknown tuple variable"), "{e}");
        let e = parse_rule("Trans(t) -> t.price = 1", &s).unwrap_err();
        assert!(e.message.contains("start with 'rule'"), "{e}");
        let e = parse_rule("rule x: Trans(t) t.price = 1", &s).unwrap_err();
        assert!(e.message.contains("missing '->'"), "{e}");
    }

    #[test]
    fn spans_point_at_atoms() {
        let s = schema();
        let line = "rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg";
        let r = parse_rule(line, &s).unwrap();
        assert_eq!(r.spans.rule, Span::new(1, 0, line.len() as u32));
        assert_eq!(r.spans.preconditions.len(), 1);
        let sp = r.spans.preconditions[0];
        assert_eq!(&line[sp.start as usize..sp.end as usize], "t.com = s.com");
        let sc = r.spans.consequence;
        assert_eq!(&line[sc.start as usize..sc.end as usize], "t.mfg = s.mfg");
    }

    #[test]
    fn parse_rules_spans_carry_line_numbers() {
        let text = "# header\nrule a: Trans(t) && t.price >= 1 -> t.mfg = 'Apple'\n\nrule b: Trans(t) && null(t.price) -> t.mfg = 'Apple'\n";
        let rules = parse_rules(text, &schema()).unwrap();
        assert_eq!(rules[0].spans.rule.line, 2);
        assert_eq!(rules[1].spans.rule.line, 4);
    }

    #[test]
    fn parse_error_carries_atom_span() {
        let s = schema();
        let line = "rule x: Trans(t) && null(t.price) -> q.price = 1";
        let e = parse_rule(line, &s).unwrap_err();
        assert!(e.message.contains("unknown tuple variable"), "{e}");
        let sp = e.span;
        assert_eq!(&line[sp.start as usize..sp.end as usize], "q.price = 1");
        // errors with no better anchor fall back to the rule span
        let e = parse_rule("Trans(t) -> t.price = 1", &s).unwrap_err();
        assert!(!e.span.is_none());
    }

    #[test]
    fn quoted_string_with_operator_chars() {
        let s = schema();
        let r = parse_rule(
            "rule q: Store(t) && t.name = 'A <= B' -> t.area_code = '010'",
            &s,
        )
        .unwrap();
        match &r.precondition[0] {
            Predicate::Const { value, .. } => assert_eq!(value, &Value::str("A <= B")),
            p => panic!("unexpected {p:?}"),
        }
    }
}
