//! The predicate AST (paper §2.1–2.3).
//!
//! Tuple variables are indices into a rule's variable list; vertex variables
//! index the rule's vertex-variable list. Model references carry the model
//! *name* (as written in the DSL) plus a resolved [`rock_ml::ModelId`]
//! filled in by [`crate::rule::Rule::resolve`].

use crate::op::CmpOp;
use rock_data::{AttrId, Value};
use rock_kg::LabelPath;
use rock_ml::ModelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a tuple variable within a rule.
pub type VarId = usize;
/// Index of a vertex variable within a rule.
pub type VertexVarId = usize;

/// A reference to a registered ML model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelRef {
    pub name: String,
    /// Filled by `Rule::resolve` against a `ModelRegistry`.
    #[serde(skip)]
    pub id: Option<ModelId>,
}

impl ModelRef {
    pub fn named(name: impl Into<String>) -> Self {
        ModelRef {
            name: name.into(),
            id: None,
        }
    }

    /// The resolved id; panics with a clear message when unresolved (a rule
    /// must be `resolve`d before evaluation).
    pub fn resolved(&self) -> ModelId {
        self.id
            .unwrap_or_else(|| panic!("ML model '{}' not resolved against a registry", self.name))
    }
}

/// One predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `t.A ⊕ c`
    Const {
        var: VarId,
        attr: AttrId,
        op: CmpOp,
        value: Value,
    },
    /// `t.A ⊕ s.B`
    Attr {
        lvar: VarId,
        lattr: AttrId,
        op: CmpOp,
        rvar: VarId,
        rattr: AttrId,
    },
    /// `M(t[Ā], s[B̄])` — Boolean ML predicate (§2.1(e)).
    Ml {
        model: ModelRef,
        lvar: VarId,
        lattrs: Vec<AttrId>,
        rvar: VarId,
        rattrs: Vec<AttrId>,
    },
    /// `t ⪯A s` (strict=false) or `t ≺A s` (strict=true) (§2.2).
    Temporal {
        lvar: VarId,
        rvar: VarId,
        attr: AttrId,
        strict: bool,
    },
    /// `Mrank(t1, t2, ⊗A)` (§2.2).
    MlRank {
        model: ModelRef,
        lvar: VarId,
        rvar: VarId,
        attr: AttrId,
        strict: bool,
    },
    /// `HER(t, x)` (§2.3). The vertex variable is bound by this predicate.
    Her {
        model: ModelRef,
        tvar: VarId,
        xvar: VertexVarId,
    },
    /// `match(t.A, x.ρ)` (§2.3).
    PathMatch {
        tvar: VarId,
        attr: AttrId,
        xvar: VertexVarId,
        path: LabelPath,
    },
    /// `t[A] = val(x.ρ)` (§2.3).
    ValExtract {
        tvar: VarId,
        attr: AttrId,
        xvar: VertexVarId,
        path: LabelPath,
    },
    /// `Mc(t[Ā], t.B = c) ≥ δ` (§2.3) — correlation with a constant.
    CorrConst {
        model: ModelRef,
        var: VarId,
        evidence: Vec<AttrId>,
        target: AttrId,
        value: Value,
        delta: f64,
    },
    /// `Mc(t[Ā], t.B) ≥ δ` (§2.3) — correlation with the current value.
    CorrAttr {
        model: ModelRef,
        var: VarId,
        evidence: Vec<AttrId>,
        target: AttrId,
        delta: f64,
    },
    /// `t.B = Md(t[Ā])` (§2.3) — ML value prediction.
    Predict {
        model: ModelRef,
        var: VarId,
        evidence: Vec<AttrId>,
        target: AttrId,
    },
    /// `null(t.A)` — syntactic abbreviation (Example 3).
    IsNull { var: VarId, attr: AttrId },
    /// `t.eid ⊕ s.eid` with ⊕ ∈ {=, ≠} — the ER consequences (§4.2).
    EidCmp { lvar: VarId, rvar: VarId, eq: bool },
}

impl Predicate {
    /// Tuple variables mentioned.
    pub fn tuple_vars(&self) -> Vec<VarId> {
        use Predicate::*;
        match self {
            Const { var, .. }
            | CorrConst { var, .. }
            | CorrAttr { var, .. }
            | Predict { var, .. }
            | IsNull { var, .. } => vec![*var],
            Attr { lvar, rvar, .. }
            | Ml { lvar, rvar, .. }
            | Temporal { lvar, rvar, .. }
            | MlRank { lvar, rvar, .. }
            | EidCmp { lvar, rvar, .. } => {
                if lvar == rvar {
                    vec![*lvar]
                } else {
                    vec![*lvar, *rvar]
                }
            }
            Her { tvar, .. } | PathMatch { tvar, .. } | ValExtract { tvar, .. } => vec![*tvar],
        }
    }

    /// Vertex variables mentioned.
    pub fn vertex_vars(&self) -> Vec<VertexVarId> {
        use Predicate::*;
        match self {
            Her { xvar, .. } | PathMatch { xvar, .. } | ValExtract { xvar, .. } => vec![*xvar],
            _ => Vec::new(),
        }
    }

    /// Does this predicate reference an ML model (used by the RocknoML
    /// ablation and the evaluation-order optimizer)?
    pub fn is_ml(&self) -> bool {
        matches!(
            self,
            Predicate::Ml { .. }
                | Predicate::MlRank { .. }
                | Predicate::Her { .. }
                | Predicate::CorrConst { .. }
                | Predicate::CorrAttr { .. }
                | Predicate::Predict { .. }
        )
    }

    /// Attributes of a given variable this predicate *reads* (drives the
    /// chase's lazy-activation index).
    pub fn reads_of(&self, v: VarId) -> Vec<AttrId> {
        use Predicate::*;
        let mut out = Vec::new();
        match self {
            Const { var, attr, .. } | IsNull { var, attr } if *var == v => out.push(*attr),
            Attr {
                lvar,
                lattr,
                rvar,
                rattr,
                ..
            } => {
                if *lvar == v {
                    out.push(*lattr);
                }
                if *rvar == v {
                    out.push(*rattr);
                }
            }
            Ml {
                lvar,
                lattrs,
                rvar,
                rattrs,
                ..
            } => {
                if *lvar == v {
                    out.extend_from_slice(lattrs);
                }
                if *rvar == v {
                    out.extend_from_slice(rattrs);
                }
            }
            CorrConst {
                var,
                evidence,
                target,
                ..
            }
            | CorrAttr {
                var,
                evidence,
                target,
                ..
            } if *var == v => {
                out.extend_from_slice(evidence);
                out.push(*target);
            }
            Predict { var, evidence, .. } if *var == v => out.extend_from_slice(evidence),
            PathMatch { tvar, attr, .. } | ValExtract { tvar, attr, .. } if *tvar == v => {
                out.push(*attr)
            }
            _ => {}
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rough evaluation cost rank for predicate ordering (§5.3: "A query
    /// optimizer decides the execution order of predicates in the
    /// precondition"). Lower = evaluate earlier.
    pub fn cost_rank(&self) -> u8 {
        use Predicate::*;
        match self {
            IsNull { .. } | Const { .. } => 0,
            EidCmp { .. } => 1,
            Attr { .. } => 2,
            Temporal { .. } => 3,
            CorrConst { .. } | CorrAttr { .. } => 4,
            Ml { .. } | MlRank { .. } | Predict { .. } => 5,
            Her { .. } | PathMatch { .. } | ValExtract { .. } => 6,
        }
    }
}

/// Pretty-printer context: variable and attribute names come from the rule,
/// so `Display` lives there; this is the raw debug-ish form used in errors.
impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Predicate::*;
        match self {
            Const {
                var,
                attr,
                op,
                value,
            } => write!(f, "?{var}.{attr} {op} '{value}'"),
            Attr {
                lvar,
                lattr,
                op,
                rvar,
                rattr,
            } => {
                write!(f, "?{lvar}.{lattr} {op} ?{rvar}.{rattr}")
            }
            Ml {
                model, lvar, rvar, ..
            } => write!(f, "{}(?{lvar}[..], ?{rvar}[..])", model.name),
            Temporal {
                lvar,
                rvar,
                attr,
                strict,
            } => {
                write!(
                    f,
                    "?{lvar} {}[{attr}] ?{rvar}",
                    if *strict { "<" } else { "<=" }
                )
            }
            MlRank {
                model,
                lvar,
                rvar,
                attr,
                strict,
            } => write!(
                f,
                "{}(?{lvar}, ?{rvar}, {}[{attr}])",
                model.name,
                if *strict { "<" } else { "<=" }
            ),
            Her { model, tvar, xvar } => write!(f, "{}(?{tvar}, ?x{xvar})", model.name),
            PathMatch {
                tvar,
                attr,
                xvar,
                path,
            } => {
                write!(f, "match(?{tvar}.{attr}, ?x{xvar}.{path})")
            }
            ValExtract {
                tvar,
                attr,
                xvar,
                path,
            } => {
                write!(f, "?{tvar}.{attr} = val(?x{xvar}.{path})")
            }
            CorrConst {
                model,
                var,
                target,
                value,
                delta,
                ..
            } => {
                write!(
                    f,
                    "{}(?{var}[..], {target}='{value}') >= {delta}",
                    model.name
                )
            }
            CorrAttr {
                model,
                var,
                target,
                delta,
                ..
            } => {
                write!(f, "{}(?{var}[..], {target}) >= {delta}", model.name)
            }
            Predict {
                model, var, target, ..
            } => {
                write!(f, "?{var}.{target} = {}(?{var}[..])", model.name)
            }
            IsNull { var, attr } => write!(f, "null(?{var}.{attr})"),
            EidCmp { lvar, rvar, eq } => {
                write!(
                    f,
                    "?{lvar}.eid {} ?{rvar}.eid",
                    if *eq { "=" } else { "!=" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_vars_dedup() {
        let p = Predicate::Attr {
            lvar: 0,
            lattr: AttrId(1),
            op: CmpOp::Eq,
            rvar: 0,
            rattr: AttrId(2),
        };
        assert_eq!(p.tuple_vars(), vec![0]);
        let q = Predicate::EidCmp {
            lvar: 0,
            rvar: 1,
            eq: true,
        };
        assert_eq!(q.tuple_vars(), vec![0, 1]);
    }

    #[test]
    fn is_ml_classification() {
        assert!(Predicate::Ml {
            model: ModelRef::named("M"),
            lvar: 0,
            lattrs: vec![],
            rvar: 1,
            rattrs: vec![],
        }
        .is_ml());
        assert!(!Predicate::IsNull {
            var: 0,
            attr: AttrId(0)
        }
        .is_ml());
        assert!(!Predicate::Temporal {
            lvar: 0,
            rvar: 1,
            attr: AttrId(0),
            strict: false
        }
        .is_ml());
    }

    #[test]
    fn reads_of_collects_attrs() {
        let p = Predicate::Ml {
            model: ModelRef::named("M"),
            lvar: 0,
            lattrs: vec![AttrId(2), AttrId(1)],
            rvar: 1,
            rattrs: vec![AttrId(3)],
        };
        assert_eq!(p.reads_of(0), vec![AttrId(1), AttrId(2)]);
        assert_eq!(p.reads_of(1), vec![AttrId(3)]);
        assert!(p.reads_of(2).is_empty());
    }

    #[test]
    fn cost_rank_orders_ml_last() {
        let cheap = Predicate::Const {
            var: 0,
            attr: AttrId(0),
            op: CmpOp::Eq,
            value: Value::Int(1),
        };
        let expensive = Predicate::Her {
            model: ModelRef::named("H"),
            tvar: 0,
            xvar: 0,
        };
        assert!(cheap.cost_rank() < expensive.cost_rank());
    }

    #[test]
    #[should_panic(expected = "not resolved")]
    fn unresolved_model_panics() {
        ModelRef::named("M").resolved();
    }
}
