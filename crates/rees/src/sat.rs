//! Pass 2 — local satisfiability of a rule's precondition.
//!
//! Purely syntactic abstract interpretation of the conjunction: constants
//! are compared with the engine's own SQL semantics (`CmpOp::eval`,
//! `Value::sql_cmp`), attribute–attribute comparisons are abstracted to
//! the set of orderings they admit, and reflexive predicates are
//! special-cased. A precondition flagged here can never hold on *any*
//! database, so the rule never fires — error severity (`E101`–`E103`) —
//! while trivially-true predicates are dead weight but harmless (`W104`).
//!
//! All checks are pairwise: `t.a > 5 && t.a < 3` is caught, the
//! three-way-only contradictions a full constraint solver would find are
//! deliberately out of scope (they do not occur in discovered rules,
//! whose preconditions are conjunctions of at most a handful of mined
//! predicates).

use crate::{CmpOp, DiagCode, Diagnostic, Predicate, Rule};
use rock_data::Value;
use std::cmp::Ordering;

/// Orderings a comparison admits, as a bitmask over {Less, Equal, Greater}.
const LESS: u8 = 1;
const EQUAL: u8 = 2;
const GREATER: u8 = 4;

fn admitted(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => EQUAL,
        CmpOp::Neq => LESS | GREATER,
        CmpOp::Lt => LESS,
        CmpOp::Le => LESS | EQUAL,
        CmpOp::Gt => GREATER,
        CmpOp::Ge => GREATER | EQUAL,
    }
}

/// The operator as seen with its operands swapped (`a < b` ⇔ `b > a`).
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Neq => CmpOp::Neq,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Check one rule's precondition; returns every `E101`/`E102`/`E103`/`W104`
/// it warrants. The caller guarantees the rule is well-formed (variable and
/// attribute indices valid).
pub fn check_rule(rule: &Rule) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_reflexive(rule, &mut out);
    check_consts(rule, &mut out);
    check_attr_pairs(rule, &mut out);
    check_null_overlap(rule, &mut out);
    out
}

/// E103/W104: predicates comparing a cell (or eid) with itself.
fn check_reflexive(rule: &Rule, out: &mut Vec<Diagnostic>) {
    for (i, p) in rule.precondition.iter().enumerate() {
        let span = rule.spans.precondition(i);
        match p {
            Predicate::Attr {
                lvar,
                lattr,
                op,
                rvar,
                rattr,
            } if lvar == rvar && lattr == rattr => match op {
                CmpOp::Neq | CmpOp::Lt | CmpOp::Gt => out.push(Diagnostic::new(
                    DiagCode::ReflexiveNeverTrue,
                    &rule.name,
                    span,
                    format!("{p} compares a cell with itself and can never hold"),
                )),
                CmpOp::Eq | CmpOp::Le | CmpOp::Ge => out.push(Diagnostic::new(
                    DiagCode::TriviallyTrue,
                    &rule.name,
                    span,
                    format!("{p} compares a cell with itself and only filters nulls"),
                )),
            },
            Predicate::EidCmp { lvar, rvar, eq } if lvar == rvar => {
                if *eq {
                    out.push(Diagnostic::new(
                        DiagCode::TriviallyTrue,
                        &rule.name,
                        span,
                        format!("{p} compares a tuple's entity with itself and is always true"),
                    ));
                } else {
                    out.push(Diagnostic::new(
                        DiagCode::ReflexiveNeverTrue,
                        &rule.name,
                        span,
                        format!("{p} requires a tuple's entity to differ from itself"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// E101/E102: contradictory constant predicates on the same cell.
fn check_consts(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let consts: Vec<(usize, usize, rock_data::AttrId, CmpOp, &Value)> = rule
        .precondition
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Predicate::Const {
                var,
                attr,
                op,
                value,
            } => Some((i, *var, *attr, *op, value)),
            _ => None,
        })
        .collect();
    for (a, &(i, vi, ai, opi, ci)) in consts.iter().enumerate() {
        for &(j, vj, aj, opj, cj) in &consts[a + 1..] {
            if vi != vj || ai != aj {
                continue;
            }
            let span = rule.spans.precondition(j);
            let other = &rule.precondition[i];
            match (opi, opj) {
                (CmpOp::Eq, CmpOp::Eq) => {
                    if !ci.sql_eq(cj) {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UnsatConstEq,
                                &rule.name,
                                span,
                                format!(
                                    "cell is bound to '{cj}' here but to '{ci}' earlier \
                                     in the same precondition"
                                ),
                            )
                            .with_note(format!("conflicts with {other}")),
                        );
                    }
                }
                // an equality fixes the value; any other constant
                // comparison on the cell must accept it
                (CmpOp::Eq, _) | (_, CmpOp::Eq) => {
                    let (eq_v, cmp_op, cmp_v) = if opi == CmpOp::Eq {
                        (ci, opj, cj)
                    } else {
                        (cj, opi, ci)
                    };
                    if !cmp_op.eval(eq_v, cmp_v) {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UnsatCompare,
                                &rule.name,
                                span,
                                format!(
                                    "cell is fixed to '{eq_v}' but also required \
                                     {cmp_op} '{cmp_v}'"
                                ),
                            )
                            .with_note(format!("conflicts with {other}")),
                        );
                    }
                }
                // a lower bound above an upper bound empties the interval
                (CmpOp::Gt | CmpOp::Ge, CmpOp::Lt | CmpOp::Le)
                | (CmpOp::Lt | CmpOp::Le, CmpOp::Gt | CmpOp::Ge) => {
                    let (lo, lo_op, hi, hi_op) = if matches!(opi, CmpOp::Gt | CmpOp::Ge) {
                        (ci, opi, cj, opj)
                    } else {
                        (cj, opj, ci, opi)
                    };
                    let strict = lo_op == CmpOp::Gt || hi_op == CmpOp::Lt;
                    let empty = match lo.sql_cmp(hi) {
                        Some(Ordering::Greater) => true,
                        Some(Ordering::Equal) => strict,
                        _ => false,
                    };
                    if empty {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UnsatCompare,
                                &rule.name,
                                span,
                                format!(
                                    "bounds {lo_op} '{lo}' and {hi_op} '{hi}' leave \
                                     no possible value"
                                ),
                            )
                            .with_note(format!("conflicts with {other}")),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// E102: attribute–attribute comparisons on the same operand pair whose
/// admitted orderings are disjoint (`t.a < s.b && t.a > s.b`).
fn check_attr_pairs(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let attrs: Vec<(
        usize,
        (usize, rock_data::AttrId),
        (usize, rock_data::AttrId),
        CmpOp,
    )> = rule
        .precondition
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Predicate::Attr {
                lvar,
                lattr,
                op,
                rvar,
                rattr,
            } if (lvar, lattr) != (rvar, rattr) => {
                // normalize operand order so mirrored writings compare equal
                let (l, r) = ((*lvar, *lattr), (*rvar, *rattr));
                if l <= r {
                    Some((i, l, r, *op))
                } else {
                    Some((i, r, l, mirror(*op)))
                }
            }
            _ => None,
        })
        .collect();
    for (a, &(i, li, ri, opi)) in attrs.iter().enumerate() {
        for &(j, lj, rj, opj) in &attrs[a + 1..] {
            if li != lj || ri != rj {
                continue;
            }
            if admitted(opi) & admitted(opj) == 0 {
                out.push(
                    Diagnostic::new(
                        DiagCode::UnsatCompare,
                        &rule.name,
                        rule.spans.precondition(j),
                        format!(
                            "{} contradicts an earlier comparison of the same cells",
                            rule.precondition[j]
                        ),
                    )
                    .with_note(format!("conflicts with {}", rule.precondition[i])),
                );
            }
        }
    }
}

/// E102: `null(t.A)` conjoined with any comparison reading `t.A` — the
/// comparison needs a non-null value, the null check forbids one.
fn check_null_overlap(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let nulls: Vec<(usize, usize, rock_data::AttrId)> = rule
        .precondition
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Predicate::IsNull { var, attr } => Some((i, *var, *attr)),
            _ => None,
        })
        .collect();
    if nulls.is_empty() {
        return;
    }
    for (j, p) in rule.precondition.iter().enumerate() {
        if !matches!(p, Predicate::Const { .. } | Predicate::Attr { .. }) {
            continue;
        }
        for v in p.tuple_vars() {
            for a in p.reads_of(v) {
                if let Some(&(i, ..)) = nulls
                    .iter()
                    .find(|&&(ni, nv, na)| nv == v && na == a && ni != j)
                {
                    out.push(
                        Diagnostic::new(
                            DiagCode::UnsatCompare,
                            &rule.name,
                            rule.spans.precondition(j),
                            format!(
                                "{p} compares a cell that null({}) requires to be null",
                                rule.precondition[i]
                            ),
                        )
                        .with_note("comparisons with null are always false".to_owned()),
                    );
                }
            }
        }
    }
}

/// Outcome of the critical-pair co-satisfiability check (the certify
/// pass's upgrade of `W203`): can a *single tuple* satisfy the constant
/// constraints both rules place on their written variable?
#[derive(Debug, Clone, PartialEq)]
pub enum CoSat {
    /// Proven exclusive: the merged constant constraints contradict, so
    /// no tuple fires both rules and the competing writes cannot race.
    Exclusive,
    /// Proven co-satisfiable, with a concrete witness tuple (one value
    /// per attribute of the shared relation) on which both preconditions
    /// hold — the seed instance for a provenance-backed counterexample.
    Witness(Vec<Value>),
    /// Neither provable: the preconditions involve predicates outside
    /// the constant/interval fragment (joins, ML, temporal), so the pair
    /// stays a hazard but no counterexample can be synthesized.
    Unknown,
}

/// One constant constraint on an attribute of the written tuple.
#[derive(Debug, Clone, Copy)]
enum Constraint<'a> {
    Cmp(CmpOp, &'a Value),
    Null,
}

/// Do two constant constraints on the same cell contradict? The same
/// interval/equality reasoning `check_consts` applies within one rule,
/// here applied across the merged pair.
fn constraints_conflict(a: Constraint<'_>, b: Constraint<'_>) -> bool {
    match (a, b) {
        // SQL semantics: every comparison with a null cell is false.
        (Constraint::Null, Constraint::Cmp(..)) | (Constraint::Cmp(..), Constraint::Null) => true,
        (Constraint::Null, Constraint::Null) => false,
        (Constraint::Cmp(opa, ca), Constraint::Cmp(opb, cb)) => match (opa, opb) {
            (CmpOp::Eq, CmpOp::Eq) => !ca.sql_eq(cb),
            (CmpOp::Eq, op) => !op.eval(ca, cb),
            (op, CmpOp::Eq) => !op.eval(cb, ca),
            (CmpOp::Gt | CmpOp::Ge, CmpOp::Lt | CmpOp::Le)
            | (CmpOp::Lt | CmpOp::Le, CmpOp::Gt | CmpOp::Ge) => {
                let (lo, lo_op, hi, hi_op) = if matches!(opa, CmpOp::Gt | CmpOp::Ge) {
                    (ca, opa, cb, opb)
                } else {
                    (cb, opb, ca, opa)
                };
                let strict = lo_op == CmpOp::Gt || hi_op == CmpOp::Lt;
                match lo.sql_cmp(hi) {
                    Some(Ordering::Greater) => true,
                    Some(Ordering::Equal) => strict,
                    _ => false,
                }
            }
            _ => false,
        },
    }
}

/// Does `v` satisfy every constraint in `cs`?
fn satisfies_all(v: &Value, cs: &[Constraint<'_>]) -> bool {
    cs.iter().all(|c| match *c {
        Constraint::Null => v.is_null(),
        Constraint::Cmp(op, cv) => op.eval(v, cv),
    })
}

/// Collect the constant constraints rule `r` places on tuple variable
/// `var`, keyed by attribute. Returns `None` when the rule's precondition
/// reaches outside the constant fragment for this variable (any
/// non-`Const`/`IsNull` predicate touching `var`) — exclusivity reasoning
/// over the collected subset is still sound, but no witness can be built.
fn const_constraints(r: &Rule, var: usize) -> (Vec<(rock_data::AttrId, Constraint<'_>)>, bool) {
    let mut out = Vec::new();
    let mut closed = true;
    for p in &r.precondition {
        match p {
            Predicate::Const {
                var: v,
                attr,
                op,
                value,
            } if *v == var => out.push((*attr, Constraint::Cmp(*op, value))),
            Predicate::IsNull { var: v, attr } if *v == var => out.push((*attr, Constraint::Null)),
            other => {
                if other.tuple_vars().contains(&var) {
                    closed = false;
                }
            }
        }
    }
    (out, closed)
}

/// Critical-pair co-satisfiability: rules `a` and `b` both write a cell of
/// the relation bound by `a`'s variable `avar` / `b`'s variable `bvar`.
/// Merge the constant constraints both place on that tuple and decide
/// whether one tuple can fire both preconditions.
///
/// Soundness of `Exclusive` needs only the collected constant subset (a
/// contradiction in a subset of a conjunction kills the whole
/// conjunction). `Witness` is only returned when both rules bind a single
/// tuple variable and their preconditions stay inside the constant
/// fragment, so instantiating the witness tuple provably fires both.
pub fn co_satisfiable(
    a: &Rule,
    avar: usize,
    b: &Rule,
    bvar: usize,
    schema: &rock_data::DatabaseSchema,
) -> CoSat {
    let (ca, a_closed) = const_constraints(a, avar);
    let (cb, b_closed) = const_constraints(b, bvar);
    let mut merged: Vec<(rock_data::AttrId, Constraint<'_>)> = ca;
    merged.extend(cb);

    // Pairwise contradiction scan over the merged set.
    for (i, &(ai, ci)) in merged.iter().enumerate() {
        for &(aj, cj) in &merged[i + 1..] {
            if ai == aj && constraints_conflict(ci, cj) {
                return CoSat::Exclusive;
            }
        }
    }

    let witnessable = a_closed
        && b_closed
        && a.tuple_vars.len() == 1
        && b.tuple_vars.len() == 1
        && a.rel_of(avar) == b.rel_of(bvar);
    if !witnessable {
        return CoSat::Unknown;
    }

    let rel = schema.relation(a.rel_of(avar));
    let mut tuple = Vec::with_capacity(rel.arity());
    for aid in 0..rel.arity() {
        let aid = rock_data::AttrId(aid as u16);
        let cs: Vec<Constraint<'_>> = merged
            .iter()
            .filter(|(x, _)| *x == aid)
            .map(|(_, c)| *c)
            .collect();
        match solve_attr(&cs, rel.attr(aid).ty) {
            Some(v) => tuple.push(v),
            None => return CoSat::Unknown,
        }
    }
    CoSat::Witness(tuple)
}

/// One value satisfying every constraint in `cs`, if the fragment can
/// construct one. Unconstrained attributes stay `Null` (nothing reads
/// them); a returned `None` means "not provable", never "unsatisfiable".
fn solve_attr(cs: &[Constraint<'_>], ty: rock_data::AttrType) -> Option<Value> {
    if cs.is_empty() || cs.iter().any(|c| matches!(c, Constraint::Null)) {
        // The pairwise scan already rejected Null ∧ comparison.
        return satisfies_all(&Value::Null, cs).then_some(Value::Null);
    }
    if let Some(Constraint::Cmp(CmpOp::Eq, v)) = cs
        .iter()
        .find(|c| matches!(c, Constraint::Cmp(CmpOp::Eq, _)))
    {
        return satisfies_all(v, cs).then(|| (*v).clone());
    }
    match ty {
        rock_data::AttrType::Int => {
            // Interval sweep: start at the tightest lower bound (or below
            // the upper bound, or 0) and step past any != exclusions.
            let mut lo: Option<i64> = None;
            let mut hi: Option<i64> = None;
            for c in cs {
                if let Constraint::Cmp(op, Value::Int(k)) = c {
                    match op {
                        CmpOp::Gt => lo = Some(lo.map_or(k + 1, |l: i64| l.max(k + 1))),
                        CmpOp::Ge => lo = Some(lo.map_or(*k, |l: i64| l.max(*k))),
                        CmpOp::Lt => hi = Some(hi.map_or(k - 1, |h: i64| h.min(k - 1))),
                        CmpOp::Le => hi = Some(hi.map_or(*k, |h: i64| h.min(*k))),
                        _ => {}
                    }
                } else if !matches!(c, Constraint::Cmp(CmpOp::Neq, Value::Int(_))) {
                    return None; // mixed-type comparison: out of fragment
                }
            }
            let start = lo.or(hi).unwrap_or(0);
            (0..64)
                .map(|d| Value::Int(start.saturating_add(d)))
                .find(|v| satisfies_all(v, cs))
        }
        rock_data::AttrType::Str => {
            // Only != constraints are solvable here: synthesize a fresh
            // marker string outside the excluded set.
            if !cs
                .iter()
                .all(|c| matches!(c, Constraint::Cmp(CmpOp::Neq, _)))
            {
                return None;
            }
            (0..cs.len() + 1)
                .map(|i| Value::str(format!("__witness_{i}__")))
                .find(|v| satisfies_all(v, cs))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_rule;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[
                ("a", AttrType::Str),
                ("b", AttrType::Int),
                ("c", AttrType::Int),
            ],
        )])
    }

    fn check(text: &str) -> Vec<Diagnostic> {
        check_rule(&parse_rule(text, &schema()).expect("rule parses"))
    }

    #[test]
    fn conflicting_const_eq_is_e101() {
        let ds = check("rule r: T(t) && t.a = 'x' && t.a = 'y' -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatConstEq);
        assert!(check("rule r: T(t) && t.a = 'x' && t.a = 'x' -> t.b = 1").is_empty());
    }

    #[test]
    fn eq_vs_comparison_is_e102() {
        let ds = check("rule r: T(t) && t.b = 5 && t.b > 9 -> t.a = 'x'");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatCompare);
        let ds = check("rule r: T(t) && t.b != 5 && t.b = 5 -> t.a = 'x'");
        assert_eq!(ds.len(), 1);
        assert!(check("rule r: T(t) && t.b = 5 && t.b > 1 -> t.a = 'x'").is_empty());
    }

    #[test]
    fn empty_interval_is_e102() {
        let ds = check("rule r: T(t) && t.b > 5 && t.b < 3 -> t.a = 'x'");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatCompare);
        // touching bounds: strict empties, non-strict admits the point
        assert_eq!(
            check("rule r: T(t) && t.b >= 5 && t.b < 5 -> t.a = 'x'").len(),
            1
        );
        assert!(check("rule r: T(t) && t.b >= 5 && t.b <= 5 -> t.a = 'x'").is_empty());
    }

    #[test]
    fn reflexive_traps() {
        let ds = check("rule r: T(t) && t.a != t.a -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::ReflexiveNeverTrue);
        let ds = check("rule r: T(t) && t.a = t.a -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::TriviallyTrue);
        let ds = check("rule r: T(t) && t.eid != t.eid -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::ReflexiveNeverTrue);
    }

    #[test]
    fn contradictory_attr_pair_mirrored() {
        // written with operands swapped: t.b < s.b vs s.b < t.b
        let ds = check("rule r: T(t) && T(s) && t.b < s.b && s.b < t.b -> t.a = s.a");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatCompare);
        // <= both ways admits equality — satisfiable
        assert!(check("rule r: T(t) && T(s) && t.b <= s.b && s.b <= t.b -> t.a = s.a").is_empty());
    }

    #[test]
    fn null_overlap_is_e102() {
        let ds = check("rule r: T(t) && null(t.a) && t.a = 'x' -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatCompare);
        // null on a different attribute is fine (the MI idiom)
        assert!(check("rule r: T(t) && null(t.a) && t.b = 1 -> t.c = 2").is_empty());
    }

    fn cosat(ta: &str, tb: &str) -> CoSat {
        let s = schema();
        let a = parse_rule(ta, &s).expect("rule a parses");
        let b = parse_rule(tb, &s).expect("rule b parses");
        co_satisfiable(&a, 0, &b, 0, &s)
    }

    #[test]
    fn exclusive_guards_are_proven() {
        // disjoint Eq constants on the same cell
        assert_eq!(
            cosat(
                "rule a: T(t) && t.a = 'x' -> t.b = 1",
                "rule b: T(t) && t.a = 'y' -> t.b = 2",
            ),
            CoSat::Exclusive
        );
        // empty interval across the pair
        assert_eq!(
            cosat(
                "rule a: T(t) && t.b > 10 -> t.a = 'x'",
                "rule b: T(t) && t.b < 5 -> t.a = 'y'",
            ),
            CoSat::Exclusive
        );
        // null vs. comparison on the same cell
        assert_eq!(
            cosat(
                "rule a: T(t) && null(t.a) -> t.b = 1",
                "rule b: T(t) && t.a = 'x' -> t.b = 2",
            ),
            CoSat::Exclusive
        );
    }

    #[test]
    fn overlapping_intervals_yield_a_witness() {
        let w = cosat(
            "rule a: T(t) && t.b > 10 -> t.a = 'x'",
            "rule b: T(t) && t.b < 100 -> t.a = 'y'",
        );
        match w {
            CoSat::Witness(tuple) => {
                assert_eq!(tuple.len(), 3);
                // attr b = index 1 in the test schema
                assert!(matches!(tuple[1], Value::Int(v) if v > 10 && v < 100));
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn string_neq_witness_avoids_exclusions() {
        let w = cosat(
            "rule a: T(t) && t.a != 'x' -> t.b = 1",
            "rule b: T(t) && t.a != '__witness_0__' -> t.b = 2",
        );
        match w {
            CoSat::Witness(tuple) => {
                assert!(matches!(&tuple[0], Value::Str(s) if s.as_ref() != "x"
                    && s.as_ref() != "__witness_0__"));
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn joins_and_eq_constants_behave() {
        // two-variable rule: exclusivity is still sound, witness is not
        assert_eq!(
            cosat(
                "rule a: T(t) && T(s) && t.b < s.b -> t.a = 'x'",
                "rule b: T(t) && t.b > 0 -> t.a = 'y'",
            ),
            CoSat::Unknown
        );
        // shared Eq constant instantiates directly
        let w = cosat(
            "rule a: T(t) && t.b = 7 -> t.a = 'x'",
            "rule b: T(t) && t.b >= 7 -> t.a = 'y'",
        );
        assert_eq!(
            w,
            CoSat::Witness(vec![Value::Null, Value::Int(7), Value::Null])
        );
    }
}
