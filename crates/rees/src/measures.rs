//! Support and confidence of REE++s (paper §3 "Rule discovery": top-k
//! ranking uses "objective measures (confidence, support)"; §6 sets "the
//! support (resp. confidence) threshold as 1e-8 (resp. 0.9)").
//!
//! * `support(φ, D)` — the number of valuations satisfying `X ∧ p0`,
//!   normalized by the number of possible valuations (the product of bound
//!   relation sizes). The paper's 1e-8 threshold is on this normalized
//!   scale.
//! * `confidence(φ, D)` — `|{h ⊨ X ∧ p0}| / |{h ⊨ X}|`.

use crate::eval::{distinct_ok, enumerate_valuations, EvalContext, Valuation};
use crate::predicate::Predicate;
use crate::rule::Rule;
use rock_data::{Bitset, GlobalTid, RelId, TupleId};
use serde::{Deserialize, Serialize};

/// Measured support/confidence of one rule over one instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measures {
    /// Count of valuations with `h ⊨ X`.
    pub precondition_count: u64,
    /// Count of valuations with `h ⊨ X ∧ p0`.
    pub satisfying_count: u64,
    /// Number of possible valuations (product of relation sizes).
    pub possible: u64,
}

impl Measures {
    /// Normalized support.
    pub fn support(&self) -> f64 {
        if self.possible == 0 {
            0.0
        } else {
            self.satisfying_count as f64 / self.possible as f64
        }
    }

    /// Confidence; 0 when the precondition never holds (a rule that never
    /// fires carries no evidence).
    pub fn confidence(&self) -> f64 {
        if self.precondition_count == 0 {
            0.0
        } else {
            self.satisfying_count as f64 / self.precondition_count as f64
        }
    }
}

/// Measure a rule over a database.
pub fn measure(rule: &Rule, ctx: &EvalContext<'_>) -> Measures {
    let mut pre = 0u64;
    let mut sat = 0u64;
    enumerate_valuations(rule, ctx, |h| {
        if !distinct_ok(rule, h) {
            return true;
        }
        pre += 1;
        if ctx.eval_predicate(rule, h, &rule.consequence) == Some(true) {
            sat += 1;
        }
        true
    });
    let possible: u64 = rule
        .tuple_vars
        .iter()
        .map(|(_, rel)| ctx.db.relation(*rel).len() as u64)
        .product();
    Measures {
        precondition_count: pre,
        satisfying_count: sat,
        possible,
    }
}

/// Measure and record onto the rule (discovery uses this).
pub fn measure_into(rule: &mut Rule, ctx: &EvalContext<'_>) -> Measures {
    let m = measure(rule, ctx);
    rule.support = m.support();
    rule.confidence = m.confidence();
    m
}

/// The satisfaction bitset of one predicate over a single-relation
/// two-variable template `R(t) ∧ R(s)`, in one of two domains:
///
/// * `Unary` — predicates touching only variable 0 get one bit per tuple,
///   indexed by position in the instance's tid list (`n` bits);
/// * `Pair` — predicates touching variable 1 get one bit per ordered tuple
///   pair, bit `i·n + j` for `(t = tids[i], s = tids[j])` (`n²` bits,
///   diagonal included — the self-pair exclusion of [`distinct_ok`] is a
///   mask applied at measure time, not baked into predicate bitsets).
///
/// The two domains mirror the miner's rule simplification: a conjunction
/// whose predicates never touch `s` is measured as a one-variable rule
/// over `n` valuations, and switches to the `n²` pair domain exactly when
/// a two-variable conjunct (or consequence) joins it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatBits {
    Unary(Bitset),
    Pair(Bitset),
}

impl SatBits {
    pub fn bits(&self) -> &Bitset {
        match self {
            SatBits::Unary(b) | SatBits::Pair(b) => b,
        }
    }

    pub fn heap_bytes(&self) -> usize {
        self.bits().heap_bytes()
    }

    /// Conjoin two satisfaction bitsets over the same `n`-tuple instance,
    /// broadcasting a unary side into the pair domain when the other side
    /// is already pairwise.
    pub fn and(&self, other: &SatBits, n: usize) -> SatBits {
        use SatBits::*;
        match (self, other) {
            (Unary(a), Unary(b)) => Unary(a.and(b)),
            (Pair(a), Pair(b)) => Pair(a.and(b)),
            (Unary(u), Pair(p)) | (Pair(p), Unary(u)) => {
                let mut out = broadcast_rows(u, n);
                out.intersect_with(p);
                Pair(out)
            }
        }
    }
}

/// Broadcast a unary (per-`t`) bitset into the pair domain: row `i` of the
/// `n × n` bit matrix is filled iff bit `i` is set — a unary predicate on
/// `t` constrains every pair `(t, s)` identically.
pub fn broadcast_rows(unary: &Bitset, n: usize) -> Bitset {
    assert_eq!(unary.len(), n, "unary bitset must have one bit per tuple");
    let mut out = Bitset::new(n * n);
    for i in unary.ones() {
        out.set_range(i * n, (i + 1) * n);
    }
    out
}

/// The pair-domain mask excluding the diagonal `(i, i)` — the bitset form
/// of [`distinct_ok`] for a same-relation two-variable template.
pub fn pair_offdiag(n: usize) -> Bitset {
    let mut b = Bitset::full(n * n);
    for i in 0..n {
        b.unset(i * n + i);
    }
    b
}

/// Materialize the satisfaction bitset of `p` over `tids` (the live tuples
/// of `rel`, in iteration order). Each predicate — ML classifiers included
/// — is evaluated once per instance here and never re-evaluated per
/// candidate conjunction. Models referenced by `p` must already be
/// resolved (as after [`Rule::resolve`]).
pub fn predicate_sat_bits(
    p: &Predicate,
    ctx: &EvalContext<'_>,
    rel: RelId,
    tids: &[TupleId],
) -> SatBits {
    let n = tids.len();
    let probe = Rule::new(
        "sat-bits-probe",
        vec![("t".into(), rel), ("s".into(), rel)],
        vec![],
        vec![],
        p.clone(),
    );
    // vertex slots stay unbound (None): vertex-dependent predicates
    // evaluate to undecided = unsatisfied, matching the scan path, which
    // never binds vertices for rules without HER preconditions.
    let n_vertex = p.vertex_vars().iter().map(|&x| x + 1).max().unwrap_or(0);
    let dummy = GlobalTid::new(rel, tids.first().copied().unwrap_or(TupleId(0)));
    let mut h = Valuation::new(vec![dummy; 2], n_vertex);
    if p.tuple_vars().iter().all(|&v| v == 0) {
        let mut bits = Bitset::new(n);
        for (i, &tid) in tids.iter().enumerate() {
            h.tuples[0] = GlobalTid::new(rel, tid);
            if ctx.eval_predicate(&probe, &h, p) == Some(true) {
                bits.set(i);
            }
        }
        SatBits::Unary(bits)
    } else {
        let mut bits = Bitset::new(n * n);
        for (i, &ti) in tids.iter().enumerate() {
            h.tuples[0] = GlobalTid::new(rel, ti);
            for (j, &tj) in tids.iter().enumerate() {
                h.tuples[1] = GlobalTid::new(rel, tj);
                if ctx.eval_predicate(&probe, &h, p) == Some(true) {
                    bits.set(i * n + j);
                }
            }
        }
        SatBits::Pair(bits)
    }
}

/// [`Measures`] from satisfaction bitsets, reproducing [`measure`]'s
/// counting exactly. `pre` is the running conjunction of the precondition
/// (all-ones for an empty `X`), `cons` the consequence's bitset, and
/// `offdiag` the mask of [`pair_offdiag`] (only consulted when either side
/// lives in the pair domain).
pub fn measure_bits(pre: &SatBits, cons: &SatBits, n: usize, offdiag: &Bitset) -> Measures {
    match (pre, cons) {
        (SatBits::Unary(p), SatBits::Unary(c)) => Measures {
            precondition_count: p.count_ones(),
            satisfying_count: p.and_popcount(c),
            possible: n as u64,
        },
        (p, c) => {
            let pp: std::borrow::Cow<'_, Bitset> = match p {
                SatBits::Pair(b) => std::borrow::Cow::Borrowed(b),
                SatBits::Unary(u) => std::borrow::Cow::Owned(broadcast_rows(u, n)),
            };
            let cp: std::borrow::Cow<'_, Bitset> = match c {
                SatBits::Pair(b) => std::borrow::Cow::Borrowed(b),
                SatBits::Unary(u) => std::borrow::Cow::Owned(broadcast_rows(u, n)),
            };
            Measures {
                precondition_count: pp.and_popcount(offdiag),
                satisfying_count: pp.and3_popcount(&cp, offdiag),
                possible: n as u64 * n as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpOp;
    use crate::predicate::Predicate;
    use rock_data::{AttrId, AttrType, Database, DatabaseSchema, RelId, RelationSchema, Value};
    use rock_ml::ModelRegistry;

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("b", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        // 3 tuples with a=x sharing b=1; 1 tuple with a=x but b=2
        r.insert_row(vec![Value::str("x"), Value::str("1")])
            .unwrap();
        r.insert_row(vec![Value::str("x"), Value::str("1")])
            .unwrap();
        r.insert_row(vec![Value::str("x"), Value::str("1")])
            .unwrap();
        r.insert_row(vec![Value::str("x"), Value::str("2")])
            .unwrap();
        db
    }

    fn fd_rule() -> Rule {
        // T(t) ∧ T(s) ∧ t.a = s.a → t.b = s.b
        Rule::new(
            "fd",
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            vec![Predicate::Attr {
                lvar: 0,
                lattr: AttrId(0),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(0),
            }],
            Predicate::Attr {
                lvar: 0,
                lattr: AttrId(1),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(1),
            },
        )
    }

    #[test]
    fn support_and_confidence() {
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let m = measure(&fd_rule(), &ctx);
        // precondition: all ordered distinct pairs (4·3 = 12)
        assert_eq!(m.precondition_count, 12);
        // satisfying: ordered pairs among the three b=1 tuples (3·2 = 6)
        assert_eq!(m.satisfying_count, 6);
        assert_eq!(m.possible, 16);
        assert!((m.support() - 6.0 / 16.0).abs() < 1e-12);
        assert!((m.confidence() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measure_into_records() {
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let mut r = fd_rule();
        measure_into(&mut r, &ctx);
        assert!(r.support > 0.0);
        assert!((r.confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_db_zero_measures() {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("b", AttrType::Str)],
        )]);
        let db = Database::new(&schema);
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let m = measure(&fd_rule(), &ctx);
        assert_eq!(m.support(), 0.0);
        assert_eq!(m.confidence(), 0.0);
    }

    #[test]
    fn bitset_measures_match_scan_two_var() {
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let rule = fd_rule();
        let tids: Vec<TupleId> = db.relation(RelId(0)).tids().collect();
        let n = tids.len();
        let pre = predicate_sat_bits(&rule.precondition[0], &ctx, RelId(0), &tids);
        let cons = predicate_sat_bits(&rule.consequence, &ctx, RelId(0), &tids);
        let m = measure_bits(&pre, &cons, n, &pair_offdiag(n));
        assert_eq!(m, measure(&rule, &ctx));
    }

    #[test]
    fn bitset_measures_match_scan_one_var() {
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        // t.a = 'x' → t.b = '1': a one-variable rule, unary domain
        let pre_p = Predicate::Const {
            var: 0,
            attr: AttrId(0),
            op: CmpOp::Eq,
            value: Value::str("x"),
        };
        let cons_p = Predicate::Const {
            var: 0,
            attr: AttrId(1),
            op: CmpOp::Eq,
            value: Value::str("1"),
        };
        let rule = Rule::new(
            "const",
            vec![("t".into(), RelId(0))],
            vec![],
            vec![pre_p.clone()],
            cons_p.clone(),
        );
        let tids: Vec<TupleId> = db.relation(RelId(0)).tids().collect();
        let n = tids.len();
        let pre = predicate_sat_bits(&pre_p, &ctx, RelId(0), &tids);
        let cons = predicate_sat_bits(&cons_p, &ctx, RelId(0), &tids);
        assert!(matches!(pre, SatBits::Unary(_)));
        let m = measure_bits(&pre, &cons, n, &pair_offdiag(n));
        assert_eq!(m, measure(&rule, &ctx));
        assert_eq!(m.possible, 4);
    }

    #[test]
    fn bitset_measures_match_scan_mixed_domains() {
        // unary precondition, binary consequence: the unary side must
        // broadcast into the pair domain and mask the diagonal
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let pre_p = Predicate::Const {
            var: 0,
            attr: AttrId(0),
            op: CmpOp::Eq,
            value: Value::str("x"),
        };
        let cons_p = Predicate::Attr {
            lvar: 0,
            lattr: AttrId(1),
            op: CmpOp::Eq,
            rvar: 1,
            rattr: AttrId(1),
        };
        let rule = Rule::new(
            "mixed",
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            vec![pre_p.clone()],
            cons_p.clone(),
        );
        let tids: Vec<TupleId> = db.relation(RelId(0)).tids().collect();
        let n = tids.len();
        let pre = predicate_sat_bits(&pre_p, &ctx, RelId(0), &tids);
        let cons = predicate_sat_bits(&cons_p, &ctx, RelId(0), &tids);
        let m = measure_bits(&pre, &cons, n, &pair_offdiag(n));
        assert_eq!(m, measure(&rule, &ctx));
        // all 4 rows have a='x': pre = 4·3 ordered distinct pairs
        assert_eq!(m.precondition_count, 12);
    }

    #[test]
    fn satbits_and_broadcasts_across_domains() {
        let n = 3;
        let u = SatBits::Unary(Bitset::from_bools(&[true, false, true]));
        let mut pair = Bitset::full(n * n);
        pair.unset(0); // drop (0,0)
        let p = SatBits::Pair(pair);
        let up = u.and(&p, n);
        match &up {
            SatBits::Pair(b) => {
                // rows 0 and 2 minus the dropped bit: 3 + 3 - 1
                assert_eq!(b.count_ones(), 5);
                assert!(!b.get(0) && b.get(1) && !b.get(3) && b.get(6));
            }
            _ => panic!("expected pair domain"),
        }
        // unary ∧ unary stays unary
        let uu = u.and(&SatBits::Unary(Bitset::from_bools(&[true, true, false])), n);
        match uu {
            SatBits::Unary(b) => assert_eq!(b.ones().collect::<Vec<_>>(), vec![0]),
            _ => panic!("expected unary domain"),
        }
    }

    #[test]
    fn offdiag_masks_exactly_the_diagonal() {
        let n = 5;
        let off = pair_offdiag(n);
        assert_eq!(off.count_ones(), (n * n - n) as u64);
        for i in 0..n {
            assert!(!off.get(i * n + i));
        }
    }
}
