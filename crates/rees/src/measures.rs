//! Support and confidence of REE++s (paper §3 "Rule discovery": top-k
//! ranking uses "objective measures (confidence, support)"; §6 sets "the
//! support (resp. confidence) threshold as 1e-8 (resp. 0.9)").
//!
//! * `support(φ, D)` — the number of valuations satisfying `X ∧ p0`,
//!   normalized by the number of possible valuations (the product of bound
//!   relation sizes). The paper's 1e-8 threshold is on this normalized
//!   scale.
//! * `confidence(φ, D)` — `|{h ⊨ X ∧ p0}| / |{h ⊨ X}|`.

use crate::eval::{distinct_ok, enumerate_valuations, EvalContext};
use crate::rule::Rule;
use serde::{Deserialize, Serialize};

/// Measured support/confidence of one rule over one instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measures {
    /// Count of valuations with `h ⊨ X`.
    pub precondition_count: u64,
    /// Count of valuations with `h ⊨ X ∧ p0`.
    pub satisfying_count: u64,
    /// Number of possible valuations (product of relation sizes).
    pub possible: u64,
}

impl Measures {
    /// Normalized support.
    pub fn support(&self) -> f64 {
        if self.possible == 0 {
            0.0
        } else {
            self.satisfying_count as f64 / self.possible as f64
        }
    }

    /// Confidence; 0 when the precondition never holds (a rule that never
    /// fires carries no evidence).
    pub fn confidence(&self) -> f64 {
        if self.precondition_count == 0 {
            0.0
        } else {
            self.satisfying_count as f64 / self.precondition_count as f64
        }
    }
}

/// Measure a rule over a database.
pub fn measure(rule: &Rule, ctx: &EvalContext<'_>) -> Measures {
    let mut pre = 0u64;
    let mut sat = 0u64;
    enumerate_valuations(rule, ctx, |h| {
        if !distinct_ok(rule, h) {
            return true;
        }
        pre += 1;
        if ctx.eval_predicate(rule, h, &rule.consequence) == Some(true) {
            sat += 1;
        }
        true
    });
    let possible: u64 = rule
        .tuple_vars
        .iter()
        .map(|(_, rel)| ctx.db.relation(*rel).len() as u64)
        .product();
    Measures { precondition_count: pre, satisfying_count: sat, possible }
}

/// Measure and record onto the rule (discovery uses this).
pub fn measure_into(rule: &mut Rule, ctx: &EvalContext<'_>) -> Measures {
    let m = measure(rule, ctx);
    rule.support = m.support();
    rule.confidence = m.confidence();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpOp;
    use crate::predicate::Predicate;
    use rock_data::{AttrId, AttrType, Database, DatabaseSchema, RelId, RelationSchema, Value};
    use rock_ml::ModelRegistry;

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("b", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        // 3 tuples with a=x sharing b=1; 1 tuple with a=x but b=2
        r.insert_row(vec![Value::str("x"), Value::str("1")]);
        r.insert_row(vec![Value::str("x"), Value::str("1")]);
        r.insert_row(vec![Value::str("x"), Value::str("1")]);
        r.insert_row(vec![Value::str("x"), Value::str("2")]);
        db
    }

    fn fd_rule() -> Rule {
        // T(t) ∧ T(s) ∧ t.a = s.a → t.b = s.b
        Rule::new(
            "fd",
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            vec![Predicate::Attr {
                lvar: 0,
                lattr: AttrId(0),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(0),
            }],
            Predicate::Attr {
                lvar: 0,
                lattr: AttrId(1),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(1),
            },
        )
    }

    #[test]
    fn support_and_confidence() {
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let m = measure(&fd_rule(), &ctx);
        // precondition: all ordered distinct pairs (4·3 = 12)
        assert_eq!(m.precondition_count, 12);
        // satisfying: ordered pairs among the three b=1 tuples (3·2 = 6)
        assert_eq!(m.satisfying_count, 6);
        assert_eq!(m.possible, 16);
        assert!((m.support() - 6.0 / 16.0).abs() < 1e-12);
        assert!((m.confidence() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measure_into_records() {
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let mut r = fd_rule();
        measure_into(&mut r, &ctx);
        assert!(r.support > 0.0);
        assert!((r.confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_db_zero_measures() {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("b", AttrType::Str)],
        )]);
        let db = Database::new(&schema);
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let m = measure(&fd_rule(), &ctx);
        assert_eq!(m.support(), 0.0);
        assert_eq!(m.confidence(), 0.0);
    }
}
