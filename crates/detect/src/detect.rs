//! Batch and incremental violation detection.

use rock_crystal::work::partition_range;
use rock_crystal::{Cluster, ClusterConfig, FaultStats, UnitFailure, WorkUnit};
use rock_data::{CellRef, Database, Delta, GlobalTid, TupleId};
use rock_kg::Graph;
use rock_ml::ModelRegistry;
use rock_rees::eval::{
    distinct_ok, enumerate_valuations_in_set, enumerate_valuations_restricted, EvalContext,
    TemporalOracle, TimestampOracle, Valuation,
};
use rock_rees::{Predicate, Rule, RuleSet};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Classification of a detected error (what kind of consequence was
/// violated) — ER/CR/TD/MI, matching the paper's four tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Duplicate entities missed or wrongly split (EID consequences).
    Er,
    /// Semantic inconsistency between attribute values.
    Cr,
    /// Temporal-order violation (obsolete value in use).
    Td,
    /// Missing value matched by an MI rule.
    Mi,
}

/// Kind of a rule's consequence.
pub fn consequence_kind(rule: &Rule) -> ErrorKind {
    match &rule.consequence {
        Predicate::EidCmp { .. } => ErrorKind::Er,
        Predicate::Temporal { .. } | Predicate::MlRank { .. } => ErrorKind::Td,
        Predicate::ValExtract { .. } | Predicate::Predict { .. } => ErrorKind::Mi,
        Predicate::Const { .. } | Predicate::Attr { .. } => {
            // MI rules are Const/Attr consequences guarded by null(·)
            if rule
                .precondition
                .iter()
                .any(|p| matches!(p, Predicate::IsNull { .. }))
            {
                ErrorKind::Mi
            } else {
                ErrorKind::Cr
            }
        }
        _ => ErrorKind::Cr,
    }
}

/// One detected violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: usize,
    pub kind: ErrorKind,
    pub valuation: Valuation,
}

/// Detection output.
#[derive(Debug, Default)]
pub struct DetectReport {
    pub violations: Vec<Violation>,
    /// Cells implicated by violated consequences (the unit the accuracy
    /// evaluation scores; §6 Exp-2 checks per-value correctness).
    pub flagged_cells: FxHashSet<CellRef>,
    /// Tuple pairs flagged as duplicates (ER `eid =` consequences).
    pub duplicate_pairs: Vec<(GlobalTid, GlobalTid)>,
    /// Per-round modeled unit durations (scaling experiments).
    pub unit_seconds: Vec<f64>,
    /// Wall seconds of the detection pass.
    pub wall_seconds: f64,
    /// Fault/retry/speculation counters from the Crystal scheduler.
    pub fault_stats: FaultStats,
    /// Work units quarantined after exhausting retries. Their partitions
    /// contribute no violations — the report is a best-effort under-
    /// approximation whenever this is non-empty.
    pub unit_failures: Vec<UnitFailure>,
}

impl DetectReport {
    pub fn count(&self) -> usize {
        self.violations.len()
    }

    /// Violations per rule index.
    pub fn per_rule(&self) -> FxHashMap<usize, usize> {
        let mut m = FxHashMap::default();
        for v in &self.violations {
            *m.entry(v.rule).or_insert(0) += 1;
        }
        m
    }

    /// Modeled parallel seconds over `workers` nodes.
    pub fn modeled_parallel_seconds(&self, workers: usize) -> f64 {
        rock_crystal::scheduler::makespan_lpt(&self.unit_seconds, workers)
    }
}

/// Cells a violation implicates, excluding the two-sided Attr consequence
/// (handled by the participation post-pass, see [`attribute_blame`]):
/// * `Const` / `ValExtract` / `Predict` consequences implicate their one
///   target cell;
/// * `Temporal` / `MlRank` consequences implicate the *left* cell only —
///   a violated `t ⪯A s` says `t[A]` claims an out-of-order (obsolete)
///   value; `s[A]` is the witness, not the suspect;
/// * `null(·)` preconditions of MI rules implicate the null cells.
fn implicated_cells(rule: &Rule, h: &Valuation, out: &mut FxHashSet<CellRef>) {
    let mut add = |var: usize, attr: rock_data::AttrId| {
        let gt = h.tuples[var];
        out.insert(CellRef::new(gt.rel, gt.tid, attr));
    };
    match &rule.consequence {
        Predicate::Const { var, attr, .. } => add(*var, *attr),
        Predicate::Temporal { lvar, attr, .. } | Predicate::MlRank { lvar, attr, .. } => {
            add(*lvar, *attr);
        }
        Predicate::ValExtract { tvar, attr, .. } => add(*tvar, *attr),
        Predicate::Predict { var, target, .. } => add(*var, *target),
        // Attr handled by attribute_blame; EidCmp tracked as pairs.
        _ => {}
    }
    for p in &rule.precondition {
        if let Predicate::IsNull { var, attr } = p {
            add(*var, *attr);
        }
    }
}

/// Blame attribution for violated `t.A = s.B` consequences.
///
/// A violation cannot tell which side is wrong, and flagging both sides
/// destroys precision: one dirty cell in an FD group of size `k` produces
/// `k−1` violations, each implicating a clean partner. The discriminating
/// signal is the per-cell **violation ratio** `viol / (viol + sat)`, where
/// `sat` counts the valuations where the same cell participated in a
/// *satisfied* consequence: a dirty cell disagrees with (almost) all of
/// its partners, a clean cell agrees with most of its partners — including
/// the reference-table case where one clean cell joins against many dirty
/// ones. For each violation, the side(s) with the strictly-larger ratio
/// get flagged (both on ties). This is the detection-side analog of the
/// chase's majority-based conflict resolution.
fn attribute_blame(
    rules: &RuleSet,
    violations: &[Violation],
    satisfied: &FxHashMap<(usize, CellRef), u32>,
    out: &mut FxHashSet<CellRef>,
) {
    let mut viol: FxHashMap<(usize, CellRef), u32> = FxHashMap::default();
    let mut pairs: Vec<(usize, CellRef, CellRef)> = Vec::new();
    for v in violations {
        let rule = &rules.rules[v.rule];
        if let Predicate::Attr {
            lvar,
            lattr,
            rvar,
            rattr,
            ..
        } = &rule.consequence
        {
            let l = v.valuation.tuples[*lvar];
            let r = v.valuation.tuples[*rvar];
            let lc = CellRef::new(l.rel, l.tid, *lattr);
            let rc = CellRef::new(r.rel, r.tid, *rattr);
            *viol.entry((v.rule, lc)).or_insert(0) += 1;
            *viol.entry((v.rule, rc)).or_insert(0) += 1;
            pairs.push((v.rule, lc, rc));
        }
    }
    let ratio = |rule: usize, c: CellRef| -> f64 {
        let v = viol.get(&(rule, c)).copied().unwrap_or(0) as f64;
        let s = satisfied.get(&(rule, c)).copied().unwrap_or(0) as f64;
        if v + s == 0.0 {
            0.0
        } else {
            v / (v + s)
        }
    };
    for (rule, lc, rc) in pairs {
        let rl = ratio(rule, lc);
        let rr = ratio(rule, rc);
        if rl >= rr - 1e-12 {
            out.insert(lc);
        }
        if rr >= rl - 1e-12 {
            out.insert(rc);
        }
    }
}

/// Record a *satisfied* Attr-consequence pair for the blame ratios.
fn record_satisfied(
    rule: &Rule,
    ri: usize,
    h: &Valuation,
    satisfied: &mut FxHashMap<(usize, CellRef), u32>,
) {
    if let Predicate::Attr {
        lvar,
        lattr,
        rvar,
        rattr,
        ..
    } = &rule.consequence
    {
        let l = h.tuples[*lvar];
        let r = h.tuples[*rvar];
        *satisfied
            .entry((ri, CellRef::new(l.rel, l.tid, *lattr)))
            .or_insert(0) += 1;
        *satisfied
            .entry((ri, CellRef::new(r.rel, r.tid, *rattr)))
            .or_insert(0) += 1;
    }
}

/// The detector.
pub struct Detector<'a> {
    pub rules: &'a RuleSet,
    pub registry: &'a ModelRegistry,
    pub graph: Option<&'a Graph>,
    pub workers: usize,
    pub partitions_per_rule: u32,
    pub cluster: ClusterConfig,
    /// Route scan prefilters through the columnar kernels; off = the
    /// scalar row path (the byte-identical equivalence oracle).
    pub columnar: bool,
}

impl<'a> Detector<'a> {
    pub fn new(rules: &'a RuleSet, registry: &'a ModelRegistry) -> Self {
        Detector {
            rules,
            registry,
            graph: None,
            workers: 1,
            partitions_per_rule: 4,
            cluster: ClusterConfig::default(),
            columnar: rock_data::DataConfig::default().columnar,
        }
    }

    pub fn with_graph(mut self, g: &'a Graph) -> Self {
        self.graph = Some(g);
        self
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Fault-injection / retry / speculation knobs for the batch path.
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Batch detection over the whole database.
    pub fn detect(&self, db: &Database) -> DetectReport {
        let start = std::time::Instant::now();
        let oracle = TimestampOracle { db };
        let mut report = self.detect_inner(db, &oracle, None);
        report.wall_seconds = start.elapsed().as_secs_f64();
        report
    }

    /// Incremental detection: only violations involving a tuple touched by
    /// ΔD (which has already been applied to `db` by the caller, receiving
    /// `inserted` back from [`Database::apply`]).
    pub fn detect_incremental(
        &self,
        db: &Database,
        delta: &Delta,
        inserted: &[TupleId],
    ) -> DetectReport {
        let start = std::time::Instant::now();
        // touched tuples per relation
        let mut touched: FxHashMap<rock_data::RelId, FxHashSet<TupleId>> = FxHashMap::default();
        let mut ins = inserted.iter();
        for u in &delta.updates {
            match u {
                rock_data::Update::Insert { rel, .. } => {
                    if let Some(t) = ins.next() {
                        touched.entry(*rel).or_default().insert(*t);
                    }
                }
                rock_data::Update::Delete { .. } => {}
                rock_data::Update::SetCell { rel, tid, .. } => {
                    touched.entry(*rel).or_default().insert(*tid);
                }
            }
        }
        let oracle = TimestampOracle { db };
        let mut report = self.detect_inner(db, &oracle, Some(&touched));
        report.wall_seconds = start.elapsed().as_secs_f64();
        report
    }

    fn detect_inner(
        &self,
        db: &Database,
        oracle: &dyn TemporalOracle,
        touched: Option<&FxHashMap<rock_data::RelId, FxHashSet<TupleId>>>,
    ) -> DetectReport {
        let mut ctx = EvalContext::new(db, self.registry)
            .with_temporal(oracle)
            .with_columnar(self.columnar);
        if let Some(g) = self.graph {
            ctx = ctx.with_graph(g);
        }
        let mut report = DetectReport::default();
        let mut satisfied: FxHashMap<(usize, CellRef), u32> = FxHashMap::default();

        match touched {
            None => {
                // batch: rule × partition work units on the cluster
                let cluster = Cluster::with_config(self.workers, self.cluster.clone());
                let mut units = Vec::new();
                for (ri, rule) in self.rules.iter().enumerate() {
                    let rel0 = rule.rel_of(0);
                    let rows = db.relation(rel0).capacity() as u32;
                    for p in partition_range(rel0.0, rows, self.partitions_per_rule) {
                        units.push(WorkUnit::new(ri as u32, vec![p]));
                    }
                }
                let rules = self.rules;
                let outcome = cluster.execute(units, |unit| {
                    let ri = unit.rule as usize;
                    let rule = &rules.rules[ri];
                    let range = unit.partitions[0].start..unit.partitions[0].end;
                    let mut found = Vec::new();
                    let mut sats = Vec::new();
                    enumerate_valuations_restricted(rule, &ctx, Some((0, range)), |h| {
                        if !distinct_ok(rule, h) {
                            return true;
                        }
                        if ctx.eval_predicate(rule, h, &rule.consequence) == Some(true) {
                            sats.push((ri, h.clone()));
                        } else {
                            found.push((ri, h.clone()));
                        }
                        true
                    });
                    Ok((found, sats))
                });
                report.unit_seconds = outcome.stats.unit_seconds;
                report.fault_stats.merge(&outcome.stats.faults);
                report.unit_failures.extend(outcome.failures);
                for (found, sats) in outcome.results.into_iter().flatten() {
                    for (ri, h) in found {
                        let rule = &self.rules.rules[ri];
                        record(rule, ri, consequence_kind(rule), &h, &mut report);
                    }
                    for (ri, h) in sats {
                        record_satisfied(&self.rules.rules[ri], ri, &h, &mut satisfied);
                    }
                }
            }
            Some(touched) => {
                for (ri, rule) in self.rules.iter().enumerate() {
                    let kind = consequence_kind(rule);
                    // a violation must bind ≥1 touched tuple: run one
                    // restricted enumeration per variable and dedup.
                    let mut seen: FxHashSet<Vec<GlobalTid>> = FxHashSet::default();
                    for var in 0..rule.tuple_vars.len() {
                        let rel = rule.rel_of(var);
                        let Some(set) = touched.get(&rel) else {
                            continue;
                        };
                        if set.is_empty() {
                            continue;
                        }
                        enumerate_valuations_in_set(rule, &ctx, var, set, |h| {
                            if !distinct_ok(rule, h) || !seen.insert(h.tuples.clone()) {
                                return true;
                            }
                            if ctx.eval_predicate(rule, h, &rule.consequence) == Some(true) {
                                record_satisfied(rule, ri, h, &mut satisfied);
                            } else {
                                record(rule, ri, kind, h, &mut report);
                            }
                            true
                        });
                    }
                }
            }
        }
        attribute_blame(
            self.rules,
            &report.violations,
            &satisfied,
            &mut report.flagged_cells,
        );
        report
    }
}

fn record(rule: &Rule, ri: usize, kind: ErrorKind, h: &Valuation, report: &mut DetectReport) {
    implicated_cells(rule, h, &mut report.flagged_cells);
    if let Predicate::EidCmp {
        lvar,
        rvar,
        eq: true,
    } = &rule.consequence
    {
        report
            .duplicate_pairs
            .push((h.tuples[*lvar], h.tuples[*rvar]));
    }
    report.violations.push(Violation {
        rule: ri,
        kind,
        valuation: h.clone(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrId, AttrType, DatabaseSchema, RelId, RelationSchema, Update, Value};
    use rock_rees::parse_rules;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::of(
            "Trans",
            &[
                ("pid", AttrType::Str),
                ("com", AttrType::Str),
                ("mfg", AttrType::Str),
                ("price", AttrType::Float),
            ],
        )])
    }

    fn db() -> Database {
        let mut db = Database::new(&schema());
        let r = db.relation_mut(RelId(0));
        r.insert_row(vec![
            Value::str("p1"),
            Value::str("IPhone"),
            Value::str("Apple"),
            Value::Float(1.0),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("p2"),
            Value::str("IPhone"),
            Value::str("Huawei"),
            Value::Float(2.0),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("p3"),
            Value::str("Mate"),
            Value::str("Huawei"),
            Value::Null,
        ])
        .unwrap();
        db
    }

    fn ruleset() -> RuleSet {
        RuleSet::new(
            parse_rules(
                "rule cr: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg\nrule mi: Trans(t) && null(t.price) -> t.price = 0",
                &schema(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn batch_detection_finds_both_kinds() {
        let db = db();
        let reg = ModelRegistry::new();
        let rules = ruleset();
        let det = Detector::new(&rules, &reg);
        let rep = det.detect(&db);
        // CR: (t0,t1) both directions; MI: t2.price
        assert_eq!(rep.count(), 3);
        let per = rep.per_rule();
        assert_eq!(per[&0], 2);
        assert_eq!(per[&1], 1);
        assert!(rep
            .flagged_cells
            .contains(&CellRef::new(RelId(0), TupleId(0), AttrId(2))));
        assert!(rep
            .flagged_cells
            .contains(&CellRef::new(RelId(0), TupleId(1), AttrId(2))));
        assert!(rep
            .flagged_cells
            .contains(&CellRef::new(RelId(0), TupleId(2), AttrId(3))));
        assert!(rep.wall_seconds >= 0.0);
    }

    #[test]
    fn error_kinds_classified() {
        let rules = ruleset();
        assert_eq!(consequence_kind(&rules.rules[0]), ErrorKind::Cr);
        assert_eq!(consequence_kind(&rules.rules[1]), ErrorKind::Mi);
        let er = parse_rules(
            "rule er: Trans(t) && Trans(s) && t.pid = s.pid -> t.eid = s.eid",
            &schema(),
        )
        .unwrap();
        assert_eq!(consequence_kind(&er[0]), ErrorKind::Er);
        let td = parse_rules(
            "rule td: Trans(t) && Trans(s) && t.price <= s.price -> t <=[price] s",
            &schema(),
        )
        .unwrap();
        assert_eq!(consequence_kind(&td[0]), ErrorKind::Td);
    }

    #[test]
    fn duplicate_pairs_from_er_rules() {
        let mut db = db();
        db.relation_mut(RelId(0))
            .insert_row(vec![
                Value::str("p1"),
                Value::str("Mate"),
                Value::str("Huawei"),
                Value::Float(5.0),
            ])
            .unwrap();
        let rules = RuleSet::new(
            parse_rules(
                "rule er: Trans(t) && Trans(s) && t.pid = s.pid -> t.eid = s.eid",
                &schema(),
            )
            .unwrap(),
        );
        let reg = ModelRegistry::new();
        let rep = Detector::new(&rules, &reg).detect(&db);
        assert_eq!(rep.duplicate_pairs.len(), 2); // (t0,t3) and (t3,t0)
    }

    #[test]
    fn parallel_detection_same_results() {
        let db = db();
        let reg = ModelRegistry::new();
        let rules = ruleset();
        let seq = Detector::new(&rules, &reg).detect(&db);
        let par = Detector::new(&rules, &reg).with_workers(4).detect(&db);
        assert_eq!(seq.count(), par.count());
        assert_eq!(seq.flagged_cells, par.flagged_cells);
    }

    #[test]
    fn incremental_matches_batch_on_touched() {
        let mut db = db();
        let delta = rock_data::Delta::new(vec![
            Update::Insert {
                rel: RelId(0),
                eid: rock_data::Eid(9),
                values: vec![
                    Value::str("p9"),
                    Value::str("IPhone"),
                    Value::str("Sony"),
                    Value::Float(4.0),
                ],
            },
            Update::SetCell {
                rel: RelId(0),
                tid: TupleId(2),
                attr: AttrId(3),
                value: Value::Null,
            },
        ]);
        let inserted = db.apply(&delta).unwrap();
        let reg = ModelRegistry::new();
        let rules = ruleset();
        let det = Detector::new(&rules, &reg);
        let inc = det.detect_incremental(&db, &delta, &inserted);
        // every incremental violation involves a touched tuple
        let touched: FxHashSet<TupleId> = [TupleId(2), inserted[0]].into_iter().collect();
        for v in &inc.violations {
            assert!(v.valuation.tuples.iter().any(|g| touched.contains(&g.tid)));
        }
        // and the incremental set equals the batch set restricted to touched
        let batch = det.detect(&db);
        let batch_touched = batch
            .violations
            .iter()
            .filter(|v| v.valuation.tuples.iter().any(|g| touched.contains(&g.tid)))
            .count();
        assert_eq!(inc.count(), batch_touched);
        assert!(
            inc.count() >= 3,
            "new Sony tuple conflicts with t0/t1 + null price"
        );
    }

    #[test]
    fn incremental_empty_delta_finds_nothing() {
        let db = db();
        let reg = ModelRegistry::new();
        let rules = ruleset();
        let rep =
            Detector::new(&rules, &reg).detect_incremental(&db, &rock_data::Delta::default(), &[]);
        assert_eq!(rep.count(), 0);
    }

    #[test]
    fn modeled_parallel_seconds_monotone() {
        let db = db();
        let reg = ModelRegistry::new();
        let rules = ruleset();
        let rep = Detector::new(&rules, &reg).detect(&db);
        let t1 = rep.modeled_parallel_seconds(1);
        let t4 = rep.modeled_parallel_seconds(4);
        assert!(t4 <= t1 + 1e-12);
    }
}
