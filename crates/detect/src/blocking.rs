//! Filter-and-verify pre-computation for ML predicates (paper §5.3/§5.4).
//!
//! "Given M(t[Ā], s[B̄]), Rock adopts the filter-and-verify paradigm such
//! that (a) a blocking algorithm is first evoked to retrieve a candidate
//! set of potentially matching tuple ID pairs, and then (b) it finds the
//! true matching pairs in the candidate set."
//!
//! For every ML predicate of every rule, this module builds a MinHash LSH
//! index over the left side's blocking text, queries it with the right
//! side, runs the model only on candidate pairs, and memoizes everything —
//! candidates with the model's real output, non-candidates with `false`.
//! Rule evaluation afterwards never pays inference cost: every
//! `predict_pair` call hits the memo.

use rock_data::Database;
use rock_ml::{MinHashLsh, MlBlockIndex, ModelRegistry, PairBlockIndex, PairSignature};
use rock_rees::{Predicate, RuleSet};
use rustc_hash::FxHashSet;

/// Statistics of a pre-computation pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockingStats {
    /// ML predicates processed.
    pub predicates: usize,
    /// Total possible pairs across predicates.
    pub total_pairs: u64,
    /// Pairs that survived blocking (model actually ran on these).
    pub candidate_pairs: u64,
    /// Of those, pairs the model accepted.
    pub matches: u64,
}

impl BlockingStats {
    /// Fraction of pairs pruned without inference.
    pub fn pruned_fraction(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            1.0 - self.candidate_pairs as f64 / self.total_pairs as f64
        }
    }
}

/// Pre-compute all binary ML predicates of `rules` over `db`.
pub fn precompute_ml(db: &Database, rules: &RuleSet, registry: &ModelRegistry) -> BlockingStats {
    precompute_ml_indexed(db, rules, registry).0
}

/// Like [`precompute_ml`], additionally returning the tuple-level
/// [`MlBlockIndex`] built in the same pass — the semi-naive chase consumes
/// it to enumerate block-mates of delta tuples instead of whole relations.
pub fn precompute_ml_indexed(
    db: &Database,
    rules: &RuleSet,
    registry: &ModelRegistry,
) -> (BlockingStats, MlBlockIndex) {
    let mut stats = BlockingStats::default();
    let mut index = MlBlockIndex::new();
    let mut done: FxHashSet<String> = FxHashSet::default();
    for rule in rules.iter() {
        for p in rule.all_predicates() {
            let Predicate::Ml {
                model,
                lvar,
                lattrs,
                rvar,
                rattrs,
            } = p
            else {
                continue;
            };
            // one pass per (model, relations, attrs) signature
            let sig = format!(
                "{}/{}/{:?}/{}/{:?}",
                model.name,
                rule.rel_of(*lvar).0,
                lattrs,
                rule.rel_of(*rvar).0,
                rattrs
            );
            if !done.insert(sig) {
                continue;
            }
            let id = model.resolved();
            let Some(classifier) = registry.pair(id) else {
                continue;
            };
            stats.predicates += 1;

            let lrel = db.relation(rule.rel_of(*lvar));
            let rrel = db.relation(rule.rel_of(*rvar));
            let mut pair_idx = PairBlockIndex::default();
            // index the left side
            let mut lsh = MinHashLsh::new(16, 2);
            let ltexts: Vec<(rock_data::TupleId, Vec<rock_data::Value>, String)> = lrel
                .iter()
                .map(|t| {
                    let vals = t.project(lattrs);
                    let text = classifier.blocking_text(&vals);
                    (t.tid, vals, text)
                })
                .collect();
            for (tid, vals, text) in &ltexts {
                lsh.insert(tid.0, text);
                pair_idx
                    .left_key
                    .insert(*tid, ModelRegistry::pair_key(vals));
            }
            // query with the right side: run the model only on LSH
            // candidates; everything else is excluded via a block filter
            // (O(candidates) instead of O(n²) memo entries).
            let by_tid: std::collections::HashMap<u32, usize> = ltexts
                .iter()
                .enumerate()
                .map(|(i, (tid, _, _))| (tid.0, i))
                .collect();
            let mut filter: FxHashSet<(u64, u64)> = FxHashSet::default();
            for s in rrel.iter() {
                let svals = s.project(rattrs);
                let stext = classifier.blocking_text(&svals);
                stats.total_pairs += ltexts.len() as u64;
                let skey = ModelRegistry::pair_key(&svals);
                pair_idx.right_key.insert(s.tid, skey);
                let mut rmates: Vec<rock_data::TupleId> = Vec::new();
                for cand in lsh.candidates(&stext) {
                    let Some(&i) = by_tid.get(&cand) else {
                        continue;
                    };
                    let (ltid, lvals, _) = &ltexts[i];
                    rmates.push(*ltid);
                    stats.candidate_pairs += 1;
                    let out = classifier.predict(lvals, &svals);
                    registry.meter.add(classifier.cost());
                    if out {
                        stats.matches += 1;
                    }
                    filter.insert((ModelRegistry::pair_key(lvals), skey));
                    registry.memoize_pair(id, lvals, &svals, out);
                }
                rmates.sort_unstable();
                for l in &rmates {
                    pair_idx.left_mates.entry(*l).or_default().push(s.tid);
                }
                pair_idx.right_mates.insert(s.tid, rmates);
            }
            registry.set_block_filter(id, filter);
            index.insert(
                PairSignature {
                    model: id,
                    lrel: rule.rel_of(*lvar),
                    lattrs: lattrs.clone(),
                    rrel: rule.rel_of(*rvar),
                    rattrs: rattrs.clone(),
                },
                pair_idx,
            );
        }
    }
    (stats, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelId, RelationSchema, Value};
    use rock_ml::pair::NgramPairModel;
    use rock_rees::parse_rules;
    use std::sync::Arc;

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Trans",
            &[("pid", AttrType::Str), ("com", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..6 {
            r.insert_row(vec![
                Value::str(format!("p{i}")),
                Value::str(format!("IPhone 14 Discount Code {i} apple store bundle")),
            ])
            .unwrap();
        }
        for i in 0..6 {
            r.insert_row(vec![
                Value::str(format!("q{i}")),
                Value::str(format!("fresh organic juice bottle crate {i}")),
            ])
            .unwrap();
        }
        db
    }

    fn rules(db: &Database) -> RuleSet {
        let schema = db.schema();
        RuleSet::new(
            parse_rules(
                "rule er: Trans(t) && Trans(s) && ml:MER(t[com], s[com]) -> t.pid = s.pid",
                &schema,
            )
            .unwrap(),
        )
    }

    #[test]
    fn blocking_prunes_cross_cluster_pairs() {
        let db = db();
        let reg = ModelRegistry::new();
        reg.register_pair("MER", Arc::new(NgramPairModel::with_threshold(0.8)));
        let mut rs = rules(&db);
        rs.resolve(&reg).unwrap();
        let stats = precompute_ml(&db, &rs, &reg);
        assert_eq!(stats.predicates, 1);
        assert_eq!(stats.total_pairs, 144);
        assert!(stats.candidate_pairs < stats.total_pairs, "{stats:?}");
        assert!(stats.pruned_fraction() > 0.3, "{stats:?}");
        assert!(stats.matches >= 12, "self pairs at minimum: {stats:?}");
    }

    #[test]
    fn evaluation_after_precompute_hits_memo_only() {
        let db = db();
        let reg = ModelRegistry::new();
        reg.register_pair("MER", Arc::new(NgramPairModel::with_threshold(0.8)));
        let mut rs = rules(&db);
        rs.resolve(&reg).unwrap();
        precompute_ml(&db, &rs, &reg);
        let inferences_before = reg.meter.inferences();
        // evaluate the rule's violations: every predict_pair must hit memo
        let ctx = rock_rees::eval::EvalContext::new(&db, &reg);
        let _ = rock_rees::eval::find_violations(&rs.rules[0], &ctx);
        assert_eq!(
            reg.meter.inferences(),
            inferences_before,
            "no fresh inference after pre-computation"
        );
        assert!(reg.meter.memo_hits() > 0);
    }

    #[test]
    fn indexed_precompute_builds_symmetric_mates() {
        let db = db();
        let reg = ModelRegistry::new();
        reg.register_pair("MER", Arc::new(NgramPairModel::with_threshold(0.8)));
        let mut rs = rules(&db);
        rs.resolve(&reg).unwrap();
        let (stats, index) = precompute_ml_indexed(&db, &rs, &reg);
        assert_eq!(index.len(), stats.predicates);
        let sig = PairSignature {
            model: reg.id("MER").unwrap(),
            lrel: RelId(0),
            lattrs: vec![rock_data::AttrId(1)],
            rrel: RelId(0),
            rattrs: vec![rock_data::AttrId(1)],
        };
        let idx = index.get(&sig).expect("signature indexed");
        // build-time keys recorded for every live tuple on both sides
        assert_eq!(idx.left_key.len(), db.relation(RelId(0)).len());
        assert_eq!(idx.right_key.len(), db.relation(RelId(0)).len());
        // mates are symmetric: l in right_mates[r] <=> r in left_mates[l]
        let mut pairs = 0u64;
        for (r, ls) in &idx.right_mates {
            for l in ls {
                pairs += 1;
                assert!(idx.mates(*l, true).contains(r), "asymmetric ({l:?},{r:?})");
            }
        }
        assert_eq!(pairs, stats.candidate_pairs);
        // every tuple is at least its own block-mate (identical text)
        for t in db.relation(RelId(0)).iter() {
            assert!(idx.mates(t.tid, false).contains(&t.tid));
        }
    }

    #[test]
    fn duplicate_predicate_signatures_processed_once() {
        let db = db();
        let schema = db.schema();
        let reg = ModelRegistry::new();
        reg.register_pair("MER", Arc::new(NgramPairModel::with_threshold(0.8)));
        let mut rs = RuleSet::new(
            parse_rules(
                "rule a: Trans(t) && Trans(s) && ml:MER(t[com], s[com]) -> t.pid = s.pid\nrule b: Trans(t) && Trans(s) && ml:MER(t[com], s[com]) && t.pid = s.pid -> t.eid = s.eid",
                &schema,
            )
            .unwrap(),
        );
        rs.resolve(&reg).unwrap();
        let stats = precompute_ml(&db, &rs, &reg);
        assert_eq!(stats.predicates, 1, "same signature must be deduped");
    }
}
