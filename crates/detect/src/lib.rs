//! # rock-detect — error detection (paper §3, §5.3)
//!
//! Given a set Σ of REE++s and a dataset D, Rock detects errors in D as
//! *violations* of rules in Σ: valuations `h` with `h ⊨ X` but `h ⊭ p0`.
//! The errors include duplicates (violated ER consequences), semantic
//! inconsistencies (violated CR consequences), obsolete values (violated
//! temporal consequences) and missing values (null cells matched by MI
//! rules).
//!
//! The module supports the two modes of §3:
//! * **batch** — HyperCube-style partitioning into work units
//!   `T = (φ, D_T)` executed on the Crystal work-stealing cluster;
//! * **incremental** — in response to updates ΔD, only valuations binding
//!   at least one touched tuple are (re-)checked, extending [41].
//!
//! The [`blocking`] module implements the filter-and-verify optimization
//! of §5.3–5.4: LSH blocks candidate pairs for each ML predicate and
//! pre-computes model results, so rule evaluation hits the memo instead of
//! running inference per pair.

// Detection runs inside chase rounds and CI verdict jobs: a panic there
// drops a whole batch of flagged cells, so non-test code surfaces errors
// as values (same gate as rock-crystal, rock-rees and rock-chase).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod blocking;
pub mod detect;

pub use detect::{DetectReport, Detector, ErrorKind};
